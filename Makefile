# Convenience targets for the XSPCL reproduction.

PYTHON ?= python

.PHONY: install test test-fast test-faults fuzz bench bench-perf figures examples lint clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q --ignore=tests/test_calibration.py

# Fault-injection suite plus a CLI smoke: crash a worker mid-run and
# require full recovery (docs/fault-tolerance.md).
test-faults:
	$(PYTHON) -m pytest tests/hinch/test_faults.py -q
	PYTHONPATH=src $(PYTHON) -m repro run examples/specs/pip1.xml \
		--backend process --workers 2 --inject-fault kill:1

# Bounded differential fuzz (docs/fuzzing.md): replay the committed
# shrunk regression cases, then run a fixed-seed campaign.  Failures
# land in fuzz-failures/ as minimal cases with exact replay lines.
# Override: make fuzz FUZZ_SEED=100 FUZZ_CASES=200
FUZZ_SEED ?= 0
FUZZ_CASES ?= 25

fuzz:
	for case in tests/fuzz/case-*.json; do \
		PYTHONPATH=src $(PYTHON) -m repro fuzz --replay $$case || exit 1; \
	done
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seed $(FUZZ_SEED) \
		--cases $(FUZZ_CASES) --out fuzz-failures -v

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping style lint"; \
	fi
	PYTHONPATH=src $(PYTHON) -m repro lint examples/specs/*.xml --fail-on error

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Wall-clock perf harnesses: rewrite BENCH_simulator.json /
# BENCH_runtime.json and fail on a regression against the committed
# baselines (>25% sim, >35% runtime — docs/performance.md).
bench-perf:
	PYTHONPATH=src $(PYTHON) -m repro bench --profile quick --check
	PYTHONPATH=src $(PYTHON) -m repro bench --suite runtime --profile quick --check

figures:
	$(PYTHON) -m repro figures all

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex || exit 1; done

clean:
	rm -rf .pytest_cache benchmarks/out build *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
