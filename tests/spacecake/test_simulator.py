"""Behavioural tests of the SpaceCAKE SimRuntime."""

from __future__ import annotations

import pytest

from repro.core import AppBuilder, expand
from repro.errors import SimulationError
from repro.hinch import ThreadedRuntime
from repro.spacecake import CostParams, SimRuntime

from tests.spacecake.helpers import PORTS, REGISTRY

ZERO_OVERHEAD = CostParams(
    job_overhead_cycles=0.0,
    sync_overhead_cycles=0.0,
    manager_invoke_cycles=0.0,
    barrier_cycles=0.0,
)


def linear_app(cycles=1000) -> AppBuilder:
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "costed_source", streams={"output": "a"},
                   params={"cycles": cycles})
    main.component("w", "costed_worker", streams={"input": "a", "output": "b"},
                   params={"cycles": cycles})
    main.component("snk", "costed_sink", streams={"input": "b"},
                   params={"cycles": cycles})
    return b


def sim(builder, *, nodes=1, depth=5, iters=10, execute=False, params=None,
        trace=False):
    program = expand(builder.build(), PORTS)
    return SimRuntime(
        program, REGISTRY, nodes=nodes, pipeline_depth=depth,
        max_iterations=iters, execute=execute, cost_params=params, trace=trace,
    ).run()


def test_sequential_cycle_count_is_exact():
    # depth=1, 1 node, zero overhead: cycles = 3 jobs * 1000 * iters
    result = sim(linear_app(1000), nodes=1, depth=1, iters=4,
                 params=ZERO_OVERHEAD)
    assert result.cycles == pytest.approx(3 * 1000 * 4)
    assert result.completed_iterations == 4
    assert result.jobs_executed == 12


def test_pipeline_parallelism_speeds_up_multinode():
    seq = sim(linear_app(1000), nodes=1, depth=1, iters=12, params=ZERO_OVERHEAD)
    pipe = sim(linear_app(1000), nodes=3, depth=5, iters=12, params=ZERO_OVERHEAD)
    # 3-stage pipeline on 3 cores: steady state runs all stages concurrently
    assert pipe.cycles < seq.cycles / 2
    # perfect pipeline bound: (iters + stages - 1) * stage_cycles
    assert pipe.cycles == pytest.approx((12 + 2) * 1000)


def test_one_node_pipeline_depth_does_not_speed_up():
    d1 = sim(linear_app(1000), nodes=1, depth=1, iters=8, params=ZERO_OVERHEAD)
    d5 = sim(linear_app(1000), nodes=1, depth=5, iters=8, params=ZERO_OVERHEAD)
    assert d5.cycles == pytest.approx(d1.cycles)


def test_determinism():
    results = [
        sim(linear_app(777), nodes=3, depth=4, iters=9).cycles for _ in range(3)
    ]
    assert results[0] == results[1] == results[2]


def test_slice_parallel_scales_with_nodes():
    def app():
        b = AppBuilder()
        main = b.procedure("main")
        main.component("src", "costed_source", streams={"output": "a"},
                       params={"cycles": 10})
        with main.parallel("slice", n=8):
            main.component("w", "costed_worker",
                           streams={"input": "a", "output": "b"},
                           params={"cycles": 80000})
        main.component("snk", "costed_sink", streams={"input": "b"},
                       params={"cycles": 10})
        return b

    one = sim(app(), nodes=1, depth=1, iters=4, params=ZERO_OVERHEAD)
    four = sim(app(), nodes=4, depth=1, iters=4, params=ZERO_OVERHEAD)
    eight = sim(app(), nodes=8, depth=1, iters=4, params=ZERO_OVERHEAD)
    assert one.cycles / four.cycles == pytest.approx(4.0, rel=0.05)
    assert one.cycles / eight.cycles == pytest.approx(8.0, rel=0.10)


def test_sync_overhead_charged_only_multinode():
    params = CostParams(job_overhead_cycles=0.0, sync_overhead_cycles=500.0,
                        manager_invoke_cycles=0.0, barrier_cycles=0.0)
    one = sim(linear_app(1000), nodes=1, depth=1, iters=4, params=params)
    two = sim(linear_app(1000), nodes=2, depth=1, iters=4, params=params)
    assert one.cycles == pytest.approx(3 * 1000 * 4)
    # 2 nodes, depth 1: same critical path + sync on every job
    assert two.cycles == pytest.approx(3 * (1000 + 500) * 4)


def test_cache_traffic_affects_cycles():
    def app(nbytes):
        b = AppBuilder()
        main = b.procedure("main")
        main.component("src", "costed_source", streams={"output": "a"},
                       params={"cycles": 100, "nbytes": nbytes})
        main.component("w", "costed_worker", streams={"input": "a", "output": "b"},
                       params={"cycles": 100, "nbytes": nbytes})
        main.component("snk", "costed_sink", streams={"input": "b"})
        return b

    small = sim(app(0), nodes=1, depth=1, iters=4, params=ZERO_OVERHEAD)
    big = sim(app(1 << 20), nodes=1, depth=1, iters=4, params=ZERO_OVERHEAD)
    assert big.cycles > small.cycles
    assert big.cache_stats.total_accesses > 0


def test_producer_consumer_same_core_reuses_cache():
    # With one node, the consumer reads what the producer just wrote ->
    # L1/L2 hits; with two nodes the consumer often runs on the other
    # core -> L2 at best.  Per-byte read cost must therefore not be lower
    # on two nodes.
    def app():
        b = AppBuilder()
        main = b.procedure("main")
        main.component("src", "costed_source", streams={"output": "a"},
                       params={"cycles": 100, "nbytes": 4096})
        main.component("w", "costed_worker", streams={"input": "a", "output": "b"},
                       params={"cycles": 100, "nbytes": 4096})
        main.component("snk", "costed_sink", streams={"input": "b"})
        return b

    one = sim(app(), nodes=1, depth=1, iters=6, params=ZERO_OVERHEAD)
    from repro.spacecake import AccessLevel

    l1_hits = one.cache_stats.accesses[AccessLevel.L1]
    assert l1_hits > 0


def test_utilization_bounds():
    result = sim(linear_app(1000), nodes=3, depth=5, iters=12, trace=True)
    assert 0.0 < result.utilization <= 1.0
    assert len(result.core_busy_cycles) == 3
    assert result.trace.events  # trace populated with virtual times


def test_more_nodes_than_parallelism_wastes_cores():
    result = sim(linear_app(1000), nodes=9, depth=1, iters=5,
                 params=ZERO_OVERHEAD)
    # depth=1 linear chain: exactly one job runs at a time
    assert result.utilization <= 1 / 9 + 1e-9


def test_simruntime_single_use():
    program = expand(linear_app().build(), PORTS)
    rt = SimRuntime(program, REGISTRY, nodes=1, max_iterations=1)
    rt.run()
    with pytest.raises(SimulationError, match="single-use"):
        rt.run()


def test_execute_mode_matches_threaded_results():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "a"},
                   params={"base": 5})
    main.component("dbl", "doubler", streams={"input": "a", "output": "b"})
    main.component("snk", "collector", streams={"input": "b"})
    program = expand(b.build(), PORTS)

    sim_result = SimRuntime(program, REGISTRY, nodes=3, pipeline_depth=4,
                            max_iterations=8, execute=True).run()
    thr_result = ThreadedRuntime(program, REGISTRY, nodes=3, pipeline_depth=4,
                                 max_iterations=8).run()
    assert (
        sim_result.components["snk"].ordered()
        == thr_result.components["snk"].ordered()
        == [(5 + k) * 2 for k in range(8)]
    )


# -- reconfiguration in virtual time ---------------------------------------------


def reconfig_app(period=6) -> AppBuilder:
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "costed_source", streams={"output": "a"},
                   params={"cycles": 1000})
    main.component("timer", "sim_timer",
                   params={"queue": "ui", "period": period, "event": "flip"})
    with main.manager("m", queue="ui") as mgr:
        mgr.on("flip", "toggle", option="extra")
        with main.option("extra", enabled=False, bypass=[("a", "b")]):
            main.component("x", "costed_worker",
                           streams={"input": "a", "output": "b"},
                           params={"cycles": 1000})
    main.component("snk", "costed_sink", streams={"input": "b"},
                   params={"cycles": 100})
    return b


def test_sim_reconfiguration_toggles():
    result = sim(reconfig_app(period=6), nodes=2, depth=3, iters=24)
    assert result.completed_iterations == 24
    assert result.reconfig_count >= 2
    assert result.events_handled >= 2


def test_reconfig_costs_cycles():
    static = sim(reconfig_app(period=1000), nodes=2, depth=3, iters=24)
    dynamic = sim(reconfig_app(period=6), nodes=2, depth=3, iters=24)
    assert dynamic.cycles > static.cycles


def test_reconfig_overhead_grows_with_nodes():
    """Paper Fig. 10: reconfig overhead increases with node count."""

    def overhead(nodes):
        b_static = reconfig_app(period=10 ** 9)
        b_dyn = reconfig_app(period=6)

        def with_slices(b):
            return b  # the simple app is enough for the trend

        static = sim(with_slices(b_static), nodes=nodes, depth=5, iters=48)
        dyn = sim(with_slices(b_dyn), nodes=nodes, depth=5, iters=48)
        return dyn.cycles / static.cycles - 1.0

    o1 = overhead(1)
    o4 = overhead(4)
    assert o4 >= o1 - 0.02  # allow tiny noise from scheduling detail
