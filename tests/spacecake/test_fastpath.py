"""Properties of the simulator fast path (JobPlan + batched cache).

The golden fixture (tests/bench) pins end-to-end equality with the
pre-optimization implementation; these tests pin the *invariants* the
fast path relies on, so a future change that breaks one fails with a
local, debuggable assertion instead of a whole-sweep cycle diff:

* a memoized :class:`JobPlan` always equals a fresh compilation against
  the current graph — checked on every single job of a reconfiguring
  run, so stale plans after a splice cannot hide;
* :meth:`CacheModel.access_traffic` is bit-identical to the unbatched
  per-bucket :meth:`CacheModel.access` loop it replaced;
* a reconfiguration stall enqueues exactly one dispatch wakeup no matter
  how many completions hit it.
"""

from __future__ import annotations

import pytest

from repro.apps import build_jpip, build_pip, make_program
from repro.components.registry import default_registry
from repro.spacecake import SimRuntime
from repro.spacecake.cache import CacheModel
from repro.spacecake.simulator import JobPlan


@pytest.fixture(scope="module")
def registry():
    return default_registry()


def _plan_fields(plan: JobPlan) -> tuple:
    return (
        plan.fixed_cycles,
        plan.overhead_cycles,
        plan.instances,
        plan.manager,
    )


@pytest.mark.parametrize("builder,frames,reconfigures", [
    (lambda: build_pip(2, reconfigurable=True, period=6), 24, True),
    (lambda: build_jpip(2), 6, False),
])
def test_memoized_plans_equal_fresh_compilation(
    registry, builder, frames, reconfigures
):
    """Every job's memoized plan == a plan compiled fresh at that moment.

    The PiP variant reconfigures every 6 frames, so the property is
    exercised across several graph rebuilds, not just at construction.
    """
    program = make_program(builder(), name="fastpath-prop")
    rt = SimRuntime(
        program, registry, nodes=4, pipeline_depth=5, max_iterations=frames
    )
    orig_job_cycles = rt._job_cycles
    checked = 0

    def checking_job_cycles(job, core):
        nonlocal checked
        plan = rt._plans[job.node_id]
        fresh = JobPlan.compile(
            rt.pg.graph.node(job.node_id),
            rt.cost_model,
            rt._overhead_cycles,
            rt.pg.aliases,
        )
        assert _plan_fields(fresh) == _plan_fields(plan), job.node_id
        checked += 1
        return orig_job_cycles(job, core)

    rt._job_cycles = checking_job_cycles
    result = rt.run()
    assert checked == result.jobs_executed > 0
    assert (result.reconfig_count > 0) == reconfigures


def test_plans_rebuilt_on_reconfigure(registry):
    """A splice must not leave plans for dead nodes or miss new ones."""
    program = make_program(
        build_pip(2, reconfigurable=True, period=6), name="fastpath-rebuild"
    )
    rt = SimRuntime(
        program, registry, nodes=4, pipeline_depth=5, max_iterations=24
    )
    seen_plan_sets = [frozenset(rt._plans)]
    orig = rt.on_reconfigure

    def recording(plans, resume):
        pg = orig(plans, resume)
        assert set(rt._plans) == set(pg.graph.node_ids)
        seen_plan_sets.append(frozenset(rt._plans))
        return pg

    rt.on_reconfigure = recording
    result = rt.run()
    assert result.reconfig_count > 0
    # The toggled option adds/removes the second PiP chain's nodes.
    assert len(set(seen_plan_sets)) > 1


def _drive(traffic, runs, batched: bool):
    """Run the same access pattern through one CacheModel either way."""
    cache = CacheModel(cores=4)
    totals = []
    keyset: set = set()
    for core, iteration in runs:
        base = 0.125  # non-trivial base: accumulation order must match
        if batched:
            base = cache.access_traffic(core, iteration, traffic, base, keyset)
        else:
            for stream, start, stop, nbytes, write in traffic:
                for bucket in range(start, stop):
                    key = (stream, iteration, bucket)
                    base += cache.access(core, key, nbytes, write=write)
                    keyset.add(key)
        totals.append(base)
    return totals, cache


def test_access_traffic_bit_identical_to_access_loop():
    traffic = (
        ("y", 0, 64, 330, True),      # unsliced full run
        ("u", 10, 13, 77, False),     # short sliced run
        ("y", 0, 64, 330, False),     # re-read: exercises L1/L2 hits
        ("halo", 62, 64, 4096, False),  # large part: exercises graded band
    )
    runs = [(0, 0), (1, 0), (0, 1), (3, 2), (0, 0)]
    got, cache_b = _drive(traffic, runs, batched=True)
    want, cache_u = _drive(traffic, runs, batched=False)
    # Bit-identical cycles (==, not approx) and identical model state.
    assert got == want
    assert cache_b.stats.accesses == cache_u.stats.accesses
    assert cache_b.stats.bytes_by_level == cache_u.stats.bytes_by_level
    assert cache_b._objects == cache_u._objects
    assert cache_b._core_clock == cache_u._core_clock
    assert cache_b._tile_clock == cache_u._tile_clock


def test_access_range_is_the_single_entry_form():
    cache_a = CacheModel(cores=2)
    cache_b = CacheModel(cores=2)
    ka: set = set()
    kb: set = set()
    a = cache_a.access_range(1, "s", 7, 3, 9, 128, True, 1.5, ka)
    b = cache_b.access_traffic(1, 7, (("s", 3, 9, 128, True),), 1.5, kb)
    assert a == b
    assert ka == kb == {("s", 7, bucket) for bucket in range(3, 9)}


def test_stall_enqueues_single_wakeup(registry):
    """N blocked dispatches during one splice window -> one heap event."""
    program = make_program(build_pip(1), name="fastpath-stall")
    rt = SimRuntime(
        program, registry, nodes=2, pipeline_depth=5, max_iterations=4
    )
    rt._stall_until = 1000.0
    before = rt.engine.pending
    for _ in range(5):
        rt._dispatch()
    assert rt.engine.pending == before + 1
    # A *later* stall deadline legitimately needs one more wakeup.
    rt._stall_until = 2000.0
    rt._dispatch()
    rt._dispatch()
    assert rt.engine.pending == before + 2
