"""Cost-profiled synthetic components for simulator tests."""

from __future__ import annotations

from repro.core.ports import PortSpec
from repro.core.program import ComponentInstance
from repro.hinch.component import Component, JobContext
from repro.spacecake.costmodel import JobCost, PortTraffic

from tests.hinch.helpers import REGISTRY as HINCH_REGISTRY


class CostedSource(Component):
    """Source with an explicit cycle cost and output traffic."""

    ports = PortSpec(outputs=("output",),
                     optional_params=("cycles", "nbytes", "limit"))

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        return JobCost(
            compute_cycles=float(instance.params.get("cycles", 1000)),
            traffic=(
                PortTraffic("output", int(instance.params.get("nbytes", 0)), True),
            ),
        )

    def run(self, job: JobContext) -> None:
        job.write("output", job.iteration)


class CostedWorker(Component):
    """Filter with explicit cycles; divides work across slice copies."""

    ports = PortSpec(inputs=("input",), outputs=("output",),
                     optional_params=("cycles", "nbytes"))

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        cycles = float(instance.params.get("cycles", 1000))
        nbytes = int(instance.params.get("nbytes", 0))
        if instance.slice is not None:
            _, total = instance.slice
            cycles /= total
            nbytes //= total
        return JobCost(
            compute_cycles=cycles,
            traffic=(
                PortTraffic("input", nbytes, False),
                PortTraffic("output", nbytes, True),
            ),
        )

    def run(self, job: JobContext) -> None:
        job.write("output", job.read("input"))


class CostedSink(Component):
    ports = PortSpec(inputs=("input",), optional_params=("cycles",))

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        return JobCost(compute_cycles=float(instance.params.get("cycles", 100)))

    def __init__(self, instance):
        super().__init__(instance)
        self.values: list = []

    def run(self, job: JobContext) -> None:
        self.values.append((job.iteration, job.read("input")))


class SimTimer(Component):
    """Portless control component: posts an event every ``period`` iters.

    ``always_execute`` makes it run even in cost-only simulations, so
    reconfiguration experiments work without functional data.
    """

    ports = PortSpec(optional_params=("queue", "period", "event"))
    always_execute = True

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        return JobCost(compute_cycles=50.0)

    def run(self, job: JobContext) -> None:
        period = int(self.param("period", 12))
        if (job.iteration + 1) % period == 0:
            job.post_event(self.param("queue", "ui"), self.param("event", "tick"))


REGISTRY = dict(HINCH_REGISTRY)
REGISTRY.update(
    {
        "costed_source": CostedSource,
        "costed_worker": CostedWorker,
        "costed_sink": CostedSink,
        "sim_timer": SimTimer,
    }
)
PORTS = {name: cls.ports for name, cls in REGISTRY.items()}
