"""Unit tests for the cost model and machine bookkeeping."""

from __future__ import annotations

import pytest

from repro.core.program import ComponentInstance
from repro.errors import SimulationError
from repro.spacecake import CostModel, CostParams, JobCost, Machine, MachineConfig, PortTraffic


def make_instance(class_name="unknown", params=None, slice=None):
    return ComponentInstance(
        instance_id="i", definition_id="i", class_name=class_name,
        params=params or {}, streams={}, slice=slice,
    )


def test_traffic_validation():
    with pytest.raises(SimulationError):
        PortTraffic("p", -1, True)
    with pytest.raises(SimulationError):
        JobCost(compute_cycles=-1)


def test_jobcost_byte_sums():
    cost = JobCost(
        compute_cycles=10,
        traffic=(
            PortTraffic("a", 100, False),
            PortTraffic("b", 50, False),
            PortTraffic("c", 70, True),
        ),
    )
    assert cost.bytes_read == 150
    assert cost.bytes_written == 70


def test_unknown_class_gets_default_cycles():
    model = CostModel({}, CostParams(default_job_cycles=1234.0))
    cost = model.job_cost(make_instance())
    assert cost.compute_cycles == 1234.0
    assert cost.traffic == ()


def test_profile_lookup_and_caching():
    calls = []

    class WithProfile:
        @classmethod
        def cost_profile(cls, instance):
            calls.append(instance.instance_id)
            return JobCost(compute_cycles=7.0)

    model = CostModel({"c": WithProfile})
    inst = make_instance("c")
    assert model.job_cost(inst).compute_cycles == 7.0
    model.job_cost(inst)
    assert calls == ["i"]  # cached per instance


def test_profile_none_falls_back():
    class NoneProfile:
        @classmethod
        def cost_profile(cls, instance):
            return None

    model = CostModel({"c": NoneProfile}, CostParams(default_job_cycles=5.0))
    assert model.job_cost(make_instance("c")).compute_cycles == 5.0


def test_overhead_depends_on_nodes():
    model = CostModel({}, CostParams(job_overhead_cycles=100,
                                     sync_overhead_cycles=40))
    assert model.overhead_cycles(nodes=1) == 100
    assert model.overhead_cycles(nodes=2) == 140


def test_params_scaled():
    params = CostParams().scaled(2.0)
    base = CostParams()
    assert params.job_overhead_cycles == base.job_overhead_cycles * 2
    assert params.default_job_cycles == base.default_job_cycles  # not scaled


# -- machine ------------------------------------------------------------------


def test_machine_acquire_release_fifo():
    m = Machine(MachineConfig(nodes=2))
    a = m.acquire_core()
    b = m.acquire_core()
    assert (a, b) == (0, 1)
    assert m.acquire_core() is None
    m.release_core(a, busy_cycles=10.0)
    assert m.acquire_core() == 0
    assert m.busy_cycles[0] == 10.0
    assert m.jobs_run[0] == 1


def test_machine_release_of_idle_core_rejected():
    m = Machine(MachineConfig(nodes=1))
    with pytest.raises(SimulationError):
        m.release_core(0, busy_cycles=1.0)


def test_machine_utilization():
    m = Machine(MachineConfig(nodes=2))
    core = m.acquire_core()
    m.release_core(core, busy_cycles=50.0)
    assert m.utilization(100.0) == pytest.approx(0.25)
    assert m.utilization(0.0) == 0.0
