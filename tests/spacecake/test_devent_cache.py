"""Unit tests for the discrete-event engine and the cache model."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.spacecake import AccessLevel, CacheConfig, CacheModel, EventEngine


# -- event engine -------------------------------------------------------------


def test_events_fire_in_time_order():
    engine = EventEngine()
    order = []
    engine.schedule(5.0, lambda: order.append("b"))
    engine.schedule(1.0, lambda: order.append("a"))
    engine.schedule(9.0, lambda: order.append("c"))
    end = engine.run()
    assert order == ["a", "b", "c"]
    assert end == 9.0


def test_simultaneous_events_fire_in_schedule_order():
    engine = EventEngine()
    order = []
    for i in range(5):
        engine.schedule(1.0, lambda i=i: order.append(i))
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_callbacks_can_schedule_more_events():
    engine = EventEngine()
    ticks = []

    def tick():
        ticks.append(engine.now)
        if len(ticks) < 4:
            engine.schedule(2.0, tick)

    engine.schedule(0.0, tick)
    end = engine.run()
    assert ticks == [0.0, 2.0, 4.0, 6.0]
    assert end == 6.0
    assert engine.events_processed == 4


def test_negative_delay_rejected():
    engine = EventEngine()
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    engine = EventEngine()
    engine.schedule(5.0, lambda: engine.schedule_at(1.0, lambda: None))
    with pytest.raises(SimulationError):
        engine.run()


def test_run_until_bound():
    engine = EventEngine()
    fired = []
    engine.schedule(1.0, lambda: fired.append(1))
    engine.schedule(10.0, lambda: fired.append(2))
    engine.run(until=5.0)
    assert fired == [1]
    assert engine.pending == 1
    assert engine.now == 5.0


# -- cache model -----------------------------------------------------------------


def cfg() -> CacheConfig:
    return CacheConfig(
        l1_bytes=1000,
        l2_bytes=10_000,
        l1_cycles_per_byte=0.1,
        l2_cycles_per_byte=0.5,
        mem_cycles_per_byte=2.0,
    )


def test_first_access_is_memory():
    cache = CacheModel(2, cfg())
    assert cache.classify(0, "obj") is AccessLevel.MEM
    cycles = cache.access(0, "obj", 100)
    assert cycles == 200.0  # 100 B * 2.0 cyc/B


def test_immediate_reuse_same_core_hits_l1():
    cache = CacheModel(2, cfg())
    cache.access(0, "obj", 100)
    assert cache.classify(0, "obj") is AccessLevel.L1
    assert cache.access(0, "obj", 100) == pytest.approx(10.0)


def test_reuse_from_other_core_hits_l2():
    cache = CacheModel(2, cfg())
    cache.access(0, "obj", 100)
    assert cache.classify(1, "obj") is AccessLevel.L2
    assert cache.access(1, "obj", 100) == pytest.approx(50.0)


def test_l1_eviction_by_footprint():
    cache = CacheModel(1, cfg())
    cache.access(0, "obj", 100)
    cache.access(0, "filler", 2000)  # exceeds l1_bytes=1000
    assert cache.classify(0, "obj") is AccessLevel.L2  # still within L2 window


def test_l2_eviction_by_tile_footprint():
    cache = CacheModel(2, cfg())
    cache.access(0, "obj", 100)
    # 6k through each core: tile clock advances 12k > l2_bytes
    cache.access(0, "filler0", 6000)
    cache.access(1, "filler1", 6000)
    assert cache.classify(0, "obj") is AccessLevel.MEM


def test_access_refreshes_residency():
    cache = CacheModel(1, cfg())
    cache.access(0, "obj", 100)
    cache.access(0, "filler", 900)
    cache.access(0, "obj", 100)  # refresh: back at top of the stack
    cache.access(0, "filler2", 900)
    assert cache.classify(0, "obj") is AccessLevel.L1


def test_write_allocates_for_writer_core():
    cache = CacheModel(2, cfg())
    cache.access(0, "obj", 100, write=True)
    assert cache.classify(0, "obj") is AccessLevel.L1
    assert cache.classify(1, "obj") is AccessLevel.L2


def test_evict_forgets_object():
    cache = CacheModel(1, cfg())
    cache.access(0, "obj", 100)
    cache.evict("obj")
    assert cache.classify(0, "obj") is AccessLevel.MEM
    assert cache.resident_objects == 0


def test_stats_accounting():
    cache = CacheModel(1, cfg())
    cache.access(0, "a", 100)  # MEM
    cache.access(0, "a", 100)  # L1
    cache.access(0, "b", 4000)  # MEM, evicts a from L1 window
    cache.access(0, "a", 100)  # L2
    stats = cache.stats
    assert stats.accesses[AccessLevel.MEM] == 2
    assert stats.accesses[AccessLevel.L1] == 1
    assert stats.accesses[AccessLevel.L2] == 1
    assert stats.total_accesses == 4
    assert stats.hit_rate(AccessLevel.MEM) == pytest.approx(0.5)
    assert stats.bytes_by_level[AccessLevel.MEM] == 4100


def test_invalid_core_rejected():
    cache = CacheModel(1, cfg())
    with pytest.raises(SimulationError):
        cache.access(3, "x", 10)


def test_invalid_cores_rejected():
    with pytest.raises(SimulationError):
        CacheModel(0, cfg())
