"""Tests for heterogeneous core speeds (Cell direction, paper §6)."""

from __future__ import annotations

import pytest

from repro.core import AppBuilder, expand
from repro.errors import SimulationError
from repro.spacecake import CostParams, MachineConfig, SimRuntime

from tests.spacecake.helpers import PORTS, REGISTRY
from tests.spacecake.test_simulator import ZERO_OVERHEAD, linear_app


def sim_machine(machine, *, depth=1, iters=6, params=ZERO_OVERHEAD):
    program = expand(linear_app(1000).build(), PORTS)
    return SimRuntime(
        program, REGISTRY, nodes=machine.nodes, pipeline_depth=depth,
        max_iterations=iters, cost_params=params, machine=machine,
    ).run()


def test_speed_config_validation():
    with pytest.raises(SimulationError, match="entries"):
        MachineConfig(nodes=2, core_speeds=(1.0,))
    with pytest.raises(SimulationError, match="> 0"):
        MachineConfig(nodes=2, core_speeds=(1.0, 0.0))
    assert MachineConfig(nodes=2, core_speeds=(1.0, 4.0)).speed(1) == 4.0
    assert MachineConfig(nodes=2).speed(1) == 1.0


def test_uniform_speed_matches_default():
    base = sim_machine(MachineConfig(nodes=2))
    uniform = sim_machine(MachineConfig(nodes=2, core_speeds=(1.0, 1.0)))
    assert base.cycles == uniform.cycles


def test_faster_cores_finish_sooner():
    slow = sim_machine(MachineConfig(nodes=2))
    fast = sim_machine(MachineConfig(nodes=2, core_speeds=(2.0, 2.0)))
    # pure compute, zero traffic: exactly 2x
    assert fast.cycles == pytest.approx(slow.cycles / 2)


def test_mixed_speeds_between_extremes():
    slow = sim_machine(MachineConfig(nodes=2), depth=5, iters=12)
    fast = sim_machine(MachineConfig(nodes=2, core_speeds=(4.0, 4.0)),
                       depth=5, iters=12)
    mixed = sim_machine(MachineConfig(nodes=2, core_speeds=(4.0, 1.0)),
                        depth=5, iters=12)
    assert fast.cycles < mixed.cycles < slow.cycles


def test_memory_latency_not_scaled_by_speed():
    """A vector engine does not speed up DRAM: with huge traffic and zero
    compute, core speed must not change the cycle count much."""
    def app(nbytes):
        b = AppBuilder()
        main = b.procedure("main")
        main.component("src", "costed_source", streams={"output": "a"},
                       params={"cycles": 1, "nbytes": nbytes})
        main.component("snk", "costed_sink", streams={"input": "a"},
                       params={"cycles": 1})
        return b

    program = expand(app(1 << 20).build(), PORTS)

    def run(speeds):
        return SimRuntime(
            program, REGISTRY, nodes=1, pipeline_depth=1, max_iterations=4,
            cost_params=ZERO_OVERHEAD,
            machine=MachineConfig(nodes=1, core_speeds=speeds),
        ).run().cycles

    assert run((8.0,)) == pytest.approx(run((1.0,)), rel=0.01)


def test_nodes_machine_mismatch_rejected():
    program = expand(linear_app().build(), PORTS)
    with pytest.raises(SimulationError, match="disagree"):
        SimRuntime(program, REGISTRY, nodes=3, max_iterations=1,
                   machine=MachineConfig(nodes=2))
