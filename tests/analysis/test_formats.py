"""Format grammar (core.formats) and the X5xx reconciliation pass."""

from __future__ import annotations

import dataclasses
from fractions import Fraction

import pytest

from repro.analysis import lint_string
from repro.analysis.diagnostics import Severity
from repro.core.formats import (
    FormatError,
    Unifier,
    parse_format,
)

from .conftest import sink, source, wrap


# ---------------------------------------------------------------------------
# grammar: parsing
# ---------------------------------------------------------------------------


def test_parse_full_declaration():
    decl = parse_format(
        "kind=plane dtype=uint8 shape=height,width colorspace=y block=8"
    )
    assert decl.kind == "plane"
    assert decl.dtype == "uint8"
    assert decl.colorspace == "y"
    assert decl.block == 8
    assert len(decl.dims) == 2


def test_parse_rejects_unknown_kind():
    with pytest.raises(FormatError, match="kind"):
        parse_format("kind=bogus")


def test_parse_rejects_empty_dimension():
    with pytest.raises(FormatError):
        parse_format("shape=height,,width")


def test_parse_rejects_scaled_wildcard():
    with pytest.raises(FormatError):
        parse_format("shape=*/2,width")


def test_numeric_scale_renders_roundtrip():
    decl = parse_format("shape=height/2,width*3")
    assert decl.dims[0].render() == "height/2"
    assert decl.dims[1].render() == "width*3"


# ---------------------------------------------------------------------------
# grammar: instantiation
# ---------------------------------------------------------------------------


def test_instantiate_resolves_params_and_scales():
    decl = parse_format("shape=height/2,width*2")
    term = decl.instantiate({"height": 16, "width": 8}, "c")
    assert term.dims[0] == ("const", 8)
    assert term.dims[1] == ("const", 16)


def test_instantiate_param_name_scale():
    decl = parse_format("shape=height/factor,width/factor")
    term = decl.instantiate({"height": 16, "width": 8, "factor": 4}, "c")
    assert term.dims[0] == ("const", 4)
    assert term.dims[1] == ("const", 2)


def test_instantiate_param_scale_non_integral_is_error():
    decl = parse_format("shape=height/factor")
    with pytest.raises(FormatError, match="not.*integ|integral|divisible"):
        decl.instantiate({"height": 10, "factor": 4}, "c")


def test_instantiate_param_scale_bad_value_is_error():
    decl = parse_format("shape=height/factor")
    with pytest.raises(FormatError, match="factor"):
        decl.instantiate({"height": 10, "factor": "three"}, "c")
    with pytest.raises(FormatError, match="factor"):
        decl.instantiate({"height": 10}, "c")


def test_instantiate_odd_halving_is_error():
    decl = parse_format("shape=height/2")
    with pytest.raises(FormatError):
        decl.instantiate({"height": 9}, "c")


def test_unresolved_name_becomes_scoped_variable():
    decl = parse_format("shape=rows,cols")
    term = decl.instantiate({}, "mydef")
    assert term.dims[0][0] == "var"
    assert term.dims[0][1][0] == "mydef.rows"


# ---------------------------------------------------------------------------
# grammar: unification
# ---------------------------------------------------------------------------


def test_unify_ratio_propagation():
    u = Unifier()
    # H/2 == 8  =>  H == 16
    assert u.unify_dim(("var", ("H", Fraction(1, 2))), ("const", 8)) is None
    assert u.resolve_dim(("var", ("H", Fraction(1)))) == 16


def test_unify_symbolic_conflict():
    u = Unifier()
    # H == H/2 has no positive integral solution
    c = u.unify_dim(("var", ("H", Fraction(1))), ("var", ("H", Fraction(1, 2))))
    assert c is not None and c.symbolic


def test_unify_concrete_conflict():
    u = Unifier()
    c = u.unify_dim(("const", 8), ("const", 16))
    assert c is not None and not c.symbolic


# ---------------------------------------------------------------------------
# the X5xx pass (negative fixtures, one per code)
# ---------------------------------------------------------------------------


def _line_of(text: str, needle: str) -> int:
    for i, row in enumerate(text.splitlines(), start=1):
        if needle in row:
            return i
    raise AssertionError(f"{needle!r} not in spec")


def by_code(diags, code):
    return [d for d in diags if d.code == code]


def test_clean_pipeline_has_no_format_diagnostics(ports):
    diags = lint_string(wrap(source("s", "raw") + sink("k", "raw")), ports=ports)
    assert not [d for d in diags if d.code.startswith("X5")]


def test_x501_concrete_shape_mismatch_points_at_binding(ports):
    text = wrap(
        source("s", "raw")
        + '<component name="k" class="plane_sink">'
          '<stream port="input" ref="raw"/>'
          '<param name="width" value="16"/><param name="height" value="16"/>'
          "</component>\n"
    )
    found = by_code(lint_string(text, ports=ports), "X501")
    assert found, "expected an X501 producer/consumer mismatch"
    d = found[0]
    assert d.severity == Severity.ERROR
    assert "dimension" in d.message or "mismatch" in d.message
    assert d.line == _line_of(text, 'class="plane_sink"')


def test_x502_unsolvable_symbolic_dimension(ports):
    # height=8 cannot be divided by 3 integrally: the term has no solution
    text = wrap(
        source("s", "raw")
        + '<component name="k" class="plane_sink">'
          '<stream port="input" ref="raw" '
          'format="kind=plane shape=height/3,width"/>'
          '<param name="width" value="8"/><param name="height" value="8"/>'
          "</component>\n"
    )
    found = by_code(lint_string(text, ports=ports), "X502")
    assert found and found[0].severity == Severity.ERROR
    assert found[0].line == _line_of(text, "height/3")


def test_x503_block_must_divide_sliced_height(ports):
    body = (
        source("s", "raw")
        + '<parallel shape="slice" n="2"><parblock>'
          '<component name="b" class="blur_h_field">'
          '<stream port="input" ref="raw"/>'
          '<stream port="output" ref="out" '
          'format="kind=plane shape=height,width dtype=uint8 block=3"/>'
          '<param name="width" value="8"/><param name="height" value="8"/>'
          '<param name="size" value="3"/>'
          "</component>"
          "</parblock></parallel>\n"
        + sink("k", "out")
    )
    text = wrap(body)
    found = by_code(lint_string(text, ports=ports), "X503")
    assert found and found[0].severity == Severity.ERROR
    assert "block" in found[0].message and "8" in found[0].message


def test_x504_convertible_dtype_mismatch_names_converter(ports):
    text = wrap(
        source("s", "raw")
        + '<component name="k" class="plane_sink">'
          '<stream port="input" ref="raw" '
          'format="kind=plane shape=height,width dtype=float32"/>'
          '<param name="width" value="8"/><param name="height" value="8"/>'
          "</component>\n"
    )
    diags = lint_string(text, ports=ports)
    found = by_code(diags, "X504")
    assert found and found[0].severity == Severity.WARNING
    assert "convert_plane" in found[0].message
    # convertible means *no* hard X501 for the same stream
    assert not by_code(diags, "X501")


def test_x504_lossy_direction_is_flagged_as_lossy(ports):
    # a float64 producer feeding the uint8-declared sink loses information
    text = wrap(
        source("s", "raw")
        + '<component name="mid" class="blur_h_field">'
          '<stream port="input" ref="raw"/>'
          '<stream port="output" ref="out" '
          'format="kind=plane shape=height,width dtype=float64"/>'
          '<param name="width" value="8"/><param name="height" value="8"/>'
          '<param name="size" value="3"/>'
          "</component>\n"
        + sink("k", "out")
    )
    found = by_code(lint_string(text, ports=ports), "X504")
    assert found and "lossy" in found[0].message


def test_x505_undeclared_port_degrades_to_inference(ports):
    # Strip the sink's declarations: the pass must *inform*, never error.
    stripped = dict(ports)
    stripped["plane_sink"] = dataclasses.replace(
        ports["plane_sink"], formats={}
    )
    diags = lint_string(
        wrap(source("s", "raw") + sink("k", "raw")), ports=stripped
    )
    fives = [d for d in diags if d.code.startswith("X5")]
    assert fives and all(d.code == "X505" for d in fives)
    assert all(d.severity == Severity.INFO for d in fives)


def test_x119_malformed_override(ports):
    text = wrap(
        source("s", "raw")
        + '<component name="k" class="plane_sink">'
          '<stream port="input" ref="raw" format="kind=nonsense"/>'
          '<param name="width" value="8"/><param name="height" value="8"/>'
          "</component>\n"
    )
    found = by_code(lint_string(text, ports=ports), "X119")
    assert found and found[0].severity == Severity.ERROR
    assert found[0].line == _line_of(text, "nonsense")


def test_shared_variable_threads_across_component_ports(ports):
    # blur declares dtype=?T on input and output: a float32 override on
    # the *input* stream propagates through to the output stream.
    from repro.analysis import solve_formats
    from repro.core import expand, parse_string

    text = wrap(
        source("s", "raw")
        + '<component name="mid" class="blur_h_field">'
          '<stream port="input" ref="raw" '
          'format="kind=plane shape=height,width dtype=uint8"/>'
          '<stream port="output" ref="out"/>'
          '<param name="width" value="8"/><param name="height" value="8"/>'
          '<param name="size" value="3"/>'
          "</component>\n"
        + sink("k", "out")
    )
    program = expand(parse_string(text), ports, name="t")
    (solution,) = solve_formats(program)
    assert solution.streams["out"].dtype == "uint8"
    assert solution.streams["out"].shape == (8, 8)
