"""Engine-level tests: configuration enumeration, library API contract."""

from __future__ import annotations

import pytest

from repro.analysis import lint_spec
from repro.analysis.engine import reachable_configurations
from repro.apps import build_blur, build_jpip, build_pip
from repro.core.expander import expand
from repro.core.validator import validate
from repro.errors import ValidationError

from .conftest import wrap


def test_blur35_reachable_configurations(ports):
    """The toggle pair flips atomically: exactly two reachable configs."""
    program = expand(build_blur(reconfigurable=True), ports)
    configs = reachable_configurations(program)
    assert len(configs) == 2
    default, other = configs
    assert list(default.values()).count(True) == 1
    # the switch event flips both options together
    assert all(other[k] != default[k] for k in default)


def test_enumeration_is_capped(ports):
    program = expand(build_pip(n_pips=2, reconfigurable=True), ports)
    assert len(reachable_configurations(program, cap=1)) == 1


@pytest.mark.parametrize(
    "builder,kwargs",
    [
        (build_blur, dict(reconfigurable=True)),
        (build_pip, dict(n_pips=2, reconfigurable=True)),
        (build_jpip, dict(n_pips=2, reconfigurable=True)),
    ],
)
def test_reconfigurable_apps_have_no_safety_errors(builder, kwargs, ports, classes):
    diagnostics = lint_spec(builder(**kwargs), ports=ports, classes=classes)
    assert not [d for d in diagnostics if d.severity.name == "ERROR"]


def test_validate_still_raises_with_all_errors(ports):
    """Library API contract: validate() raises, message lists every error."""
    text = wrap(
        '<component name="x" class="no_such_class">'
        '<stream port="p" ref="s"/></component>\n'
        '<call procedure="missing"/>\n'
    )
    from repro.core.parser import parse_string

    with pytest.raises(ValidationError) as exc_info:
        validate(parse_string(text), registry=ports)
    message = str(exc_info.value)
    assert "2 validation errors" in message
    assert "no_such_class" in message
    assert "missing" in message
    assert all(d.code for d in exc_info.value.diagnostics)


def test_lint_without_ports_runs_ast_passes_only(ports):
    text = wrap(
        '<component name="x" class="anything">'
        '<stream port="p" ref="s"/></component>\n',
        extra_procs=(
            '  <procedure name="orphan"><body>'
            '<component name="y" class="anything2">'
            '<stream port="p" ref="t"/></component>'
            "</body></procedure>\n"
        ),
    )
    from repro.core.parser import parse_string

    codes = {d.code for d in lint_spec(parse_string(text))}
    assert "X201" in codes  # AST liveness ran
    assert "X114" not in codes  # class checks need the registry
