"""CLI tests: ``xspcl lint`` (and the collect-all ``validate``)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

from .conftest import CLEAN, sink, source, wrap

MULTI_ERROR = wrap(
    '<component name="x" class="no_such_class">'
    '<stream port="p" ref="s"/></component>\n'
    '<call procedure="missing"/>\n'
)

WARN_ONLY = wrap(  # dead stream: warning but no error
    source("src", "s") + sink("snk", "s") + source("src2", "dead")
)


@pytest.fixture()
def spec_file(tmp_path):
    def write(text, name="spec.xml"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


def test_lint_clean_spec_exits_zero(spec_file, capsys):
    assert main(["lint", spec_file(CLEAN)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_lint_errors_exit_nonzero_and_list_all(spec_file, capsys):
    assert main(["lint", spec_file(MULTI_ERROR)]) == 1
    out = capsys.readouterr().out
    assert "[X114]" in out
    assert "[X103]" in out


def test_lint_fail_on_warning(spec_file, capsys):
    path = spec_file(WARN_ONLY)
    assert main(["lint", path]) == 0
    capsys.readouterr()
    assert main(["lint", path, "--fail-on", "warning"]) == 1
    assert "[X204]" in capsys.readouterr().out


def test_lint_json_format(spec_file, capsys):
    assert main(["lint", spec_file(WARN_ONLY), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 0
    assert payload["summary"]["warnings"] >= 1
    codes = [d["code"] for d in payload["diagnostics"]]
    assert "X204" in codes
    assert all(d["path"] for d in payload["diagnostics"])


def test_lint_multiple_files(spec_file, capsys):
    a = spec_file(CLEAN, "a.xml")
    b = spec_file(MULTI_ERROR, "b.xml")
    assert main(["lint", a, b]) == 1
    out = capsys.readouterr().out
    assert "b.xml" in out


def test_lint_parse_error_is_x001(spec_file, capsys):
    assert main(["lint", spec_file("<xspcl><procedure")]) == 1
    assert "[X001]" in capsys.readouterr().out


def test_lint_no_registry_skips_graph_checks(spec_file, capsys):
    custom = wrap(
        '<component name="x" class="my_custom_thing">'
        '<stream port="p" ref="s"/></component>\n'
    )
    assert main(["lint", spec_file(custom), "--no-registry"]) == 0


def test_lint_show_formats_json(spec_file, capsys):
    path = spec_file(CLEAN)
    assert main(["lint", path, "--format", "json", "--show-formats"]) == 0
    payload = json.loads(capsys.readouterr().out)
    (solutions,) = [payload["formats"][path]]
    streams = solutions[0]["streams"]
    assert streams["raw"]["kind"] == "plane"
    assert streams["raw"]["dtype"] == "uint8"
    assert streams["raw"]["shape"] == [8, 8]
    assert streams["raw"]["declared"] is True


def test_lint_show_formats_text(spec_file, capsys):
    assert main(["lint", spec_file(CLEAN), "--show-formats"]) == 0
    out = capsys.readouterr().out
    assert "solved formats" in out
    assert "dtype=uint8" in out


def test_mismatch_fixture_fails_before_any_runtime(capsys):
    from pathlib import Path

    fixture = Path(__file__).parent / "fixtures" / "format_mismatch.xml"
    assert main(["lint", str(fixture), "--fail-on", "error"]) == 1
    assert "[X501]" in capsys.readouterr().out


def test_validate_reports_every_error(spec_file, capsys):
    assert main(["validate", spec_file(MULTI_ERROR)]) == 1
    err = capsys.readouterr().err
    assert "[X114]" in err
    assert "[X103]" in err
    assert "2 validation error(s)" in err
