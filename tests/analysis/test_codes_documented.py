"""docs/lint.md must document every diagnostic code (and nothing stale)."""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.diagnostics import CODES, FAMILIES

DOCS = Path(__file__).resolve().parents[2] / "docs" / "lint.md"


def test_every_code_has_a_docs_section():
    text = DOCS.read_text(encoding="utf-8")
    documented = set(re.findall(r"^###\s+(X\d{3})\b", text, flags=re.M))
    missing = set(CODES) - documented
    stale = documented - set(CODES)
    assert not missing, f"codes missing from docs/lint.md: {sorted(missing)}"
    assert not stale, f"docs/lint.md documents retired codes: {sorted(stale)}"


def test_docs_mention_every_family():
    text = DOCS.read_text(encoding="utf-8").lower()
    for family in FAMILIES:
        assert family in text


def test_docs_state_default_severities():
    """Each section heading carries the code's default severity."""
    text = DOCS.read_text(encoding="utf-8")
    for code, info in CODES.items():
        m = re.search(rf"^###\s+{code}\b.*$", text, flags=re.M)
        assert m is not None
        assert str(info.severity) in m.group(0).lower(), (
            f"{code} heading should mention severity {info.severity}"
        )
