"""Shipped specifications and builders lint clean.

"Clean" means: no errors, and any warnings/infos are from the documented,
intentional set — X304 on the Blur crossdep region (the paper deliberately
uses a non-SP halo exchange; docs/lint.md explains why it stays) and X401
fusion hints on linear decode chains (the sequential baselines exist to
measure exactly that fusion).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_file, lint_spec
from repro.apps import (
    build_blur,
    build_blur_sequential,
    build_jpip,
    build_jpip_sequential,
    build_pip,
    build_pip_sequential,
)

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples" / "specs").glob("*.xml")
)

#: intentional, documented diagnostics (see docs/lint.md)
ALLOWED = {"X304", "X401"}


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_specs_lint_clean(path, ports, classes):
    diagnostics = lint_file(path, ports=ports, classes=classes)
    assert not [d for d in diagnostics if d.severity.name == "ERROR"]
    unexpected = {d.code for d in diagnostics} - ALLOWED
    assert not unexpected, [d.format() for d in diagnostics]


BUILDERS = [
    (build_blur, {}),
    (build_blur, dict(size=5)),
    (build_blur, dict(reconfigurable=True)),
    (build_blur_sequential, {}),
    (build_pip, {}),
    (build_pip, dict(n_pips=2, reconfigurable=True)),
    (build_pip_sequential, {}),
    (build_jpip, {}),
    (build_jpip, dict(n_pips=2, reconfigurable=True)),
    (build_jpip_sequential, {}),
]


@pytest.mark.parametrize(
    "builder,kwargs", BUILDERS,
    ids=lambda v: v.__name__ if callable(v) else repr(v),
)
def test_builder_specs_lint_clean(builder, kwargs, ports, classes):
    diagnostics = lint_spec(builder(**kwargs), ports=ports, classes=classes)
    assert not [d for d in diagnostics if d.severity.name == "ERROR"]
    unexpected = {d.code for d in diagnostics} - ALLOWED
    assert not unexpected, [d.format() for d in diagnostics]


def test_examples_directory_is_nonempty():
    assert len(EXAMPLES) >= 5
