"""Solver/runtime parity: solved formats == observed buffer geometry.

The acceptance bar for the X5xx pass: for every reachable configuration
of the shipped applications, the solver's per-stream plane formats must
be bit-identical to what the runtimes actually allocate — on both the
threaded and the process backend.
"""

from __future__ import annotations

import sys

import pytest

from repro.analysis import solve_formats
from repro.analysis.engine import reachable_configurations
from repro.analysis.formats import runtime_expectations
from repro.apps import build_blur, build_jpip, build_pip, make_program
from repro.components.registry import default_registry
from repro.hinch import ProcessRuntime, ThreadedRuntime

REG = default_registry()

#: (name, spec factory) — small geometries, every shipped app shape,
#: including the reconfigurable variants (two reachable configs each).
APPS = {
    "pip": lambda: build_pip(1, width=64, height=48, factor=4, slices=2,
                             frames=2),
    "pip12": lambda: build_pip(2, width=64, height=48, factor=4, slices=2,
                               frames=2, reconfigurable=True, period=50),
    "blur35": lambda: build_blur(reconfigurable=True, period=50, width=48,
                                 height=36, slices=3, frames=2),
    "jpip12": lambda: build_jpip(2, width=64, height=48, pip_height=48,
                                 factor=4, slices=3, frames=2,
                                 reconfigurable=True, period=50),
}


def _programs_and_configs():
    for name, factory in APPS.items():
        program = make_program(factory(), name=name)
        for states in reachable_configurations(program):
            yield pytest.param(program, dict(states), id=f"{name}-{states}")


CASES = list(_programs_and_configs())


def _check_parity(program, states, runtime) -> None:
    expected = runtime_expectations(program, runtime.pg)
    assert expected, "solver produced no concrete plane expectations"
    observed = runtime.streams.observed_formats()
    for name, (shape, dtype) in expected.items():
        got = observed.get(name)
        assert got is not None, f"expected stream {name!r} never written"
        kind, got_shape, got_dtype = got
        assert kind == "plane", (name, got)
        assert got_shape == tuple(shape), (name, got, shape)
        assert got_dtype == str(dtype), (name, got, dtype)
    # and the lint-facing table agrees with the runtime-facing one
    for solution in solve_formats(program):
        if solution.option_states != states:
            continue
        for name, (shape, dtype) in expected.items():
            sol = solution.streams[name]
            assert tuple(sol.shape) == tuple(shape)
            assert sol.dtype == str(dtype)
        break
    else:
        raise AssertionError(f"no solver solution for {states}")


@pytest.mark.parametrize("program,states", CASES)
def test_threaded_parity(program, states):
    rt = ThreadedRuntime(program, REG, nodes=2, max_iterations=3,
                         option_states=states)
    rt.run()
    _check_parity(program, states, rt)


@pytest.mark.skipif(sys.platform == "win32", reason="fork-based backend")
@pytest.mark.parametrize("program,states", CASES)
def test_process_parity(program, states):
    rt = ProcessRuntime(program, REG, workers=2, max_iterations=3,
                        option_states=states)
    rt.run()
    _check_parity(program, states, rt)
