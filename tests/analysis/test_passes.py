"""Per-code trigger / non-trigger tests for every analysis pass.

Each case is a pair of minimal specifications: one that must raise the
diagnostic and a close sibling that must not.  Assertions are on the
specific code only — sibling diagnostics (e.g. the X401 fusion hint on
any linear pipeline) are allowed.
"""

from __future__ import annotations

import pytest

from repro.analysis import lint_string
from repro.analysis.diagnostics import Severity

from .conftest import CLEAN, blur, codes_of, sink, source, timer, wrap

# -- building blocks for the reconfiguration cases --------------------------

TOGGLE_PAIR = wrap(
    source("src", "raw")
    + '<manager name="mgr" queue="ui">\n'
    + '<on event="e" action="toggle" option="o3"/>\n'
    + '<on event="e" action="toggle" option="o5"/>\n'
    + "<body>\n"
    + '<option name="o3" enabled="true">\n'
    + blur("b3", "raw", "out", size=3)
    + "</option>\n"
    + '<option name="o5" enabled="false">\n'
    + blur("b5", "raw", "out", size=5)
    + "</option>\n"
    + "</body>\n"
    + "</manager>\n"
    + sink("snk", "out")
    + timer()
)

TOGGLE_PAIR_NO_TIMER = TOGGLE_PAIR.replace(timer(), "")

#: Two managers whose forward handlers bounce event "e" between their
#: queues forever (X405).
FORWARD_CYCLE = wrap(
    source("src", "raw")
    + '<manager name="m1" queue="q1">\n'
    + '<on event="e" action="forward" target="q2"/>\n'
    + "<body>\n" + blur("b1", "raw", "mid") + "</body>\n"
    + "</manager>\n"
    + '<manager name="m2" queue="q2">\n'
    + '<on event="e" action="forward" target="q1"/>\n'
    + "<body>\n" + blur("b2", "mid", "out") + "</body>\n"
    + "</manager>\n"
    + sink("snk", "out")
    + timer("q1")
)


def bypassed_option(bypasses: str) -> str:
    return wrap(
        source("src", "raw")
        + '<manager name="mgr" queue="ui">\n'
        + '<on event="e" action="toggle" option="opt"/>\n'
        + "<body>\n"
        + '<option name="opt" enabled="true">\n'
        + blur("b", "raw", "out")
        + bypasses
        + "</option>\n"
        + "</body>\n"
        + "</manager>\n"
        + sink("snk", "out")
        + timer()
    )


def helper_spec(helper_body: str, formals: str, call_args: str) -> str:
    extra = (
        '  <procedure name="helper">\n'
        f"    <params>{formals}</params>\n"
        "    <body>\n"
        f"{helper_body}"
        "    </body>\n"
        "  </procedure>\n"
    )
    body = (
        source("src", "s")
        + f'<call procedure="helper" name="h">{call_args}</call>\n'
    )
    return wrap(body, extra_procs=extra)


def sliced_pipeline(n: int, shape: str = "slice") -> str:
    if shape == "slice":  # slice allows exactly one parblock
        inner = ("<parblock>\n" + blur("h", "raw", "mid")
                 + blur("v", "mid", "out") + "</parblock>\n")
    else:
        inner = ("<parblock>\n" + blur("h", "raw", "mid") + "</parblock>\n"
                 "<parblock>\n" + blur("v", "mid", "out") + "</parblock>\n")
    return wrap(
        source("src", "raw")
        + f'<parallel shape="{shape}" n="{n}">\n'
        + inner
        + "</parallel>\n"
        + sink("snk", "out")
    )


#: source -> three parallel blurs -> sink: every node branches, no chain.
DIAMOND = wrap(
    '<component name="src" class="video_source">'
    '<stream port="y" ref="sy"/><stream port="u" ref="su"/>'
    '<stream port="v" ref="sv"/>'
    '<param name="width" value="8"/><param name="height" value="8"/>'
    "</component>\n"
    '<parallel shape="task">\n'
    "<parblock>\n" + blur("by", "sy", "ty") + "</parblock>\n"
    "<parblock>\n" + blur("bu", "su", "tu") + "</parblock>\n"
    "<parblock>\n" + blur("bv", "sv", "tv") + "</parblock>\n"
    "</parallel>\n"
    '<component name="snk" class="video_sink">'
    '<stream port="y" ref="ty"/><stream port="u" ref="tu"/>'
    '<stream port="v" ref="tv"/>'
    '<param name="width" value="8"/><param name="height" value="8"/>'
    "</component>\n"
)


CASES = {
    # -- front end / validation ---------------------------------------------
    "X001": (
        "<xspcl><procedure name='main'><body>",  # truncated document
        CLEAN,
    ),
    "X101": (
        wrap("", extra_procs=(
            '  <procedure name="helper"><body>'
            + source("s1", "x")
            + "</body></procedure>\n"
        )).replace('  <procedure name="main">\n    <body>\n    </body>\n'
                   "  </procedure>\n", ""),
        CLEAN,
    ),
    "X114": (
        wrap('<component name="x" class="no_such_class">'
             '<stream port="p" ref="s"/></component>\n'),
        CLEAN,
    ),
    "X118": (
        helper_spec(
            '<parallel shape="slice" n="${k}"><parblock>'
            + blur("c", "${s}", "dead")
            + "</parblock></parallel>\n",
            '<stream name="s"/><param name="k" default="0"/>',
            '<stream name="s" ref="s"/>',
        ),
        helper_spec(
            '<parallel shape="slice" n="${k}"><parblock>'
            + blur("c", "${s}", "dead")
            + "</parblock></parallel>\n",
            '<stream name="s"/><param name="k" default="2"/>',
            '<stream name="s" ref="s"/>',
        ),
    ),
    # -- liveness / dead flow -----------------------------------------------
    "X201": (
        wrap(
            source("src", "raw") + sink("snk", "raw"),
            extra_procs=(
                '  <procedure name="orphan"><body>'
                + source("s1", "x")
                + "</body></procedure>\n"
            ),
        ),
        CLEAN,
    ),
    "X202": (
        helper_spec(sink("c", "nowhere"), '<stream name="s"/>',
                    '<stream name="s" ref="s"/>'),
        helper_spec(sink("c", "${s}"), '<stream name="s"/>',
                    '<stream name="s" ref="s"/>'),
    ),
    "X203": (
        helper_spec(sink("c", "${s}"),
                    '<stream name="s"/><param name="k" default="1"/>',
                    '<stream name="s" ref="s"/>'),
        helper_spec(sink("c", "${s}"), '<stream name="s"/>',
                    '<stream name="s" ref="s"/>'),
    ),
    "X204": (
        wrap(source("src", "s") + sink("snk", "s") + source("src2", "dead")),
        wrap(source("src", "s") + sink("snk", "s")
             + source("src2", "s2") + sink("snk2", "s2")),
    ),
    "X205": (
        wrap(source("src", "s") + sink("snk", "s") + sink("snk2", "ghost")),
        CLEAN,
    ),
    "X206": (
        TOGGLE_PAIR
        + "",  # modified below: drop the o5 handler so o5 is untoggleable
        TOGGLE_PAIR,
    ),
    # -- concurrency / safety -----------------------------------------------
    "X301": (
        wrap(
            '<parallel shape="task">\n'
            "<parblock>\n" + blur("c1", "a", "b") + "</parblock>\n"
            "<parblock>\n" + blur("c2", "b", "a") + "</parblock>\n"
            "</parallel>\n"
        ),
        CLEAN,
    ),
    "X302": (
        wrap(source("src1", "s") + source("src2", "s") + sink("snk", "s")),
        wrap(source("src1", "s") + source("src2", "s2")
             + sink("snk", "s") + sink("snk2", "s2")),
    ),
    "X303": (
        wrap(
            '<parallel shape="task">\n'
            "<parblock>\n" + source("src", "s") + "</parblock>\n"
            "<parblock>\n" + sink("snk", "s") + "</parblock>\n"
            "</parallel>\n"
        ),
        wrap(source("src", "s") + sink("snk", "s")),
    ),
    "X304": (
        sliced_pipeline(3, shape="crossdep"),
        sliced_pipeline(3, shape="slice"),
    ),
    "X305": (TOGGLE_PAIR_NO_TIMER, TOGGLE_PAIR),
    "X306": (
        TOGGLE_PAIR.replace(
            '<on event="e" action="toggle" option="o5"/>\n',
            '<on event="e" action="toggle" option="o5"/>\n'
            '<on event="f" action="forward" target="nowhere"/>\n'),
        TOGGLE_PAIR.replace(
            '<on event="e" action="toggle" option="o5"/>\n',
            '<on event="e" action="toggle" option="o5"/>\n'
            '<on event="f" action="forward" target="ui"/>\n'),
    ),
    "X307": (
        bypassed_option('<bypass from="out" to="raw"/>'
                        '<bypass from="raw" to="out"/>\n'),
        bypassed_option('<bypass from="out" to="raw"/>\n'),
    ),
    # -- performance ---------------------------------------------------------
    "X401": (
        CLEAN,
        DIAMOND,
    ),
    "X402": (
        sliced_pipeline(3),  # height 8 % 3 != 0
        sliced_pipeline(2),
    ),
    "X403": (CLEAN, CLEAN),  # distinguished by the classes registry below
    "X405": (
        FORWARD_CYCLE,
        # same topology, but the return edge carries a different event:
        # (q1, e) -> (q2, e) and (q2, f) -> (q1, f) do not form a cycle.
        FORWARD_CYCLE.replace(
            '<on event="e" action="forward" target="q1"/>',
            '<on event="f" action="forward" target="q1"/>'),
    ),
}

# X206 trigger: same toggle pair but no handler ever touches o5.
CASES["X206"] = (
    TOGGLE_PAIR.replace('<on event="e" action="toggle" option="o5"/>\n', ""),
    TOGGLE_PAIR,
)


@pytest.mark.parametrize("code", sorted(CASES))
def test_trigger_and_non_trigger(code, ports, classes):
    trigger, clean = CASES[code]
    if code == "X403":
        # a class object that publishes no cost_profile
        bad_classes = dict(classes)
        bad_classes["luma_source"] = type("NoProfile", (), {})
        assert code in codes_of(trigger, ports, bad_classes)
        assert code not in codes_of(clean, ports, classes)
        return
    assert code in codes_of(trigger, ports, classes), f"{code} not raised"
    assert code not in codes_of(clean, ports, classes), f"{code} false positive"


def test_collects_multiple_validation_errors(ports):
    text = wrap(
        '<component name="x" class="no_such_class">'
        '<stream port="p" ref="s"/></component>\n'
        '<call procedure="missing"/>\n'
        '<call procedure="alsomissing"/>\n'
    )
    diagnostics = lint_string(text, ports=ports)
    assert len([d for d in diagnostics if d.severity >= Severity.ERROR]) == 3
    assert {d.code for d in diagnostics} >= {"X103", "X114"}


def test_x206_severity_depends_on_default_state(ports):
    """Untoggleable options: dead weight is a warning, pointless wrapper info."""
    untoggleable_off = CASES["X206"][0]
    diags = [d for d in lint_string(untoggleable_off, ports=ports)
             if d.code == "X206"]
    assert diags and all(d.severity == Severity.WARNING for d in diags)

    untoggleable_on = untoggleable_off.replace(
        '<on event="e" action="toggle" option="o3"/>\n', ""
    ).replace('<option name="o5" enabled="false">',
              '<option name="o5" enabled="true">')
    # now *both* options are untoggleable; o3/o5 are permanently enabled
    diags = [d for d in lint_string(untoggleable_on, ports=ports)
             if d.code == "X206"]
    assert diags and all(d.severity == Severity.INFO for d in diags)


def test_x404_over_slicing_against_machine_width(ports, classes):
    """Slice replication wider than the deployment is flagged — but only
    when a machine width is supplied, and never when the copies fit."""
    spec = sliced_pipeline(8)  # 8 divides height 8: no X402 noise

    # no deployment width -> the pass is skipped entirely
    assert "X404" not in codes_of(spec, ports, classes)

    diags = [d for d in lint_string(spec, ports=ports, classes=classes,
                                    machine_nodes=3) if d.code == "X404"]
    # both definitions inside the slice region are over-replicated,
    # each reported once (not once per copy)
    assert {d.where for d in diags} == {"h", "v"}
    assert len(diags) == 2
    assert all(d.severity == Severity.WARNING for d in diags)
    assert "5 excess copies" in diags[0].message

    # copies fit on the machine -> clean
    assert "X404" not in {
        d.code
        for d in lint_string(spec, ports=ports, classes=classes,
                             machine_nodes=8)
    }


def test_x301_suppresses_redundant_x303(ports):
    trigger = CASES["X301"][0]
    codes = codes_of(trigger, ports)
    assert "X301" in codes
    assert "X303" not in codes


def test_x204_stream_live_in_alternate_configuration(ports):
    """A stream read only in a non-default configuration is not dead."""
    codes = codes_of(TOGGLE_PAIR, ports)
    assert "X204" not in codes
    assert "X205" not in codes  # toggles flip atomically: 'out' always written


def test_diagnostics_carry_source_lines(ports):
    diagnostics = lint_string(CASES["X114"][0], ports=ports)
    bad = [d for d in diagnostics if d.code == "X114"]
    assert bad and bad[0].line is not None
