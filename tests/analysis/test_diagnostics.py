"""Tests for the diagnostic framework itself (codes, bag, renderers)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.diagnostics import (
    CODES,
    FAMILIES,
    Diagnostic,
    DiagnosticBag,
    Severity,
    render_json,
    render_text,
)


def test_severity_ordering_and_parse():
    assert Severity.INFO < Severity.WARNING < Severity.ERROR
    assert Severity.parse("warning") is Severity.WARNING
    assert str(Severity.ERROR) == "error"
    with pytest.raises(ValueError):
        Severity.parse("fatal")


def test_catalogue_is_complete_and_consistent():
    # at least ten analysis codes beyond the validation family, all
    # families populated
    per_family = {f: [c for c, i in CODES.items() if i.family == f]
                  for f in FAMILIES}
    assert all(per_family.values()), per_family
    analysis_codes = [c for c, i in CODES.items() if i.family != "validation"]
    assert len(analysis_codes) >= 10
    for code, info in CODES.items():
        assert info.code == code
        assert code.startswith("X") and code[1:].isdigit()


def test_unknown_code_rejected():
    bag = DiagnosticBag()
    with pytest.raises(KeyError):
        bag.report("X999", "no such code")


def test_bag_dedup_and_ordering():
    bag = DiagnosticBag()
    bag.report("X201", "dup", line=7)
    bag.report("X201", "dup", line=7)
    bag.report("X101", "first", line=2)
    assert len(bag.sorted()) == 2
    assert [d.line for d in bag.sorted()] == [2, 7]


def test_severity_override():
    bag = DiagnosticBag()
    bag.report("X206", "downgraded", severity=Severity.INFO)
    assert not bag.has_errors
    assert bag.sorted()[0].severity == Severity.INFO


def test_format_includes_path_line_code():
    d = Diagnostic(code="X204", severity=Severity.WARNING,
                   message="m", line=3, where="w", path="spec.xml")
    assert d.format() == "spec.xml:3: warning: [X204] m (w)"


def test_render_text_summary():
    bag = DiagnosticBag()
    assert "clean" in render_text(bag.sorted())
    bag.report("X101", "boom")
    bag.report("X204", "meh")
    text = render_text(bag.sorted())
    assert "1 error(s), 1 warning(s)" in text


def test_render_json_schema():
    bag = DiagnosticBag()
    bag.report("X101", "boom", line=4)
    payload = json.loads(render_json(bag.sorted()))
    assert payload["summary"] == {
        "errors": 1, "warnings": 0, "infos": 0, "total": 1,
    }
    (entry,) = payload["diagnostics"]
    assert entry["code"] == "X101"
    assert entry["severity"] == "error"
    assert entry["line"] == 4
    assert entry["family"] == "validation"
