"""Shared helpers for the static-analysis test suite."""

from __future__ import annotations

import pytest

from repro.analysis import lint_string
from repro.components.registry import default_ports, default_registry


@pytest.fixture(scope="session")
def ports():
    return default_ports()


@pytest.fixture(scope="session")
def classes():
    return default_registry()


def wrap(body: str, extra_procs: str = "") -> str:
    """Wrap a main body (and optional extra procedures) in a spec skeleton."""
    return (
        '<?xml version="1.0" ?>\n'
        '<xspcl version="1.0">\n'
        f"{extra_procs}"
        '  <procedure name="main">\n'
        "    <body>\n"
        f"{body}"
        "    </body>\n"
        "  </procedure>\n"
        "</xspcl>\n"
    )


def source(name: str, out: str) -> str:
    return (
        f'<component name="{name}" class="luma_source">'
        f'<stream port="output" ref="{out}"/>'
        '<param name="width" value="8"/><param name="height" value="8"/>'
        "</component>\n"
    )


def blur(name: str, inp: str, out: str, size: int = 3) -> str:
    return (
        f'<component name="{name}" class="blur_h_field">'
        f'<stream port="input" ref="{inp}"/>'
        f'<stream port="output" ref="{out}"/>'
        '<param name="width" value="8"/><param name="height" value="8"/>'
        f'<param name="size" value="{size}"/>'
        "</component>\n"
    )


def sink(name: str, inp: str) -> str:
    return (
        f'<component name="{name}" class="plane_sink">'
        f'<stream port="input" ref="{inp}"/>'
        '<param name="width" value="8"/><param name="height" value="8"/>'
        "</component>\n"
    )


def timer(queue: str = "ui", event: str = "e") -> str:
    return (
        '<component name="timer" class="timer">'
        f'<param name="queue" value="{queue}"/>'
        '<param name="period" value="4"/>'
        f'<param name="event" value="{event}"/>'
        "</component>\n"
    )


#: A well-formed source -> blur -> sink pipeline (lints with only X401).
CLEAN = wrap(source("src", "raw") + blur("b", "raw", "out") + sink("snk", "out"))


def codes_of(text: str, ports, classes=None) -> set[str]:
    return {d.code for d in lint_string(text, ports=ports, classes=classes)}
