"""Calibration tests: the paper's result *shape* must hold.

These run the real benchmark harness at full frame counts (96/24) and pin
the qualitative claims of §4 — orderings, approximate factors, trends —
to generous bands.  Absolute cycle counts are not asserted (our substrate
is a model, not the authors' testbed); if a change to the cost model or
scheduler moves a result out of band, the reproduction has genuinely
regressed.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Harness

NODES = range(1, 10)


@pytest.fixture(scope="module")
def harness() -> Harness:
    return Harness()  # results are memoized across all tests below


# -- Figure 8: sequential overhead --------------------------------------------


def test_fig8_pip_overhead_band(harness):
    """Paper: 'For PiP-1 and PiP-2, this results in a total overhead of 5%.'"""
    for name in ("PiP-1", "PiP-2"):
        overhead = harness.sequential_overhead(name)
        assert 0.01 < overhead < 0.14, f"{name}: {overhead:.1%}"


def test_fig8_jpip_overhead_band(harness):
    """Paper: 'The JPiP application clearly suffers more ... 18%.'"""
    for name in ("JPiP-1", "JPiP-2"):
        overhead = harness.sequential_overhead(name)
        assert 0.12 < overhead < 0.26, f"{name}: {overhead:.1%}"


def test_fig8_blur_overhead_negligible(harness):
    """Paper: difference < 1.1%, attributed to measuring noise."""
    for name in ("Blur-3x3", "Blur-5x5"):
        overhead = harness.sequential_overhead(name)
        assert abs(overhead) < 0.03, f"{name}: {overhead:.1%}"


def test_fig8_jpip_suffers_more_than_pip(harness):
    jpip = min(harness.sequential_overhead(n) for n in ("JPiP-1", "JPiP-2"))
    pip = max(harness.sequential_overhead(n) for n in ("PiP-1", "PiP-2"))
    assert jpip > pip + 0.03


def test_fig8_blur_is_the_cheapest_overhead(harness):
    blur = max(abs(harness.sequential_overhead(n))
               for n in ("Blur-3x3", "Blur-5x5"))
    others = min(harness.sequential_overhead(n)
                 for n in ("PiP-1", "PiP-2", "JPiP-1", "JPiP-2"))
    assert blur < others


# -- Figure 9: parallel speedup -------------------------------------------------


def test_fig9_speedup_monotone_non_decreasing(harness):
    for name in ("PiP-1", "JPiP-1", "Blur-5x5"):
        speedups = [harness.speedup(name, n) for n in NODES]
        for a, b in zip(speedups, speedups[1:]):
            assert b >= a - 0.05, f"{name}: {speedups}"


def test_fig9_good_efficiency_low_node_counts(harness):
    """Paper: 'All applications exhibit a good efficiency.'"""
    for name in ("PiP-1", "PiP-2", "JPiP-1", "JPiP-2", "Blur-3x3", "Blur-5x5"):
        for n in (2, 4):
            assert harness.speedup(name, n) > 0.80 * n, (
                f"{name}@{n}: {harness.speedup(name, n):.2f}"
            )


def test_fig9_jpip_performs_worst(harness):
    """Paper: 'JPiP performs worse because the overhead compared to its
    sequential counterpart is relatively high.'"""
    at9 = {n: harness.speedup(n, 9)
           for n in ("PiP-1", "PiP-2", "JPiP-1", "JPiP-2", "Blur-3x3",
                     "Blur-5x5")}
    assert min(at9, key=at9.get) == "JPiP-1"


def test_fig9_blur_performs_best(harness):
    """Paper: 'The Blur applications perform best' (largest compute/
    communication ratio).  Blur-5x5 carries the claim at 9 nodes."""
    at9 = {n: harness.speedup(n, 9)
           for n in ("PiP-1", "PiP-2", "JPiP-1", "JPiP-2", "Blur-3x3",
                     "Blur-5x5")}
    assert max(at9, key=at9.get) == "Blur-5x5"
    assert at9["Blur-5x5"] > 8.0


def test_fig9_one_node_close_to_sequential(harness):
    """Sync ops disabled at 1 node: parallel version within ~20%."""
    for name in ("PiP-1", "Blur-3x3", "JPiP-1"):
        assert harness.speedup(name, 1) > 0.80


# -- Figure 10: reconfiguration overhead -------------------------------------------


def test_fig10_overhead_bounded(harness):
    """Paper: 'the overhead stays below 15 %' (we allow 18)."""
    for name in ("PiP-12", "JPiP-12", "Blur-35"):
        for n in NODES:
            overhead = harness.reconfig_overhead(name, n)
            assert -0.02 < overhead < 0.18, f"{name}@{n}: {overhead:.1%}"


def test_fig10_overhead_grows_with_nodes(harness):
    """Paper: 'the reconfigurability overhead ... increase[s] with the
    number of nodes.'  Compare the low-node and high-node halves."""
    for name in ("PiP-12", "JPiP-12", "Blur-35"):
        low = sum(harness.reconfig_overhead(name, n) for n in (1, 2, 3)) / 3
        high = sum(harness.reconfig_overhead(name, n) for n in (7, 8, 9)) / 3
        assert high > low, f"{name}: low={low:.1%} high={high:.1%}"


def test_fig10_reconfigurations_actually_happen(harness):
    for name in ("PiP-12", "JPiP-12", "Blur-35"):
        result = harness.run_xspcl(name, nodes=4)
        expected = harness.frames(name) / 12
        assert result.reconfig_count >= expected * 0.5, (
            f"{name}: only {result.reconfig_count} reconfigs"
        )
