"""Tests for the Python glue-code generator."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.apps import build_blur, build_pip, make_program
from repro.core.codegen import generate_glue


def test_generated_source_is_valid_python():
    prog = make_program(build_pip(1, width=64, height=48, slices=2,
                                  factor=4), name="pip")
    source = generate_glue(prog)
    compile(source, "app_glue.py", "exec")  # must not raise


def test_generated_program_matches_original():
    prog = make_program(build_blur(3, width=48, height=36, slices=3),
                        name="blur")
    source = generate_glue(prog)
    namespace: dict = {}
    exec(compile(source, "glue", "exec"), namespace)
    rebuilt = namespace["build_program"]()
    assert set(rebuilt.components) == set(prog.components)
    assert rebuilt.components["src"].params == prog.components["src"].params
    pg_a = prog.build_graph()
    pg_b = rebuilt.build_graph()
    assert set(pg_a.graph.node_ids) == set(pg_b.graph.node_ids)
    assert set(pg_a.graph.edges()) == set(pg_b.graph.edges())


def test_generated_program_preserves_managers_and_options():
    prog = make_program(
        build_pip(2, width=64, height=48, slices=2, factor=4,
                  reconfigurable=True, period=4),
        name="pip12",
    )
    source = generate_glue(prog)
    namespace: dict = {}
    exec(compile(source, "glue", "exec"), namespace)
    rebuilt = namespace["build_program"]()
    assert set(rebuilt.managers) == set(prog.managers)
    assert set(rebuilt.options) == set(prog.options)
    opt = rebuilt.options["pip_opt"]
    assert opt.default_enabled is False
    assert opt.bypasses == prog.options["pip_opt"].bypasses
    # handlers survive with qualified option names
    assert rebuilt.managers["mgr"].handlers == prog.managers["mgr"].handlers


def test_generated_script_runs_end_to_end(tmp_path):
    prog = make_program(build_blur(3, width=48, height=36, slices=3),
                        name="blur")
    script = tmp_path / "blur_glue.py"
    script.write_text(generate_glue(prog, module_name="blur_glue"))
    proc = subprocess.run(
        [sys.executable, str(script), "--nodes", "2", "--iterations", "4"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "completed 4 iterations" in proc.stdout
