"""Round-trip tests: builder -> XML -> parser -> same AST."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core import AppBuilder, parse_string, spec_to_xml
from repro.core.ast import (
    Bypass,
    CallNode,
    ComponentNode,
    EventHandler,
    ManagerNode,
    OptionNode,
    ParallelNode,
    ParamFormal,
    Procedure,
    Spec,
    StreamFormal,
)


def test_roundtrip_minimal():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "data"}, params={"rate": 30})
    main.component("snk", "sink", streams={"input": "data"})
    spec = b.build()
    assert parse_string(spec_to_xml(spec)) == spec


def test_roundtrip_format_overrides():
    b = AppBuilder()
    main = b.procedure("main")
    main.component(
        "src", "source", streams={"output": "data"},
        formats={"output": "kind=plane shape=8,8 dtype=uint8"},
    )
    main.component("snk", "sink", streams={"input": "data"})
    spec = b.build()
    xml = spec_to_xml(spec)
    assert 'format="kind=plane shape=8,8 dtype=uint8"' in xml
    reparsed = parse_string(xml)
    assert reparsed == spec
    (main_proc,) = [reparsed.procedures["main"]]
    src = main_proc.body[0]
    assert src.formats == {"output": "kind=plane shape=8,8 dtype=uint8"}


def test_roundtrip_full_feature_set():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "raw"},
                   params={"f": 1.5, "flag": True, "s": "text"},
                   reconfigure="init=1")
    main.call("chain", name="c1", streams={"in": "raw"}, params={"n": 4})
    with main.parallel("task"):
        with main.parblock():
            main.component("a", "filter", streams={"input": "c1/out", "output": "x"})
        with main.parblock():
            main.component("b", "filter", streams={"input": "c1/out", "output": "y"})
    with main.manager("m", queue="ui") as mgr:
        mgr.on("e1", "toggle", option="o")
        mgr.on("e2", "forward", target="other")
        mgr.on("e3", "reconfigure", request="r=1")
        main.component("f", "merge", streams={"a": "x", "b": "y", "output": "z"})
        with main.option("o", enabled=False, bypass=[("z", "w")]):
            main.component("g", "filter", streams={"input": "z", "output": "w"})
    main.component("snk", "sink", streams={"input": "w"})
    chain = b.procedure("chain", stream_formals=["in"], param_formals={"n": 2})
    with chain.parallel("slice", n="${n}"):
        chain.component("f", "filter", streams={"input": "${in}", "output": "out"})
    spec = b.build()
    assert parse_string(spec_to_xml(spec)) == spec


def test_xml_output_is_readable():
    b = AppBuilder()
    b.procedure("main").component("x", "source", streams={"output": "s"})
    xml = spec_to_xml(b.build())
    assert "<xspcl" in xml
    assert '<component name="x" class="source">' in xml
    assert xml.count("\n") > 3  # pretty-printed


def test_compact_output():
    b = AppBuilder()
    b.procedure("main").component("x", "source", streams={"output": "s"})
    xml = spec_to_xml(b.build(), pretty=False)
    assert "\n" not in xml.strip()
    assert parse_string(xml) == b.build()


# -- property: random spec round-trips ---------------------------------------

_names = st.from_regex(r"[a-z][a-z0-9_]{0,7}", fullmatch=True)
_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.booleans(),
    st.from_regex(r"[a-zA-Z][a-zA-Z0-9_,=.-]{0,10}", fullmatch=True),
)


@st.composite
def components(draw, suffix: str):
    name = draw(_names) + suffix
    n_streams = draw(st.integers(0, 3))
    streams = {
        f"p{i}": draw(_names) for i in range(n_streams)
    }
    n_params = draw(st.integers(0, 3))
    params = {f"k{i}": draw(_values) for i in range(n_params)}
    return ComponentNode(
        name=name,
        class_name=draw(_names),
        streams=streams,
        params=params,
        reconfigure=draw(st.one_of(st.none(), _names)),
    )


@st.composite
def bodies(draw, depth: int = 0):
    nodes = []
    n = draw(st.integers(1, 3))
    for i in range(n):
        kind = draw(st.sampled_from(
            ["component"] if depth >= 2 else ["component", "parallel", "manager"]
        ))
        if kind == "component":
            nodes.append(draw(components(suffix=f"_{depth}{i}")))
        elif kind == "parallel":
            shape = draw(st.sampled_from(["task", "slice", "crossdep"]))
            if shape == "slice":
                pbs = (tuple(draw(bodies(depth + 1))),)
            else:
                pbs = tuple(
                    tuple(draw(bodies(depth + 1)))
                    for _ in range(draw(st.integers(1, 2)))
                )
            nodes.append(
                ParallelNode(
                    shape=shape,
                    parblocks=pbs,
                    n=draw(st.integers(1, 4)) if shape != "task" else None,
                )
            )
        else:
            opt_name = draw(_names) + f"_o{depth}{i}"
            option = OptionNode(
                name=opt_name,
                body=tuple(draw(bodies(depth + 1))),
                enabled=draw(st.booleans()),
                bypasses=tuple(
                    Bypass(draw(_names), draw(_names))
                    for _ in range(draw(st.integers(0, 2)))
                ),
            )
            handlers = (
                EventHandler(event=draw(_names), action="toggle", option=opt_name),
                EventHandler(event=draw(_names), action="forward",
                             target=draw(_names)),
            )
            nodes.append(
                ManagerNode(
                    name=draw(_names) + f"_m{depth}{i}",
                    queue=draw(_names),
                    handlers=handlers,
                    body=(option,),
                )
            )
    return tuple(nodes)


@st.composite
def specs(draw):
    main = Procedure(name="main", body=draw(bodies()))
    procs = {"main": main}
    if draw(st.booleans()):
        sub_body = draw(bodies())
        sub = Procedure(
            name="sub",
            body=sub_body
            + (
                CallNode(procedure="main2", name="unused_call")
                if False
                else ()
            ),
            stream_formals=(StreamFormal("in"),),
            param_formals=(ParamFormal("n", default=draw(st.integers(1, 9))),),
        )
        procs["sub"] = sub
    return Spec(procedures=procs)


@given(specs())
def test_prop_roundtrip(spec):
    assert parse_string(spec_to_xml(spec)) == spec


@given(specs())
def test_prop_roundtrip_compact(spec):
    assert parse_string(spec_to_xml(spec, pretty=False)) == spec
