"""Tests for semantic validation of XSPCL specifications."""

from __future__ import annotations

import pytest

from repro.core import AppBuilder, parse_string, validate
from repro.errors import ValidationError


def build_minimal() -> AppBuilder:
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "data"})
    main.component("snk", "sink", streams={"input": "data"})
    return b


def test_valid_minimal_passes(registry):
    validate(build_minimal().build(), registry=registry)


def test_missing_main_rejected():
    b = AppBuilder()
    b.procedure("notmain").component("x", "source", streams={"output": "s"})
    with pytest.raises(ValidationError, match="main"):
        validate(b.build())


def test_main_with_formals_rejected():
    b = AppBuilder()
    b.procedure("main", stream_formals=["in"]).component(
        "x", "sink", streams={"input": "${in}"}
    )
    with pytest.raises(ValidationError, match="must not declare formal"):
        validate(b.build())


def test_unknown_call_target_rejected():
    b = AppBuilder()
    b.procedure("main").call("ghost")
    with pytest.raises(ValidationError, match="unknown procedure"):
        validate(b.build())


def test_direct_recursion_rejected():
    b = AppBuilder()
    b.procedure("main").call("loop")
    b.procedure("loop").call("loop", name="again")
    with pytest.raises(ValidationError, match="recursive"):
        validate(b.build())


def test_mutual_recursion_rejected():
    b = AppBuilder()
    b.procedure("main").call("a")
    b.procedure("a").call("b")
    b.procedure("b").call("a", name="back")
    with pytest.raises(ValidationError, match="recursive"):
        validate(b.build())


def test_diamond_call_graph_allowed(registry):
    # a calls c, b calls c — a DAG, not recursion.
    b = AppBuilder()
    main = b.procedure("main")
    main.call("a", streams={"s": "x"})
    main.call("b", streams={"s": "x2"})
    pa = b.procedure("a", stream_formals=["s"])
    pa.call("c", streams={"t": "${s}"})
    pb = b.procedure("b", stream_formals=["s"])
    pb.call("c", streams={"t": "${s}"})
    pc = b.procedure("c", stream_formals=["t"])
    pc.component("src", "source", streams={"output": "${t}"})
    validate(b.build(), registry=registry)


def test_call_missing_stream_arg():
    b = AppBuilder()
    b.procedure("main").call("p")
    b.procedure("p", stream_formals=["in"]).component(
        "x", "sink", streams={"input": "${in}"}
    )
    with pytest.raises(ValidationError, match="missing stream args"):
        validate(b.build())


def test_call_unknown_stream_arg():
    b = AppBuilder()
    b.procedure("main").call("p", streams={"bogus": "x"})
    b.procedure("p").component("x", "source", streams={"output": "s"})
    with pytest.raises(ValidationError, match="unknown stream args"):
        validate(b.build())


def test_call_missing_required_param():
    b = AppBuilder()
    b.procedure("main").call("p")
    b.procedure("p", param_formals={"gain": None}).component(
        "x", "source", streams={"output": "s"}, params={"rate": "${gain}"}
    )
    with pytest.raises(ValidationError, match="missing required params"):
        validate(b.build())


def test_call_default_param_may_be_omitted(registry):
    b = AppBuilder()
    b.procedure("main").call("p")
    b.procedure("p", param_formals={"gain": 2}).component(
        "x", "source", streams={"output": "s"}, params={"rate": "${gain}"}
    )
    validate(b.build(), registry=registry)


def test_call_unknown_param():
    b = AppBuilder()
    b.procedure("main").call("p", params={"bogus": 1})
    b.procedure("p").component("x", "source", streams={"output": "s"})
    with pytest.raises(ValidationError, match="unknown params"):
        validate(b.build())


def test_duplicate_instance_names():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("x", "source", streams={"output": "a"})
    main.component("x", "sink", streams={"input": "a"})
    with pytest.raises(ValidationError, match="duplicate component instance"):
        validate(b.build())


def test_unknown_placeholder_rejected():
    b = AppBuilder()
    b.procedure("main").call("p", streams={"in": "raw"})
    b.procedure("p", stream_formals=["in"]).component(
        "x", "sink", streams={"input": "${typo}"}
    )
    with pytest.raises(ValidationError, match="unknown formal"):
        validate(b.build())


def test_empty_placeholder_rejected():
    b = AppBuilder()
    b.procedure("main").component("x", "source", streams={"output": "${}"})
    with pytest.raises(ValidationError, match="empty"):
        validate(b.build())


def test_option_outside_manager_rejected():
    b = AppBuilder()
    main = b.procedure("main")
    with main.option("o"):
        main.component("x", "source", streams={"output": "s"})
    with pytest.raises(ValidationError, match="not contained in any manager"):
        validate(b.build())


def test_handler_unknown_option_rejected():
    b = AppBuilder()
    main = b.procedure("main")
    with main.manager("m", queue="q") as mgr:
        mgr.on("e", "toggle", option="ghost")
        main.component("x", "source", streams={"output": "s"})
    with pytest.raises(ValidationError, match="unknown option"):
        validate(b.build())


def test_handler_resolves_option_in_own_manager(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "a"})
    with main.manager("m", queue="q") as mgr:
        mgr.on("e", "toggle", option="o")
        with main.option("o", enabled=True):
            main.component("f", "filter", streams={"input": "a", "output": "b"})
    main.component("snk", "sink", streams={"input": "b"})
    validate(b.build(), registry=registry)


def test_nested_manager_owns_its_options():
    # Outer manager handler cannot see inner manager's option.
    b = AppBuilder()
    main = b.procedure("main")
    with main.manager("outer", queue="q") as outer:
        outer.on("e", "toggle", option="inner_opt")
        with main.manager("inner", queue="q2"):
            with main.option("inner_opt"):
                main.component("x", "source", streams={"output": "s"})
    with pytest.raises(ValidationError, match="unknown option"):
        validate(b.build())


def test_duplicate_option_in_manager():
    b = AppBuilder()
    main = b.procedure("main")
    with main.manager("m", queue="q"):
        with main.option("o"):
            main.component("x", "source", streams={"output": "s"})
        with main.option("o"):
            main.component("y", "source", streams={"output": "t"})
    with pytest.raises(ValidationError, match="duplicate option"):
        validate(b.build())


def test_empty_parblock_rejected():
    spec = parse_string(
        "<xspcl><procedure name='main'><body>"
        "<parallel shape='task'><parblock/></parallel>"
        "</body></procedure></xspcl>"
    )
    with pytest.raises(ValidationError, match="empty <parblock>"):
        validate(spec)


def test_parallel_n_zero_rejected():
    b = AppBuilder()
    main = b.procedure("main")
    with main.parallel("slice", n=0):
        main.component("x", "source", streams={"output": "s"})
    with pytest.raises(ValidationError, match="positive integer"):
        validate(b.build())


# -- registry-backed checks -------------------------------------------------


def test_unknown_class_rejected(registry):
    b = AppBuilder()
    b.procedure("main").component("x", "warp_drive", streams={})
    with pytest.raises(ValidationError, match="unknown class"):
        validate(b.build(), registry=registry)


def test_unbound_port_rejected(registry):
    b = AppBuilder()
    b.procedure("main").component("x", "filter", streams={"input": "a"})
    with pytest.raises(ValidationError, match="unbound ports.*output"):
        validate(b.build(), registry=registry)


def test_unknown_port_rejected(registry):
    b = AppBuilder()
    b.procedure("main").component(
        "x", "source", streams={"output": "a", "sideband": "b"}
    )
    with pytest.raises(ValidationError, match="unknown ports.*sideband"):
        validate(b.build(), registry=registry)


def test_missing_required_class_param(registry):
    b = AppBuilder()
    b.procedure("main").component(
        "x", "strict", streams={"input": "a", "output": "b"}
    )
    with pytest.raises(ValidationError, match="missing required params.*gain"):
        validate(b.build(), registry=registry)


def test_unknown_class_param(registry):
    b = AppBuilder()
    b.procedure("main").component(
        "x", "strict", streams={"input": "a", "output": "b"},
        params={"gain": 1, "zzz": 2},
    )
    with pytest.raises(ValidationError, match="unknown params.*zzz"):
        validate(b.build(), registry=registry)


def test_no_registry_skips_class_checks():
    b = AppBuilder()
    b.procedure("main").component("x", "warp_drive", streams={"q": "s"})
    validate(b.build())  # registry=None: class-level checks skipped
