"""Crossdep eligibility of :mod:`repro.core.reslice` (fuzzer-pinned).

The width of a crossdep region is part of its *semantics* — the halo
edges encode neighbour exchange for the copy count the author chose — so
no crossdep member may ever be reported width-elastic, no matter how the
region nests: directly, under options/managers, beside eligible sliced
groups, or with slice regions nested inside its parblocks.
"""

from __future__ import annotations

import pytest

from repro.apps import build_blur, make_program
from repro.core.builder import AppBuilder
from repro.core.reslice import reslice, slice_groups
from repro.errors import ExpansionError, ReconfigurationError


def _expand(b: AppBuilder, name: str):
    return make_program(b.build(), name=name)


def _blur_params(width=48, height=36):
    return {"width": width, "height": height, "size": 3, "sigma": 1.0}


def _crossdep(main, *, tag: str, n: int, in_stream: str, out_stream: str,
              width=48, height=36):
    params = _blur_params(width, height)
    with main.parallel("crossdep", n=n):
        with main.parblock():
            main.component(f"h{tag}", "blur_h_field",
                           streams={"input": in_stream,
                                    "output": f"mid{tag}"},
                           params=params)
        with main.parblock():
            main.component(f"v{tag}", "blur_v_field",
                           streams={"input": f"mid{tag}",
                                    "output": out_stream},
                           params=params)


def _source_sink(main, *, out="raw", sink_in="out", width=48, height=36):
    main.component("src", "luma_source", streams={"output": out},
                   params={"width": width, "height": height, "seed": 1})
    return lambda: main.component(
        "sink", "plane_sink", streams={"input": sink_in},
        params={"width": width, "height": height})


def test_sibling_crossdeps_are_never_elastic():
    """Two crossdep regions in series: neither may form a slice group."""
    b = AppBuilder()
    main = b.procedure("main")
    close = _source_sink(main, sink_in="out")
    _crossdep(main, tag="a", n=3, in_stream="raw", out_stream="stage")
    _crossdep(main, tag="b", n=3, in_stream="stage", out_stream="out")
    close()
    program = _expand(b, "sibling-crossdeps")
    assert slice_groups(program) == {}
    # and reslicing any crossdep member is rejected outright
    member_def = next(
        inst.definition_id
        for inst in program.components.values()
        if inst.class_name == "blur_h_field"
    )
    with pytest.raises(ReconfigurationError):
        reslice(program, {member_def: 2})


def test_crossdep_beside_eligible_group():
    """An eligible sliced group next to a crossdep stays eligible; the
    crossdep members stay out — the walk must not leak the crossdep flag
    across siblings."""
    b = AppBuilder()
    main = b.procedure("main")
    close = _source_sink(main, sink_in="out")
    _crossdep(main, tag="a", n=3, in_stream="raw", out_stream="stage")
    with main.parallel("slice", n=4):
        main.component("conv", "convert_plane",
                       streams={"input": "stage", "output": "out"},
                       params={"dtype": "uint8", "width": 48, "height": 36})
    close()
    program = _expand(b, "crossdep-then-slice")
    groups = slice_groups(program)
    assert len(groups) == 1
    (group,) = groups.values()
    assert group.class_name == "convert_plane"
    assert group.total == 4
    assert all("conv" in m for m in group.members)


def test_slice_region_nested_inside_crossdep_is_rejected_at_expand():
    """A slice group nested *inside* a crossdep parblock can never become
    width-elastic because the expander refuses to build it at all —
    re-slicing copies inside a halo region would change what the
    surrounding copies see.  Pin the rejection (not a silent drop)."""
    b = AppBuilder()
    main = b.procedure("main")
    close = _source_sink(main, sink_in="out")
    params = _blur_params()
    with main.parallel("crossdep", n=2):
        with main.parblock():
            with main.parallel("slice", n=2):
                main.component("inner", "convert_plane",
                               streams={"input": "raw", "output": "mid"},
                               params={"dtype": "uint8", "width": 48,
                                       "height": 36})
        with main.parblock():
            main.component("v", "blur_v_field",
                           streams={"input": "mid", "output": "out"},
                           params=params)
    close()
    with pytest.raises(ExpansionError, match="nested data-parallel"):
        _expand(b, "nested-slice-in-crossdep")


def test_crossdep_under_option_and_manager_is_not_elastic():
    """Blur-35: both kernel-size options hold a crossdep region; the
    manager/option wrappers must preserve the crossdep taint."""
    spec = build_blur(reconfigurable=True, width=48, height=36, slices=3,
                      frames=2)
    program = make_program(spec, name="blur35")
    groups = slice_groups(program)
    blur_defs = {
        inst.definition_id
        for inst in program.components.values()
        if inst.class_name in ("blur_h_field", "blur_v_field")
    }
    assert blur_defs  # the options really contain blur copies
    assert not (set(groups) & blur_defs)


def test_reslice_never_touches_crossdep_members():
    """reslice() of an eligible sibling leaves every crossdep member,
    id, and slice assignment untouched."""
    b = AppBuilder()
    main = b.procedure("main")
    close = _source_sink(main, sink_in="out")
    _crossdep(main, tag="a", n=3, in_stream="raw", out_stream="stage")
    with main.parallel("slice", n=4):
        main.component("conv", "convert_plane",
                       streams={"input": "stage", "output": "out"},
                       params={"dtype": "uint8", "width": 48, "height": 36})
    close()
    program = _expand(b, "reslice-sibling")
    target = next(iter(slice_groups(program)))
    narrowed = reslice(program, {target: 2})
    before = {
        iid: inst.slice
        for iid, inst in program.components.items()
        if inst.class_name.startswith("blur_")
    }
    after = {
        iid: inst.slice
        for iid, inst in narrowed.components.items()
        if inst.class_name.startswith("blur_")
    }
    assert before == after
    assert sum(
        1 for inst in narrowed.components.values()
        if inst.class_name == "convert_plane"
    ) == 2
