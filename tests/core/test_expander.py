"""Tests for procedure inlining, replication, and manager collection."""

from __future__ import annotations

import pytest

from repro.core import AppBuilder, expand
from repro.core.program import IRCrossdep, IRLeaf, IRManager, IROption, iter_ir
from repro.errors import ExpansionError


def test_simple_pipeline_instances(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "raw"})
    main.component("f", "filter", streams={"input": "raw", "output": "out"},
                   params={"factor": 2})
    main.component("snk", "sink", streams={"input": "out"})
    prog = expand(b.build(), registry)
    assert set(prog.components) == {"src", "f", "snk"}
    f = prog.components["f"]
    assert f.class_name == "filter"
    assert f.params == {"factor": 2}
    assert f.streams == {"input": "raw", "output": "out"}
    assert f.slice is None


def test_call_inlining_qualifies_names(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "raw"})
    main.call("chain", name="c1", streams={"in": "raw", "out": "mid"},
              params={"factor": 3})
    main.call("chain", name="c2", streams={"in": "mid", "out": "out"},
              params={"factor": 5})
    main.component("snk", "sink", streams={"input": "out"})
    chain = b.procedure("chain", stream_formals=["in", "out"],
                        param_formals={"factor": None})
    chain.component("f", "filter",
                    streams={"input": "${in}", "output": "${out}"},
                    params={"factor": "${factor}"})
    prog = expand(b.build(), registry)
    assert set(prog.components) == {"src", "c1/f", "c2/f", "snk"}
    assert prog.components["c1/f"].params == {"factor": 3}
    assert prog.components["c2/f"].params == {"factor": 5}
    assert prog.components["c1/f"].streams == {"input": "raw", "output": "mid"}
    assert prog.components["c2/f"].streams == {"input": "mid", "output": "out"}


def test_local_streams_are_scoped_per_call(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.call("p", name="a", streams={"out": "x"})
    main.call("p", name="b", streams={"out": "y"})
    main.component("m", "merge", streams={"a": "x", "b": "y", "output": "z"})
    main.component("snk", "sink", streams={"input": "z"})
    p = b.procedure("p", stream_formals=["out"])
    p.component("src", "source", streams={"output": "tmp"})
    p.component("f", "filter", streams={"input": "tmp", "output": "${out}"})
    prog = expand(b.build(), registry)
    # Each instantiation gets its own 'tmp' stream.
    assert prog.components["a/src"].streams["output"] == "a/tmp"
    assert prog.components["b/src"].streams["output"] == "b/tmp"
    assert prog.components["a/f"].streams == {"input": "a/tmp", "output": "x"}


def test_default_param_used_when_omitted(registry):
    b = AppBuilder()
    b.procedure("main").call("p", streams={"out": "s"})
    p = b.procedure("p", stream_formals=["out"], param_formals={"rate": 30})
    p.component("src", "source", streams={"output": "${out}"},
                params={"rate": "${rate}"})
    prog = expand(b.build(), registry)
    assert prog.components["p/src"].params == {"rate": 30}


def test_placeholder_in_longer_string(registry):
    b = AppBuilder()
    b.procedure("main").call("p", streams={"out": "s"}, params={"n": 7})
    p = b.procedure("p", stream_formals=["out"], param_formals={"n": None})
    p.component("src", "source", streams={"output": "${out}"},
                params={"rate": "x${n}y"})
    prog = expand(b.build(), registry)
    assert prog.components["p/src"].params == {"rate": "x7y"}


def test_slice_replication(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "raw"})
    with main.parallel("slice", n=4):
        main.component("f", "filter", streams={"input": "raw", "output": "out"})
    main.component("snk", "sink", streams={"input": "out"})
    prog = expand(b.build(), registry)
    copies = [c for c in prog.components.values() if c.definition_id == "f"]
    assert len(copies) == 4
    assert sorted(c.instance_id for c in copies) == [
        "f[0]", "f[1]", "f[2]", "f[3]"
    ]
    assert {c.slice for c in copies} == {(0, 4), (1, 4), (2, 4), (3, 4)}
    # All copies share the same streams (whole-frame buffer model).
    assert all(c.streams == {"input": "raw", "output": "out"} for c in copies)


def test_parametric_slice_count(registry):
    b = AppBuilder()
    b.procedure("main").call("p", streams={"out": "s"}, params={"n": 3})
    p = b.procedure("p", stream_formals=["out"], param_formals={"n": None})
    with p.parallel("slice", n="${n}"):
        p.component("src", "source", streams={"output": "${out}"})
    prog = expand(b.build(), registry)
    assert len(prog.components) == 3


def test_crossdep_structure(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "raw"})
    with main.parallel("crossdep", n=3):
        with main.parblock():
            main.component("h", "filter", streams={"input": "raw", "output": "mid"})
        with main.parblock():
            main.component("v", "filter", streams={"input": "mid", "output": "out"})
    main.component("snk", "sink", streams={"input": "out"})
    prog = expand(b.build(), registry)
    crossdeps = [n for n in iter_ir(prog.root) if isinstance(n, IRCrossdep)]
    assert len(crossdeps) == 1
    cd = crossdeps[0]
    assert len(cd.parblocks) == 2
    assert len(cd.parblocks[0]) == 3  # 3 copies of h
    assert prog.components["h[1]"].slice == (1, 3)
    assert prog.components["v[2]"].slice == (2, 3)


def test_nested_replication_rejected(registry):
    b = AppBuilder()
    main = b.procedure("main")
    with main.parallel("slice", n=2):
        with main.parallel("slice", n=2):
            main.component("x", "source", streams={"output": "s"})
    with pytest.raises(ExpansionError, match="nested data-parallel"):
        expand(b.build(), registry)


def test_slice_in_task_parallel_allowed(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("s1", "source", streams={"output": "a"})
    main.component("s2", "source", streams={"output": "b"})
    with main.parallel("task"):
        with main.parblock():
            with main.parallel("slice", n=2):
                main.component("f1", "filter", streams={"input": "a", "output": "x"})
        with main.parblock():
            with main.parallel("slice", n=2):
                main.component("f2", "filter", streams={"input": "b", "output": "y"})
    main.component("m", "merge", streams={"a": "x", "b": "y", "output": "z"})
    main.component("snk", "sink", streams={"input": "z"})
    prog = expand(b.build(), registry)
    assert "f1[0]" in prog.components
    assert "f2[1]" in prog.components


def test_manager_collects_members_and_options(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "a"})
    with main.manager("mgr", queue="ui") as m:
        m.on("toggle2", "toggle", option="opt")
        main.component("f1", "filter", streams={"input": "a", "output": "b"})
        with main.option("opt", enabled=False, bypass=[("c", "d")]):
            main.component("f2", "filter", streams={"input": "b", "output": "c"})
    main.component("snk", "sink", streams={"input": "b"})
    prog = expand(b.build(), registry)
    assert set(prog.managers) == {"mgr"}
    mgr = prog.managers["mgr"]
    assert mgr.queue == "ui"
    assert mgr.options == ("opt",)
    assert set(mgr.members) == {"f1", "f2"}
    opt = prog.options["opt"]
    assert opt.manager == "mgr"
    assert opt.default_enabled is False
    assert opt.members == ("f2",)
    assert opt.bypasses == (("c", "d"),)
    # handler option name is qualified
    assert mgr.handlers[0].option == "opt"
    # component back-references
    assert prog.components["f2"].manager == "mgr"
    assert prog.components["f2"].options == ("opt",)
    assert prog.components["f1"].options == ()


def test_manager_in_called_procedure_qualified(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.call("sub", name="s1", streams={"out": "x"})
    main.component("snk", "sink", streams={"input": "x"})
    sub = b.procedure("sub", stream_formals=["out"])
    with sub.manager("m", queue="q") as mgr:
        mgr.on("e", "toggle", option="o")
        with sub.option("o"):
            sub.component("src", "source", streams={"output": "${out}"})
    prog = expand(b.build(), registry)
    assert set(prog.managers) == {"s1/m"}
    assert set(prog.options) == {"s1/o"}
    assert prog.managers["s1/m"].handlers[0].option == "s1/o"


def test_ir_structure_manager_option(registry):
    b = AppBuilder()
    main = b.procedure("main")
    with main.manager("m", queue="q"):
        with main.option("o"):
            main.component("src", "source", streams={"output": "s"})
    prog = expand(b.build(), registry)
    nodes = list(iter_ir(prog.root))
    assert any(isinstance(n, IRManager) and n.qname == "m" for n in nodes)
    assert any(isinstance(n, IROption) and n.qname == "o" for n in nodes)
    assert any(isinstance(n, IRLeaf) for n in nodes)


def test_manager_inside_slice_rejected(registry):
    b = AppBuilder()
    main = b.procedure("main")
    with main.parallel("slice", n=2):
        with main.manager("m", queue="q"):
            main.component("x", "source", streams={"output": "s"})
    with pytest.raises(ExpansionError, match="manager.*may not appear"):
        expand(b.build(), registry)


def test_reconfigure_request_substitution(registry):
    b = AppBuilder()
    b.procedure("main").call("p", streams={"out": "s"}, params={"pos": "3,4"})
    p = b.procedure("p", stream_formals=["out"], param_formals={"pos": None})
    p.component("src", "source", streams={"output": "${out}"},
                reconfigure="pos=${pos}")
    prog = expand(b.build(), registry)
    assert prog.components["p/src"].reconfigure == "pos=3,4"


def test_queue_names_are_global_but_parametric(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.call("sub", name="a", streams={"out": "x"}, params={"q": "qa"})
    main.call("sub", name="b", streams={"out": "y"}, params={"q": "qb"})
    main.component("m", "merge", streams={"a": "x", "b": "y", "output": "z"})
    main.component("snk", "sink", streams={"input": "z"})
    sub = b.procedure("sub", stream_formals=["out"], param_formals={"q": None})
    with sub.manager("m", queue="${q}"):
        sub.component("src", "source", streams={"output": "${out}"})
    prog = expand(b.build(), registry)
    assert prog.managers["a/m"].queue == "qa"
    assert prog.managers["b/m"].queue == "qb"
    assert set(prog.queues) == {"qa", "qb"}
