"""Tests for the XSPCL XML parser."""

from __future__ import annotations

import pytest

from repro.core import parse_string
from repro.core.ast import CallNode, ComponentNode, ManagerNode, OptionNode, ParallelNode
from repro.core.parser import parse_value
from repro.errors import ParseError


MINIMAL = """
<xspcl version="1.0">
  <procedure name="main">
    <body>
      <component name="src" class="source">
        <stream port="output" ref="data"/>
      </component>
      <component name="snk" class="sink">
        <stream port="input" ref="data"/>
      </component>
    </body>
  </procedure>
</xspcl>
"""


def test_parse_minimal():
    spec = parse_string(MINIMAL)
    assert spec.version == "1.0"
    assert set(spec.procedures) == {"main"}
    body = spec.main.body
    assert len(body) == 2
    assert isinstance(body[0], ComponentNode)
    assert body[0].name == "src"
    assert body[0].class_name == "source"
    assert body[0].streams == {"output": "data"}


def test_parse_value_typing():
    assert parse_value("3") == 3
    assert parse_value("3.5") == 3.5
    assert parse_value("true") is True
    assert parse_value("False") is False
    assert parse_value("hello") == "hello"
    assert parse_value("${x}") == "${x}"  # placeholders stay strings
    assert parse_value("12${x}") == "12${x}"


def test_component_params_and_reconfigure():
    spec = parse_string(
        """
        <xspcl><procedure name="main"><body>
          <component name="f" class="filter">
            <stream port="input" ref="a"/>
            <stream port="output" ref="b"/>
            <param name="factor" value="3"/>
            <reconfigure request="pos=1,2"/>
          </component>
        </body></procedure></xspcl>
        """
    )
    comp = spec.main.body[0]
    assert isinstance(comp, ComponentNode)
    assert comp.params == {"factor": 3}
    assert comp.reconfigure == "pos=1,2"


def test_procedure_formals_and_call():
    spec = parse_string(
        """
        <xspcl>
          <procedure name="main"><body>
            <call procedure="chain" name="c1">
              <stream name="in" ref="raw"/>
              <param name="factor" value="4"/>
            </call>
          </body></procedure>
          <procedure name="chain">
            <params>
              <stream name="in"/>
              <param name="factor" default="2"/>
            </params>
            <body>
              <component name="f" class="filter">
                <stream port="input" ref="${in}"/>
                <stream port="output" ref="out"/>
                <param name="factor" value="${factor}"/>
              </component>
            </body>
          </procedure>
        </xspcl>
        """
    )
    call = spec.main.body[0]
    assert isinstance(call, CallNode)
    assert call.procedure == "chain"
    assert call.streams == {"in": "raw"}
    assert call.params == {"factor": 4}
    chain = spec.procedures["chain"]
    assert chain.formal_stream_names() == {"in"}
    assert [f.default for f in chain.param_formals] == [2]


def test_parallel_shapes():
    spec = parse_string(
        """
        <xspcl><procedure name="main"><body>
          <parallel shape="task">
            <parblock><component name="a" class="source">
              <stream port="output" ref="s1"/></component></parblock>
            <parblock><component name="b" class="source">
              <stream port="output" ref="s2"/></component></parblock>
          </parallel>
          <parallel shape="slice" n="8">
            <parblock><component name="c" class="filter">
              <stream port="input" ref="s1"/>
              <stream port="output" ref="s3"/></component></parblock>
          </parallel>
        </body></procedure></xspcl>
        """
    )
    task, sl = spec.main.body
    assert isinstance(task, ParallelNode) and task.shape == "task"
    assert len(task.parblocks) == 2
    assert isinstance(sl, ParallelNode) and sl.shape == "slice" and sl.n == 8


def test_manager_and_option():
    spec = parse_string(
        """
        <xspcl><procedure name="main"><body>
          <manager name="m" queue="ui">
            <on event="pip2" action="toggle" option="o"/>
            <on event="quit" action="forward" target="mainq"/>
            <on event="move" action="reconfigure" request="pos=0,0"/>
            <body>
              <option name="o" enabled="false">
                <bypass from="mid" to="out"/>
                <component name="x" class="filter">
                  <stream port="input" ref="mid"/>
                  <stream port="output" ref="out"/>
                </component>
              </option>
            </body>
          </manager>
        </body></procedure></xspcl>
        """
    )
    mgr = spec.main.body[0]
    assert isinstance(mgr, ManagerNode)
    assert mgr.queue == "ui"
    assert [h.action for h in mgr.handlers] == ["toggle", "forward", "reconfigure"]
    opt = mgr.body[0]
    assert isinstance(opt, OptionNode)
    assert opt.enabled is False
    assert opt.bypasses[0].src == "mid"
    assert opt.bypasses[0].dst == "out"


# -- error cases -------------------------------------------------------------


@pytest.mark.parametrize(
    "xml, match",
    [
        ("<nope/>", "root element"),
        ("<xspcl><weird/></xspcl>", "unexpected tag"),
        (
            "<xspcl><procedure name='p'/></xspcl>",
            "no <body>",
        ),
        (
            "<xspcl><procedure name='p'><body>"
            "<component name='c' class='x'><bogus/></component>"
            "</body></procedure></xspcl>",
            "unexpected tag",
        ),
        (
            "<xspcl><procedure name='p'><body><component class='x' name='c'>"
            "<stream port='p' ref='s'/><stream port='p' ref='t'/>"
            "</component></body></procedure></xspcl>",
            "duplicate stream binding",
        ),
        (
            "<xspcl><procedure name='p'><body>"
            "<parallel shape='bogus'><parblock/></parallel>"
            "</body></procedure></xspcl>",
            "unknown parallel shape",
        ),
        (
            "<xspcl><procedure name='p'><body>"
            "<parallel shape='slice'><parblock/></parallel>"
            "</body></procedure></xspcl>",
            "requires attribute n",
        ),
        (
            "<xspcl><procedure name='p'><body>"
            "<parallel shape='slice' n='2'><parblock/><parblock/></parallel>"
            "</body></procedure></xspcl>",
            "exactly one",
        ),
        (
            "<xspcl><procedure name='p'><body>"
            "<parallel shape='task' n='2'><parblock/></parallel>"
            "</body></procedure></xspcl>",
            "does not take attribute n",
        ),
        (
            "<xspcl><procedure name='p'><body>"
            "<manager name='m' queue='q'><on event='e' action='toggle'/>"
            "<body/></manager></body></procedure></xspcl>",
            "requires attribute option",
        ),
        (
            "<xspcl><procedure name='p'><body>"
            "<manager name='m' queue='q'><on event='e' action='forward'/>"
            "<body/></manager></body></procedure></xspcl>",
            "requires attribute target",
        ),
        (
            "<xspcl><procedure name='p'><body>"
            "<manager name='m' queue='q'/></body></procedure></xspcl>",
            "requires a <body>",
        ),
        (
            "<xspcl><procedure name='p'><body>"
            "<component name='c'/></body></procedure></xspcl>",
            "missing required attribute 'class'",
        ),
        (
            "<xspcl><procedure name='a'><body/></procedure>"
            "<procedure name='a'><body/></procedure></xspcl>",
            "duplicate procedure",
        ),
    ],
)
def test_parse_errors(xml, match):
    with pytest.raises(ParseError, match=match):
        parse_string(xml)


def test_malformed_xml_reports_line():
    with pytest.raises(ParseError, match="malformed XML"):
        parse_string("<xspcl>\n<procedure\n</xspcl>")


def test_error_carries_line_number():
    xml = "<xspcl>\n  <procedure name='p'>\n    <body>\n      <weird/>\n    </body>\n  </procedure>\n</xspcl>"
    with pytest.raises(ParseError, match="line 4"):
        parse_string(xml)


def test_empty_parblock_parses_but_is_for_validator():
    # The parser accepts an empty parblock; the validator rejects it.
    spec = parse_string(
        "<xspcl><procedure name='main'><body>"
        "<parallel shape='task'><parblock/></parblock-typo>"
        "</body></procedure></xspcl>".replace("</parblock-typo>", "</parallel>")
    )
    par = spec.main.body[0]
    assert isinstance(par, ParallelNode)
    assert par.parblocks == ((),)
