"""Shared fixtures for XSPCL core tests: a tiny synthetic registry."""

from __future__ import annotations

import pytest

from repro.core.ports import PortSpec


@pytest.fixture()
def registry() -> dict[str, PortSpec]:
    """Component classes used by core-language tests.

    Deliberately synthetic (not the video components) so language tests
    do not depend on the component library.
    """
    return {
        "source": PortSpec(outputs=("output",), optional_params=("rate", "period", "queue", "event")),
        "sink": PortSpec(inputs=("input",), optional_params=("expect",)),
        "filter": PortSpec(
            inputs=("input",),
            outputs=("output",),
            optional_params=("factor", "queue", "mode"),
        ),
        "merge": PortSpec(inputs=("a", "b"), outputs=("output",)),
        "split": PortSpec(inputs=("input",), outputs=("a", "b")),
        "strict": PortSpec(
            inputs=("input",),
            outputs=("output",),
            required_params=("gain",),
        ),
    }
