"""Tests for the fluent builder's error handling and structure."""

from __future__ import annotations

import pytest

from repro.core import AppBuilder
from repro.core.ast import CallNode, ManagerNode, OptionNode, ParallelNode
from repro.errors import XSPCLError


def test_duplicate_procedure_rejected():
    b = AppBuilder()
    b.procedure("main")
    with pytest.raises(XSPCLError, match="duplicate procedure"):
        b.procedure("main")


def test_statement_inside_task_parallel_requires_parblock():
    b = AppBuilder()
    main = b.procedure("main")
    with pytest.raises(XSPCLError, match="parblock"):
        with main.parallel("task"):
            main.component("x", "source", streams={"output": "s"})


def test_parblock_outside_parallel_rejected():
    b = AppBuilder()
    main = b.procedure("main")
    with pytest.raises(XSPCLError, match="only valid directly inside"):
        with main.parblock():
            pass


def test_slice_parallel_has_implicit_parblock():
    b = AppBuilder()
    main = b.procedure("main")
    with main.parallel("slice", n=4):
        main.component("x", "source", streams={"output": "s"})
    spec = b.build()
    par = spec.main.body[0]
    assert isinstance(par, ParallelNode)
    assert par.shape == "slice"
    assert len(par.parblocks) == 1
    assert len(par.parblocks[0]) == 1


def test_unclosed_blocks_detected_at_build():
    b = AppBuilder()
    main = b.procedure("main")
    cm = main.parallel("slice", n=2)
    cm.__enter__()  # never exited
    with pytest.raises(XSPCLError, match="unbalanced"):
        b.build()


def test_call_defaults_name_to_procedure():
    b = AppBuilder()
    main = b.procedure("main")
    main.call("chain", streams={"in": "x"})
    node = b.build().main.body[0]
    assert isinstance(node, CallNode)
    assert node.name == "chain"


def test_manager_handle_is_chainable():
    b = AppBuilder()
    main = b.procedure("main")
    with main.manager("m", queue="q") as mgr:
        mgr.on("a", "toggle", option="o").on("b", "forward", target="t")
        with main.option("o"):
            main.component("x", "source", streams={"output": "s"})
    node = b.build().main.body[0]
    assert isinstance(node, ManagerNode)
    assert [h.event for h in node.handlers] == ["a", "b"]
    assert isinstance(node.body[0], OptionNode)


def test_param_formals_mapping_and_sequence():
    b = AppBuilder()
    p1 = b.procedure("p1", param_formals={"a": 1, "b": None})
    p1.component("x", "source", streams={"output": "s"})
    p2 = b.procedure("p2", param_formals=["c"])
    p2.component("y", "source", streams={"output": "t"})
    b.procedure("main")
    spec = b.build()
    assert [(f.name, f.default) for f in spec.procedures["p1"].param_formals] \
        == [("a", 1), ("b", None)]
    assert [(f.name, f.default) for f in spec.procedures["p2"].param_formals] \
        == [("c", None)]


def test_nested_structures_compose():
    b = AppBuilder()
    main = b.procedure("main")
    with main.parallel("task"):
        with main.parblock():
            with main.parallel("slice", n=2):
                main.component("a", "f", streams={})
        with main.parblock():
            with main.manager("m", queue="q"):
                with main.option("o"):
                    main.component("b", "f", streams={})
    spec = b.build()
    outer = spec.main.body[0]
    assert isinstance(outer, ParallelNode)
    inner_slice = outer.parblocks[0][0]
    assert isinstance(inner_slice, ParallelNode) and inner_slice.shape == "slice"
    inner_mgr = outer.parblocks[1][0]
    assert isinstance(inner_mgr, ManagerNode)
