"""Tests for Program.build_graph: task graphs per option configuration."""

from __future__ import annotations

import pytest

from repro.core import AppBuilder, expand
from repro.errors import ReconfigurationError, ValidationError
from repro.graph import is_series_parallel


def pipeline_prog(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "raw"})
    main.component("f", "filter", streams={"input": "raw", "output": "out"})
    main.component("snk", "sink", streams={"input": "out"})
    return expand(b.build(), registry)


def test_linear_graph(registry):
    pg = pipeline_prog(registry).build_graph()
    assert set(pg.graph.node_ids) == {"src", "f", "snk"}
    assert pg.graph.has_edge("src", "f")
    assert pg.graph.has_edge("f", "snk")
    assert pg.active_components == ("src", "f", "snk")


def test_stream_table_orientation(registry):
    pg = pipeline_prog(registry).build_graph()
    raw = pg.streams["raw"]
    assert [w.instance_id for w in raw.writers] == ["src"]
    assert [r.instance_id for r in raw.readers] == ["f"]
    assert raw.writers[0].port == "output"
    assert raw.readers[0].port == "input"


def test_slice_copies_in_graph(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "raw"})
    with main.parallel("slice", n=4):
        main.component("f", "filter", streams={"input": "raw", "output": "out"})
    main.component("snk", "sink", streams={"input": "out"})
    pg = expand(b.build(), registry).build_graph()
    for i in range(4):
        assert pg.graph.has_edge("src", f"f[{i}]")
        assert pg.graph.has_edge(f"f[{i}]", "snk")
    # one logical writer with 4 slice endpoints
    assert len(pg.streams["out"].writers) == 4


def test_crossdep_edges(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "raw"})
    with main.parallel("crossdep", n=4):
        with main.parblock():
            main.component("h", "filter", streams={"input": "raw", "output": "mid"})
        with main.parblock():
            main.component("v", "filter", streams={"input": "mid", "output": "out"})
    main.component("snk", "sink", streams={"input": "out"})
    pg = expand(b.build(), registry).build_graph()
    g = pg.graph
    # v[i] depends on h[i-1], h[i], h[i+1] (clamped) — paper Fig. 5
    for i in range(4):
        for j in range(4):
            if abs(i - j) <= 1:
                assert g.has_edge(f"h[{j}]", f"v[{i}]")
            else:
                assert not g.has_edge(f"h[{j}]", f"v[{i}]")
    assert not is_series_parallel(g)


def test_crossdep_region_entry_and_exit(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "raw"})
    with main.parallel("crossdep", n=3):
        with main.parblock():
            main.component("h", "filter", streams={"input": "raw", "output": "mid"})
        with main.parblock():
            main.component("v", "filter", streams={"input": "mid", "output": "out"})
    main.component("snk", "sink", streams={"input": "out"})
    pg = expand(b.build(), registry).build_graph()
    # all h copies start the region; all v copies must finish before snk
    for i in range(3):
        assert pg.graph.has_edge("src", f"h[{i}]")
        assert pg.graph.has_edge(f"v[{i}]", "snk")


def test_manager_enter_exit_bracket_subgraph(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "a"})
    with main.manager("m", queue="q"):
        main.component("f", "filter", streams={"input": "a", "output": "b"})
    main.component("snk", "sink", streams={"input": "b"})
    pg = expand(b.build(), registry).build_graph()
    g = pg.graph
    assert g.node("m.enter").kind == "manager_enter"
    assert g.node("m.exit").kind == "manager_exit"
    assert g.has_edge("src", "m.enter")
    assert g.has_edge("m.enter", "f")
    assert g.has_edge("f", "m.exit")
    assert g.has_edge("m.exit", "snk")


def test_option_disabled_drops_nodes(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "a"})
    with main.manager("m", queue="q"):
        main.component("f1", "filter", streams={"input": "a", "output": "b"})
        with main.option("opt", enabled=True, bypass=[("b", "c")]):
            main.component("f2", "filter", streams={"input": "b", "output": "c"})
    main.component("snk", "sink", streams={"input": "c"})
    prog = expand(b.build(), registry)

    enabled = prog.build_graph({"opt": True})
    assert "f2" in enabled.graph
    assert enabled.aliases == {}

    # Disabled: f2 vanishes; the bypass redirects stream 'b' onto 'c', so
    # f1 feeds the sink directly.
    disabled = prog.build_graph({"opt": False})
    assert "f2" not in disabled.graph
    assert disabled.aliases == {"b": "c"}


def test_bypass_rewires_stream_table(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "a"})
    with main.manager("m", queue="q"):
        main.component("f1", "filter", streams={"input": "a", "output": "mid"})
        with main.option("pip2", enabled=True, bypass=[("mid", "final")]):
            main.component("f2", "filter", streams={"input": "mid", "output": "final"})
    main.component("snk", "sink", streams={"input": "final"})
    prog = expand(b.build(), registry)

    on = prog.build_graph()
    assert [w.instance_id for w in on.streams["final"].writers] == ["f2"]
    assert [w.instance_id for w in on.streams["mid"].writers] == ["f1"]

    off = prog.build_graph({"pip2": False})
    # f1 now writes 'final' directly; stream 'mid' no longer exists.
    assert [w.instance_id for w in off.streams["final"].writers] == ["f1"]
    assert "mid" not in off.streams


def test_unknown_option_rejected(registry):
    prog = pipeline_prog(registry)
    with pytest.raises(ReconfigurationError, match="unknown options"):
        prog.build_graph({"ghost": True})


def test_two_writers_rejected(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("s1", "source", streams={"output": "x"})
    main.component("s2", "source", streams={"output": "x"})
    main.component("snk", "sink", streams={"input": "x"})
    prog = expand(b.build(), registry)
    with pytest.raises(ValidationError, match="multiple logical writers"):
        prog.build_graph()


def test_read_without_writer_rejected(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("snk", "sink", streams={"input": "ghost"})
    prog = expand(b.build(), registry)
    with pytest.raises(ValidationError, match="no.*active writer"):
        prog.build_graph()


def test_reader_before_writer_rejected(registry):
    # snk reads 'out' but is composed BEFORE the filter that writes it.
    b = AppBuilder()
    main = b.procedure("main")
    main.component("snk", "sink", streams={"input": "out"})
    main.component("src", "source", streams={"output": "raw"})
    main.component("f", "filter", streams={"input": "raw", "output": "out"})
    prog = expand(b.build(), registry)
    with pytest.raises(ValidationError, match="not scheduled after"):
        prog.build_graph()


def test_disabled_manager_body_still_has_enter_exit(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "a"})
    main.component("snk", "sink", streams={"input": "a"})
    with main.manager("m", queue="q"):
        with main.option("o", enabled=False):
            main.component("f", "filter", streams={"input": "a", "output": "b"})
    pg = expand(b.build(), registry).build_graph()
    assert pg.graph.has_edge("m.enter", "m.exit")


def test_to_sp_tree_crossdep_is_spized(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "raw"})
    with main.parallel("crossdep", n=3):
        with main.parblock():
            main.component("h", "filter", streams={"input": "raw", "output": "mid"})
        with main.parblock():
            main.component("v", "filter", streams={"input": "mid", "output": "out"})
    main.component("snk", "sink", streams={"input": "out"})
    prog = expand(b.build(), registry)
    tree = prog.to_sp_tree()
    labels = [leaf.label for leaf in tree.leaves()]
    assert labels.index("h[0]") < labels.index("v[0]")
    # the SP tree is a valid SP graph by construction
    from repro.graph import TaskGraph

    assert is_series_parallel(TaskGraph.from_sp(tree))


def test_to_sp_tree_respects_option_states(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "a"})
    with main.manager("m", queue="q"):
        with main.option("o", enabled=True):
            main.component("f", "filter", streams={"input": "a", "output": "b"})
    main.component("snk", "sink", streams={"input": "a"})
    prog = expand(b.build(), registry)
    on_labels = {l.label for l in prog.to_sp_tree({"o": True}).leaves()}
    off_labels = {l.label for l in prog.to_sp_tree({"o": False}).leaves()}
    assert "f" in on_labels
    assert "f" not in off_labels


def test_graph_is_acyclic_and_ordered(registry):
    pg = pipeline_prog(registry).build_graph()
    order = pg.graph.topological_order()
    assert order.index("src") < order.index("f") < order.index("snk")
