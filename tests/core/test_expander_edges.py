"""Additional expander edge cases."""

from __future__ import annotations

import pytest

from repro.core import AppBuilder, expand
from repro.core.program import IRCrossdep, iter_ir
from repro.errors import ExpansionError


def test_slice_n_one_single_copy(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "a"})
    with main.parallel("slice", n=1):
        main.component("f", "filter", streams={"input": "a", "output": "b"})
    main.component("snk", "sink", streams={"input": "b"})
    prog = expand(b.build(), registry)
    assert "f[0]" in prog.components
    assert prog.components["f[0]"].slice == (0, 1)


def test_crossdep_three_parblocks(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "s0"})
    with main.parallel("crossdep", n=3):
        for stage in range(3):
            with main.parblock():
                main.component(f"p{stage}", "filter",
                               streams={"input": f"s{stage}",
                                        "output": f"s{stage+1}"})
    main.component("snk", "sink", streams={"input": "s3"})
    prog = expand(b.build(), registry)
    cd = next(n for n in iter_ir(prog.root) if isinstance(n, IRCrossdep))
    assert len(cd.parblocks) == 3
    pg = prog.build_graph()
    # chained crossdep edges: p1[i] <- p0[i-1..i+1], p2[i] <- p1[i-1..i+1]
    assert pg.graph.has_edge("p0[0]", "p1[1]")
    assert pg.graph.has_edge("p1[2]", "p2[1]")
    assert not pg.graph.has_edge("p0[0]", "p2[0]")


def test_parblock_with_series_inside_crossdep(registry):
    """Copies are whole-parblock units: series content replicates as one."""
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "raw"})
    with main.parallel("crossdep", n=2):
        with main.parblock():
            main.component("a", "filter", streams={"input": "raw", "output": "m"})
            main.component("b", "filter", streams={"input": "m", "output": "n"})
        with main.parblock():
            main.component("c", "filter", streams={"input": "n", "output": "out"})
    main.component("snk", "sink", streams={"input": "out"})
    prog = expand(b.build(), registry)
    pg = prog.build_graph()
    # within copy i: a[i] -> b[i]; crossdep: c[i] <- sinks of copies i-1..i+1
    assert pg.graph.has_edge("a[0]", "b[0]")
    assert pg.graph.has_edge("b[0]", "c[0]")
    assert pg.graph.has_edge("b[1]", "c[0]")
    assert not pg.graph.has_edge("a[0]", "c[0]")


def test_parametric_n_float_rejected(registry):
    b = AppBuilder()
    b.procedure("main").call("p", streams={"out": "s"}, params={"n": 2.5})
    p = b.procedure("p", stream_formals=["out"], param_formals={"n": None})
    with p.parallel("slice", n="${n}"):
        p.component("src", "source", streams={"output": "${out}"})
    with pytest.raises(ExpansionError, match="integer"):
        expand(b.build(), registry)


def test_parametric_n_zero_rejected(registry):
    b = AppBuilder()
    b.procedure("main").call("p", streams={"out": "s"}, params={"n": 0})
    p = b.procedure("p", stream_formals=["out"], param_formals={"n": None})
    with p.parallel("slice", n="${n}"):
        p.component("src", "source", streams={"output": "${out}"})
    with pytest.raises(ExpansionError, match=">= 1"):
        expand(b.build(), registry)


def test_bool_param_substitution_roundtrips(registry):
    b = AppBuilder()
    b.procedure("main").call("p", streams={"out": "s"}, params={"flag": True})
    p = b.procedure("p", stream_formals=["out"], param_formals={"flag": None})
    p.component("src", "source", streams={"output": "${out}"},
                params={"rate": "${flag}"})
    prog = expand(b.build(), registry)
    assert prog.components["p/src"].params["rate"] is True


def test_nested_calls_three_deep(registry):
    b = AppBuilder()
    b.procedure("main").call("outer", streams={"out": "final"})
    outer = b.procedure("outer", stream_formals=["out"])
    outer.call("middle", streams={"out": "${out}"})
    middle = b.procedure("middle", stream_formals=["out"])
    middle.call("inner", streams={"out": "${out}"})
    inner = b.procedure("inner", stream_formals=["out"])
    inner.component("src", "source", streams={"output": "${out}"})
    prog = expand(b.build(), registry)
    assert set(prog.components) == {"outer/middle/inner/src"}
    assert prog.components["outer/middle/inner/src"].streams["output"] == "final"


def test_same_procedure_slice_counts_differ_per_call(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "raw"})
    main.call("stage", name="s1", streams={"i": "raw", "o": "mid"},
              params={"n": 2})
    main.call("stage", name="s2", streams={"i": "mid", "o": "out"},
              params={"n": 3})
    main.component("snk", "sink", streams={"input": "out"})
    stage = b.procedure("stage", stream_formals=["i", "o"],
                        param_formals={"n": None})
    with stage.parallel("slice", n="${n}"):
        stage.component("f", "filter", streams={"input": "${i}",
                                                "output": "${o}"})
    prog = expand(b.build(), registry)
    assert len([c for c in prog.components if c.startswith("s1/")]) == 2
    assert len([c for c in prog.components if c.startswith("s2/")]) == 3


def test_option_nested_inside_option(registry):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "source", streams={"output": "a"})
    main.component("snk", "sink", streams={"input": "a"})
    with main.manager("m", queue="q") as mgr:
        mgr.on("e1", "toggle", option="outer")
        mgr.on("e2", "toggle", option="inner")
        with main.option("outer", enabled=False):
            main.component("f1", "filter", streams={"input": "a", "output": "b"})
            with main.option("inner", enabled=False):
                main.component("f2", "filter", streams={"input": "b", "output": "c"})
    prog = expand(b.build(), registry)
    assert prog.components["f2"].options == ("outer", "inner")
    # inner enabled but outer disabled: f2 still absent
    pg = prog.build_graph({"inner": True})
    assert "f2" not in pg.graph
    pg2 = prog.build_graph({"outer": True, "inner": True})
    assert "f2" in pg2.graph
