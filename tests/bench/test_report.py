"""Tests for the ASCII report renderers."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.bench.report import bar_chart, format_table, line_chart


def test_format_table_alignment():
    text = format_table(
        ("name", "value"),
        [("alpha", 1.0), ("b", 123456.0)],
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    # all rows same width
    assert len({len(l) for l in lines[1:]}) == 1


def test_format_table_float_formatting():
    text = format_table(("x",), [(1234.5678,), (1.2345,)])
    assert "1,235" in text  # large floats grouped, no decimals
    assert "1.23" in text  # small floats 2 decimals


def test_format_table_empty_rows():
    text = format_table(("a", "b"), [])
    assert "a" in text and "b" in text


def test_bar_chart_scales_to_max():
    text = bar_chart([("x", 10.0), ("y", 5.0)], width=20)
    lines = text.splitlines()
    assert lines[0].count("#") == 20
    assert lines[1].count("#") == 10


def test_bar_chart_zero_and_empty():
    assert bar_chart([]) == "(no data)"
    text = bar_chart([("z", 0.0)])
    assert "z" in text


def test_line_chart_contains_series_marks_and_legend():
    text = line_chart(
        {"a": [(1, 1), (2, 2)], "b": [(1, 2), (2, 1)]},
        width=20, height=6, title="T",
    )
    assert "T" in text
    assert "*=a" in text and "+=b" in text
    assert "*" in text and "+" in text


def test_line_chart_empty():
    assert line_chart({}) == "(no data)"


def test_line_chart_single_point():
    text = line_chart({"s": [(3.0, 7.0)]}, width=10, height=4)
    assert "*" in text


@given(
    st.dictionaries(
        st.sampled_from(["s1", "s2", "s3"]),
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=1,
            max_size=10,
        ),
        min_size=1,
        max_size=3,
    )
)
def test_prop_line_chart_never_crashes(series):
    text = line_chart(series, width=30, height=8)
    assert isinstance(text, str)
    assert len(text.splitlines()) >= 8


@given(
    st.lists(
        st.tuples(st.text(min_size=1, max_size=8,
                          alphabet=st.characters(min_codepoint=33,
                                                 max_codepoint=126)),
                  st.floats(0, 1e9, allow_nan=False)),
        min_size=1, max_size=8,
    )
)
def test_prop_bar_chart_never_crashes(items):
    assert isinstance(bar_chart(items), str)
