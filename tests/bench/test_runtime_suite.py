"""Tests for the real-runtime throughput suite (repro.bench.runtime)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.runtime import (
    DEFAULT_MAX_REGRESSION,
    PROFILES,
    RuntimeProfile,
    _measure_cell,
    _wall_metrics,
    compare,
    probe_program,
    probe_registry,
    render_report,
)
from repro.errors import ReproError

REPO_ROOT = Path(__file__).resolve().parents[2]

#: small enough to run in a test, blocking enough to measure overlap
TINY = RuntimeProfile(
    "tiny", frames=5, repeats=1, width=16, height=16, slices=2,
    workers=(1, 4), pipeline_depth=4, probe_stages=4, probe_sleep_ms=20.0,
)


def _payload(app="pip", backend="threaded", key="n1", **cell):
    base = {"workers": 1, "frames": 8, "seconds": 1.0,
            "median_seconds": 1.0, "frames_per_sec": 8.0, "speedup": 1.0}
    base.update(cell)
    return {"profile": "quick", "apps": {app: {backend: {key: base}}}}


def test_profiles_are_jpeg_safe():
    # 4:2:0 chroma planes must stay 8x8-block aligned for the JPEG stages
    for profile in PROFILES.values():
        assert profile.width % 16 == 0 and profile.height % 16 == 0
        assert min(profile.workers) == 1  # speedup base


def test_runtime_gate_is_wider_than_simulator_gate():
    from repro.bench.perf import DEFAULT_MAX_REGRESSION as SIM_GATE

    assert DEFAULT_MAX_REGRESSION > SIM_GATE


def test_probe_program_expands():
    program = probe_program(PROFILES["quick"])
    classes = {inst.class_name for inst in program.components.values()}
    assert classes == {"probe_source", "probe_sleep", "probe_sink"}
    assert set(classes) <= set(probe_registry())


def test_wall_metrics_prefer_median_with_seconds_fallback():
    payload = _payload(median_seconds=2.0, seconds=1.5)
    assert _wall_metrics(payload) == {"pip/threaded/n1": 2.0}
    old = _payload()
    del old["apps"]["pip"]["threaded"]["n1"]["median_seconds"]
    assert _wall_metrics(old) == {"pip/threaded/n1": 1.0}


def test_wall_metrics_skip_occupancy_and_include_probe():
    payload = _payload()
    payload["apps"]["pip"]["occupancy"] = {"workers": 4,
                                           "per_worker_busy": {},
                                           "utilization": 0.5}
    payload["probe"] = {"process": {"n4": {"median_seconds": 0.25}}}
    metrics = _wall_metrics(payload)
    assert metrics == {"pip/threaded/n1": 1.0, "probe/process/n4": 0.25}


def test_compare_profile_mismatch_raises():
    with pytest.raises(ReproError, match="profile mismatch"):
        compare(_payload(), {"profile": "full"})


def test_compare_gates_on_medians_only():
    baseline = _payload(median_seconds=1.0)
    fast_best_slow_median = _payload(seconds=0.5, median_seconds=1.5)
    regressions = compare(fast_best_slow_median, baseline)
    assert regressions and "pip/threaded/n1" in regressions[0]
    within = _payload(seconds=2.0, median_seconds=1.0 + DEFAULT_MAX_REGRESSION)
    assert compare(within, baseline) == []


def test_compare_ignores_one_sided_metrics():
    current = _payload(app="blur", median_seconds=99.0)
    assert compare(current, _payload()) == []


def test_probe_speedup_measures_dispatcher_scalability():
    """Blocking kernels overlap on any host: 4 workers must beat 1.

    This is the core-count-independent form of the ">=2x at 4 workers"
    acceptance bar — time.sleep releases the GIL and occupies no core, so
    a flat curve here means the runtime serialises dispatch.
    """
    program, registry = probe_program(TINY), probe_registry()
    one = _measure_cell(program, registry, "threaded", 1, TINY)
    four = _measure_cell(program, registry, "threaded", 4, TINY)
    assert four["frames_per_sec"] >= 2.0 * one["frames_per_sec"]


def test_committed_baseline_meets_the_probe_bar():
    """BENCH_runtime.json is an acceptance artifact, not just a baseline."""
    payload = json.loads((REPO_ROOT / "BENCH_runtime.json").read_text())
    assert payload["suite"] == "runtime"
    assert isinstance(payload["cpu_count"], int)
    for backend in ("threaded", "process"):
        cells = payload["probe"][backend]
        widest = max(cells, key=lambda k: int(k[1:]))
        assert cells[widest]["speedup"] >= 2.0, (
            f"probe {backend} {widest}: committed baseline shows the "
            "runtime serialising blocking kernels"
        )
    # a self-comparison never regresses
    assert compare(payload, payload) == []


def test_committed_baseline_meets_the_fusion_bar():
    """Chain fusion acceptance, pinned in the committed baseline.

    JPiP is the fusable app (PiP/Blur refuse at this profile: sliced/
    unsliced boundaries and crossdeps): the fused process backend must
    hold >= 2x the unfused throughput at every width, shrink the
    control-plane pickle volume, and lift the parallel stages' busy
    fraction — their kernels are identical fused and unfused, so that
    metric isolates the scheduling win from the peephole doing less
    work per frame.
    """
    payload = json.loads((REPO_ROOT / "BENCH_runtime.json").read_text())
    jpip = payload["apps"]["jpip"]
    for key, ratio in jpip["fused_over_unfused"].items():
        assert ratio >= 2.0, f"fused JPiP {key}: {ratio}x < 2x unfused"
    occ, occf = jpip["occupancy"], jpip["occupancy_fused"]
    assert occf["parallel_stage_utilization"] > occ["parallel_stage_utilization"]
    assert occf["meta_pickled_bytes"] < occ["meta_pickled_bytes"]
    assert occf["jobs"] < occ["jobs"]


def test_render_report_mentions_every_cell():
    payload = _payload()
    payload["frames"] = 8
    payload["repeats"] = 3
    payload["python"] = "3.11"
    payload["cpu_count"] = 1
    text = render_report(payload, baseline=_payload(median_seconds=0.5))
    assert "pip:" in text and "threaded" in text
    assert "f/s" in text and "vs baseline" in text


def test_compare_gates_the_autotune_converged_ratio():
    """The autotune section carries its own absolute gate: the converged
    configuration must reach ``gate`` x the best static cell."""
    current = _payload()
    current["autotune"] = {
        "app": "jpip", "gate": 0.95, "ratio": 0.80,
        "converged": {"frames_per_sec": 40.0},
        "best_static": {"frames_per_sec": 50.0},
    }
    regressions = compare(current, _payload())
    assert any("autotune" in r for r in regressions)
    current["autotune"]["ratio"] = 1.01
    assert compare(current, _payload()) == []
    # informational: autotune never enters the flattened wall metrics
    assert _wall_metrics(current) == _wall_metrics(_payload())


def test_committed_baseline_meets_the_autotune_bar():
    """Elastic auto-tuning acceptance, pinned in the committed baseline:
    started mis-tuned (widest pool, batch=1), the controller must land
    within the gate of the best hand-tuned static configuration."""
    payload = json.loads((REPO_ROOT / "BENCH_runtime.json").read_text())
    auto = payload["autotune"]
    assert auto["ratio"] >= auto["gate"]
    assert auto["decisions"], "controller never acted on a mis-tuned start"
    for decision in auto["decisions"]:
        assert {"kind", "iteration", "reason"} <= decision.keys()
    # the grid the ratio is judged against really was measured
    assert auto["best_static"]["key"] in auto["static"]


def test_render_report_includes_the_autotune_section():
    payload = _payload()
    payload["frames"] = 8
    payload["repeats"] = 3
    payload["python"] = "3.11"
    payload["cpu_count"] = 1
    payload["autotune"] = {
        "app": "jpip", "frames": 64, "gate": 0.95, "ratio": 1.02,
        "static": {},
        "best_static": {"key": "n1b4", "frames_per_sec": 70.0},
        "adaptive": {"start_workers": 4, "start_batch": 1,
                     "frames_per_sec": 55.0},
        "converged": {"workers": 1, "batch": 16, "slices": {},
                      "frames_per_sec": 71.4},
        "decisions": [{
            "kind": "set_batch", "iteration": 11, "reason": "dispatch-bound",
            "predicted_fps": 50.0, "achieved_fps": 45.0,
            "prediction_error": -0.1,
        }],
    }
    text = render_report(payload)
    assert "autotune" in text and "best static" in text
    assert "converged" in text and "1.02x" in text
    assert "set_batch@11" in text and "predicted 50.0" in text
