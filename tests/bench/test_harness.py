"""Tests for the benchmark harness (scaled-down frames for speed)."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    ALL_VARIANTS,
    Harness,
    RECONFIG_VARIANTS,
    SEQUENTIAL_PARAMS,
    STATIC_VARIANTS,
)
from repro.errors import ReproError


@pytest.fixture(scope="module")
def harness():
    return Harness(frames_scale=0.1)


def test_variant_tables_cover_the_paper():
    assert set(STATIC_VARIANTS) == {
        "PiP-1", "PiP-2", "JPiP-1", "JPiP-2", "Blur-3x3", "Blur-5x5"
    }
    assert set(RECONFIG_VARIANTS) == {"PiP-12", "JPiP-12", "Blur-35"}
    assert STATIC_VARIANTS["PiP-1"].frames == 96
    assert STATIC_VARIANTS["JPiP-1"].frames == 24  # limited simulation speed
    assert STATIC_VARIANTS["Blur-3x3"].frames == 96


def test_unknown_variant_rejected(harness):
    with pytest.raises(ReproError, match="unknown variant"):
        harness.run_xspcl("PiP-99", nodes=1)


def test_frames_scaling(harness):
    assert harness.frames("PiP-1") == 10
    assert harness.frames("JPiP-1") == 2


def test_invalid_scale_rejected():
    with pytest.raises(ReproError):
        Harness(frames_scale=0)


def test_sequential_params_zero_overheads():
    assert SEQUENTIAL_PARAMS.job_overhead_cycles == 0
    assert SEQUENTIAL_PARAMS.sync_overhead_cycles == 0


def test_results_are_memoized(harness):
    a = harness.run_xspcl("Blur-3x3", nodes=2)
    b = harness.run_xspcl("Blur-3x3", nodes=2)
    assert a is b


def test_programs_are_memoized(harness):
    assert harness.program("PiP-1", "xspcl") is harness.program("PiP-1", "xspcl")


def test_reconfig_variant_has_no_sequential(harness):
    with pytest.raises(ReproError, match="no sequential build"):
        harness.run_sequential("PiP-12")


def test_static_variant_has_no_reconfig_metric(harness):
    with pytest.raises(ReproError, match="not a reconfigurable"):
        harness.reconfig_overhead("PiP-1", 1)


def test_speedup_relative_to_fastest_sequential(harness):
    # definitionally: speedup(1) <= 1 when seq is fastest, and the base
    # is min(sequential, parallel@1)
    for name in ("PiP-1", "Blur-3x3"):
        base = harness.fastest_sequential_cycles(name)
        assert base <= harness.run_sequential(name).cycles
        assert base <= harness.run_xspcl(name, nodes=1).cycles
        assert harness.speedup(name, 1) <= 1.0 + 1e-9


def test_all_variants_simulate_at_scale(harness):
    for name in ALL_VARIANTS:
        result = harness.run_xspcl(name, nodes=2)
        assert result.completed_iterations == harness.frames(name)


def test_custom_cost_params_flow_through():
    from repro.spacecake import CostParams

    cheap = Harness(frames_scale=0.05,
                    cost_params=CostParams(job_overhead_cycles=0.0))
    costly = Harness(frames_scale=0.05,
                     cost_params=CostParams(job_overhead_cycles=50_000.0))
    assert (
        costly.run_xspcl("Blur-3x3", nodes=1).cycles
        > cheap.run_xspcl("Blur-3x3", nodes=1).cycles
    )


def test_figures_run_at_small_scale(harness):
    from repro.bench.figures import (
        ablation_pipeline_depth,
        fig8_sequential_overhead,
        fig9_speedup,
        fig10_reconfiguration_overhead,
    )

    fig8 = fig8_sequential_overhead(harness)
    assert len(fig8.rows) == 6
    assert "FIG8" in fig8.render()

    fig9 = fig9_speedup(harness, nodes=(1, 3))
    assert all(len(row) == 3 for row in fig9.rows)

    fig10 = fig10_reconfiguration_overhead(harness, nodes=(1, 2))
    assert len(fig10.rows) == 3

    abl2 = ablation_pipeline_depth(harness, depths=(1, 2), nodes=2)
    assert len(abl2.rows) == 2
