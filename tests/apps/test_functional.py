"""Functional end-to-end tests: XSPCL parallel output == fused sequential
output, frame for frame, on the threaded runtime (small geometries)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    build_blur,
    build_blur_sequential,
    build_jpip,
    build_jpip_sequential,
    build_pip,
    build_pip_sequential,
    make_program,
)
from repro.components.registry import default_registry
from repro.hinch import ThreadedRuntime

REG = default_registry()

PIP_KW = dict(width=64, height=48, factor=4, frames=3, collect=True)
JPIP_KW = dict(width=64, height=48, pip_height=48, factor=4, slices=3,
               frames=3, collect=True)
BLUR_KW = dict(width=48, height=36, frames=3, collect=True)


def run(spec, *, nodes=2, depth=3, iters=6):
    prog = make_program(spec, name="app")
    rt = ThreadedRuntime(prog, REG, nodes=nodes, pipeline_depth=depth,
                         max_iterations=iters)
    result = rt.run()
    return result


def sink_frames(result):
    return result.components["sink"].ordered_frames()


def sink_planes(result):
    return result.components["sink"].ordered_planes()


@pytest.mark.parametrize("n_pips", [1, 2])
def test_pip_parallel_equals_sequential(n_pips):
    par = sink_frames(run(build_pip(n_pips, slices=3, **PIP_KW)))
    seq = sink_frames(run(build_pip_sequential(n_pips, **{
        k: v for k, v in PIP_KW.items() if k != "slices"})))
    assert len(par) == len(seq) == 6
    for a, b in zip(par, seq):
        assert a == b


def test_pip_output_contains_overlay():
    frames = sink_frames(run(build_pip(1, slices=3, **PIP_KW)))
    # Overlay region (rows 16.., cols 16..) must differ from the pure
    # background in at least one frame (sources have different seeds).
    from repro.components.video import synthetic_frame

    bg0 = synthetic_frame(0, 64, 48, seed=100)
    out0 = frames[0]
    assert not np.array_equal(out0.y, bg0.y)  # overlay blended in
    # outside the overlay the background is "simply copied"
    assert np.array_equal(out0.y[:16, :16], bg0.y[:16, :16])


@pytest.mark.parametrize("n_pips", [1, 2])
def test_jpip_parallel_equals_sequential(n_pips):
    par = sink_frames(run(build_jpip(n_pips, **JPIP_KW), iters=4))
    seq_kw = {k: v for k, v in JPIP_KW.items() if k != "slices"}
    seq = sink_frames(run(build_jpip_sequential(n_pips, **seq_kw), iters=4))
    assert len(par) == len(seq) == 4
    for a, b in zip(par, seq):
        assert a == b


def test_jpip_decode_is_real():
    # The sink output must match an out-of-band decode of the same input.
    from repro.components.jpeg import decode_frame, encode_frame
    from repro.components.video import synthetic_frame

    frames = sink_frames(run(build_jpip(1, **JPIP_KW), iters=2))
    bg = synthetic_frame(0, 64, 48, seed=400)
    decoded_bg = decode_frame(encode_frame(bg, quality=75))
    # Outside the overlay region, output == decoded background.
    assert np.array_equal(frames[0].y[:16, :16], decoded_bg.y[:16, :16])


@pytest.mark.parametrize("size", [3, 5])
def test_blur_parallel_equals_sequential(size):
    par = sink_planes(run(build_blur(size, slices=3, **BLUR_KW)))
    seq = sink_planes(run(build_blur_sequential(size, **{
        k: v for k, v in BLUR_KW.items() if k != "slices"})))
    assert len(par) == len(seq) == 6
    for a, b in zip(par, seq):
        assert np.array_equal(a, b)


def test_blur_actually_blurs():
    planes = sink_planes(run(build_blur(5, slices=3, **BLUR_KW), iters=2))
    from repro.components.video import synthetic_frame

    raw = synthetic_frame(0, 48, 36, seed=300).y
    assert np.var(planes[0].astype(float)) < np.var(raw.astype(float))


def test_pip12_reconfiguration_switches_between_variants():
    """Every PiP-12 output frame matches either the 1-pip or the 2-pip
    rendering of that frame index, and both variants occur."""
    iters = 16
    r12 = run(build_pip(2, slices=3, reconfigurable=True, period=4, **PIP_KW),
              nodes=2, depth=2, iters=iters)
    assert r12.reconfig_count >= 2
    out12 = sink_frames(r12)

    one = sink_frames(run(build_pip(1, slices=3, **PIP_KW), iters=iters))
    two = sink_frames(run(build_pip(2, slices=3, **PIP_KW), iters=iters))

    matched_one = matched_two = 0
    for k in range(iters):
        if out12[k] == one[k]:
            matched_one += 1
        elif out12[k] == two[k]:
            matched_two += 1
        else:
            pytest.fail(f"frame {k} matches neither 1-pip nor 2-pip output")
    assert matched_one > 0, "option never disabled"
    assert matched_two > 0, "option never enabled"


def test_blur35_switches_kernels():
    iters = 12
    r = run(build_blur(reconfigurable=True, period=3, slices=3, **BLUR_KW),
            nodes=2, depth=2, iters=iters)
    assert r.reconfig_count >= 2
    out = sink_planes(r)

    b3 = sink_planes(run(build_blur(3, slices=3, **BLUR_KW), iters=iters))
    b5 = sink_planes(run(build_blur(5, slices=3, **BLUR_KW), iters=iters))
    used3 = used5 = 0
    for k in range(iters):
        if np.array_equal(out[k], b3[k]):
            used3 += 1
        elif np.array_equal(out[k], b5[k]):
            used5 += 1
        else:
            pytest.fail(f"frame {k} matches neither kernel")
    assert used3 > 0 and used5 > 0


def test_pip_works_on_many_nodes_and_depths():
    for nodes, depth in [(1, 1), (1, 5), (4, 5)]:
        frames = sink_frames(
            run(build_pip(1, slices=3, **PIP_KW), nodes=nodes, depth=depth,
                iters=4)
        )
        assert len(frames) == 4
