"""The grouped JPiP variant (§4.1) must stay functionally identical."""

from __future__ import annotations

import pytest

from repro.apps import build_jpip, make_program
from repro.components.registry import default_registry
from repro.errors import XSPCLError
from repro.hinch import ThreadedRuntime
from repro.hinch.grouping import group_linear_chains

REG = default_registry()
KW = dict(width=64, height=48, pip_height=48, factor=4, slices=3, frames=2,
          collect=True)


def frames_of(spec, *, group_chains=False, iters=3):
    program = make_program(spec, name="jpip")
    rt = ThreadedRuntime(program, REG, nodes=2, pipeline_depth=2,
                         max_iterations=iters, group_chains=group_chains)
    return rt.run().components["sink"].ordered_frames()


def test_grouped_structure_shares_slice_copies():
    prog = make_program(build_jpip(1, grouped_stages=True, **{
        k: v for k, v in KW.items() if k != "collect"}), name="jpip")
    # Y idct and downscale live in the same slice region (same copy index)
    idct = prog.components["pip0_idct_y/idct[0]"]
    scale = prog.components["pip0_idct_y/scale[0]"]
    assert idct.slice == scale.slice
    pg = prog.build_graph()
    assert pg.graph.has_edge("pip0_idct_y/idct[0]", "pip0_idct_y/scale[0]")
    # chroma stays split: downscale in its own region
    assert "scale0_u[0]" in prog.components


def test_grouped_chains_merge_under_group_chains():
    prog = make_program(build_jpip(1, grouped_stages=True, **{
        k: v for k, v in KW.items() if k != "collect"}), name="jpip")
    grouped = group_linear_chains(prog.build_graph())
    merged = [n for n in grouped.graph.node_ids if "+" in n]
    assert any("idct" in m and "scale" in m for m in merged)


def test_grouped_output_identical_to_split():
    split = frames_of(build_jpip(1, **KW))
    grouped = frames_of(build_jpip(1, grouped_stages=True, **KW))
    grouped_merged = frames_of(build_jpip(1, grouped_stages=True, **KW),
                               group_chains=True)
    assert len(split) == len(grouped) == len(grouped_merged) == 3
    for a, b, c in zip(split, grouped, grouped_merged):
        assert a == b == c


def test_grouped_incompatible_with_reconfigurable():
    with pytest.raises(XSPCLError, match="static-variant"):
        build_jpip(2, reconfigurable=True, grouped_stages=True)
