"""Structural tests: the app specs expand to the paper's graphs."""

from __future__ import annotations

import pytest

from repro.apps import (
    build_blur,
    build_blur_sequential,
    build_jpip,
    build_jpip_sequential,
    build_pip,
    build_pip_sequential,
    make_program,
)
from repro.core import spec_to_xml, parse_string
from repro.graph import is_series_parallel


def test_pip1_structure():
    prog = make_program(build_pip(1), name="pip1")
    ids = set(prog.components)
    # 2 sources + sink + per field: 8 downscale + 8 blend copies
    assert "bg" in ids and "pip0" in ids and "sink" in ids
    scalers = [i for i in ids if i.startswith("sb0_y/scale")]
    blends = [i for i in ids if i.startswith("sb0_y/blend")]
    assert len(scalers) == 8
    assert len(blends) == 8
    assert len(prog.components) == 3 + 3 * (8 + 8)
    assert not prog.managers


def test_pip2_chains_blends():
    prog = make_program(build_pip(2), name="pip2")
    pg = prog.build_graph()
    # blend1 depends on blend0 within each field (chained via mid stream)
    b0 = "sb0_y/blend[0]"
    b1 = "sb1_y/blend[0]"
    assert b1 in pg.graph.descendants(b0)


def test_pip_graph_is_sp():
    pg = make_program(build_pip(2), name="pip2").build_graph()
    assert is_series_parallel(pg.graph)


def test_pip_slice_assignments():
    prog = make_program(build_pip(1, slices=4), name="pip")
    copies = sorted(
        i for i in prog.components if i.startswith("sb0_y/scale")
    )
    assert [prog.components[c].slice for c in copies] == [
        (0, 4), (1, 4), (2, 4), (3, 4)
    ]


def test_pip_reconfigurable_has_manager_and_bypasses():
    prog = make_program(build_pip(2, reconfigurable=True), name="pip12")
    assert set(prog.managers) == {"mgr"}
    assert set(prog.options) == {"pip_opt"}
    opt = prog.options["pip_opt"]
    assert opt.default_enabled is False
    assert set(opt.bypasses) == {
        ("mid0_y", "out_y"), ("mid0_u", "out_u"), ("mid0_v", "out_v")
    }
    # option members include the second pip's source and blend copies
    assert "pip1" in opt.members
    assert any("sb1_y/blend" in m for m in opt.members)
    # timer present and reachable
    assert "timer" in prog.components


def test_pip_reconfigurable_disabled_graph_drops_option():
    prog = make_program(build_pip(2, reconfigurable=True), name="pip12")
    off = prog.build_graph()
    on = prog.build_graph({"pip_opt": True})
    assert len(on.graph) > len(off.graph)
    assert all("sb1" not in n for n in off.graph.node_ids)
    # sink reads out_y which is bypassed to mid0_y's writer
    assert off.aliases["mid0_y"] == "out_y"


def test_pip_spec_roundtrips_through_xml():
    spec = build_pip(2, reconfigurable=True)
    assert parse_string(spec_to_xml(spec)) == spec


def test_jpip_structure():
    prog = make_program(build_jpip(1), name="jpip1")
    ids = set(prog.components)
    assert "bg_read" in ids and "bg_decode" in ids
    # 45 bg idct Y copies, 44 pip idct Y copies
    bg_idct = [i for i in ids if i.startswith("bg_idct_y/idct")]
    pip_idct = [i for i in ids if i.startswith("pip0_idct_y/idct")]
    assert len(bg_idct) == 45
    assert len(pip_idct) == 44
    blends = [i for i in ids if i.startswith("blend0_y")]
    assert len(blends) == 45
    scales = [i for i in ids if i.startswith("scale0_y")]
    assert len(scales) == 44


def test_jpip_graph_is_sp():
    pg = make_program(build_jpip(1, slices=5), name="jpip").build_graph()
    assert is_series_parallel(pg.graph)


def test_jpip_barriers_between_operations():
    """Every operation separated by a sync point (paper: SP form)."""
    pg = make_program(build_jpip(1), name="jpip").build_graph()
    barriers = [n for n in pg.graph if n.kind == "barrier"]
    assert barriers  # joins inserted at the plural-plural junctions


def test_jpip_reconfigurable():
    prog = make_program(build_jpip(2, reconfigurable=True), name="jpip12")
    assert prog.options["pip_opt"].default_enabled is False
    off = prog.build_graph()
    assert all("pip1_" not in n for n in off.graph.node_ids)


def test_blur_structure_crossdep():
    prog = make_program(build_blur(3), name="blur3")
    pg = prog.build_graph()
    # 9 h copies, 9 v copies with i-1/i/i+1 edges
    for i in range(9):
        for j in range(9):
            has = pg.graph.has_edge(f"h3[{j}]", f"v3[{i}]")
            assert has == (abs(i - j) <= 1)
    assert not is_series_parallel(pg.graph)


def test_blur_sp_tree_for_prediction():
    prog = make_program(build_blur(5), name="blur5")
    from repro.graph import TaskGraph

    tree = prog.to_sp_tree()
    assert is_series_parallel(TaskGraph.from_sp(tree))


def test_blur_reconfigurable_two_options():
    prog = make_program(build_blur(reconfigurable=True), name="blur35")
    assert set(prog.options) == {"blur3", "blur5"}
    assert prog.options["blur3"].default_enabled is True
    assert prog.options["blur5"].default_enabled is False
    g3 = prog.build_graph()
    assert any(n.startswith("h3") for n in g3.graph.node_ids)
    assert all(not n.startswith("h5") for n in g3.graph.node_ids)
    g5 = prog.build_graph({"blur3": False, "blur5": True})
    assert any(n.startswith("h5") for n in g5.graph.node_ids)


def test_blur_kernel_size_validation():
    with pytest.raises(Exception):
        build_blur(7)


# -- sequential baselines ---------------------------------------------------------


def test_pip_sequential_structure():
    prog = make_program(build_pip_sequential(2), name="seq")
    ids = set(prog.components)
    fused = [i for i in ids if i.startswith("fused")]
    assert len(fused) == 2 * 3  # per pip per field
    assert all(prog.components[i].slice is None for i in ids)
    assert not prog.managers


def test_jpip_sequential_structure():
    prog = make_program(build_jpip_sequential(1), name="seq")
    ids = set(prog.components)
    # decode+IDCT fused per input; downscale+blend fused per pip per field
    assert "bg_decode" in ids
    assert prog.components["bg_decode"].class_name == "jpeg_decode_idct"
    assert "fused0_y" in ids
    assert all(prog.components[i].slice is None for i in ids)


def test_blur_sequential_is_unsliced_two_phase():
    prog = make_program(build_blur_sequential(5), name="seq")
    assert set(prog.components) == {"src", "h", "v", "sink"}


def test_all_apps_expand_and_build():
    specs = [
        build_pip(1), build_pip(2), build_pip(2, reconfigurable=True),
        build_jpip(1, slices=5), build_jpip(2, slices=5),
        build_jpip(2, slices=5, reconfigurable=True),
        build_blur(3), build_blur(5), build_blur(reconfigurable=True),
        build_pip_sequential(1), build_pip_sequential(2),
        build_jpip_sequential(1), build_jpip_sequential(2),
        build_blur_sequential(3), build_blur_sequential(5),
    ]
    for spec in specs:
        prog = make_program(spec, name="app")
        pg = prog.build_graph()
        assert pg.graph.is_acyclic()
        assert len(pg.graph) > 0
