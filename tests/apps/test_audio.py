"""The audio/sensor-fusion application: the anti-JPiP workload.

Small int16 records at high rate — held to the same contracts as the
video applications: lint-clean, bit-identical across backends (including
under batching, fusion, and reconfiguration), and filters that do real
signal work.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.engine import lint_spec
from repro.apps import build_audio, make_program
from repro.components.audio import synthetic_record
from repro.components.registry import default_ports, default_registry
from repro.core.reslice import slice_groups
from repro.errors import XSPCLError
from repro.hinch import ProcessRuntime, ThreadedRuntime

REG = default_registry()


def _spec(**kwargs):
    kwargs.setdefault("channels", 8)
    kwargs.setdefault("block", 64)
    kwargs.setdefault("slices", 2)
    kwargs.setdefault("frames", 4)
    kwargs.setdefault("collect", True)
    return build_audio(**kwargs)


def _records(result):
    return result.components["sink"].ordered_records()


def run_threaded(spec, *, iters, nodes=2, depth=2, **kwargs):
    program = make_program(spec, name="audio")
    return ThreadedRuntime(program, REG, nodes=nodes, pipeline_depth=depth,
                           max_iterations=iters, **kwargs).run()


def run_process(spec, *, iters, workers=2, depth=2, **kwargs):
    program = make_program(spec, name="audio")
    return ProcessRuntime(program, REG, workers=workers, pipeline_depth=depth,
                          max_iterations=iters, **kwargs).run()


def test_lints_clean_both_variants():
    ports = default_ports(REG)
    for reconf in (False, True):
        diags = lint_spec(_spec(reconfigurable=reconf), ports=ports,
                          name="audio")
        assert not [d for d in diags if d.severity is Severity.ERROR]


def test_records_are_small():
    """The point of the app: ~1 KiB records, not video frames."""
    record = synthetic_record(0, 8, 64, seed=7)
    assert record.dtype == np.int16
    assert record.nbytes == 8 * 64 * 2  # 1 KiB


def test_builder_rejects_degenerate_geometry():
    with pytest.raises(XSPCLError):
        build_audio(channels=0)
    with pytest.raises(XSPCLError):
        build_audio(block=0)
    with pytest.raises(XSPCLError):
        build_audio(channels=4, slices=8)


@pytest.mark.parametrize("workers", [1, 3])
def test_identical_records_across_backends(workers):
    spec = _spec()
    a = _records(run_threaded(spec, iters=6))
    b = _records(run_process(spec, iters=6, workers=workers))
    assert len(a) == len(b) == 6
    for x, y in zip(a, b):
        assert x.dtype == np.int16
        assert np.array_equal(x, y)


def test_identical_under_batching_and_fusion():
    spec = _spec()
    base = _records(run_threaded(spec, iters=6))
    batched = _records(run_process(spec, iters=6, workers=2, batch=3))
    fused = _records(run_process(spec, iters=6, workers=2, fuse=True))
    assert len(batched) == len(fused) == 6
    for x, y, z in zip(base, batched, fused):
        assert np.array_equal(x, y)
        assert np.array_equal(x, z)


def test_reconfigurable_variant_toggles_and_matches():
    """The vib branch toggles every ``period`` records; sequential runs
    of both backends see the same reconfiguration points and records."""
    spec = _spec(reconfigurable=True, period=3)
    thr = run_threaded(spec, iters=8, nodes=1, depth=1)
    prc = run_process(spec, iters=8, workers=1, depth=1)
    assert thr.reconfig_count == prc.reconfig_count > 0
    a, b = _records(thr), _records(prc)
    assert len(a) == len(b) == 8
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_bypass_passes_mic_through_when_branch_off():
    """With the branch disabled the sink streams the filtered mic signal
    (the bypass), not silence; with it enabled, the fused signal — so a
    toggling run mixes records equal to the static fused run with
    records that differ from it."""
    fused = _records(run_threaded(_spec(), iters=6, nodes=1, depth=1))
    result = run_threaded(_spec(reconfigurable=True, period=2),
                          iters=6, nodes=1, depth=1)
    records = _records(result)
    assert len(records) == 6
    assert result.reconfig_count > 0
    matches = [np.array_equal(r, f) for r, f in zip(records, fused)]
    assert any(matches)  # enabled phases reproduce the fused signal
    assert not all(matches)  # passthrough phases visibly drop the branch
    assert all(r.any() for r in records)  # never silence


def test_band_filter_does_real_work():
    """smooth attenuates the noise floor; diff amplifies transitions."""
    spec = _spec(slices=1)
    result = run_threaded(spec, iters=2, nodes=1, depth=1)
    fused = _records(result)[0]
    raw_mic = synthetic_record(0, 8, 64, seed=7)
    # fused output differs from any raw input: the filters did something
    assert not np.array_equal(fused, raw_mic)
    assert fused.shape == raw_mic.shape


def test_band_filter_group_is_width_elastic():
    program = make_program(_spec(), name="audio")
    groups = slice_groups(program)
    assert len(groups) == 2  # one group per sensor branch
    for group in groups.values():
        assert group.class_name == "band_filter"
        assert group.total == 2
