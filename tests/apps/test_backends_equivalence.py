"""Cross-backend equivalence on the real applications.

The SpaceCAKE simulator with ``execute=True`` must produce exactly the
frames the threaded runtime produces — the scheduler semantics are
shared, only the notion of time differs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import build_blur, build_jpip, build_pip, make_program
from repro.components.registry import default_registry
from repro.hinch import ThreadedRuntime
from repro.spacecake import SimRuntime

REG = default_registry()


def both(spec, *, iters, nodes=2, depth=2):
    program = make_program(spec, name="app")
    thr = ThreadedRuntime(program, REG, nodes=nodes, pipeline_depth=depth,
                          max_iterations=iters).run()
    sim = SimRuntime(program, REG, nodes=nodes, pipeline_depth=depth,
                     max_iterations=iters, execute=True).run()
    return thr, sim


def test_pip_identical_frames():
    thr, sim = both(build_pip(1, width=64, height=48, factor=4, slices=2,
                              frames=2, collect=True), iters=4)
    a = thr.components["sink"].ordered_frames()
    b = sim.components["sink"].ordered_frames()
    assert len(a) == len(b) == 4
    for x, y in zip(a, b):
        assert x == y


def test_blur_identical_planes():
    thr, sim = both(build_blur(5, width=48, height=36, slices=3, frames=2,
                               collect=True), iters=4)
    a = thr.components["sink"].ordered_planes()
    b = sim.components["sink"].ordered_planes()
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_jpip_identical_frames():
    thr, sim = both(
        build_jpip(1, width=64, height=48, pip_height=48, factor=4,
                   slices=3, frames=2, collect=True),
        iters=3,
    )
    a = thr.components["sink"].ordered_frames()
    b = sim.components["sink"].ordered_frames()
    for x, y in zip(a, b):
        assert x == y


def test_reconfigurable_blur_same_reconfig_points_when_sequential():
    """With pipeline depth 1 and 1 node both backends are deterministic
    and must reconfigure at identical iterations with identical output."""
    spec = build_blur(reconfigurable=True, period=3, width=48, height=36,
                      slices=3, frames=2, collect=True)
    program = make_program(spec, name="blur35")
    thr_rt = ThreadedRuntime(program, REG, nodes=1, pipeline_depth=1,
                             max_iterations=9)
    thr = thr_rt.run()
    sim_rt = SimRuntime(program, REG, nodes=1, pipeline_depth=1,
                        max_iterations=9, execute=True)
    sim = sim_rt.run()
    assert thr_rt.reconfig_log == sim_rt.reconfig_log
    a = thr.components["sink"].ordered_planes()
    b = sim.components["sink"].ordered_planes()
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


@pytest.mark.parametrize("nodes,depth", [(1, 1), (3, 4)])
def test_simulated_cycles_independent_of_execute_mode(nodes, depth):
    """Functional execution must not change virtual time."""
    spec = build_blur(3, width=48, height=36, slices=3, frames=2)
    program = make_program(spec, name="blur")
    plain = SimRuntime(program, REG, nodes=nodes, pipeline_depth=depth,
                       max_iterations=6, execute=False).run()
    functional = SimRuntime(program, REG, nodes=nodes, pipeline_depth=depth,
                            max_iterations=6, execute=True).run()
    assert plain.cycles == functional.cycles
    assert plain.jobs_executed == functional.jobs_executed
