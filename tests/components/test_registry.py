"""Tests for the component-class registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.components.registry import (
    DEFAULT_REGISTRY,
    FAMILIES,
    default_ports,
    default_registry,
    implementations,
    register,
)
from repro.core.ports import PortSpec
from repro.errors import RegistryError
from repro.hinch.component import Component


def test_default_registry_has_paper_vocabulary():
    expected = {
        "video_source", "luma_source", "mjpeg_source", "timer",
        "jpeg_decode", "idct_field", "downscale_field", "blend_field",
        "blur_h_field", "blur_v_field", "video_sink", "plane_sink",
        "downscale_blend_field", "jpeg_decode_idct",
        "idct_downscale_blend_field",
        # skeleton extension
        "map_plane", "stencil_plane", "reduce_plane", "monitor",
    }
    assert expected <= set(DEFAULT_REGISTRY)


def test_default_registry_returns_a_copy():
    a = default_registry()
    a["zzz"] = Component
    assert "zzz" not in DEFAULT_REGISTRY
    assert "zzz" not in default_registry()


def test_default_registry_with_extras():
    class Custom(Component):
        ports = PortSpec()

        def run(self, job):
            pass

    reg = default_registry({"custom": Custom})
    assert reg["custom"] is Custom
    assert "custom" not in DEFAULT_REGISTRY


def test_default_ports_view_matches_classes():
    ports = default_ports()
    assert set(ports) == set(DEFAULT_REGISTRY)
    for name, spec in ports.items():
        assert spec is DEFAULT_REGISTRY[name].ports


def test_register_into_private_registry():
    class Custom(Component):
        ports = PortSpec()

        def run(self, job):
            pass

    reg: dict = {}
    register("c", Custom, registry=reg)
    assert reg["c"] is Custom
    with pytest.raises(RegistryError, match="already registered"):
        register("c", Custom, registry=reg)
    register("c", Custom, registry=reg, overwrite=True)


def test_register_rejects_non_component():
    with pytest.raises(RegistryError, match="not a Component"):
        register("bad", object, registry={})  # type: ignore[arg-type]


def test_every_registered_class_declares_ports_and_runs():
    for name, cls in DEFAULT_REGISTRY.items():
        assert isinstance(cls.ports, PortSpec), name
        assert cls.run is not Component.run, f"{name} must implement run()"


def test_every_registered_class_has_a_cost_profile():
    """All shipped components participate in the SpaceCAKE cost model."""
    from repro.hinch.component import Component as Base

    for name, cls in DEFAULT_REGISTRY.items():
        assert cls.cost_profile.__func__ is not Base.cost_profile.__func__, (
            f"{name} lacks a cost profile"
        )


# ---------------------------------------------------------------------------
# multi-implementation families
# ---------------------------------------------------------------------------


def test_every_abstract_name_has_a_family():
    assert set(FAMILIES) >= set(DEFAULT_REGISTRY)
    for name in DEFAULT_REGISTRY:
        assert FAMILIES[name].reference is DEFAULT_REGISTRY[name]


def test_downscale_ships_a_strided_implementation():
    impls = implementations("downscale_field")
    assert set(impls) >= {"numpy", "strided"}
    assert impls["numpy"] is not impls["strided"]


def test_implementations_unknown_name_raises():
    with pytest.raises(RegistryError, match="unknown component class"):
        implementations("no_such_class")


def test_default_registry_impl_selection():
    reg = default_registry(impls={"downscale_field": "strided"})
    assert reg["downscale_field"] is FAMILIES["downscale_field"].impls["strided"]
    # the rest of the table is untouched
    assert reg["blend_field"] is DEFAULT_REGISTRY["blend_field"]


def test_default_registry_unknown_impl_raises():
    with pytest.raises(RegistryError, match="no implementation"):
        default_registry(impls={"downscale_field": "bogus"})
    with pytest.raises(RegistryError, match="unknown component class"):
        default_registry(impls={"nope": "numpy"})


def test_impl_registration_validates_format_signature():
    base = DEFAULT_REGISTRY["downscale_field"]

    class BadFormats(base):  # type: ignore[misc, valid-type]
        ports = PortSpec(
            inputs=base.ports.inputs,
            outputs=base.ports.outputs,
            required_params=base.ports.required_params,
            optional_params=base.ports.optional_params,
            formats={
                **base.ports.formats,
                "output": "kind=plane shape=height,width dtype=float64",
            },
        )

    with pytest.raises(RegistryError, match="port 'output'"):
        register("downscale_field", BadFormats, impl="bad")
    assert "bad" not in implementations("downscale_field")


def test_impl_registration_validates_port_sets():
    class WrongPorts(Component):
        ports = PortSpec(inputs=("input",), outputs=("output", "extra"))

        def run(self, job):
            pass

    with pytest.raises(RegistryError, match="'extra'"):
        register("downscale_field", WrongPorts, impl="bad")


def test_impl_registration_requires_existing_family():
    class Custom(Component):
        ports = PortSpec()

        def run(self, job):
            pass

    with pytest.raises(RegistryError, match="register the default"):
        register("brand_new_class", Custom, impl="alt")
    with pytest.raises(RegistryError, match="private registry"):
        register("downscale_field", Custom, impl="alt", registry={})


def test_strided_downscale_is_bit_identical():
    """Swapping the family implementation must not change one pixel."""
    from repro.apps import build_pip, make_program
    from repro.hinch import ThreadedRuntime

    def frames(registry):
        spec = build_pip(1, width=64, height=48, factor=4, slices=2,
                         frames=2, collect=True)
        rt = ThreadedRuntime(make_program(spec, name="pip"), registry,
                             nodes=2, max_iterations=3)
        return rt.run().components["sink"].ordered_frames()

    reference = frames(default_registry())
    strided = frames(default_registry(impls={"downscale_field": "strided"}))
    assert len(reference) == len(strided) == 3
    for a, b in zip(reference, strided):
        assert np.array_equal(a.y, b.y)
        assert np.array_equal(a.u, b.u)
        assert np.array_equal(a.v, b.v)
