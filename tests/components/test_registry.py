"""Tests for the component-class registry."""

from __future__ import annotations

import pytest

from repro.components.registry import (
    DEFAULT_REGISTRY,
    default_ports,
    default_registry,
    register,
)
from repro.core.ports import PortSpec
from repro.errors import RegistryError
from repro.hinch.component import Component


def test_default_registry_has_paper_vocabulary():
    expected = {
        "video_source", "luma_source", "mjpeg_source", "timer",
        "jpeg_decode", "idct_field", "downscale_field", "blend_field",
        "blur_h_field", "blur_v_field", "video_sink", "plane_sink",
        "downscale_blend_field", "jpeg_decode_idct",
        "idct_downscale_blend_field",
        # skeleton extension
        "map_plane", "stencil_plane", "reduce_plane", "monitor",
    }
    assert expected <= set(DEFAULT_REGISTRY)


def test_default_registry_returns_a_copy():
    a = default_registry()
    a["zzz"] = Component
    assert "zzz" not in DEFAULT_REGISTRY
    assert "zzz" not in default_registry()


def test_default_registry_with_extras():
    class Custom(Component):
        ports = PortSpec()

        def run(self, job):
            pass

    reg = default_registry({"custom": Custom})
    assert reg["custom"] is Custom
    assert "custom" not in DEFAULT_REGISTRY


def test_default_ports_view_matches_classes():
    ports = default_ports()
    assert set(ports) == set(DEFAULT_REGISTRY)
    for name, spec in ports.items():
        assert spec is DEFAULT_REGISTRY[name].ports


def test_register_into_private_registry():
    class Custom(Component):
        ports = PortSpec()

        def run(self, job):
            pass

    reg: dict = {}
    register("c", Custom, registry=reg)
    assert reg["c"] is Custom
    with pytest.raises(RegistryError, match="already registered"):
        register("c", Custom, registry=reg)
    register("c", Custom, registry=reg, overwrite=True)


def test_register_rejects_non_component():
    with pytest.raises(RegistryError, match="not a Component"):
        register("bad", object, registry={})  # type: ignore[arg-type]


def test_every_registered_class_declares_ports_and_runs():
    for name, cls in DEFAULT_REGISTRY.items():
        assert isinstance(cls.ports, PortSpec), name
        assert cls.run is not Component.run, f"{name} must implement run()"


def test_every_registered_class_has_a_cost_profile():
    """All shipped components participate in the SpaceCAKE cost model."""
    from repro.hinch.component import Component as Base

    for name, cls in DEFAULT_REGISTRY.items():
        assert cls.cost_profile.__func__ is not Base.cost_profile.__func__, (
            f"{name} lacks a cost profile"
        )
