"""Tests for the mini-JPEG codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.components.jpeg import (
    BitReader,
    BitWriter,
    CHROMA_QTABLE,
    HuffmanCodec,
    LUMA_QTABLE,
    ZIGZAG_ORDER,
    build_canonical_codes,
    decode_frame,
    dequantize,
    dct2_blocks,
    encode_frame,
    entropy_decode_frame,
    idct2_blocks,
    idct_plane,
    quantize,
    scale_qtable,
    unzigzag_blocks,
    zigzag_blocks,
)
from repro.components.jpeg.codec import (
    EncodedFrame,
    _blockify,
    _encode_plane_scalar,
    coefficients_from_zigzag,
    encode_plane,
    entropy_decode_plane,
    fused_dct_quant_zigzag,
    quantize_plane,
)
from repro.components.video import psnr, synthetic_clip
from repro.errors import CodecError


# -- DCT ----------------------------------------------------------------------


def test_dct_idct_roundtrip():
    rng = np.random.default_rng(0)
    blocks = rng.normal(0, 50, size=(10, 8, 8))
    assert np.allclose(idct2_blocks(dct2_blocks(blocks)), blocks, atol=1e-9)


def test_dct_constant_block_is_dc_only():
    block = np.full((1, 8, 8), 42.0)
    coeffs = dct2_blocks(block)
    assert coeffs[0, 0, 0] == pytest.approx(42.0 * 8)
    rest = coeffs.copy()
    rest[0, 0, 0] = 0
    assert np.allclose(rest, 0, atol=1e-9)


def test_dct_energy_preservation():
    rng = np.random.default_rng(1)
    block = rng.normal(0, 30, size=(1, 8, 8))
    coeffs = dct2_blocks(block)
    assert np.sum(coeffs**2) == pytest.approx(np.sum(block**2))


def test_dct_shape_validation():
    with pytest.raises(CodecError):
        dct2_blocks(np.zeros((4, 4)))


# -- quantization ---------------------------------------------------------------


def test_quantize_dequantize_bounds_error():
    rng = np.random.default_rng(2)
    coeffs = rng.normal(0, 100, size=(5, 8, 8))
    q = quantize(coeffs, LUMA_QTABLE)
    dq = dequantize(q, LUMA_QTABLE)
    assert np.all(np.abs(dq - coeffs) <= LUMA_QTABLE / 2 + 1e-9)


def test_scale_qtable_quality_extremes():
    q50 = scale_qtable(LUMA_QTABLE, 50)
    assert np.array_equal(q50, LUMA_QTABLE)
    q90 = scale_qtable(LUMA_QTABLE, 90)
    q10 = scale_qtable(LUMA_QTABLE, 10)
    assert np.all(q90 <= q50)
    assert np.all(q10 >= q50)
    assert np.all(scale_qtable(LUMA_QTABLE, 100) >= 1)


def test_scale_qtable_rejects_bad_quality():
    with pytest.raises(CodecError):
        scale_qtable(LUMA_QTABLE, 0)


# -- zigzag ------------------------------------------------------------------------


def test_zigzag_order_is_permutation():
    assert sorted(ZIGZAG_ORDER.tolist()) == list(range(64))


def test_zigzag_starts_with_known_prefix():
    # Classic JPEG zigzag: 0, 1, 8, 16, 9, 2, 3, 10, ...
    assert ZIGZAG_ORDER[:8].tolist() == [0, 1, 8, 16, 9, 2, 3, 10]


def test_zigzag_roundtrip():
    rng = np.random.default_rng(3)
    blocks = rng.integers(-100, 100, size=(7, 8, 8))
    assert np.array_equal(unzigzag_blocks(zigzag_blocks(blocks)), blocks)


# -- bit io ------------------------------------------------------------------------------


def test_bitwriter_reader_roundtrip():
    w = BitWriter()
    w.write(0b101, 3)
    w.write(0b1, 1)
    w.write(0xABC, 12)
    data = w.getvalue()
    r = BitReader(data)
    assert r.read(3) == 0b101
    assert r.read(1) == 0b1
    assert r.read(12) == 0xABC


def test_bitwriter_rejects_overflow_value():
    w = BitWriter()
    with pytest.raises(CodecError):
        w.write(4, 2)


def test_bitreader_exhaustion():
    r = BitReader(b"\xff")
    r.read(8)
    with pytest.raises(CodecError):
        r.read(1)


@given(st.lists(st.tuples(st.integers(0, 2**16 - 1), st.integers(1, 17)),
                max_size=50))
def test_prop_bit_io_roundtrip(items):
    w = BitWriter()
    clipped = [(v & ((1 << n) - 1), n) for v, n in items]
    for v, n in clipped:
        w.write(v, n)
    r = BitReader(w.getvalue())
    for v, n in clipped:
        assert r.read(n) == v


# -- huffman ------------------------------------------------------------------------------


def test_canonical_codes_prefix_free():
    freqs = {0: 100, 1: 50, 2: 20, 3: 5, 4: 1}
    codes = build_canonical_codes(freqs)
    items = [(format(c, f"0{l}b")) for c, l in codes.values()]
    for a in items:
        for b in items:
            if a != b:
                assert not b.startswith(a)


def test_frequent_symbols_get_shorter_codes():
    freqs = {0: 1000, 1: 10, 2: 1}
    codes = build_canonical_codes(freqs)
    assert codes[0][1] <= codes[1][1] <= codes[2][1]


def test_single_symbol_alphabet():
    codec = HuffmanCodec.from_frequencies({7: 3})
    w = BitWriter()
    codec.encode_symbol(w, 7)
    assert codec.decode_symbol(BitReader(w.getvalue())) == 7


def test_codec_roundtrip_from_lengths():
    freqs = {i: (i + 1) ** 2 for i in range(10)}
    codec = HuffmanCodec.from_frequencies(freqs)
    rebuilt = HuffmanCodec.from_lengths(codec.lengths())
    assert rebuilt.codes == codec.codes


def test_unknown_symbol_rejected():
    codec = HuffmanCodec.from_frequencies({1: 1, 2: 1})
    with pytest.raises(CodecError):
        codec.encode_symbol(BitWriter(), 99)


@settings(max_examples=25)
@given(st.lists(st.integers(0, 20), min_size=1, max_size=300))
def test_prop_huffman_roundtrip(symbols):
    freqs: dict[int, int] = {}
    for s in symbols:
        freqs[s] = freqs.get(s, 0) + 1
    codec = HuffmanCodec.from_frequencies(freqs)
    w = BitWriter()
    for s in symbols:
        codec.encode_symbol(w, s)
    r = BitReader(w.getvalue())
    assert [codec.decode_symbol(r) for _ in symbols] == symbols


# -- full codec ---------------------------------------------------------------------------------


def test_plane_roundtrip_high_quality():
    rng = np.random.default_rng(4)
    plane = rng.integers(0, 256, size=(32, 40), dtype=np.uint8)
    q = scale_qtable(LUMA_QTABLE, 95)
    decoded = idct_plane(entropy_decode_plane(encode_plane(plane, q)))
    err = np.abs(decoded.astype(int) - plane.astype(int))
    assert err.mean() < 12  # noise is the hardest content


def test_smooth_plane_near_lossless():
    xx, yy = np.mgrid[0:32, 0:32]
    plane = ((xx + yy) * 2).astype(np.uint8)
    q = scale_qtable(LUMA_QTABLE, 95)
    decoded = idct_plane(entropy_decode_plane(encode_plane(plane, q)))
    assert np.abs(decoded.astype(int) - plane.astype(int)).max() <= 4


def test_frame_roundtrip_psnr():
    frame = synthetic_clip(64, 48, 1, seed=5, detail=0.3)[0]
    encoded = encode_frame(frame, quality=90)
    decoded = decode_frame(encoded)
    assert psnr(frame, decoded) > 30


def test_compression_actually_compresses():
    frame = synthetic_clip(128, 64, 1, seed=6, detail=0.2)[0]
    encoded = encode_frame(frame, quality=75)
    assert encoded.nbytes < frame.nbytes / 2


def test_lower_quality_smaller_output():
    frame = synthetic_clip(64, 64, 1, seed=7, detail=0.5)[0]
    hi = encode_frame(frame, quality=90).nbytes
    lo = encode_frame(frame, quality=30).nbytes
    assert lo < hi


def test_pack_unpack_roundtrip():
    frame = synthetic_clip(32, 32, 1, seed=8)[0]
    encoded = encode_frame(frame, quality=80)
    packed = encoded.pack()
    assert isinstance(packed, bytes)
    unpacked = EncodedFrame.unpack(packed)
    assert decode_frame(unpacked) == decode_frame(encoded)


def test_unpack_rejects_garbage():
    with pytest.raises(CodecError, match="magic"):
        EncodedFrame.unpack(b"not a jpeg at all")


def test_entropy_stage_exposes_coefficients():
    frame = synthetic_clip(32, 32, 1, seed=9)[0]
    coeffs = entropy_decode_frame(encode_frame(frame))
    assert set(coeffs) == {"y", "u", "v"}
    assert coeffs["y"].blocks.shape == (16, 8, 8)
    assert coeffs["u"].blocks.shape == (4, 8, 8)


def test_idct_sliced_equals_whole():
    frame = synthetic_clip(64, 64, 1, seed=10)[0]
    coeffs = entropy_decode_frame(encode_frame(frame))["y"]
    whole = idct_plane(coeffs)
    out = np.zeros_like(whole)
    for i in range(4):
        idct_plane(coeffs, rows=(i * 16, (i + 1) * 16), out=out)
    assert np.array_equal(out, whole)


def test_idct_rejects_unaligned_slice():
    frame = synthetic_clip(32, 32, 1)[0]
    coeffs = entropy_decode_frame(encode_frame(frame))["y"]
    with pytest.raises(CodecError, match="block-aligned"):
        idct_plane(coeffs, rows=(3, 19))


def test_plane_indivisible_by_8_rejected():
    with pytest.raises(CodecError, match="divisible"):
        encode_plane(np.zeros((20, 20), dtype=np.uint8), LUMA_QTABLE)


# -- fused encoder kernel (chain fusion, --fuse) ------------------------------


def test_fused_dct_quant_zigzag_matches_staged_pipeline():
    rng = np.random.default_rng(11)
    for quality in (25, 75, 95):
        plane = rng.integers(0, 256, size=(24, 32), dtype=np.uint8)
        q = scale_qtable(LUMA_QTABLE, quality)
        blocks = _blockify(plane) - 128.0
        staged = zigzag_blocks(quantize(dct2_blocks(blocks), q))
        fused = fused_dct_quant_zigzag(blocks, q)
        assert fused.dtype == staged.dtype
        assert np.array_equal(fused, staged)


def test_fused_dct_quant_zigzag_rejects_bad_shape():
    with pytest.raises(CodecError, match="8, 8"):
        fused_dct_quant_zigzag(np.zeros((3, 4, 4)), LUMA_QTABLE)


def test_fused_numba_backend_falls_back_bit_identically():
    rng = np.random.default_rng(12)
    blocks = _blockify(
        rng.integers(0, 256, size=(16, 16), dtype=np.uint8)
    ) - 128.0
    q = scale_qtable(LUMA_QTABLE, 75)
    assert np.array_equal(
        fused_dct_quant_zigzag(blocks, q, backend="numba"),
        fused_dct_quant_zigzag(blocks, q),
    )


def test_vectorized_encode_matches_scalar_reference():
    rng = np.random.default_rng(13)
    plane = rng.integers(0, 256, size=(16, 24), dtype=np.uint8)
    q = scale_qtable(CHROMA_QTABLE, 60)
    assert encode_plane(plane, q).pack() == _encode_plane_scalar(
        plane, q
    ).pack()


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1), st.sampled_from([25, 50, 75, 95]))
def test_prop_huffman_roundtrip_elision_is_lossless(seed, quality):
    """quantize_plane -> coefficients_from_zigzag equals the real
    encode -> entropy-decode path bit for bit: the foundation of the
    fused source+decode kernel skipping the bitstream entirely."""
    rng = np.random.default_rng(seed)
    plane = rng.integers(0, 256, size=(16, 16), dtype=np.uint8)
    q = scale_qtable(LUMA_QTABLE, quality)
    via_bitstream = entropy_decode_plane(encode_plane(plane, q))
    direct = coefficients_from_zigzag(
        quantize_plane(plane, q), q, width=16, height=16
    )
    assert direct.width == via_bitstream.width
    assert direct.height == via_bitstream.height
    assert direct.blocks.dtype == via_bitstream.blocks.dtype
    assert np.array_equal(direct.blocks, via_bitstream.blocks)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1), st.sampled_from([50, 75, 95]))
def test_prop_roundtrip_error_bounded_by_quality(seed, quality):
    rng = np.random.default_rng(seed)
    plane = rng.integers(0, 256, size=(16, 16), dtype=np.uint8)
    q = scale_qtable(LUMA_QTABLE, quality)
    decoded = idct_plane(entropy_decode_plane(encode_plane(plane, q)))
    # error bounded by half the largest quantization step (plus rounding)
    assert np.abs(decoded.astype(int) - plane.astype(int)).max() <= q.max()
