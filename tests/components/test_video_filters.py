"""Tests for the video model and pixel kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.components.filters import (
    blend_plane,
    blur_plane_horizontal,
    blur_plane_vertical,
    downscale_plane,
    gaussian_kernel_1d,
    slice_rows,
)
from repro.components.video import Frame, VideoClip, psnr, synthetic_clip
from repro.errors import ComponentError


# -- frames ---------------------------------------------------------------------


def test_blank_frame_geometry():
    f = Frame.blank(64, 32)
    assert f.width == 64 and f.height == 32
    assert f.u.shape == (16, 32)
    assert f.nbytes == 64 * 32 + 2 * 32 * 16


def test_frame_rejects_odd_dimensions():
    with pytest.raises(ComponentError):
        Frame.blank(63, 32)


def test_frame_rejects_wrong_chroma():
    y = np.zeros((32, 64), dtype=np.uint8)
    u = np.zeros((10, 10), dtype=np.uint8)
    with pytest.raises(ComponentError, match="chroma"):
        Frame(y, u, u)


def test_frame_rejects_wrong_dtype():
    y = np.zeros((32, 64), dtype=np.float32)
    u = np.zeros((16, 32), dtype=np.uint8)
    with pytest.raises(ComponentError, match="uint8"):
        Frame(y, u, u)


def test_frame_plane_accessor_and_copy():
    f = Frame.blank(16, 16, fill=7)
    assert f.plane("y")[0, 0] == 7
    g = f.copy()
    g.y[0, 0] = 99
    assert f.y[0, 0] == 7
    with pytest.raises(ComponentError):
        f.plane("z")


def test_synthetic_clip_deterministic():
    a = synthetic_clip(64, 32, 3, seed=42)
    b = synthetic_clip(64, 32, 3, seed=42)
    assert all(x == y for x, y in zip(a.frames, b.frames))
    c = synthetic_clip(64, 32, 3, seed=43)
    assert a[0] != c[0]


def test_synthetic_clip_has_motion():
    clip = synthetic_clip(64, 32, 2, seed=1, motion=8)
    assert clip[0] != clip[1]


def test_clip_rejects_mixed_geometry():
    f1 = Frame.blank(16, 16)
    f2 = Frame.blank(32, 16)
    with pytest.raises(ComponentError):
        VideoClip([f1, f2])


def test_psnr_identical_is_inf():
    f = synthetic_clip(32, 32, 1)[0]
    assert psnr(f, f) == float("inf")


def test_psnr_degrades_with_noise():
    f = synthetic_clip(32, 32, 1)[0]
    g = f.copy()
    g.y[:] = np.clip(g.y.astype(int) + 30, 0, 255).astype(np.uint8)
    assert psnr(f, g) < 30


# -- slice math ---------------------------------------------------------------------


def test_slice_rows_partition():
    rows = [slice_rows(100, i, 7) for i in range(7)]
    assert rows[0][0] == 0
    assert rows[-1][1] == 100
    for (a, b), (c, d) in zip(rows, rows[1:]):
        assert b == c


def test_slice_rows_out_of_range():
    with pytest.raises(ComponentError):
        slice_rows(100, 7, 7)


# -- downscale ---------------------------------------------------------------------


def test_downscale_constant_plane():
    plane = np.full((32, 32), 77, dtype=np.uint8)
    out = downscale_plane(plane, 4)
    assert out.shape == (8, 8)
    assert np.all(out == 77)


def test_downscale_box_average():
    plane = np.zeros((4, 4), dtype=np.uint8)
    plane[:2, :2] = 100  # top-left box
    out = downscale_plane(plane, 2)
    assert out[0, 0] == 100
    assert out[0, 1] == 0


def test_downscale_factor_one_is_identity():
    plane = np.arange(64, dtype=np.uint8).reshape(8, 8)
    assert np.array_equal(downscale_plane(plane, 1), plane)


def test_downscale_rejects_indivisible():
    with pytest.raises(ComponentError):
        downscale_plane(np.zeros((30, 30), dtype=np.uint8), 4)


def test_downscale_sliced_equals_whole():
    rng = np.random.default_rng(0)
    plane = rng.integers(0, 256, size=(64, 48), dtype=np.uint8)
    whole = downscale_plane(plane, 4)
    out = np.zeros_like(whole)
    for i in range(4):
        downscale_plane(plane, 4, out=out, rows=slice_rows(16, i, 4))
    assert np.array_equal(out, whole)


# -- blend ------------------------------------------------------------------------------


def test_blend_inserts_overlay():
    bg = np.zeros((16, 16), dtype=np.uint8)
    ov = np.full((4, 4), 200, dtype=np.uint8)
    out = blend_plane(bg, ov, (2, 3))
    assert np.all(out[2:6, 3:7] == 200)
    out[2:6, 3:7] = 0
    assert np.all(out == 0)


def test_blend_alpha_mixes():
    bg = np.full((8, 8), 100, dtype=np.uint8)
    ov = np.full((4, 4), 200, dtype=np.uint8)
    out = blend_plane(bg, ov, (0, 0), alpha=0.5)
    assert out[0, 0] == 150
    assert out[7, 7] == 100


def test_blend_out_of_bounds_rejected():
    bg = np.zeros((8, 8), dtype=np.uint8)
    ov = np.zeros((4, 4), dtype=np.uint8)
    with pytest.raises(ComponentError):
        blend_plane(bg, ov, (6, 6))


def test_blend_sliced_equals_whole():
    rng = np.random.default_rng(1)
    bg = rng.integers(0, 256, size=(32, 32), dtype=np.uint8)
    ov = rng.integers(0, 256, size=(12, 12), dtype=np.uint8)
    whole = blend_plane(bg, ov, (5, 9))
    out = np.zeros_like(bg)
    for i in range(5):
        blend_plane(bg, ov, (5, 9), out=out, rows=slice_rows(32, i, 5))
    assert np.array_equal(out, whole)


# -- blur ------------------------------------------------------------------------------


def test_gaussian_kernel_normalized_and_symmetric():
    for size in (3, 5, 7):
        k = gaussian_kernel_1d(size, 1.0)
        assert k.sum() == pytest.approx(1.0)
        assert np.allclose(k, k[::-1])
        assert k[size // 2] == max(k)


def test_gaussian_kernel_rejects_even_size():
    with pytest.raises(ComponentError):
        gaussian_kernel_1d(4)


def test_blur_constant_plane_unchanged():
    plane = np.full((24, 24), 123, dtype=np.uint8)
    k = gaussian_kernel_1d(5, 1.0)
    h = blur_plane_horizontal(plane, k)
    v = blur_plane_vertical(h, k)
    assert np.all(v == 123)


def test_blur_smooths_impulse():
    plane = np.zeros((17, 17), dtype=np.uint8)
    plane[8, 8] = 255
    k = gaussian_kernel_1d(3, 1.0)
    out = blur_plane_vertical(blur_plane_horizontal(plane, k), k)
    assert out[8, 8] < 255
    assert out[7, 8] > 0 and out[8, 7] > 0


def test_blur_5x5_smooths_more_than_3x3():
    clip = synthetic_clip(64, 64, 1, seed=3, detail=1.0)
    plane = clip[0].y
    for size in (3, 5):
        k = gaussian_kernel_1d(size, 1.0)
        out = blur_plane_vertical(blur_plane_horizontal(plane, k), k)
        if size == 3:
            var3 = np.var(out.astype(float))
        else:
            var5 = np.var(out.astype(float))
    assert var5 < var3 < np.var(plane.astype(float))


@settings(max_examples=20)
@given(
    st.integers(2, 6),  # n slices
    st.sampled_from([3, 5]),
    st.integers(0, 2**31 - 1),
)
def test_prop_sliced_blur_equals_whole(n, size, seed):
    """Slice-parallel h+v blur with halo == whole-plane blur, always."""
    rng = np.random.default_rng(seed)
    plane = rng.integers(0, 256, size=(48, 40), dtype=np.uint8)
    k = gaussian_kernel_1d(size, 1.0)
    whole = blur_plane_vertical(blur_plane_horizontal(plane, k), k)
    mid = np.zeros_like(plane)
    for i in range(n):
        blur_plane_horizontal(plane, k, out=mid, rows=slice_rows(48, i, n))
    out = np.zeros_like(plane)
    for i in range(n):
        blur_plane_vertical(mid, k, out=out, rows=slice_rows(48, i, n))
    assert np.array_equal(out, whole)
