"""Tests for the skeletal template components (paper §6 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.components.registry import default_ports, default_registry
from repro.components.skeletons import kernel, register_kernel
from repro.components.video import synthetic_frame
from repro.core import AppBuilder, expand
from repro.errors import ComponentError, RegistryError
from repro.hinch import ThreadedRuntime

REG = default_registry()
PORTS = default_ports()

W, H, FRAMES = 64, 48, 4


def run_app(builder, *, nodes=2, iters=FRAMES):
    program = expand(builder.build(), PORTS)
    rt = ThreadedRuntime(program, REG, nodes=nodes, pipeline_depth=2,
                         max_iterations=iters)
    return rt, rt.run()


def luma_pipeline(*stages):
    """src -> stages -> sink over single-plane streams s0, s1, ..."""
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "luma_source", streams={"output": "s0"},
                   params={"width": W, "height": H, "seed": 5})
    for i, (name, cls, params, sliced) in enumerate(stages):
        add = dict(params)
        add.setdefault("width", W)
        add.setdefault("height", H)
        if sliced:
            with main.parallel("slice", n=sliced):
                main.component(name, cls,
                               streams={"input": f"s{i}", "output": f"s{i+1}"},
                               params=add)
        else:
            main.component(name, cls,
                           streams={"input": f"s{i}", "output": f"s{i+1}"},
                           params=add)
    main.component("sink", "plane_sink", streams={"input": f"s{len(stages)}"},
                   params={"width": W, "height": H, "collect": True})
    return b


def test_map_invert():
    b = luma_pipeline(("inv", "map_plane", {"kernel": "invert"}, 3))
    _, result = run_app(b)
    raw = synthetic_frame(0, W, H, seed=5).y
    out = result.components["sink"].ordered_planes()[0]
    assert np.array_equal(out, 255 - raw)


def test_map_gain_with_kernel_params():
    b = luma_pipeline(("g", "map_plane",
                       {"kernel": "gain", "factor": 0.5, "bias": 10}, 2))
    _, result = run_app(b)
    raw = synthetic_frame(0, W, H, seed=5).y
    expected = np.clip(raw.astype(np.float32) * 0.5 + 10, 0, 255).astype(np.uint8)
    assert np.array_equal(result.components["sink"].ordered_planes()[0],
                          expected)


def test_map_sliced_equals_unsliced():
    sliced = luma_pipeline(("b", "map_plane",
                            {"kernel": "binarize", "threshold": 100}, 4))
    whole = luma_pipeline(("b", "map_plane",
                           {"kernel": "binarize", "threshold": 100}, 0))
    _, rs = run_app(sliced)
    _, rw = run_app(whole)
    for a, b_ in zip(rs.components["sink"].ordered_planes(),
                     rw.components["sink"].ordered_planes()):
        assert np.array_equal(a, b_)


def test_stencil_edge_crossdep_equals_whole():
    def crossdep_app(n):
        b = AppBuilder()
        main = b.procedure("main")
        main.component("src", "luma_source", streams={"output": "raw"},
                       params={"width": W, "height": H, "seed": 5})
        geometry = {"width": W, "height": H, "kernel": "edge", "halo": 1}
        if n:
            with main.parallel("crossdep", n=n):
                with main.parblock():
                    main.component("pre", "map_plane",
                                   streams={"input": "raw", "output": "mid"},
                                   params={"width": W, "height": H,
                                           "kernel": "identity"})
                with main.parblock():
                    main.component("st", "stencil_plane",
                                   streams={"input": "mid", "output": "out"},
                                   params=geometry)
        else:
            main.component("pre", "map_plane",
                           streams={"input": "raw", "output": "mid"},
                           params={"width": W, "height": H,
                                   "kernel": "identity"})
            main.component("st", "stencil_plane",
                           streams={"input": "mid", "output": "out"},
                           params=geometry)
        main.component("sink", "plane_sink", streams={"input": "out"},
                       params={"width": W, "height": H, "collect": True})
        return b

    _, sliced = run_app(crossdep_app(4))
    _, whole = run_app(crossdep_app(0))
    for a, b_ in zip(sliced.components["sink"].ordered_planes(),
                     whole.components["sink"].ordered_planes()):
        assert np.array_equal(a, b_)


def test_reduce_ops():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "luma_source", streams={"output": "raw"},
                   params={"width": W, "height": H, "seed": 5})
    main.component("r", "reduce_plane", streams={"input": "raw", "output": "m"},
                   params={"width": W, "height": H, "op": "mean"})
    main.component("sink", "collector_scalar", streams={"input": "m"})
    # register a scalar collector on the fly (registry extensibility)
    from repro.core.ports import PortSpec
    from repro.hinch.component import Component

    class ScalarCollector(Component):
        ports = PortSpec(inputs=("input",))

        def __init__(self, instance):
            super().__init__(instance)
            self.values = []

        def run(self, job):
            self.values.append((job.iteration, job.read("input")))

    reg = default_registry({"collector_scalar": ScalarCollector})
    ports = default_ports(reg)
    program = expand(b.build(), ports)
    rt = ThreadedRuntime(program, reg, nodes=1, pipeline_depth=2,
                         max_iterations=3)
    result = rt.run()
    values = [v for _, v in sorted(result.components["sink"].values)]
    raws = [synthetic_frame(k, W, H, seed=5).y for k in range(3)]
    for got, plane in zip(values, raws):
        assert got == pytest.approx(float(np.mean(plane)))


def test_reduce_unknown_op_rejected():
    b = luma_pipeline()
    # build manually to hit the error path at run time
    b2 = AppBuilder()
    main = b2.procedure("main")
    main.component("src", "luma_source", streams={"output": "raw"},
                   params={"width": W, "height": H})
    main.component("r", "reduce_plane", streams={"input": "raw", "output": "m"},
                   params={"width": W, "height": H, "op": "median"})
    main.component("snk", "scalar_sink", streams={"input": "m"})
    # an undeclared-format sink: the scalar stream reconciles via inference
    from repro.core.ports import PortSpec
    from repro.hinch.component import Component

    class ScalarSink(Component):
        ports = PortSpec(inputs=("input",))

        def run(self, job):
            job.read("input")

    reg = default_registry({"scalar_sink": ScalarSink})
    program = expand(b2.build(), default_ports(reg))
    rt = ThreadedRuntime(program, reg, nodes=1, max_iterations=1)
    with pytest.raises(ComponentError, match="unknown reduce op"):
        rt.run()


def test_monitor_posts_event_on_crossing():
    """A monitor watching mean luminance drives an option, closing the
    loop of §2.3b: events respond to special input values."""
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "luma_source", streams={"output": "raw"},
                   params={"width": W, "height": H, "seed": 5})
    # gain swings the mean up and down over iterations? luma_source mean is
    # roughly constant; instead monitor a gain that we reconfigure — keep
    # it simple: threshold below the mean so the first crossing happens
    # when _above flips from None->True (no event) then stays; use two
    # monitors to check both directions statically instead.
    main.component("mon", "monitor",
                   streams={"input": "raw", "output": "fwd"},
                   params={"width": W, "height": H, "op": "mean",
                           "threshold": 1.0, "queue": "ui", "event": "bright"})
    with main.manager("m", queue="ui") as mgr:
        mgr.on("bright", "enable", option="o")
        with main.option("o", enabled=False, bypass=[("fwd", "out")]):
            main.component("inv", "map_plane",
                           streams={"input": "fwd", "output": "out"},
                           params={"width": W, "height": H,
                                   "kernel": "invert"})
    main.component("sink", "plane_sink", streams={"input": "out"},
                   params={"width": W, "height": H, "collect": True})
    program = expand(b.build(), PORTS)
    rt = ThreadedRuntime(program, REG, nodes=1, pipeline_depth=1,
                         max_iterations=6)
    result = rt.run()
    # threshold 1.0 < mean always: value stays above -> no crossing after
    # the first frame, so no event and no reconfiguration
    assert result.reconfig_count == 0


def test_monitor_crossing_fires_event():
    """Drive the monitor with alternating bright/dark frames."""
    from repro.core.ports import PortSpec
    from repro.hinch.component import Component

    class Strobe(Component):
        ports = PortSpec(outputs=("output",),
                         optional_params=("width", "height"))

        def run(self, job):
            level = 200 if job.iteration % 4 < 2 else 20
            job.write("output",
                      np.full((H, W), level, dtype=np.uint8))

    reg = default_registry({"strobe": Strobe})
    ports = default_ports(reg)
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "strobe", streams={"output": "raw"})
    main.component("mon", "monitor",
                   streams={"input": "raw", "output": "out"},
                   params={"width": W, "height": H, "op": "mean",
                           "threshold": 100, "queue": "ui", "event": "dark",
                           "direction": "below"})
    main.component("sink", "plane_sink", streams={"input": "out"},
                   params={"width": W, "height": H})
    program = expand(b.build(), ports)
    rt = ThreadedRuntime(program, reg, nodes=1, pipeline_depth=1,
                         max_iterations=8)
    rt.run()
    # down-crossings at iterations 2 and 6
    assert rt.broker.queue("ui").total_posted == 2


def test_kernel_registry_lookup_and_duplicates():
    fn, cpp = kernel("invert")
    assert cpp > 0
    with pytest.raises(ComponentError, match="unknown kernel"):
        kernel("nope")
    with pytest.raises(RegistryError, match="already registered"):
        register_kernel("invert")(lambda b: b)


def test_custom_kernel_registration():
    @register_kernel("halve_test_only", cycles_per_pixel=1.0)
    def halve(block):
        return (block // 2).astype(block.dtype)

    b = luma_pipeline(("hv", "map_plane", {"kernel": "halve_test_only"}, 2))
    _, result = run_app(b, iters=1)
    raw = synthetic_frame(0, W, H, seed=5).y
    assert np.array_equal(result.components["sink"].ordered_planes()[0],
                          raw // 2)


def test_skeletons_have_cost_profiles():
    from repro.core.program import ComponentInstance
    from repro.components.skeletons import MapPlane, StencilPlane

    inst = ComponentInstance(
        instance_id="m", definition_id="m", class_name="map_plane",
        params={"width": 100, "height": 50, "kernel": "gain"},
        streams={"input": "a", "output": "b"}, slice=(1, 5),
    )
    cost = MapPlane.cost_profile(inst)
    assert cost.compute_cycles == pytest.approx(2.0 * 100 * 50 / 5)
    assert cost.bytes_read == 1000
    st = StencilPlane.cost_profile(
        ComponentInstance(
            instance_id="s", definition_id="s", class_name="stencil_plane",
            params={"width": 100, "height": 50, "kernel": "edge", "halo": 2},
            streams={"input": "a", "output": "b"}, slice=(0, 5),
        )
    )
    assert st.bytes_read == 1000 + 2 * 2 * 100
