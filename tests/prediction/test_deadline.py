"""Tests for deadline analysis (paper §6 real-time direction)."""

from __future__ import annotations

import pytest

from repro.apps import build_blur, make_program
from repro.components.registry import default_registry
from repro.errors import PredictionError
from repro.prediction import check_deadline, min_nodes_for_deadline
from repro.spacecake import SimRuntime

REG = default_registry()


@pytest.fixture(scope="module")
def blur():
    return make_program(build_blur(5), name="blur5")


def test_report_fields_consistent(blur):
    report = check_deadline(blur, REG, nodes=4, frame_budget_cycles=1e6)
    assert report.nodes == 4
    assert report.initiation_interval > 0
    assert report.iteration_span >= report.initiation_interval * 0  # sane
    assert report.wcet >= report.iteration_span
    assert report.latency_frames == pytest.approx(
        report.iteration_span / 1e6
    )


def test_generous_budget_met_tight_budget_missed(blur):
    generous = check_deadline(blur, REG, nodes=4, frame_budget_cycles=1e8)
    tight = check_deadline(blur, REG, nodes=4, frame_budget_cycles=1e3)
    assert generous.meets_throughput
    assert generous.headroom > 0
    assert not tight.meets_throughput
    assert tight.headroom < 0


def test_more_nodes_never_hurt(blur):
    budgets = [
        check_deadline(blur, REG, nodes=n, frame_budget_cycles=1e6)
        .initiation_interval
        for n in (1, 2, 4, 8)
    ]
    assert all(a >= b - 1e-9 for a, b in zip(budgets, budgets[1:]))


def test_min_nodes_search(blur):
    # pick a budget met at some node count > 1
    ii1 = check_deadline(blur, REG, nodes=1, frame_budget_cycles=1.0)
    ii9 = check_deadline(blur, REG, nodes=9, frame_budget_cycles=1.0)
    budget = (ii1.initiation_interval + ii9.initiation_interval) / 2
    report = min_nodes_for_deadline(blur, REG, frame_budget_cycles=budget)
    assert report is not None
    assert 1 < report.nodes <= 9
    assert report.meets_throughput
    # minimality: one fewer node misses
    below = check_deadline(blur, REG, nodes=report.nodes - 1,
                           frame_budget_cycles=budget)
    assert not below.meets_throughput


def test_impossible_deadline_returns_none(blur):
    assert min_nodes_for_deadline(blur, REG, frame_budget_cycles=1.0) is None


def test_invalid_budget_rejected(blur):
    with pytest.raises(PredictionError):
        check_deadline(blur, REG, nodes=1, frame_budget_cycles=0)


def test_deadline_verdict_agrees_with_simulation(blur):
    """If the analysis says a budget is met with margin, the simulator's
    realized initiation interval should meet it too (and vice versa with
    a clearly missed budget)."""
    frames = 24
    sim = SimRuntime(blur, REG, nodes=4, pipeline_depth=5,
                     max_iterations=frames).run()
    realized_ii = sim.cycles / frames
    comfortable = check_deadline(blur, REG, nodes=4,
                                 frame_budget_cycles=realized_ii * 1.5)
    assert comfortable.meets_throughput
    hopeless = check_deadline(blur, REG, nodes=4,
                              frame_budget_cycles=realized_ii * 0.3)
    assert not hopeless.meets_throughput
