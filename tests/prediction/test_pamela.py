"""Tests for SPC performance prediction and WCET bounds."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.errors import PredictionError
from repro.graph import Leaf, parallel, series
from repro.prediction import (
    predict_iteration,
    predict_run,
    wcet_sequential,
    wcet_span,
)

from tests.graph.test_spc import sp_trees


def unit_cost(leaf):
    return leaf.weight


def test_series_adds():
    tree = series(Leaf("a", weight=3), Leaf("b", weight=4))
    assert predict_iteration(tree, 1, unit_cost) == 7
    assert predict_iteration(tree, 4, unit_cost) == 7


def test_parallel_on_one_node_is_sum():
    tree = parallel(Leaf("a", weight=3), Leaf("b", weight=4))
    assert predict_iteration(tree, 1, unit_cost) == 7


def test_parallel_on_many_nodes_is_span():
    tree = parallel(Leaf("a", weight=3), Leaf("b", weight=4))
    assert predict_iteration(tree, 2, unit_cost) == 4
    assert predict_iteration(tree, 8, unit_cost) == 4


def test_contention_term():
    # 8 equal tasks on 2 nodes: work/P = 8*5/2 = 20 > span 5
    tree = parallel(*[Leaf(f"t{i}", weight=5) for i in range(8)])
    assert predict_iteration(tree, 2, unit_cost) == 20
    assert predict_iteration(tree, 8, unit_cost) == 5


def test_nested_structure():
    # series(a, parallel(chain(b, c), d)) with weights 1, (2+3), 4
    tree = series(
        Leaf("a", weight=1),
        parallel(series(Leaf("b", weight=2), Leaf("c", weight=3)),
                 Leaf("d", weight=4)),
    )
    assert predict_iteration(tree, 2, unit_cost) == 1 + 5
    assert predict_iteration(tree, 1, unit_cost) == 10


def test_invalid_nodes():
    with pytest.raises(PredictionError):
        predict_iteration(Leaf("a"), 0, unit_cost)


def test_wcet_bounds_bracket_prediction():
    tree = series(
        Leaf("a", weight=2),
        parallel(Leaf("b", weight=3), Leaf("c", weight=5)),
    )
    seq = wcet_sequential(tree, unit_cost)
    span = wcet_span(tree, unit_cost)
    assert seq == 10
    assert span == 7
    for nodes in (1, 2, 4):
        t = predict_iteration(tree, nodes, unit_cost)
        assert span <= t <= seq


@given(sp_trees())
def test_prop_prediction_monotone_in_nodes(tree):
    costs = [predict_iteration(tree, n, unit_cost) for n in (1, 2, 4, 8)]
    assert all(a >= b for a, b in zip(costs, costs[1:]))


@given(sp_trees())
def test_prop_prediction_between_span_and_work(tree):
    seq = wcet_sequential(tree, unit_cost)
    span = wcet_span(tree, unit_cost)
    for nodes in (1, 3, 9):
        t = predict_iteration(tree, nodes, unit_cost)
        assert span - 1e-9 <= t <= seq + 1e-9


@given(sp_trees())
def test_prop_one_node_prediction_is_total_work(tree):
    assert predict_iteration(tree, 1, unit_cost) == pytest.approx(
        wcet_sequential(tree, unit_cost)
    )


# -- against the simulator ----------------------------------------------------


def test_predict_run_tracks_simulation():
    """Analytic prediction within 35% of simulation across apps/nodes."""
    from repro.bench.harness import Harness, PIPELINE_DEPTH

    h = Harness(frames_scale=0.25)
    for name in ("PiP-1", "Blur-3x3"):
        for nodes in (1, 4, 9):
            simulated = h.run_xspcl(name, nodes=nodes).cycles
            predicted = predict_run(
                h.program(name, "xspcl"),
                h.registry,
                nodes=nodes,
                iterations=h.frames(name),
                pipeline_depth=PIPELINE_DEPTH,
                cost_params=h.cost_params,
            )
            ratio = predicted / simulated
            assert 0.65 < ratio < 1.35, (
                f"{name}@{nodes}: predicted {predicted:.3g} vs simulated "
                f"{simulated:.3g} (ratio {ratio:.2f})"
            )


def test_predict_run_validates_iterations():
    from repro.bench.harness import Harness

    h = Harness(frames_scale=0.25)
    with pytest.raises(PredictionError):
        predict_run(h.program("PiP-1", "xspcl"), h.registry, nodes=1,
                    iterations=0)
