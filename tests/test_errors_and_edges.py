"""Error taxonomy and assorted edge cases across the package."""

from __future__ import annotations

import pytest

from repro import errors


def test_every_error_derives_from_repro_error():
    exception_types = [
        obj
        for obj in vars(errors).values()
        if isinstance(obj, type) and issubclass(obj, Exception)
    ]
    assert len(exception_types) >= 15
    for exc in exception_types:
        assert issubclass(exc, errors.ReproError)


def test_hierarchy_relationships():
    assert issubclass(errors.ParseError, errors.XSPCLError)
    assert issubclass(errors.ValidationError, errors.XSPCLError)
    assert issubclass(errors.ExpansionError, errors.XSPCLError)
    assert issubclass(errors.NotSeriesParallelError, errors.GraphError)
    assert issubclass(errors.RegistryError, errors.ComponentError)


def test_parse_error_line_formatting():
    err = errors.ParseError("bad tag", line=42)
    assert "line 42" in str(err)
    assert err.line == 42
    plain = errors.ParseError("bad tag")
    assert plain.line is None
    assert "line" not in str(plain)


def test_catch_all_at_api_boundary():
    """One except clause covers any library failure."""
    from repro.core import parse_string

    with pytest.raises(errors.ReproError):
        parse_string("<nope/>")


# -- validator edge: placeholder defaults ----------------------------------------


def test_placeholder_default_rejected():
    from repro.core import AppBuilder, validate

    b = AppBuilder()
    b.procedure("main").call("p", streams={"out": "s"})
    p = b.procedure("p", stream_formals=["out"],
                    param_formals={"n": "${oops}"})
    p.component("x", "source", streams={"output": "${out}"})
    with pytest.raises(errors.ValidationError, match="must be a literal"):
        validate(b.build())


# -- simulator edge: deadlock surfaced loudly -----------------------------------


def test_simulator_reports_scheduler_deadlock():
    """A corrupted graph (cycle injected post-build) must not hang."""
    from repro.core import AppBuilder, expand
    from repro.spacecake import SimRuntime
    from tests.spacecake.helpers import PORTS, REGISTRY

    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "costed_source", streams={"output": "a"},
                   params={"cycles": 10})
    main.component("snk", "costed_sink", streams={"input": "a"})
    program = expand(b.build(), PORTS)
    rt = SimRuntime(program, REGISTRY, nodes=1, max_iterations=3)
    # sabotage: inject a dependency cycle whose nodes can never become
    # ready, then rebuild the scheduler over the corrupted graph
    from repro.hinch.scheduler import DataflowScheduler

    rt.pg.graph.add_node("g1", kind="barrier")
    rt.pg.graph.add_node("g2", kind="barrier")
    rt.pg.graph.add_edge("g1", "g2")
    rt.pg.graph.add_edge("g2", "g1")
    rt.scheduler = DataflowScheduler(rt.pg, pipeline_depth=1,
                                     max_iterations=3, hooks=rt)
    with pytest.raises(errors.SimulationError, match="deadlocked"):
        rt.run()


def test_threaded_runtime_rejects_bad_depth():
    from repro.core import AppBuilder, expand
    from repro.hinch import ThreadedRuntime
    from tests.hinch.helpers import PORTS, REGISTRY

    b = AppBuilder()
    b.procedure("main").component("src", "producer", streams={"output": "s"})
    program = expand(b.build(), PORTS)
    with pytest.raises(errors.SchedulingError):
        ThreadedRuntime(program, REGISTRY, nodes=1, pipeline_depth=0,
                        max_iterations=1)


def test_zero_iteration_run_completes_immediately():
    from repro.core import AppBuilder, expand
    from repro.hinch import ThreadedRuntime
    from repro.spacecake import SimRuntime
    from tests.hinch.helpers import PORTS, REGISTRY

    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "s"})
    main.component("snk", "collector", streams={"input": "s"})
    program = expand(b.build(), PORTS)
    thr = ThreadedRuntime(program, REGISTRY, nodes=2, max_iterations=0).run()
    assert thr.completed_iterations == 0
    sim = SimRuntime(program, REGISTRY, nodes=2, max_iterations=0).run()
    assert sim.completed_iterations == 0
    assert sim.cycles == 0
