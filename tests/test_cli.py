"""Tests for the xspcl command-line toolchain."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture()
def blur_xml(tmp_path):
    path = tmp_path / "blur.xml"
    assert main(["apps", "blur3", "-o", str(path)]) == 0
    return path


def test_apps_dump_and_validate(blur_xml, capsys):
    assert main(["validate", str(blur_xml)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out


def test_apps_dump_to_stdout(capsys):
    assert main(["apps", "pip1"]) == 0
    out = capsys.readouterr().out
    assert "<xspcl" in out
    assert 'class="downscale_field"' in out


def test_validate_reports_errors(tmp_path, capsys):
    bad = tmp_path / "bad.xml"
    bad.write_text(
        "<xspcl><procedure name='main'><body>"
        "<component name='x' class='no_such_class'/>"
        "</body></procedure></xspcl>"
    )
    assert main(["validate", str(bad)]) == 1
    assert "error:" in capsys.readouterr().err


def test_validate_no_registry_skips_classes(tmp_path):
    spec = tmp_path / "custom.xml"
    spec.write_text(
        "<xspcl><procedure name='main'><body>"
        "<component name='x' class='my_custom_thing'>"
        "<stream port='p' ref='s'/></component>"
        "</body></procedure></xspcl>"
    )
    assert main(["validate", str(spec), "--no-registry"]) == 0


def test_expand_summary_and_dot(blur_xml, tmp_path, capsys):
    dot = tmp_path / "g.dot"
    assert main(["expand", str(blur_xml), "--dot", str(dot)]) == 0
    out = capsys.readouterr().out
    assert "component instances : 20" in out
    assert dot.read_text().startswith("digraph")


def test_run_threaded(blur_xml, capsys):
    assert main(["run", str(blur_xml), "--nodes", "2", "--iterations", "4"]) == 0
    assert "completed 4 iterations" in capsys.readouterr().out


def test_run_sim(blur_xml, capsys):
    assert main([
        "run", str(blur_xml), "--backend", "sim", "--nodes", "3",
        "--iterations", "8",
    ]) == 0
    out = capsys.readouterr().out
    assert "simulated 8 iterations" in out
    assert "Mcycles" in out


def test_predict(blur_xml, capsys):
    assert main(["predict", str(blur_xml), "--nodes", "4",
                 "--iterations", "8"]) == 0
    assert "predicted" in capsys.readouterr().out


def test_codegen_roundtrip(blur_xml, tmp_path, capsys):
    out_py = tmp_path / "glue.py"
    assert main(["codegen", str(blur_xml), "-o", str(out_py)]) == 0
    source = out_py.read_text()
    compile(source, str(out_py), "exec")
    namespace: dict = {}
    exec(compile(source, "glue", "exec"), namespace)
    assert len(namespace["build_program"]().components) == 20


def test_figures_quick(capsys):
    # tiny scale so the CLI path is exercised quickly
    assert main(["figures", "fig8", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "FIG8" in out
    assert "Paper reports" in out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["figures", "fig99"])


def test_missing_subcommand_rejected():
    with pytest.raises(SystemExit):
        main([])


# -- run-knob validation (fuzzer-pinned usage errors) ------------------------


@pytest.mark.parametrize(
    "extra",
    [
        ["--batch", "0"],
        ["--workers", "0"],
        ["--nodes", "0"],
        ["--iterations", "-1"],
        ["--pipeline-depth", "0"],
        ["--max-retries", "-1"],
        ["--backend", "process", "--watchdog", "0"],
    ],
    ids=lambda extra: " ".join(extra),
)
def test_run_rejects_degenerate_knobs(blur_xml, capsys, extra):
    assert main(["run", str(blur_xml), *extra]) == 2
    assert "usage error:" in capsys.readouterr().err


@pytest.mark.parametrize(
    "extra",
    [
        ["--backend", "sim", "--inject-fault", "kill:1"],
        ["--backend", "threaded", "--inject-fault", "kill:1"],
        ["--backend", "threaded", "--batch", "4"],
        ["--backend", "sim", "--fuse"],
        ["--backend", "threaded", "--autotune"],
        ["--backend", "process", "--deadline", "50"],
        ["--backend", "process", "--autotune", "--objective", "deadline"],
    ],
    ids=lambda extra: " ".join(extra),
)
def test_run_rejects_incoherent_knob_combinations(blur_xml, capsys, extra):
    assert main(["run", str(blur_xml), *extra]) == 2
    assert "usage error:" in capsys.readouterr().err


@pytest.mark.parametrize(
    "spec",
    ["kill:1,slow:1:5", "kill:0", "slow:2", "frob:1", "kill:one"],
    ids=["duplicate-index", "zero-index", "slow-missing-ms",
         "unknown-kind", "non-numeric"],
)
def test_run_rejects_bad_fault_specs_up_front(blur_xml, capsys, spec):
    assert main([
        "run", str(blur_xml), "--backend", "process",
        "--inject-fault", spec,
    ]) == 2
    err = capsys.readouterr().err
    assert "usage error:" in err


def test_run_warns_about_unfired_faults(blur_xml, capsys):
    assert main([
        "run", str(blur_xml), "--backend", "process", "--workers", "1",
        "--iterations", "2", "--inject-fault", "kill:999",
    ]) == 0
    captured = capsys.readouterr()
    assert "completed 2 iterations" in captured.out
    assert "fault recovery: unfired=1" in captured.out
    assert "kill:999 never fired" in captured.err
