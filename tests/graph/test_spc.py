"""Unit and property tests for the SP composition algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import GraphError
from repro.graph import Leaf, Parallel, Series, parallel, series


def test_leaf_basics():
    leaf = Leaf("scale", payload={"factor": 3}, weight=2.0)
    assert leaf.label == "scale"
    assert leaf.payload == {"factor": 3}
    assert leaf.weight == 2.0
    assert leaf.depth() == 1
    assert leaf.width() == 1
    assert leaf.serial_length() == 1
    assert leaf.leaves() == [leaf]


def test_leaf_rejects_empty_label():
    with pytest.raises(GraphError):
        Leaf("")


def test_leaf_rejects_negative_weight():
    with pytest.raises(GraphError):
        Leaf("x", weight=-1.0)


def test_series_flattens_nested_series():
    a, b, c = Leaf("a"), Leaf("b"), Leaf("c")
    assert series(a, series(b, c)) == series(a, b, c)
    assert series(series(a, b), c) == series(a, b, c)


def test_parallel_flattens_nested_parallel():
    a, b, c = Leaf("a"), Leaf("b"), Leaf("c")
    assert parallel(a, parallel(b, c)) == parallel(a, b, c)


def test_singleton_composition_collapses():
    a = Leaf("a")
    assert series(a) is a
    assert parallel(a) is a


def test_mixed_nesting_is_preserved():
    a, b, c = Leaf("a"), Leaf("b"), Leaf("c")
    tree = series(a, parallel(b, c))
    assert isinstance(tree, Series)
    assert isinstance(tree.children[1], Parallel)
    assert tree != series(a, b, c)


def test_operator_sugar():
    a, b, c = Leaf("a"), Leaf("b"), Leaf("c")
    assert (a >> b) == series(a, b)
    assert (a | b) == parallel(a, b)
    assert (a >> b >> c) == series(a, b, c)
    assert (a | b | c) == parallel(a, b, c)


def test_width_and_serial_length():
    a, b, c, d = (Leaf(x) for x in "abcd")
    tree = series(a, parallel(b, series(c, d)))
    assert tree.width() == 2
    assert tree.serial_length() == 3  # a; then (c; d) branch


def test_leaves_in_series_order():
    a, b, c = Leaf("a"), Leaf("b"), Leaf("c")
    tree = series(a, parallel(b, c))
    assert [leaf.label for leaf in tree.leaves()] == ["a", "b", "c"]


def test_map_leaves_replaces_structure():
    a, b = Leaf("a"), Leaf("b")
    tree = series(a, b)
    expanded = tree.map_leaves(lambda leaf: parallel(Leaf(leaf.label + "0"), Leaf(leaf.label + "1")))
    assert expanded == series(parallel(Leaf("a0"), Leaf("a1")), parallel(Leaf("b0"), Leaf("b1")))


def test_map_leaves_identity_preserves_equality():
    a, b, c = Leaf("a"), Leaf("b"), Leaf("c")
    tree = series(a, parallel(b, c))
    assert tree.map_leaves(lambda leaf: leaf) == tree


def test_composite_requires_children():
    with pytest.raises(GraphError):
        Series(())
    with pytest.raises(GraphError):
        Parallel(())


def test_series_rejects_non_spnode():
    with pytest.raises(GraphError):
        series(Leaf("a"), "not a node")  # type: ignore[arg-type]


def test_preorder_iteration():
    a, b, c = Leaf("a"), Leaf("b"), Leaf("c")
    tree = series(a, parallel(b, c))
    kinds = [type(n).__name__ for n in tree]
    assert kinds == ["Series", "Leaf", "Parallel", "Leaf", "Leaf"]


def test_equality_distinguishes_series_from_parallel():
    a, b = Leaf("a"), Leaf("b")
    assert series(a, b) != parallel(a, b)


def test_hash_consistent_with_equality():
    a, b = Leaf("a"), Leaf("b")
    assert hash(series(a, b)) == hash(series(Leaf("a"), Leaf("b")))


# ---------------------------------------------------------------------------
# Property tests: random SP trees
# ---------------------------------------------------------------------------

_labels = st.sampled_from(["a", "b", "c", "d", "e", "f"])


def sp_trees(max_depth: int = 4):
    return st.recursive(
        _labels.map(Leaf),
        lambda inner: st.one_of(
            st.lists(inner, min_size=2, max_size=3).map(lambda cs: series(*cs)),
            st.lists(inner, min_size=2, max_size=3).map(lambda cs: parallel(*cs)),
        ),
        max_leaves=12,
    )


@given(sp_trees())
def test_prop_width_le_leaf_count(tree):
    assert 1 <= tree.width() <= len(tree.leaves())


@given(sp_trees())
def test_prop_serial_length_le_leaf_count(tree):
    assert 1 <= tree.serial_length() <= len(tree.leaves())


@given(sp_trees())
def test_prop_width_times_serial_bounds_leaves(tree):
    # Every leaf lies on some series chain inside some parallel branch.
    assert len(tree.leaves()) <= tree.width() * tree.serial_length()


@given(sp_trees())
def test_prop_no_directly_nested_same_kind(tree):
    for node in tree:
        if isinstance(node, (Series, Parallel)):
            for child in node.children:
                assert type(child) is not type(node), "composition must flatten"


@given(sp_trees())
def test_prop_map_leaves_identity(tree):
    assert tree.map_leaves(lambda leaf: leaf) == tree


@given(sp_trees())
def test_prop_equality_reflexive_and_hashable(tree):
    assert tree == tree
    hash(tree)  # must not raise
