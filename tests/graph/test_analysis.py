"""Tests for SP recognition, SP-ization, and critical path."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.errors import NotSeriesParallelError
from repro.graph import (
    Leaf,
    TaskGraph,
    critical_path,
    is_series_parallel,
    parallel,
    series,
    sp_ize,
)
from repro.graph.analysis import require_series_parallel, topological_levels

from tests.graph.test_spc import sp_trees


def crossdep_graph(n_slices: int = 4) -> TaskGraph:
    """Two sliced parblocks with i-1/i/i+1 cross dependencies (paper Fig 5)."""
    g = TaskGraph()
    for i in range(n_slices):
        g.add_node(f"h{i}")
        g.add_node(f"v{i}")
    for i in range(n_slices):
        for j in (i - 1, i, i + 1):
            if 0 <= j < n_slices:
                g.add_edge(f"h{j}", f"v{i}")
    return g


def test_single_node_is_sp():
    g = TaskGraph()
    g.add_node("a")
    assert is_series_parallel(g)


def test_empty_graph_is_sp():
    assert is_series_parallel(TaskGraph())


def test_chain_is_sp():
    g = TaskGraph.from_sp(series(Leaf("a"), Leaf("b"), Leaf("c")))
    assert is_series_parallel(g)


def test_diamond_is_sp():
    g = TaskGraph.from_sp(series(Leaf("s"), parallel(Leaf("a"), Leaf("b")), Leaf("t")))
    assert is_series_parallel(g)


def test_crossdep_is_not_sp():
    g = crossdep_graph(4)
    assert not is_series_parallel(g)


def test_n_graph_is_not_sp():
    # The canonical non-SP "N" shape: a->c, a->d, b->d
    g = TaskGraph()
    for n in "abcd":
        g.add_node(n)
    g.add_edge("a", "c")
    g.add_edge("a", "d")
    g.add_edge("b", "d")
    assert not is_series_parallel(g)


def test_cyclic_graph_is_not_sp():
    g = TaskGraph()
    g.add_node("a")
    g.add_node("b")
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    assert not is_series_parallel(g)


def test_sp_ize_makes_crossdep_sp():
    g = crossdep_graph(5)
    sp = sp_ize(g)
    assert is_series_parallel(sp)


def test_sp_ize_preserves_dependencies_transitively():
    g = crossdep_graph(3)
    sp = sp_ize(g)
    for u, v in g.edges():
        assert v in sp.descendants(u), f"lost dependency {u}->{v}"


def test_sp_ize_preserves_task_nodes():
    g = crossdep_graph(3)
    sp = sp_ize(g)
    originals = {n.node_id for n in g}
    kept = {n.node_id for n in sp if n.kind == "task"}
    assert kept == originals


def test_sp_ize_barriers_have_zero_weight():
    sp = sp_ize(crossdep_graph(3))
    for node in sp:
        if node.kind == "barrier":
            assert node.weight == 0.0


def test_sp_ize_empty_graph():
    assert len(sp_ize(TaskGraph())) == 0


def test_topological_levels():
    g = TaskGraph.from_sp(series(Leaf("a"), parallel(Leaf("b"), Leaf("c")), Leaf("d")))
    levels = topological_levels(g)
    assert levels == {"a": 0, "b": 1, "c": 1, "d": 2}


def test_require_series_parallel_raises():
    with pytest.raises(NotSeriesParallelError):
        require_series_parallel(crossdep_graph(3), context="blur")


def test_require_series_parallel_passes():
    require_series_parallel(TaskGraph.from_sp(series(Leaf("a"), Leaf("b"))))


# -- critical path ----------------------------------------------------------


def test_critical_path_chain():
    g = TaskGraph()
    g.add_node("a", weight=1.0)
    g.add_node("b", weight=2.0)
    g.add_node("c", weight=3.0)
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    length, path = critical_path(g)
    assert length == 6.0
    assert path == ["a", "b", "c"]


def test_critical_path_picks_heavier_branch():
    g = TaskGraph()
    g.add_node("s", weight=1.0)
    g.add_node("light", weight=1.0)
    g.add_node("heavy", weight=10.0)
    g.add_node("t", weight=1.0)
    g.add_edge("s", "light")
    g.add_edge("s", "heavy")
    g.add_edge("light", "t")
    g.add_edge("heavy", "t")
    length, path = critical_path(g)
    assert length == 12.0
    assert path == ["s", "heavy", "t"]


def test_critical_path_custom_weight_fn():
    g = TaskGraph.from_sp(series(Leaf("a"), Leaf("b")))
    length, _ = critical_path(g, weight=lambda nid: 5.0)
    assert length == 10.0


def test_critical_path_empty_graph():
    assert critical_path(TaskGraph()) == (0.0, [])


# -- properties --------------------------------------------------------------


@given(sp_trees())
def test_prop_lowered_sp_tree_is_recognized_sp(tree):
    g = TaskGraph.from_sp(tree)
    assert is_series_parallel(g)


@given(sp_trees())
def test_prop_sp_ize_idempotent_on_sp_structure(tree):
    g = TaskGraph.from_sp(tree)
    assert is_series_parallel(sp_ize(g))


@given(sp_trees())
def test_prop_critical_path_bounds(tree):
    g = TaskGraph.from_sp(tree)
    length, path = critical_path(g)
    total = sum(n.weight for n in g)
    assert 0 < length <= total
    # path is a real path in the graph
    for u, v in zip(path, path[1:]):
        assert g.has_edge(u, v)


@given(sp_trees())
def test_prop_critical_path_equals_serial_length_for_unit_weights(tree):
    g = TaskGraph.from_sp(tree)
    length, _ = critical_path(g)
    assert length == tree.serial_length()
