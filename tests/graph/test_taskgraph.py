"""Unit tests for the flat task graph."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph import Leaf, TaskGraph, parallel, series


def diamond() -> TaskGraph:
    g = TaskGraph()
    for n in "abcd":
        g.add_node(n)
    g.add_edge("a", "b")
    g.add_edge("a", "c")
    g.add_edge("b", "d")
    g.add_edge("c", "d")
    return g


def test_add_node_and_lookup():
    g = TaskGraph()
    node = g.add_node("x", label="X", weight=2.5)
    assert g.node("x") is node
    assert "x" in g
    assert len(g) == 1
    assert node.label == "X"
    assert node.weight == 2.5


def test_duplicate_node_rejected():
    g = TaskGraph()
    g.add_node("x")
    with pytest.raises(GraphError):
        g.add_node("x")


def test_edge_endpoints_must_exist():
    g = TaskGraph()
    g.add_node("x")
    with pytest.raises(GraphError):
        g.add_edge("x", "y")
    with pytest.raises(GraphError):
        g.add_edge("y", "x")


def test_self_loop_rejected():
    g = TaskGraph()
    g.add_node("x")
    with pytest.raises(GraphError):
        g.add_edge("x", "x")


def test_duplicate_edge_is_idempotent():
    g = TaskGraph()
    g.add_node("a")
    g.add_node("b")
    g.add_edge("a", "b")
    g.add_edge("a", "b")
    assert g.num_edges == 1
    assert g.successors("a") == ["b"]


def test_sources_sinks_degrees():
    g = diamond()
    assert g.sources() == ["a"]
    assert g.sinks() == ["d"]
    assert g.in_degree("d") == 2
    assert g.out_degree("a") == 2


def test_topological_order_respects_edges():
    g = diamond()
    order = g.topological_order()
    pos = {n: i for i, n in enumerate(order)}
    for u, v in g.edges():
        assert pos[u] < pos[v]


def test_cycle_detection():
    g = TaskGraph()
    for n in "ab":
        g.add_node(n)
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    assert not g.is_acyclic()
    with pytest.raises(GraphError, match="cycle"):
        g.topological_order()


def test_ancestors_descendants():
    g = diamond()
    assert g.ancestors("d") == {"a", "b", "c"}
    assert g.descendants("a") == {"b", "c", "d"}
    assert g.ancestors("a") == set()
    assert g.descendants("d") == set()


def test_remove_node_cleans_edges():
    g = diamond()
    g.remove_node("b")
    assert "b" not in g
    assert g.successors("a") == ["c"]
    assert g.predecessors("d") == ["c"]
    assert g.num_edges == 2


def test_copy_is_deep_structurally():
    g = diamond()
    dup = g.copy()
    dup.add_node("e")
    dup.add_edge("d", "e")
    assert "e" not in g
    assert g.num_edges == 4
    assert dup.num_edges == 5


def test_subgraph_induced():
    g = diamond()
    sub = g.subgraph(["a", "b", "d"])
    assert set(sub.node_ids) == {"a", "b", "d"}
    assert sub.has_edge("a", "b")
    assert sub.has_edge("b", "d")
    assert not sub.has_edge("a", "d")


def test_subgraph_unknown_node_rejected():
    g = diamond()
    with pytest.raises(GraphError):
        g.subgraph(["a", "zz"])


def test_node_kind_validation():
    g = TaskGraph()
    with pytest.raises(GraphError):
        g.add_node("x", kind="bogus")
    barrier = g.add_node("b", kind="barrier")
    assert barrier.is_synthetic


# -- SP lowering -----------------------------------------------------------


def test_from_sp_series_chain():
    tree = series(Leaf("a"), Leaf("b"), Leaf("c"))
    g = TaskGraph.from_sp(tree)
    assert set(g.node_ids) == {"a", "b", "c"}
    assert g.has_edge("a", "b")
    assert g.has_edge("b", "c")
    assert not g.has_edge("a", "c")


def test_from_sp_parallel_is_disjoint():
    tree = parallel(Leaf("a"), Leaf("b"))
    g = TaskGraph.from_sp(tree)
    assert g.num_edges == 0
    assert sorted(g.sources()) == ["a", "b"]


def test_from_sp_series_of_parallels_inserts_barrier():
    # Plural-to-plural series junctions become a synchronization point,
    # as the paper does for JPiP ("all Downscale and IDCT components must
    # have finished" before Blend).
    tree = series(parallel(Leaf("a"), Leaf("b")), parallel(Leaf("c"), Leaf("d")))
    g = TaskGraph.from_sp(tree)
    barriers = [n.node_id for n in g if n.kind == "barrier"]
    assert len(barriers) == 1
    (join,) = barriers
    for u in ("a", "b"):
        assert g.has_edge(u, join)
    for v in ("c", "d"):
        assert g.has_edge(join, v)
    assert g.num_edges == 4
    # dependencies preserved transitively
    for u in ("a", "b"):
        for v in ("c", "d"):
            assert v in g.descendants(u)


def test_from_sp_single_to_plural_needs_no_barrier():
    tree = series(Leaf("src"), parallel(Leaf("a"), Leaf("b")), Leaf("snk"))
    g = TaskGraph.from_sp(tree)
    assert all(n.kind == "task" for n in g)
    assert g.has_edge("src", "a")
    assert g.has_edge("src", "b")
    assert g.has_edge("a", "snk")
    assert g.has_edge("b", "snk")


def test_from_sp_duplicate_labels_get_suffixes():
    tree = series(Leaf("f"), Leaf("f"), Leaf("f"))
    g = TaskGraph.from_sp(tree)
    assert set(g.node_ids) == {"f", "f.1", "f.2"}
    # order of execution matches series order
    assert g.has_edge("f", "f.1")
    assert g.has_edge("f.1", "f.2")


def test_from_sp_preserves_payload_and_weight():
    tree = Leaf("x", payload=42, weight=7.0)
    g = TaskGraph.from_sp(tree)
    node = g.node("x")
    assert node.payload == 42
    assert node.weight == 7.0


def test_from_sp_id_prefix():
    g = TaskGraph.from_sp(series(Leaf("a"), Leaf("b")), id_prefix="it0/")
    assert set(g.node_ids) == {"it0/a", "it0/b"}
