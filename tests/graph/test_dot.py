"""Tests for DOT export."""

from __future__ import annotations

from repro.graph import Leaf, TaskGraph, parallel, series
from repro.graph.dot import sp_to_dot, taskgraph_to_dot


def test_taskgraph_dot_structure():
    g = TaskGraph()
    g.add_node("a")
    g.add_node("b", kind="barrier")
    g.add_edge("a", "b")
    dot = taskgraph_to_dot(g, name="demo")
    assert dot.startswith('digraph "demo"')
    assert '"a" -> "b";' in dot
    assert "diamond" in dot  # barrier styling
    assert dot.rstrip().endswith("}")


def test_taskgraph_dot_escapes_quotes():
    g = TaskGraph()
    g.add_node('we"ird')
    dot = taskgraph_to_dot(g)
    assert '\\"' in dot


def test_taskgraph_dot_manager_styles():
    g = TaskGraph()
    g.add_node("m.enter", kind="manager_enter")
    g.add_node("m.exit", kind="manager_exit")
    dot = taskgraph_to_dot(g)
    assert "invtrapezium" in dot
    assert "trapezium" in dot


def test_sp_dot_marks_composition():
    tree = series(Leaf("a"), parallel(Leaf("b"), Leaf("c")))
    dot = sp_to_dot(tree)
    assert 'label=";"' in dot
    assert 'label="||"' in dot
    assert dot.count("shape=box") == 3


def test_dot_output_parses_as_balanced():
    from repro.apps import build_blur, make_program

    pg = make_program(build_blur(3, slices=3), name="b").build_graph()
    dot = taskgraph_to_dot(pg.graph)
    assert dot.count("{") == dot.count("}")
    # every node declared once
    for node in pg.graph.node_ids:
        assert f'"{node}"' in dot
