"""Tests for component grouping (paper §4.1 'scheduled as one entity')."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AppBuilder, expand
from repro.hinch import ThreadedRuntime
from repro.hinch.grouping import group_linear_chains
from repro.spacecake import AccessLevel, SimRuntime

from tests.spacecake.helpers import PORTS, REGISTRY
from tests.hinch.helpers import PORTS as HPORTS, REGISTRY as HREGISTRY


def chain_app(stages=3):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "costed_source", streams={"output": "s0"},
                   params={"cycles": 100, "nbytes": 4096})
    for i in range(stages):
        main.component(f"w{i}", "costed_worker",
                       streams={"input": f"s{i}", "output": f"s{i+1}"},
                       params={"cycles": 100, "nbytes": 4096})
    main.component("snk", "costed_sink", streams={"input": f"s{stages}"})
    return expand(b.build(), PORTS)


def test_linear_chain_merges_fully():
    pg = chain_app(3).build_graph()
    grouped = group_linear_chains(pg)
    assert len(grouped.graph) == 1
    (node,) = list(grouped.graph)
    assert node.node_id == "src+w0+w1+w2+snk"
    assert [i.instance_id for i in node.payload] == [
        "src", "w0", "w1", "w2", "snk"
    ]


def test_branching_limits_grouping():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "costed_source", streams={"output": "a"},
                   params={"cycles": 10})
    with main.parallel("task"):
        with main.parblock():
            main.component("x", "costed_worker",
                           streams={"input": "a", "output": "xa"},
                           params={"cycles": 10})
        with main.parblock():
            main.component("y", "costed_worker",
                           streams={"input": "a", "output": "ya"},
                           params={"cycles": 10})
    main.component("snk1", "costed_sink", streams={"input": "xa"})
    main.component("snk2", "costed_sink", streams={"input": "ya"})
    pg = expand(b.build(), PORTS).build_graph()
    grouped = group_linear_chains(pg)
    # src fans out (not groupable); each branch chain x->...->snk? snk1
    # depends only on x -> groupable pairs
    assert "x+snk1" in grouped.graph or "x" in grouped.graph
    # dependencies preserved
    order = grouped.graph.topological_order()
    assert order[0].startswith("src")


def test_slices_only_group_with_matching_assignment():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "costed_source", streams={"output": "a"},
                   params={"cycles": 10})
    with main.parallel("slice", n=3):
        main.component("w", "costed_worker",
                       streams={"input": "a", "output": "b"},
                       params={"cycles": 10})
    main.component("snk", "costed_sink", streams={"input": "b"})
    pg = expand(b.build(), PORTS).build_graph()
    grouped = group_linear_chains(pg)
    # slice copies have distinct assignments from src (None) and fan-in to
    # snk, so nothing merges across the region boundary
    for i in range(3):
        assert f"w[{i}]" in grouped.graph


def test_no_chains_returns_same_object():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "costed_source", streams={"output": "a"},
                   params={"cycles": 10})
    with main.parallel("slice", n=2):
        main.component("w", "costed_worker",
                       streams={"input": "a", "output": "b"},
                       params={"cycles": 10})
    main.component("s1", "costed_sink", streams={"input": "b"})
    pg = expand(b.build(), PORTS).build_graph()
    # src -> w[i] (fanout), w[i] -> s1 (fan-in): src->? out_degree 2 — and
    # the only single-single edge would be none; expect identity
    grouped = group_linear_chains(pg)
    if grouped is not pg:  # if anything merged, deps must still hold
        assert grouped.graph.is_acyclic()


def test_grouped_sim_fewer_jobs_same_work():
    program = chain_app(3)
    split = SimRuntime(program, REGISTRY, nodes=1, pipeline_depth=1,
                       max_iterations=4).run()
    grouped = SimRuntime(program, REGISTRY, nodes=1, pipeline_depth=1,
                         max_iterations=4, group_chains=True).run()
    assert grouped.jobs_executed < split.jobs_executed
    # one job overhead instead of five, plus L1 reuse: strictly cheaper
    assert grouped.cycles < split.cycles


def test_grouping_turns_stream_traffic_into_l1_hits():
    program = chain_app(3)
    split = SimRuntime(program, REGISTRY, nodes=2, pipeline_depth=1,
                       max_iterations=6).run()
    grouped = SimRuntime(program, REGISTRY, nodes=2, pipeline_depth=1,
                         max_iterations=6, group_chains=True).run()
    assert (
        grouped.cache_stats.accesses[AccessLevel.L1]
        > split.cache_stats.accesses[AccessLevel.L1]
    )


def test_grouping_reduces_parallelism():
    """The paper's caveat: grouped entities cannot spread over cores."""
    program = chain_app(4)
    split = SimRuntime(program, REGISTRY, nodes=4, pipeline_depth=6,
                       max_iterations=24).run()
    grouped = SimRuntime(program, REGISTRY, nodes=4, pipeline_depth=6,
                         max_iterations=24, group_chains=True).run()
    # fully grouped chain = 1 job/iteration: pipeline cannot overlap
    # stages across cores, so utilization collapses
    assert grouped.utilization < split.utilization


def test_grouped_threaded_results_identical():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "a"},
                   params={"base": 3})
    main.component("d", "doubler", streams={"input": "a", "output": "b"})
    main.component("p", "addconst", streams={"input": "b", "output": "c"},
                   params={"k": 7})
    main.component("snk", "collector", streams={"input": "c"})
    program = expand(b.build(), HPORTS)
    plain = ThreadedRuntime(program, HREGISTRY, nodes=2, pipeline_depth=3,
                            max_iterations=6).run()
    grouped = ThreadedRuntime(program, HREGISTRY, nodes=2, pipeline_depth=3,
                              max_iterations=6, group_chains=True).run()
    assert plain.components["snk"].ordered() == \
        grouped.components["snk"].ordered() == [(3 + k) * 2 + 7 for k in range(6)]


def test_grouped_sim_execute_matches_functional_output():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "a"})
    main.component("d", "doubler", streams={"input": "a", "output": "b"})
    main.component("snk", "collector", streams={"input": "b"})
    program = expand(b.build(), HPORTS)
    sim = SimRuntime(program, HREGISTRY, nodes=2, pipeline_depth=2,
                     max_iterations=5, execute=True, group_chains=True).run()
    assert sim.components["snk"].ordered() == [k * 2 for k in range(5)]


def test_grouping_survives_reconfiguration():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "costed_source", streams={"output": "a"},
                   params={"cycles": 100})
    main.component("timer", "sim_timer",
                   params={"queue": "ui", "period": 4, "event": "flip"})
    with main.manager("m", queue="ui") as mgr:
        mgr.on("flip", "toggle", option="extra")
        with main.option("extra", enabled=False, bypass=[("a", "b")]):
            main.component("x", "costed_worker",
                           streams={"input": "a", "output": "b"},
                           params={"cycles": 100})
    main.component("snk", "costed_sink", streams={"input": "b"})
    program = expand(b.build(), PORTS)
    result = SimRuntime(program, REGISTRY, nodes=2, pipeline_depth=2,
                        max_iterations=16, group_chains=True).run()
    assert result.completed_iterations == 16
    assert result.reconfig_count >= 2
