"""ProcessRuntime equivalence: bit-identical to the threaded backend.

The process backend moves kernel execution to worker processes but keeps
every semantic decision (readiness, load balancing, events,
reconfiguration) on the dispatcher, so for each application the collected
output must match the threaded runtime exactly — including across live
reconfigurations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import build_blur, build_jpip, build_pip, make_program
from repro.components.registry import default_registry
from repro.errors import SchedulingError
from repro.hinch import ProcessRuntime, ThreadedRuntime

REG = default_registry()


def run_threaded(spec, *, iters, nodes=2, depth=2, name="app"):
    program = make_program(spec, name=name)
    return ThreadedRuntime(program, REG, nodes=nodes, pipeline_depth=depth,
                           max_iterations=iters).run()


def run_process(spec, *, iters, workers=2, depth=2, name="app"):
    program = make_program(spec, name=name)
    return ProcessRuntime(program, REG, workers=workers, pipeline_depth=depth,
                          max_iterations=iters).run()


# -- bit-identical applications ---------------------------------------------


@pytest.mark.parametrize("workers", [1, 2])
def test_pip_identical_frames(workers):
    spec = build_pip(1, width=64, height=48, factor=4, slices=2, frames=2,
                     collect=True)
    thr = run_threaded(spec, iters=4)
    prc = run_process(spec, iters=4, workers=workers)
    a = thr.components["sink"].ordered_frames()
    b = prc.components["sink"].ordered_frames()
    assert len(a) == len(b) == 4
    for x, y in zip(a, b):
        assert x == y


@pytest.mark.parametrize("workers", [1, 3])
def test_blur5_identical_planes(workers):
    spec = build_blur(5, width=48, height=36, slices=3, frames=2,
                      collect=True)
    thr = run_threaded(spec, iters=4)
    prc = run_process(spec, iters=4, workers=workers)
    a = thr.components["sink"].ordered_planes()
    b = prc.components["sink"].ordered_planes()
    assert len(a) == len(b) == 4
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_jpip_identical_frames():
    spec = build_jpip(1, width=64, height=48, pip_height=48, factor=4,
                      slices=3, frames=2, collect=True)
    thr = run_threaded(spec, iters=3)
    prc = run_process(spec, iters=3, workers=2)
    a = thr.components["sink"].ordered_frames()
    b = prc.components["sink"].ordered_frames()
    assert len(a) == len(b) == 3
    for x, y in zip(a, b):
        assert x == y


def test_stream_stats_match_threaded():
    """The dispatcher's one-get-per-(copy, port) accounting reproduces the
    threaded backend's stream counters exactly."""
    spec = build_blur(5, width=48, height=36, slices=3, frames=2,
                      collect=True)
    thr = run_threaded(spec, iters=4)
    prc = run_process(spec, iters=4, workers=2)
    assert prc.stream_stats == thr.stream_stats


# -- live reconfiguration ---------------------------------------------------


def test_reconfigurable_blur_matches_threaded_when_sequential():
    """workers=1 / depth=1 is fully deterministic (the dispatcher hands
    the FIFO head to the single worker, control jobs run inline in pop
    order), so the reconfiguration points and the output must equal the
    threaded backend at nodes=1."""
    spec = build_blur(reconfigurable=True, period=3, width=48, height=36,
                      slices=3, frames=2, collect=True)
    program = make_program(spec, name="blur35")
    thr_rt = ThreadedRuntime(program, REG, nodes=1, pipeline_depth=1,
                             max_iterations=9)
    thr = thr_rt.run()
    prc_rt = ProcessRuntime(program, REG, workers=1, pipeline_depth=1,
                            max_iterations=9)
    prc = prc_rt.run()
    assert thr_rt.reconfig_log  # at least one live reconfiguration
    assert prc_rt.reconfig_log == thr_rt.reconfig_log
    a = thr.components["sink"].ordered_planes()
    b = prc.components["sink"].ordered_planes()
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_preinjected_event_reconfigures_identically_at_any_width(workers):
    """An event posted before run() is handled at the first manager
    invocation and spliced at a fixed quiescence point — deterministic
    regardless of how many workers race on the task jobs."""
    spec = build_pip(2, width=64, height=48, factor=4, slices=2, frames=2,
                     reconfigurable=True, period=100, collect=True)
    program = make_program(spec, name="pip2")
    thr_rt = ThreadedRuntime(program, REG, nodes=1, pipeline_depth=2,
                             max_iterations=6)
    thr_rt.post_event("ui", "toggle_pip")
    thr = thr_rt.run()
    prc_rt = ProcessRuntime(program, REG, workers=workers, pipeline_depth=2,
                            max_iterations=6)
    prc_rt.post_event("ui", "toggle_pip")
    prc = prc_rt.run()
    assert thr_rt.reconfig_log  # the toggle produced a live reconfiguration
    assert prc_rt.reconfig_log == thr_rt.reconfig_log
    a = thr.components["sink"].ordered_frames()
    b = prc.components["sink"].ordered_frames()
    assert len(a) == len(b) == 6
    for x, y in zip(a, b):
        assert x == y


# -- the zero-copy hot path -------------------------------------------------


def test_no_pixel_data_pickled_on_stream_hot_path():
    """Acceptance criterion: PiP streams nothing but ndarray planes, so
    stream transport must pickle nothing.  ``meta_pickled_bytes`` counts
    the (interned) control-pipe messages — pure coordination metadata —
    so it must stay flat when the frame area quadruples, while the
    out-of-band pixel bytes scale with it.  (collect=False: a collecting
    sink checkpoints whole frames, which legitimately ride — and are
    counted on — the control pipe.)"""
    small = run_process(
        build_pip(1, width=64, height=48, factor=4, slices=2, frames=2),
        iters=4, workers=2,
    ).pool_stats
    large = run_process(
        build_pip(1, width=128, height=96, factor=4, slices=2, frames=2),
        iters=4, workers=2,
    ).pool_stats
    for stats in (small, large):
        assert stats["plane_packs"] > 0
        assert stats["pickle_packs"] == 0
    assert large["oob_bytes"] == 4 * small["oob_bytes"]
    assert small["meta_pickled_bytes"] > 0  # leases/records are counted
    assert large["meta_pickled_bytes"] < 1.2 * small["meta_pickled_bytes"]


def test_jpip_pickles_only_scaffolding():
    """JPiP ships EncodedFrame objects (compressed bitstreams) via the
    pickle5 path; the metadata must stay tiny relative to the out-of-band
    payload — raw coefficient planes never hit pickle."""
    spec = build_jpip(1, width=64, height=48, pip_height=48, factor=4,
                      slices=3, frames=2, collect=True)
    prc = run_process(spec, iters=3, workers=2)
    stats = prc.pool_stats
    assert stats["oob_bytes"] > 0


def test_pool_planes_released_at_end_of_run():
    spec = build_blur(3, width=48, height=36, slices=3, frames=2)
    program = make_program(spec, name="blur")
    rt = ProcessRuntime(program, REG, workers=2, pipeline_depth=2,
                        max_iterations=4)
    rt.run()
    # all slots were released as iterations completed; close() then
    # unlinked the segments
    assert rt.pool.total_planes == 0


# -- tracing ----------------------------------------------------------------


def test_trace_records_per_worker_occupancy():
    spec = build_blur(3, width=48, height=36, slices=3, frames=2)
    program = make_program(spec, name="blur")
    rt = ProcessRuntime(program, REG, workers=2, pipeline_depth=2,
                        max_iterations=4, trace=True)
    result = rt.run()
    busy = result.trace.per_worker_busy()
    # every worker did something; dispatcher control jobs appear as -1
    # only for apps with managers (plain blur has none)
    assert set(busy) <= {-1, 0, 1}
    assert any(w >= 0 for w in busy)
    assert all(v > 0 for v in busy.values())
    task_workers = {e.worker for e in result.trace.events if e.kind == "task"}
    assert task_workers and all(w >= 0 for w in task_workers)


# -- guard rails ------------------------------------------------------------


def test_workers_must_be_positive():
    spec = build_blur(3, width=48, height=36, slices=3, frames=1)
    program = make_program(spec, name="blur")
    with pytest.raises(SchedulingError):
        ProcessRuntime(program, REG, workers=0, max_iterations=1)


def test_zero_iterations_completes_immediately():
    spec = build_blur(3, width=48, height=36, slices=3, frames=1)
    program = make_program(spec, name="blur")
    result = ProcessRuntime(program, REG, workers=2,
                            max_iterations=0).run()
    assert result.completed_iterations == 0


def test_worker_exception_propagates():
    """A component crash in a worker surfaces in the dispatcher as the
    original exception, and shutdown still cleans up the pool."""
    from repro.hinch.component import Component

    class Exploding(Component):
        ports = REG["luma_source"].ports

        def run(self, job):
            raise RuntimeError("kernel exploded")

    registry = dict(REG)
    registry["luma_source"] = Exploding
    spec = build_blur(3, width=48, height=36, slices=3, frames=1)
    program = make_program(spec, name="blur")
    rt = ProcessRuntime(program, registry, workers=2, max_iterations=2)
    with pytest.raises(RuntimeError, match="kernel exploded"):
        rt.run()
    assert rt.pool.total_planes == 0
