"""Elastic auto-tuning: controller decisions, re-slicing, integration.

The controller (:mod:`repro.hinch.autotune`) is pure — it never reads a
clock — so the decision tests here feed canned observation windows and
assert the *exact* decision sequence, including the stability
properties: hysteresis (two agreeing windows before any move), the
post-decision cooldown, and no oscillation on noisy traces.  The
integration tests then drive :class:`ProcessRuntime` through scripted
and real decisions and hold the runtime to the same contract as every
other reconfiguration: bit-identical output.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps import build_jpip, make_program
from repro.components.registry import default_registry
from repro.core.reslice import reslice, slice_groups
from repro.errors import PredictionError, ReconfigurationError, SchedulingError
from repro.graph.spc import Leaf, Parallel, Series
from repro.hinch import ProcessRuntime
from repro.hinch.autotune import (
    DISPATCH_BOUND_S,
    AutotuneConfig,
    AutotuneController,
    Decision,
    Observation,
)
from repro.prediction import seed_plan
from repro.prediction.estimate import (
    wcet_parallel,
    wcet_sequential,
    wcet_span,
)

REG = default_registry()


def _obs(
    window: int,
    *,
    wall: float = 1.0,
    iterations: int = 4,
    jobs: int = 50,
    worker_busy: dict[int, float] | None = None,
    node_busy: dict[str, float] | None = None,
    cpu_bound: tuple[str, ...] = (),
    queue: int = 0,
    workers: int = 1,
    live: int | None = None,
    batch: int = 4,
    slice_totals: dict[str, int] | None = None,
) -> Observation:
    """A balanced window by default: mid-sized jobs, busy-enough pool."""
    busy = worker_busy if worker_busy is not None else {0: 0.5}
    return Observation(
        window=window,
        wall=wall,
        iterations=iterations,
        jobs=jobs,
        worker_busy=busy,
        node_busy=node_busy if node_busy is not None
        else {"stage": sum(busy.values())},
        cpu_bound=frozenset(cpu_bound),
        queue_high_water=queue,
        workers=workers,
        live_workers=workers if live is None else live,
        batch=batch,
        slice_totals=dict(slice_totals or {}),
    )


# -- controller: canned-trace decisions --------------------------------------


def test_balanced_trace_decides_nothing():
    ctl = AutotuneController(AutotuneConfig())
    assert [ctl.observe(_obs(i)) for i in range(6)] == [None] * 6


def test_dispatch_bound_batches_up_after_hysteresis():
    ctl = AutotuneController(AutotuneConfig())
    dispatch_bound = dict(jobs=1000, worker_busy={0: 1.0}, batch=1)
    assert ctl.observe(_obs(0, **dispatch_bound)) is None  # 1st agreement
    decision = ctl.observe(_obs(1, **dispatch_bound))
    assert decision is not None
    assert decision.kind == "set_batch"
    assert decision.batch == 2
    assert "dispatch-bound" in decision.reason
    assert decision.predicted_ratio > 1.0


def test_long_jobs_drop_batch_to_min():
    ctl = AutotuneController(AutotuneConfig())
    long_jobs = dict(jobs=10, worker_busy={0: 0.9}, batch=8)
    assert ctl.observe(_obs(0, **long_jobs)) is None
    decision = ctl.observe(_obs(1, **long_jobs))
    assert decision is not None
    assert (decision.kind, decision.batch) == ("set_batch", 1)
    assert "job-bound" in decision.reason


def test_batch_at_max_never_proposes():
    ctl = AutotuneController(AutotuneConfig(max_batch=16))
    at_max = dict(jobs=1000, worker_busy={0: 1.0}, batch=16)
    assert [ctl.observe(_obs(i, **at_max)) for i in range(4)] == [None] * 4


def test_idle_pool_shrinks_to_measured_parallelism():
    ctl = AutotuneController(AutotuneConfig())
    idle = dict(
        workers=4,
        worker_busy={0: 0.3, 1: 0.3, 2: 0.2, 3: 0.2},  # parallelism 1.0
    )
    assert ctl.observe(_obs(0, **idle)) is None
    decision = ctl.observe(_obs(1, **idle))
    assert decision is not None
    assert decision.kind == "shrink_workers"
    assert decision.workers == 2  # ceil(1.0 * 1.25) head-room
    assert decision.predicted_ratio == 1.0  # no seed plan given


def test_shrink_prediction_comes_from_seed_intervals():
    ctl = AutotuneController(
        AutotuneConfig(), seed_intervals={4: 10.0, 2: 15.0}
    )
    idle = dict(
        workers=4,
        worker_busy={0: 0.3, 1: 0.3, 2: 0.2, 3: 0.2},
    )
    ctl.observe(_obs(0, **idle))
    decision = ctl.observe(_obs(1, **idle))
    assert decision is not None
    assert decision.predicted_ratio == pytest.approx(10.0 / 15.0)


def test_saturated_pressured_pool_grows_by_one():
    ctl = AutotuneController(AutotuneConfig(max_workers=4, cores=4))
    hot = dict(
        workers=2, batch=1, queue=10,
        worker_busy={0: 0.95, 1: 0.95},  # parallelism 1.9 >= 0.8 * 2
    )
    assert ctl.observe(_obs(0, **hot)) is None
    decision = ctl.observe(_obs(1, **hot))
    assert decision is not None
    assert (decision.kind, decision.workers) == ("grow_workers", 3)


def test_cpu_bound_bottleneck_stops_growth_past_cores():
    # Identical pressure; the only difference is whether the dominant
    # stage spins (CPU-bound) or blocks.  Past the physical core count
    # only blocking work can still overlap.
    hot = dict(
        workers=1, batch=1, queue=10,
        worker_busy={0: 0.9}, node_busy={"hot": 0.9},
    )
    spinning = AutotuneController(AutotuneConfig(max_workers=4, cores=1))
    outcomes = [
        spinning.observe(_obs(i, cpu_bound=("hot",), **hot))
        for i in range(4)
    ]
    assert outcomes == [None] * 4
    blocking = AutotuneController(AutotuneConfig(max_workers=4, cores=1))
    blocking.observe(_obs(0, **hot))
    decision = blocking.observe(_obs(1, **hot))
    assert decision is not None
    assert (decision.kind, decision.workers) == ("grow_workers", 2)


def test_dispatch_sized_slice_copies_narrow():
    ctl = AutotuneController(
        AutotuneConfig(slice_candidates={"g": (1, 2, 4)})
    )
    tiny = dict(
        jobs=100, batch=16,  # batch already at max: no batch proposal
        worker_busy={0: 0.004}, node_busy={"g": 0.004},
        slice_totals={"g": 4},  # 1ms per copy < DISPATCH_BOUND_S
    )
    assert ctl.observe(_obs(0, **tiny)) is None
    decision = ctl.observe(_obs(1, **tiny))
    assert decision is not None
    assert decision.kind == "narrow_slices"
    assert dict(decision.slices) == {"g": 2}


def test_dominant_bottleneck_widens_within_headroom():
    ctl = AutotuneController(
        AutotuneConfig(max_workers=4, cores=4,
                       slice_candidates={"g": (1, 2, 4)})
    )
    dominated = dict(
        workers=4, jobs=100,
        worker_busy={i: 0.9 for i in range(4)},  # saturated, no shrink
        node_busy={"g": 3.0},  # 75% of the window
        slice_totals={"g": 2},
    )
    assert ctl.observe(_obs(0, **dominated)) is None
    decision = ctl.observe(_obs(1, **dominated))
    assert decision is not None
    assert decision.kind == "widen_slices"
    assert dict(decision.slices) == {"g": 4}
    assert decision.predicted_ratio == pytest.approx(2.0)


def test_cpu_bound_bottleneck_never_widens_past_cores():
    ctl = AutotuneController(
        AutotuneConfig(max_workers=4, cores=2,
                       slice_candidates={"g": (1, 2, 4)})
    )
    dominated = dict(
        workers=4, jobs=100, cpu_bound=("g",),
        worker_busy={i: 0.9 for i in range(4)},
        node_busy={"g": 3.0},
        slice_totals={"g": 2},  # already at min(workers, cores)
    )
    outcomes = [ctl.observe(_obs(i, **dominated)) for i in range(4)]
    assert outcomes == [None] * 4


def test_noisy_trace_never_oscillates():
    # Windows alternate between "shrink the pool" and "grow the pool"
    # evidence; neither repeats twice in a row, so hysteresis must keep
    # the controller silent forever.
    ctl = AutotuneController(AutotuneConfig(max_workers=4, cores=4))
    idle = dict(workers=4, worker_busy={0: 0.3, 1: 0.3, 2: 0.2, 3: 0.2})
    hot = dict(workers=2, batch=1, queue=10,
               worker_busy={0: 0.95, 1: 0.95})
    outcomes = [
        ctl.observe(_obs(i, **(idle if i % 2 == 0 else hot)))
        for i in range(8)
    ]
    assert outcomes == [None] * 8


def test_cooldown_skips_one_window_after_a_decision():
    ctl = AutotuneController(AutotuneConfig())
    dispatch_bound = dict(jobs=1000, worker_busy={0: 1.0}, batch=1)
    outcomes = [
        ctl.observe(_obs(i, **dispatch_bound)) for i in range(5)
    ]
    # window 1 emits; window 2 is cooldown; windows 3-4 re-agree.
    assert [o is not None for o in outcomes] == [
        False, True, False, False, True
    ]


def test_deadline_met_suppresses_growth_but_not_shrink():
    cfg = AutotuneConfig(objective="deadline", deadline_ms=100.0,
                         max_workers=4, cores=4)
    # 4 iterations over 0.2s wall = 50 ms/frame: deadline met.
    hot = dict(wall=0.2, workers=2, batch=1, queue=10,
               worker_busy={0: 0.19, 1: 0.19})
    grow_ctl = AutotuneController(cfg)
    assert [grow_ctl.observe(_obs(i, **hot)) for i in range(4)] == [None] * 4
    idle = dict(wall=0.2, workers=4,
                worker_busy={0: 0.06, 1: 0.06, 2: 0.04, 3: 0.04})
    shrink_ctl = AutotuneController(cfg)
    shrink_ctl.observe(_obs(0, **idle))
    decision = shrink_ctl.observe(_obs(1, **idle))
    assert decision is not None
    assert decision.kind == "shrink_workers"


def test_deadline_missed_suppresses_shrink_but_not_growth():
    cfg = AutotuneConfig(objective="deadline", deadline_ms=100.0,
                         max_workers=4, cores=4)
    # 4 iterations over 1s wall = 250 ms/frame: deadline missed.
    idle = dict(workers=4, worker_busy={0: 0.3, 1: 0.3, 2: 0.2, 3: 0.2})
    shrink_ctl = AutotuneController(cfg)
    assert [
        shrink_ctl.observe(_obs(i, **idle)) for i in range(4)
    ] == [None] * 4
    hot = dict(workers=2, batch=1, queue=10,
               worker_busy={0: 0.95, 1: 0.95})
    grow_ctl = AutotuneController(cfg)
    grow_ctl.observe(_obs(0, **hot))
    decision = grow_ctl.observe(_obs(1, **hot))
    assert decision is not None
    assert decision.kind == "grow_workers"


# -- re-slicing --------------------------------------------------------------


def _jpip(frames: int = 4, slices: int = 4):
    return make_program(
        build_jpip(1, width=64, height=48, pip_height=48, factor=4,
                   slices=slices, frames=frames, collect=True),
        name="jpip1",
    )


def test_slice_groups_found_with_expected_width():
    groups = slice_groups(_jpip(slices=4))
    # background-side stages replicate at the requested ``slices``; the
    # pip side derives its own width, so groups of both widths coexist
    assert any(g.total == 4 for g in groups.values())
    for def_id, group in groups.items():
        assert group.definition_id == def_id
        assert group.total >= 2
        assert group.members == tuple(
            f"{def_id}[{i}]" for i in range(group.total)
        )


def test_reslice_rewrites_width_and_remaps_members():
    program = _jpip(slices=4)
    before = slice_groups(program)
    target = next(d for d in sorted(before) if before[d].total == 4)
    narrowed = reslice(program, {target: 2})
    assert f"{target}[0]" in narrowed.components
    assert f"{target}[1]" in narrowed.components
    assert f"{target}[2]" not in narrowed.components
    assert narrowed.components[f"{target}[1]"].slice == (1, 2)
    # untouched groups keep their original width
    for def_id, group in slice_groups(narrowed).items():
        assert group.total == (
            2 if def_id == target else before[def_id].total
        )
    # manager membership follows the rewrite — no stale copy ids remain
    for manager in narrowed.managers.values():
        for member in manager.members:
            assert member in narrowed.components


def test_reslice_is_deterministic_for_the_same_overrides():
    program = _jpip(slices=4)
    target = sorted(slice_groups(program))[0]
    a = reslice(program, {target: 2})
    b = reslice(program, {target: 2})
    assert sorted(a.components) == sorted(b.components)
    for instance_id in a.components:
        assert a.components[instance_id] == b.components[instance_id]


def test_reslice_rejects_unknown_groups_and_bad_totals():
    program = _jpip(slices=4)
    target = sorted(slice_groups(program))[0]
    with pytest.raises(ReconfigurationError):
        reslice(program, {"no/such/group": 2})
    with pytest.raises(ReconfigurationError):
        reslice(program, {target: 0})
    # the empty override map is the identity
    assert reslice(program, {}) is program


# -- cost-model seeding ------------------------------------------------------


def test_wcet_parallel_is_the_brent_bound():
    tree = Series(
        (Leaf("src"), Parallel((Leaf("a"), Leaf("b"), Leaf("c"), Leaf("d"))),
         Leaf("snk"))
    )
    cost = {"src": 2.0, "a": 4.0, "b": 4.0, "c": 4.0, "d": 4.0, "snk": 2.0}
    leaf_cost = lambda leaf: cost[leaf.label]  # noqa: E731
    work = wcet_sequential(tree, leaf_cost)
    span = wcet_span(tree, leaf_cost)
    assert (work, span) == (20.0, 8.0)
    assert wcet_parallel(tree, leaf_cost, 1) == work
    assert wcet_parallel(tree, leaf_cost, 2) == 10.0  # work/2 dominates
    assert wcet_parallel(tree, leaf_cost, 4) == span  # span floor
    with pytest.raises(ValueError):
        wcet_parallel(tree, leaf_cost, 0)


def test_seed_plan_picks_the_knee_of_the_interval_curve():
    program = _jpip()
    plan = seed_plan(program, REG, max_workers=4, pipeline_depth=4)
    assert set(plan.intervals) == {1, 2, 3, 4}
    intervals = [plan.intervals[n] for n in (1, 2, 3, 4)]
    assert intervals == sorted(intervals, reverse=True)  # monotone
    assert 1 <= plan.workers <= 4
    # the chosen count is the first within tolerance of the best
    best = plan.intervals[4]
    for n in range(1, plan.workers):
        assert plan.intervals[n] > best * (1.0 + plan.tolerance)
    assert plan.predicted_speedup(1) == 1.0
    assert plan.predicted_speedup(plan.workers) >= 1.0


def test_seed_plan_rejects_zero_workers():
    with pytest.raises(PredictionError):
        seed_plan(_jpip(), REG, max_workers=0)


# -- runtime integration -----------------------------------------------------


class _Scripted:
    """Controller stand-in that emits a fixed decision sequence."""

    def __init__(self, decisions: list[Decision], window: int = 2) -> None:
        self.config = AutotuneConfig(window=window)
        self._decisions = list(decisions)

    def observe(self, obs: Observation) -> Decision | None:
        if self._decisions:
            return self._decisions.pop(0)
        return None


def _frames(result):
    return result.components["sink"].ordered_frames()


def _assert_identical(ref, other):
    assert len(ref) == len(other) and len(ref) > 0
    for a, b in zip(ref, other):
        np.testing.assert_array_equal(a.y, b.y)
        np.testing.assert_array_equal(a.u, b.u)
        np.testing.assert_array_equal(a.v, b.v)


def test_scripted_decisions_apply_and_output_stays_bit_identical():
    frames = 16
    program = _jpip(frames=frames)
    ref = ProcessRuntime(program, REG, workers=4, pipeline_depth=4,
                         max_iterations=frames, batch=2).run()
    group = next(d for d in sorted(slice_groups(program)) if "idct" in d)
    rt = ProcessRuntime(program, REG, workers=4, pipeline_depth=4,
                        max_iterations=frames, batch=2)
    rt._controller = _Scripted([
        Decision(kind="set_batch", window=1, reason="scripted", batch=4),
        Decision(kind="shrink_workers", window=2, reason="scripted",
                 workers=1),
        Decision(kind="narrow_slices", window=3, reason="scripted",
                 slices={group: 2}),
        Decision(kind="grow_workers", window=4, reason="scripted",
                 workers=2),
    ])
    result = rt.run()
    assert result.completed_iterations == frames
    assert (rt.workers, rt.batch) == (2, 4)
    assert [e["kind"] for e in rt.autotune_events] == [
        "set_batch", "shrink_workers", "narrow_slices", "grow_workers",
    ]
    # every decision's effect was measured against its prediction
    for event in rt.autotune_events:
        assert event["achieved_fps"] is not None
        assert event["achieved_ratio"] is not None
    _assert_identical(_frames(ref), _frames(result))


def test_autotuned_run_matches_static_run_bit_for_bit():
    frames = 16
    program = _jpip(frames=frames)
    ref = ProcessRuntime(program, REG, workers=1, pipeline_depth=4,
                         max_iterations=frames, batch=4).run()
    rt = ProcessRuntime(program, REG, workers=4, pipeline_depth=4,
                        max_iterations=frames, batch=1, autotune=True)
    result = rt.run()
    assert result.completed_iterations == frames
    # decisions are timing-dependent; the *record* contract is not
    for event in result.autotune_events:
        assert event.keys() >= {
            "kind", "window", "iteration", "reason", "predicted_fps",
            "achieved_fps",
        }
    _assert_identical(_frames(ref), _frames(result))


def test_autotune_composes_with_fusion_bit_identically():
    frames = 16
    program = _jpip(frames=frames)
    ref = ProcessRuntime(program, REG, workers=1, pipeline_depth=4,
                         max_iterations=frames, batch=4).run()
    result = ProcessRuntime(program, REG, workers=4, pipeline_depth=4,
                            max_iterations=frames, batch=1, fuse=True,
                            autotune=True).run()
    assert result.completed_iterations == frames
    _assert_identical(_frames(ref), _frames(result))


def test_autotune_survives_a_worker_kill_mid_run():
    frames = 12
    program = _jpip(frames=frames)
    ref = ProcessRuntime(program, REG, workers=1, pipeline_depth=4,
                         max_iterations=frames, batch=4).run()
    rt = ProcessRuntime(program, REG, workers=4, pipeline_depth=4,
                        max_iterations=frames, batch=1, autotune=True,
                        faults="kill:20")
    result = rt.run()
    assert result.completed_iterations == frames
    assert any(
        e["kind"] == "worker_failure" for e in result.fault_events
    )
    _assert_identical(_frames(ref), _frames(result))


def test_workers_spawned_counts_forked_slots_only():
    frames = 6
    program = _jpip(frames=frames)
    rt = ProcessRuntime(program, REG, workers=4, pipeline_depth=4,
                        max_iterations=frames, batch=2, trace=True)
    result = rt.run()
    assert 1 <= result.workers_spawned <= 4
    # a slot that ran a job was necessarily forked
    assert result.workers_spawned >= len(result.trace.workers_seen())


def test_deadline_objective_requires_a_deadline():
    program = _jpip(frames=4)
    with pytest.raises(SchedulingError):
        ProcessRuntime(program, REG, workers=2, max_iterations=4,
                       autotune=True, objective="deadline")
    with pytest.raises(SchedulingError):
        ProcessRuntime(program, REG, workers=2, max_iterations=4,
                       autotune=True, objective="latency")


# -- degenerate windows (fuzzer-pinned) --------------------------------------


def test_degenerate_window_is_legal_and_nan_free():
    """A window can close with zero iterations, zero jobs, and zero
    forked workers (lazy spawn); the controller must digest it without
    raising or emitting a non-finite prediction."""
    ctl = AutotuneController(AutotuneConfig())
    empty = _obs(0, iterations=0, jobs=0, worker_busy={}, node_busy={},
                 live=0, wall=1e-9)
    for window in range(4):
        decision = ctl.observe(
            _obs(window, iterations=0, jobs=0, worker_busy={},
                 node_busy={}, live=0, wall=1e-9)
        )
        if decision is not None:
            assert math.isfinite(decision.predicted_ratio)
    assert empty.wall > 0


@pytest.mark.parametrize(
    "kwargs, needle",
    [
        ({"wall": float("nan")}, "wall"),
        ({"wall": float("inf")}, "wall"),
        ({"wall": -1.0}, "wall"),
        ({"iterations": -1}, "iterations"),
        ({"jobs": -2}, "jobs"),
        ({"live": -1}, "live_workers"),
        ({"worker_busy": {0: float("nan")}}, "worker 0"),
        ({"node_busy": {"stage": float("inf")}}, "node 'stage'"),
        ({"node_busy": {"stage": -0.5}}, "node 'stage'"),
    ],
    ids=["nan-wall", "inf-wall", "negative-wall", "negative-iterations",
         "negative-jobs", "negative-live", "nan-worker-busy",
         "inf-node-busy", "negative-node-busy"],
)
def test_observation_rejects_nonfinite_measurements(kwargs, needle):
    with pytest.raises(ValueError, match="window 3") as exc:
        _obs(3, **kwargs)
    assert needle in str(exc.value)
