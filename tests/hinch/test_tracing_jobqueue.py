"""Unit tests for tracing and the central job queue."""

from __future__ import annotations

import threading
import time

from repro.hinch.jobqueue import Job, JobQueue
from repro.hinch.tracing import TraceEvent, Tracer, merge_traces


# -- tracer ---------------------------------------------------------------------


def make_event(node, worker, start, end, iteration=0, kind="task"):
    return TraceEvent(node_id=node, iteration=iteration, worker=worker,
                      start=start, end=end, kind=kind)


def test_trace_event_duration():
    assert make_event("a", 0, 1.0, 3.5).duration == 2.5


def test_tracer_records_and_lists():
    t = Tracer()
    t.record(make_event("a", 0, 0, 1))
    t.record(make_event("b", 1, 1, 2))
    assert len(t.events) == 2
    t.clear()
    assert t.events == []


def test_tracer_disabled_drops_events():
    t = Tracer(enabled=False)
    t.record(make_event("a", 0, 0, 1))
    assert t.events == []


def test_busy_time_and_makespan():
    t = Tracer()
    t.record(make_event("a", 0, 0.0, 2.0))
    t.record(make_event("b", 1, 1.0, 4.0))
    assert t.busy_time() == 5.0
    assert t.busy_time(worker=0) == 2.0
    assert t.makespan() == 4.0
    assert t.utilization(2) == 5.0 / 8.0


def test_utilization_empty_trace():
    assert Tracer().utilization(4) == 0.0
    assert Tracer().makespan() == 0.0


def test_per_node_totals():
    t = Tracer()
    t.record(make_event("a", 0, 0, 1))
    t.record(make_event("a", 1, 2, 4, iteration=1))
    t.record(make_event("b", 0, 1, 2))
    assert t.per_node_totals() == {"a": 3.0, "b": 1.0}


def test_gantt_renders_rows():
    t = Tracer()
    t.record(make_event("alpha", 0, 0.0, 5.0))
    t.record(make_event("beta", 1, 5.0, 10.0))
    chart = t.gantt(width=20)
    lines = chart.splitlines()
    assert len(lines) == 2
    assert "a" in lines[0]
    assert "b" in lines[1]


def test_gantt_empty():
    assert Tracer().gantt() == "(empty trace)"


def test_merge_traces():
    t1, t2 = Tracer(), Tracer()
    t1.record(make_event("a", 0, 0, 1))
    t2.record(make_event("b", 1, 1, 2))
    merged = merge_traces([t1, t2])
    assert {e.node_id for e in merged.events} == {"a", "b"}


def test_thread_safe_recording():
    t = Tracer()

    def hammer(w):
        for i in range(200):
            t.record(make_event(f"n{i}", w, i, i + 1))

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert len(t.events) == 800


# -- job queue --------------------------------------------------------------------


def test_fifo_order():
    q = JobQueue()
    jobs = [Job(iteration=0, node_id=f"n{i}") for i in range(5)]
    q.push_all(jobs)
    assert [q.pop() for _ in range(5)] == jobs


def test_try_pop_nonblocking():
    q = JobQueue()
    assert q.try_pop() is None
    q.push(Job(0, "a"))
    assert q.try_pop() == Job(0, "a")


def test_pop_timeout():
    q = JobQueue()
    t0 = time.perf_counter()
    assert q.pop(timeout=0.05) is None
    assert time.perf_counter() - t0 >= 0.04


def test_close_unblocks_consumers():
    q = JobQueue()
    results = []

    def consumer():
        results.append(q.pop())

    t = threading.Thread(target=consumer)
    t.start()
    time.sleep(0.02)
    q.close()
    t.join(timeout=2)
    assert not t.is_alive()
    assert results == [None]


def test_close_drains_remaining_jobs():
    q = JobQueue()
    q.push(Job(0, "a"))
    q.close()
    assert q.pop() == Job(0, "a")  # already-queued work still served
    assert q.pop() is None


def test_push_after_close_is_dropped():
    q = JobQueue()
    q.close()
    q.push(Job(0, "a"))
    q.push_all([Job(0, "b")])
    assert len(q) == 0
    assert q.total_pushed == 0


def test_drain_serves_remaining_then_sentinels():
    q = JobQueue()
    q.push(Job(0, "a"))
    q.push(Job(0, "b"))
    q.drain()
    assert q.pop() == Job(0, "a")
    assert q.pop() == Job(0, "b")
    assert q.pop() is None
    assert q.pop() is None  # sentinel is sticky


def test_drain_unblocks_waiting_consumers():
    q = JobQueue()
    results = []

    def consumer():
        results.append(q.pop())

    t = threading.Thread(target=consumer)
    t.start()
    time.sleep(0.02)
    q.drain()
    t.join(timeout=2)
    assert not t.is_alive()
    assert results == [None]


def test_push_after_drain_raises_lost_work_error():
    """drain() is only legal once the scheduler is done; a later push
    means a completion would be silently lost — that's the bug the
    sentinel protocol exists to catch."""
    import pytest

    from repro.errors import SchedulingError

    q = JobQueue()
    q.drain()
    with pytest.raises(SchedulingError, match="would be lost"):
        q.push(Job(0, "a"))
    with pytest.raises(SchedulingError, match="would be lost"):
        q.push_all([Job(0, "b")])
    # close() keeps its historical abort semantics: silent drop
    q2 = JobQueue()
    q2.close()
    assert q2.push(Job(0, "a")) == 0


def test_shutdown_race_loses_no_completed_iteration():
    """Workers racing toward shutdown must drain every queued job.

    Mirrors the runtime's worker loop: completing iteration ``i`` of a
    chain pushes ``i+1``; the worker that completes the final iteration
    of the final chain calls :meth:`JobQueue.drain` while its peers are
    mid-pop.  Every (chain, iteration) must be observed exactly once —
    the old close()-based shutdown could silently drop a push racing
    with the shutdown flag.
    """
    chains, depth, workers = 8, 50, 4
    q = JobQueue()
    completed: set[tuple[str, int]] = set()
    state = {"remaining": chains}
    lock = threading.Lock()

    def worker():
        while True:
            job = q.pop()
            if job is None:
                return
            with lock:
                key = (job.node_id, job.iteration)
                assert key not in completed
                completed.add(key)
                if job.iteration + 1 < depth:
                    q.push(Job(job.iteration + 1, job.node_id))
                else:
                    state["remaining"] -= 1
                    if state["remaining"] == 0:
                        q.drain()

    threads = [threading.Thread(target=worker) for _ in range(workers)]
    for t in threads:
        t.start()
    q.push_all([Job(0, f"chain{c}") for c in range(chains)])
    for t in threads:
        t.join(timeout=10)
        assert not t.is_alive()
    assert len(completed) == chains * depth
    assert len(q) == 0


def test_concurrent_producers_consumers():
    q = JobQueue()
    produced = 400
    consumed: list[Job] = []
    lock = threading.Lock()

    def producer(base):
        for i in range(100):
            q.push(Job(iteration=base, node_id=f"n{i}"))

    def consumer():
        while True:
            job = q.pop()
            if job is None:
                return
            with lock:
                consumed.append(job)

    consumers = [threading.Thread(target=consumer) for _ in range(3)]
    for c in consumers:
        c.start()
    producers = [threading.Thread(target=producer, args=(b,)) for b in range(4)]
    for p in producers:
        p.start()
    for p in producers:
        p.join()
    # wait for drain, then close
    while len(q):
        time.sleep(0.005)
    time.sleep(0.02)
    q.close()
    for c in consumers:
        c.join(timeout=2)
    assert len(consumed) == produced
    assert len(set(consumed)) == produced


def test_utilization_zero_workers_guarded():
    """Lazy spawn can finish a trivial run before any worker forks — a
    zero (or negative) worker count must yield 0.0, not divide by zero."""
    t = Tracer()
    t.record(make_event("a", 0, 0.0, 2.0))
    assert t.utilization(0) == 0.0
    assert t.utilization(-1) == 0.0
    assert t.utilization(2) > 0.0
