"""Unit tests for streams and event queues."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import EventError, StreamError
from repro.hinch import (
    Event,
    EventBroker,
    EventQueue,
    EventStormWarning,
    Stream,
    StreamStore,
)


# -- streams ------------------------------------------------------------------


def test_put_get_roundtrip():
    s = Stream("x")
    s.put(0, "frame0")
    s.put(1, "frame1")
    assert s.get(0) == "frame0"
    assert s.get(1) == "frame1"


def test_read_before_write_raises():
    s = Stream("x")
    with pytest.raises(StreamError, match="read before write"):
        s.get(0)


def test_double_put_raises():
    s = Stream("x")
    s.put(0, "a")
    with pytest.raises(StreamError, match="double write"):
        s.put(0, "b")


def test_release_frees_slot():
    s = Stream("x")
    s.put(0, "a")
    assert s.live_slots == 1
    s.release(0)
    assert s.live_slots == 0
    with pytest.raises(StreamError):
        s.get(0)


def test_release_is_idempotent():
    s = Stream("x")
    s.release(5)  # no slot: fine
    s.put(5, "v")
    s.release(5)
    s.release(5)


def test_iteration_can_be_rewritten_after_release():
    # Not used by the runtime (iterations are unique), but the slot map
    # must not remember released iterations.
    s = Stream("x")
    s.put(0, "a")
    s.release(0)
    s.put(0, "b")
    assert s.get(0) == "b"


def test_ensure_buffer_shared_across_copies():
    s = Stream("x")
    calls = []

    def factory():
        calls.append(1)
        return np.zeros(8)

    b1 = s.ensure_buffer(0, factory)
    b2 = s.ensure_buffer(0, factory)
    assert b1 is b2
    assert len(calls) == 1
    b1[:4] = 1.0
    b2[4:] = 2.0
    assert s.get(0).tolist() == [1, 1, 1, 1, 2, 2, 2, 2]


def test_ensure_buffer_after_put_raises():
    s = Stream("x")
    s.put(0, "whole")
    with pytest.raises(StreamError, match="sliced write after"):
        s.ensure_buffer(0, lambda: [])


def test_ensure_buffer_geometry_mismatch_raises():
    """Satellite regression: a second sliced writer requesting a
    different shape/dtype used to silently share the first allocation
    and write out of bounds; it must raise."""
    s = Stream("x")
    s.ensure_buffer(0, shape=(4, 8), dtype=np.uint8)
    with pytest.raises(StreamError, match="geometry mismatch"):
        s.ensure_buffer(0, shape=(4, 6), dtype=np.uint8)
    with pytest.raises(StreamError, match="geometry mismatch"):
        s.ensure_buffer(0, shape=(4, 8), dtype=np.float64)


def test_ensure_buffer_matching_geometry_shares():
    s = Stream("x")
    b1 = s.ensure_buffer(0, shape=(4, 8), dtype=np.uint8)
    b2 = s.ensure_buffer(0, shape=(4, 8), dtype=np.uint8)
    assert b1 is b2
    # dtype omitted: shape alone is validated
    assert s.ensure_buffer(0, shape=(4, 8)) is b1


def test_slots_independent_per_iteration():
    s = Stream("x")
    b0 = s.ensure_buffer(0, lambda: np.zeros(2))
    b1 = s.ensure_buffer(1, lambda: np.ones(2))
    assert b0 is not b1


def test_stats_counters():
    s = Stream("x")
    s.put(0, "a")
    s.get(0)
    s.get(0)
    assert s.stats == (1, 2)


def test_concurrent_sliced_writers():
    s = Stream("x")
    n = 16
    results = []

    def writer(i):
        buf = s.ensure_buffer(0, lambda: np.zeros(n))
        buf[i] = i
        results.append(buf)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(r is results[0] for r in results)
    assert s.get(0).tolist() == list(range(n))


def test_store_creates_on_demand_and_releases_everywhere():
    store = StreamStore()
    a = store.stream("a")
    b = store.stream("b")
    assert store.stream("a") is a
    a.put(0, 1)
    b.put(0, 2)
    assert store.total_live_slots() == 2
    store.release_iteration(0)
    assert store.total_live_slots() == 0
    assert sorted(store.names) == ["a", "b"]


# -- events ----------------------------------------------------------------------


def test_event_queue_fifo_drain():
    q = EventQueue("ui")
    q.post(Event("a"))
    q.post(Event("b", payload=42))
    events = q.poll()
    assert [e.name for e in events] == ["a", "b"]
    assert events[1].payload == 42
    assert q.poll() == []


def test_event_counts():
    q = EventQueue("ui")
    q.post(Event("x"))
    assert q.peek_count() == 1
    assert q.total_posted == 1
    q.poll()
    assert q.peek_count() == 0
    assert q.total_posted == 1


def test_broker_named_queues():
    broker = EventBroker()
    broker.post("ui", Event("press"))
    assert broker.queue("ui").peek_count() == 1
    assert broker.queue("other").peek_count() == 0
    assert set(broker.queue_names) == {"ui", "other"}


def test_broker_rejects_empty_name():
    with pytest.raises(EventError):
        EventBroker().queue("")


def test_concurrent_posts_are_all_delivered():
    broker = EventBroker()
    n = 200

    def poster(i):
        broker.post("q", Event(f"e{i}"))

    threads = [threading.Thread(target=poster, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert broker.queue("q").total_posted == n
    assert len(broker.queue("q").poll()) == n


# -- high-water warning (satellite: event storms must be loud) ---------------


def test_high_water_warns_once_per_doubling():
    q = EventQueue("ui", high_water=4)
    with pytest.warns(EventStormWarning, match="high-water 4"):
        for i in range(6):
            q.post(Event(f"e{i}"))
    # threshold doubled: growing to 7 stays quiet, crossing 8 warns again
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error", EventStormWarning)
        q.post(Event("e6"))
    with pytest.warns(EventStormWarning):
        q.post(Event("e7"))


def test_high_water_rearms_after_poll():
    q = EventQueue("ui", high_water=4)
    with pytest.warns(EventStormWarning):
        for i in range(5):
            q.post(Event(f"e{i}"))
    q.poll()
    with pytest.warns(EventStormWarning):
        for i in range(5):
            q.post(Event(f"e{i}"))


def test_high_water_disabled_with_none():
    import warnings

    q = EventQueue("ui", high_water=None)
    with warnings.catch_warnings():
        warnings.simplefilter("error", EventStormWarning)
        for i in range(64):
            q.post(Event(f"e{i}"))


def test_high_water_must_be_positive():
    with pytest.raises(EventError):
        EventQueue("ui", high_water=0)


def test_broker_passes_high_water_to_queues():
    broker = EventBroker(high_water=2)
    with pytest.warns(EventStormWarning, match="high-water 2"):
        broker.post("q", Event("a"))
        broker.post("q", Event("b"))
