"""Synthetic components for runtime tests (no video dependency)."""

from __future__ import annotations

import threading

import numpy as np

from repro.core.ports import PortSpec
from repro.hinch.component import Component, JobContext


class Producer(Component):
    """Writes ``base + iteration`` to its output each iteration."""

    ports = PortSpec(outputs=("output",), optional_params=("base", "limit"))

    def run(self, job: JobContext) -> None:
        limit = self.param("limit")
        if limit is not None and job.iteration >= int(limit):
            job.request_stop()
        job.write("output", int(self.param("base", 0)) + job.iteration)


class Doubler(Component):
    ports = PortSpec(inputs=("input",), outputs=("output",))

    def run(self, job: JobContext) -> None:
        job.write("output", job.read("input") * 2)


class AddConst(Component):
    ports = PortSpec(
        inputs=("input",), outputs=("output",), optional_params=("k", "queue", "period", "event")
    )

    def run(self, job: JobContext) -> None:
        job.write("output", job.read("input") + int(self.param("k", 1)))


class Adder(Component):
    ports = PortSpec(inputs=("a", "b"), outputs=("output",))

    def run(self, job: JobContext) -> None:
        job.write("output", job.read("a") + job.read("b"))


class Collector(Component):
    """Sink that appends every received value to ``self.values``."""

    ports = PortSpec(inputs=("input",))

    def __init__(self, instance):
        super().__init__(instance)
        self.values: list = []
        self._lock = threading.Lock()

    def run(self, job: JobContext) -> None:
        value = job.read("input")
        with self._lock:
            # Iterations complete in order but jobs may run out of order
            # across iterations; store (iteration, value) and sort later.
            self.values.append((job.iteration, value))

    def ordered(self) -> list:
        with self._lock:
            return [v for _, v in sorted(self.values)]


class ArraySource(Component):
    """Emits a fresh float array of ``size`` filled with the iteration."""

    ports = PortSpec(outputs=("output",), optional_params=("size",))

    def run(self, job: JobContext) -> None:
        size = int(self.param("size", 64))
        job.write("output", np.full(size, float(job.iteration)))


class SliceScaler(Component):
    """Data-parallel scaler: each copy multiplies its region by ``factor``."""

    ports = PortSpec(
        inputs=("input",), outputs=("output",), optional_params=("factor",)
    )

    def run(self, job: JobContext) -> None:
        data = job.read("input")
        out = job.buffer("output", lambda: np.empty_like(data))
        index, total = self.slice if self.slice else (0, 1)
        n = len(data)
        lo = index * n // total
        hi = (index + 1) * n // total
        out[lo:hi] = data[lo:hi] * float(self.param("factor", 2))
        job.note_written((hi - lo) * data.itemsize)


class HaloSmoother(Component):
    """Crossdep consumer: 3-point average needing neighbour slices."""

    ports = PortSpec(inputs=("input",), outputs=("output",))

    def run(self, job: JobContext) -> None:
        data = job.read("input")
        out = job.buffer("output", lambda: np.empty_like(data))
        index, total = self.slice if self.slice else (0, 1)
        n = len(data)
        lo = index * n // total
        hi = (index + 1) * n // total
        padded = np.pad(data, 1, mode="edge")
        for i in range(lo, hi):
            out[i] = (padded[i] + padded[i + 1] + padded[i + 2]) / 3.0
        job.note_written((hi - lo) * data.itemsize)


class EventSender(Component):
    """Posts an event to ``queue`` every ``period`` iterations."""

    ports = PortSpec(
        inputs=("input",),
        outputs=("output",),
        optional_params=("queue", "period", "event"),
    )

    def run(self, job: JobContext) -> None:
        job.write("output", job.read("input"))
        period = int(self.param("period", 12))
        if (job.iteration + 1) % period == 0:
            job.post_event(self.param("queue", "ui"), self.param("event", "tick"))


class Reconfigurable(Component):
    """Records reconfiguration requests for assertions."""

    ports = PortSpec(inputs=("input",), outputs=("output",))

    def __init__(self, instance):
        super().__init__(instance)
        self.requests: list[str] = []

    def reconfigure(self, request: str) -> None:
        self.requests.append(request)
        super().reconfigure(request)

    def run(self, job: JobContext) -> None:
        job.write("output", job.read("input"))


class LifecycleProbe(Component):
    """Counts setup/teardown/run calls; used for splice tests."""

    ports = PortSpec(inputs=("input",), outputs=("output",))
    instances: list["LifecycleProbe"] = []

    def __init__(self, instance):
        super().__init__(instance)
        self.setup_count = 0
        self.teardown_count = 0
        self.run_count = 0
        LifecycleProbe.instances.append(self)

    def setup(self) -> None:
        self.setup_count += 1

    def teardown(self) -> None:
        self.teardown_count += 1

    def run(self, job: JobContext) -> None:
        self.run_count += 1
        job.write("output", job.read("input") + 100)


REGISTRY: dict[str, type[Component]] = {
    "producer": Producer,
    "doubler": Doubler,
    "addconst": AddConst,
    "adder": Adder,
    "collector": Collector,
    "array_source": ArraySource,
    "slice_scaler": SliceScaler,
    "halo_smoother": HaloSmoother,
    "event_sender": EventSender,
    "reconfigurable": Reconfigurable,
    "lifecycle_probe": LifecycleProbe,
}

PORTS = {name: cls.ports for name, cls in REGISTRY.items()}
