"""Runtime enforcement of reconciled stream formats (StreamFormatError)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StreamError, StreamFormatError
from repro.hinch.stream import Stream, StreamStore


def test_put_against_expectation_raises_structured_error():
    s = Stream("frames")
    s.set_expected((8, 8), np.uint8)
    with pytest.raises(StreamFormatError) as exc_info:
        s.put(0, np.zeros((4, 4), dtype=np.uint8), writer="cam")
    err = exc_info.value
    assert err.stream == "frames"
    assert err.iteration == 0
    assert err.node == "cam"
    assert err.declared == ((8, 8), "uint8")
    assert err.observed == ((4, 4), "uint8")
    assert "X501" in str(err)


def test_put_matching_expectation_passes():
    s = Stream("frames")
    s.set_expected((8, 8), np.uint8)
    s.put(0, np.zeros((8, 8), dtype=np.uint8), writer="cam")
    assert s.observed == ("plane", (8, 8), "uint8")


def test_ensure_buffer_against_expectation_raises():
    s = Stream("frames")
    s.set_expected((8, 8), np.uint8)
    with pytest.raises(StreamFormatError, match="geometry mismatch"):
        s.ensure_buffer(0, shape=(8, 8), dtype=np.float32, writer="scale")


def test_format_error_is_a_stream_error():
    # callers catching the historical StreamError keep working
    assert issubclass(StreamFormatError, StreamError)


def test_slice_copy_disagreement_still_raises():
    s = Stream("frames")  # no expectation installed: first-write rules
    s.ensure_buffer(0, shape=(8, 8), dtype=np.uint8, writer="scale/0")
    with pytest.raises(StreamFormatError) as exc_info:
        s.ensure_buffer(0, shape=(4, 8), dtype=np.uint8, writer="scale/1")
    assert exc_info.value.node == "scale/1"


def test_opaque_payloads_are_not_validated():
    s = Stream("bits")
    s.set_expected((8, 8), np.uint8)  # a solver bug should not break objects

    class Blob:
        FORMAT_KIND = "bitstream"

    s.put(0, Blob(), writer="enc")
    assert s.observed == ("bitstream", None, None)


def test_store_installs_expectations_on_existing_and_new_streams():
    store = StreamStore()
    early = store.stream("a")
    store.set_expectations({"a": ((8, 8), "uint8"), "b": ((4, 4), "uint8")})
    late = store.stream("b")
    assert early.expected == ((8, 8), np.dtype("uint8"))
    assert late.expected == ((4, 4), np.dtype("uint8"))
    # reconfiguration replaces the table; dropped streams revert to inference
    store.set_expectations({"b": ((2, 2), "uint8")})
    assert early.expected is None
    assert late.expected == ((2, 2), np.dtype("uint8"))
