"""Property tests: scheduler invariants under random programs & orders.

The dataflow scheduler must uphold, for *any* SP-structured program and
*any* order in which ready jobs are executed:

1. every (node, iteration) pair executes exactly once;
2. graph predecessors complete first within an iteration;
3. a node's iterations complete in order;
4. never more than ``pipeline_depth`` iterations in flight;
5. the run terminates with all iterations completed.

Hypothesis drives both the program shape and the interleaving (which
ready job to run next), covering schedules a FIFO queue would never
produce.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import AppBuilder, expand
from repro.hinch.scheduler import DataflowScheduler

from tests.hinch.helpers import PORTS


@st.composite
def random_programs(draw):
    """A random layered pipeline with optional slice/crossdep regions."""
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "array_source", streams={"output": "s0"},
                   params={"size": 16})
    n_layers = draw(st.integers(1, 3))
    stream_index = 0
    for layer in range(n_layers):
        kind = draw(st.sampled_from(["plain", "slice", "task", "crossdep"]))
        src = f"s{stream_index}"
        dst = f"s{stream_index + 1}"
        if kind == "plain":
            main.component(f"f{layer}", "doubler",
                           streams={"input": src, "output": dst})
        elif kind == "slice":
            n = draw(st.integers(2, 4))
            with main.parallel("slice", n=n):
                main.component(f"f{layer}", "slice_scaler",
                               streams={"input": src, "output": dst})
        elif kind == "task":
            mid_a = f"t{layer}a"
            mid_b = f"t{layer}b"
            with main.parallel("task"):
                with main.parblock():
                    main.component(f"fa{layer}", "doubler",
                                   streams={"input": src, "output": mid_a})
                with main.parblock():
                    main.component(f"fb{layer}", "addconst",
                                   streams={"input": src, "output": mid_b})
            main.component(f"j{layer}", "adder",
                           streams={"a": mid_a, "b": mid_b, "output": dst})
        else:  # crossdep
            n = draw(st.integers(2, 4))
            mid = f"x{layer}"
            with main.parallel("crossdep", n=n):
                with main.parblock():
                    main.component(f"h{layer}", "slice_scaler",
                                   streams={"input": src, "output": mid})
                with main.parblock():
                    main.component(f"v{layer}", "halo_smoother",
                                   streams={"input": mid, "output": dst})
        stream_index += 1
    main.component("snk", "collector",
                   streams={"input": f"s{stream_index}"})
    return expand(b.build(), PORTS)


@settings(max_examples=40, deadline=None)
@given(
    program=random_programs(),
    depth=st.integers(1, 5),
    iterations=st.integers(1, 6),
    choices=st.lists(st.integers(0, 10_000), min_size=0, max_size=300),
)
def test_prop_scheduler_invariants(program, depth, iterations, choices):
    pg = program.build_graph()
    sched = DataflowScheduler(pg, pipeline_depth=depth,
                              max_iterations=iterations)
    frontier = list(sched.start())
    executed: list = []
    done_at: dict = {}
    pick = iter(choices)
    max_in_flight = sched.in_flight
    step = 0
    while frontier:
        index = next(pick, 0) % len(frontier)
        job = frontier.pop(index)
        # invariant 2: predecessors done within the iteration
        for pred in pg.graph.predecessors(job.node_id):
            assert (pred, job.iteration) in done_at, (
                f"{job.node_id}@{job.iteration} ran before {pred}"
            )
        # invariant 3: previous iteration of the same node done
        if job.iteration > 0:
            assert (job.node_id, job.iteration - 1) in done_at
        executed.append((job.node_id, job.iteration))
        done_at[(job.node_id, job.iteration)] = step
        step += 1
        frontier.extend(sched.complete(job))
        max_in_flight = max(max_in_flight, sched.in_flight)
    # invariant 5: termination with everything completed
    assert sched.done
    assert sched.completed_iterations == iterations
    # invariant 1: exactly once
    expected = {
        (node_id, k)
        for node_id in pg.graph.node_ids
        for k in range(iterations)
    }
    assert set(executed) == expected
    assert len(executed) == len(expected)
    # invariant 4: bounded pipeline
    assert max_in_flight <= depth


@settings(max_examples=15, deadline=None)
@given(
    program=random_programs(),
    nodes=st.integers(1, 4),
    iterations=st.integers(1, 4),
)
def test_prop_threaded_and_sim_agree_on_data(program, nodes, iterations):
    """Random programs produce identical sink data on both backends."""
    from repro.hinch import ThreadedRuntime
    from repro.spacecake import SimRuntime

    from tests.hinch.helpers import REGISTRY

    thr = ThreadedRuntime(program, REGISTRY, nodes=nodes, pipeline_depth=3,
                          max_iterations=iterations).run()
    sim = SimRuntime(program, REGISTRY, nodes=nodes, pipeline_depth=3,
                     max_iterations=iterations, execute=True).run()
    a = thr.components["snk"].ordered()
    b = sim.components["snk"].ordered()
    assert len(a) == len(b) == iterations
    import numpy as np

    for x, y in zip(a, b):
        assert np.array_equal(x, y)
