"""Unit tests for the shared plane pool (allocation, recycling, transport).

The serialization-counting tests here back the PR's hot-path claim: pixel
data crosses process boundaries as plane descriptors, never as pickle
bytes.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.errors import StreamError
from repro.hinch.shm import PlaneRef, SharedPlanePool, _round_size


# -- size bucketing ---------------------------------------------------------


def test_round_size_small_payloads_share_min_bucket():
    assert _round_size(1) == 4096
    assert _round_size(4096) == 4096


def test_round_size_power_of_two_buckets():
    assert _round_size(4097) == 8192
    assert _round_size(8192) == 8192
    assert _round_size(720 * 576) == 1 << 19


# -- acquire / release / recycle -------------------------------------------


def test_acquire_returns_writable_view_of_right_geometry():
    with SharedPlanePool() as pool:
        plane, ref = pool.acquire((4, 6), np.uint8)
        assert plane.shape == (4, 6)
        assert plane.dtype == np.uint8
        plane[...] = 7
        assert ref.nbytes == 24
        assert np.array_equal(pool.open(ref), plane)


def test_release_recycles_same_bucket():
    with SharedPlanePool() as pool:
        _, ref = pool.acquire((8, 8), np.uint8)
        pool.release(ref)
        _, ref2 = pool.acquire((7, 9), np.uint8)  # same 4096 bucket
        assert ref2.segment == ref.segment
        assert pool.stats.recycled == 1
        assert pool.stats.planes_created == 1


def test_release_is_idempotent_for_unknown_segments():
    with SharedPlanePool() as pool:
        pool.release(PlaneRef(segment="nope", nbytes=16))
        assert pool.stats.released == 0


def test_working_set_converges_under_steady_state():
    """acquire/release cycling must stop allocating — the pipeline_depth
    memory bound of the paper."""
    with SharedPlanePool() as pool:
        for _ in range(50):
            _, ref = pool.acquire((32, 32), np.uint8)
            pool.release(ref)
        assert pool.total_planes == 1
        assert pool.live_planes == 0
        assert pool.stats.recycled == 49


def test_acquire_after_close_raises():
    pool = SharedPlanePool()
    pool.close()
    with pytest.raises(StreamError):
        pool.acquire((2, 2), np.uint8)


# -- pack / unpack ----------------------------------------------------------


def test_pack_contiguous_ndarray_never_pickles():
    """The acceptance criterion: a frame plane crosses as a bare plane
    descriptor with zero pickle bytes produced."""
    with SharedPlanePool() as pool:
        frame = np.arange(720 * 576, dtype=np.uint8).reshape(576, 720)
        packed = pool.pack(frame)
        assert packed.kind == "plane"
        assert pool.stats.plane_packs == 1
        assert pool.stats.pickle_packs == 0
        assert pool.stats.meta_pickled_bytes == 0
        assert pool.stats.oob_bytes == frame.nbytes
        assert np.array_equal(pool.unpack(packed), frame)


def test_unpack_plane_is_a_view_not_a_copy():
    with SharedPlanePool() as pool:
        packed = pool.pack(np.zeros((16, 16), dtype=np.uint8))
        view = pool.unpack(packed)
        pool.open(packed.refs[0])[0, 0] = 99
        assert view[0, 0] == 99


def test_pack_object_exports_arrays_out_of_band():
    """pickle5 path: scaffolding stays tiny no matter the frame size."""
    with SharedPlanePool() as pool:
        value = {
            "y": np.arange(256 * 256, dtype=np.uint8).reshape(256, 256),
            "label": "frame-7",
        }
        packed = pool.pack(value)
        assert packed.kind == "pickle5"
        assert pool.stats.pickle_packs == 1
        # the 64 KiB of pixels moved by memcpy, not through pickle
        assert pool.stats.oob_bytes >= 256 * 256
        assert pool.stats.meta_pickled_bytes == len(packed.meta)
        assert len(packed.meta) < 2048
        out = pool.unpack(packed)
        assert out["label"] == "frame-7"
        assert np.array_equal(out["y"], value["y"])


def test_pack_noncontiguous_array_roundtrips():
    with SharedPlanePool() as pool:
        base = np.arange(100, dtype=np.int32).reshape(10, 10)
        strided = base[::2, ::2]
        packed = pool.pack(strided)
        assert np.array_equal(pool.unpack(packed), strided)


def test_release_packed_frees_every_plane():
    with SharedPlanePool() as pool:
        packed = pool.pack(
            {"a": np.zeros(5000, dtype=np.uint8),
             "b": np.ones(6000, dtype=np.uint8)}
        )
        assert pool.live_planes == len(packed.refs) >= 2
        pool.release_packed(packed)
        assert pool.live_planes == 0


def test_release_packed_ignores_plain_values():
    with SharedPlanePool() as pool:
        pool.release_packed("not packed")
        assert pool.stats.released == 0


def test_pack_plane_wraps_without_copy():
    with SharedPlanePool() as pool:
        plane, ref = pool.acquire((3, 3), np.uint8)
        plane[...] = 5
        packed = pool.pack_plane(ref)
        assert packed.kind == "plane"
        assert pool.stats.oob_bytes == 0  # no memcpy happened
        assert np.array_equal(pool.unpack(packed), plane)


# -- shared-memory mode -----------------------------------------------------


def _child_reads_and_writes(conn):
    pool = SharedPlanePool(shared=True)  # attacher: owns no segments
    try:
        packed = conn.recv()
        frame = pool.unpack(packed)
        conn.send(int(frame.sum()))
        frame[0, 0] = 42  # visible to the parent: same physical plane
        conn.send("done")
    finally:
        pool.close_attachments()
        conn.close()


def test_shared_plane_visible_across_fork():
    ctx = multiprocessing.get_context("fork")
    with SharedPlanePool(shared=True) as pool:
        frame = np.full((64, 64), 3, dtype=np.uint8)
        packed = pool.pack(frame)
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_child_reads_and_writes, args=(child,))
        proc.start()
        child.close()
        parent.send(packed)
        assert parent.recv() == 64 * 64 * 3
        assert parent.recv() == "done"
        proc.join(timeout=10)
        # the child's in-place write landed in the parent's plane
        assert pool.open(packed.refs[0])[0, 0] == 42


def test_plane_ref_pickles_small():
    """What actually crosses the pipe is a descriptor, not pixels."""
    import pickle

    with SharedPlanePool(shared=True) as pool:
        packed = pool.pack(np.zeros((576, 720), dtype=np.uint8))
        wire = pickle.dumps(packed)
        assert len(wire) < 512


def test_shared_close_unlinks_segments():
    pool = SharedPlanePool(shared=True)
    _, ref = pool.acquire((8, 8), np.uint8)
    pool.close()
    attacher = SharedPlanePool(shared=True)
    with pytest.raises(FileNotFoundError):
        attacher.open(ref)
