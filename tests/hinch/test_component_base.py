"""Unit tests for the Component base class and JobContext."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ports import PortSpec
from repro.core.program import ComponentInstance
from repro.errors import ComponentError
from repro.hinch.component import Component, JobContext
from repro.hinch.events import EventBroker
from repro.hinch.stream import StreamStore


def make_instance(**overrides) -> ComponentInstance:
    defaults = dict(
        instance_id="x",
        definition_id="x",
        class_name="test",
        params={"gain": 2},
        streams={"input": "in", "output": "out"},
    )
    defaults.update(overrides)
    return ComponentInstance(**defaults)


class Probe(Component):
    ports = PortSpec(inputs=("input",), outputs=("output",))

    def run(self, job):
        job.write("output", job.read("input"))


def test_params_copied_not_shared():
    inst = make_instance()
    c = Probe(inst)
    c.params["gain"] = 99
    assert inst.params["gain"] == 2


def test_param_accessors():
    c = Probe(make_instance())
    assert c.param("gain") == 2
    assert c.param("missing", 7) == 7
    assert c.require_param("gain") == 2
    with pytest.raises(ComponentError, match="requires param"):
        c.require_param("missing")


def test_reconfigure_updates_params():
    c = Probe(make_instance())
    c.reconfigure("pos=3,4; mode=fast")
    assert c.params["pos"] == "3,4"
    assert c.params["mode"] == "fast"


def test_reconfigure_slice_assignment():
    c = Probe(make_instance())
    assert c.slice is None
    c.reconfigure("slice=2/8")
    assert c.slice == (2, 8)


def test_reconfigure_malformed_rejected():
    c = Probe(make_instance())
    with pytest.raises(ComponentError, match="malformed"):
        c.reconfigure("not-a-kv-pair")


def test_reconfigure_empty_segments_ignored():
    c = Probe(make_instance())
    c.reconfigure("a=1;;  ; b=2")
    assert c.params["a"] == "1"
    assert c.params["b"] == "2"


def test_slice_from_instance():
    c = Probe(make_instance(slice=(1, 4)))
    assert c.slice == (1, 4)


def test_default_cost_profile_is_none():
    assert Component.cost_profile(make_instance()) is None
    assert Component.always_execute is False


# -- JobContext ---------------------------------------------------------------------


def make_ctx(instance=None, iteration=0, aliases=None, stop=None):
    return JobContext(
        instance or make_instance(),
        iteration,
        StreamStore(),
        EventBroker(),
        aliases or {},
        stop_requester=stop,
    )


def test_ctx_read_write_with_byte_accounting():
    ctx = make_ctx()
    data = np.zeros(100, dtype=np.uint8)
    ctx._streams.stream("in").put(0, data)
    got = ctx.read("input")
    assert got is data
    ctx.write("output", data)
    assert ctx.bytes_read == 100
    assert ctx.bytes_written == 100


def test_ctx_scalar_bytes_are_zero():
    ctx = make_ctx()
    ctx._streams.stream("in").put(0, 42)
    ctx.read("input")
    assert ctx.bytes_read == 0


def test_ctx_bytes_for_raw_bytes():
    ctx = make_ctx()
    ctx._streams.stream("in").put(0, b"abcdef")
    ctx.read("input")
    assert ctx.bytes_read == 6


def test_ctx_unknown_port_rejected():
    ctx = make_ctx()
    with pytest.raises(ComponentError, match="no port"):
        ctx.read("bogus")


def test_ctx_alias_resolution():
    ctx = make_ctx(aliases={"out": "final"})
    ctx.write("output", 1)
    assert ctx._streams.stream("final").get(0) == 1
    assert not ctx._streams.stream("out").has(0)


def test_ctx_buffer_and_note_written():
    ctx = make_ctx()
    buf = ctx.buffer("output", lambda: np.zeros(8))
    buf[:] = 5
    ctx.note_written(64)
    assert ctx.bytes_written == 64
    assert np.all(ctx._streams.stream("out").get(0) == 5)


def test_ctx_post_event():
    ctx = make_ctx()
    ctx.post_event("ui", "pressed", payload=3)
    events = ctx._broker.queue("ui").poll()
    assert len(events) == 1
    assert events[0].source == "x"
    assert events[0].payload == 3


def test_ctx_request_stop():
    calls = []
    ctx = make_ctx(stop=lambda: calls.append(1))
    ctx.request_stop()
    assert calls == [1]
    # without a requester it is a no-op
    make_ctx().request_stop()


def test_port_spec_validation():
    with pytest.raises(ComponentError, match="both input and output"):
        PortSpec(inputs=("a",), outputs=("a",))
    spec = PortSpec(inputs=("i",), outputs=("o",),
                    required_params=("x",), optional_params=("y",))
    assert spec.is_input("i") and spec.is_output("o")
    assert spec.all_ports == ("i", "o")
    spec.check_params("cls", {"x", "y"})
    with pytest.raises(ComponentError, match="missing required"):
        spec.check_params("cls", {"y"})
    with pytest.raises(ComponentError, match="unknown params"):
        spec.check_params("cls", {"x", "zzz"})
    open_spec = PortSpec(open_params=True)
    open_spec.check_params("cls", {"anything", "goes"})
