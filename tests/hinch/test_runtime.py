"""End-to-end tests of the threaded Hinch runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AppBuilder, expand
from repro.errors import SchedulingError, StreamError
from repro.hinch import ThreadedRuntime

from tests.hinch.helpers import PORTS, REGISTRY, LifecycleProbe


def run_app(builder: AppBuilder, *, nodes=1, depth=5, iters=8, trace=False,
            option_states=None):
    program = expand(builder.build(), PORTS)
    rt = ThreadedRuntime(
        program,
        REGISTRY,
        nodes=nodes,
        pipeline_depth=depth,
        max_iterations=iters,
        trace=trace,
        option_states=option_states,
    )
    return rt, rt.run()


def linear_app() -> AppBuilder:
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "a"}, params={"base": 10})
    main.component("dbl", "doubler", streams={"input": "a", "output": "b"})
    main.component("snk", "collector", streams={"input": "b"})
    return b


@pytest.mark.parametrize("nodes", [1, 2, 4])
@pytest.mark.parametrize("depth", [1, 3, 5])
def test_linear_pipeline_results(nodes, depth):
    rt, result = run_app(linear_app(), nodes=nodes, depth=depth, iters=10)
    assert result.completed_iterations == 10
    collector = result.components["snk"]
    assert collector.ordered() == [(10 + k) * 2 for k in range(10)]


def test_stream_slots_released():
    rt, result = run_app(linear_app(), nodes=2, depth=3, iters=20)
    assert rt.streams.total_live_slots() == 0


def test_task_parallel_branches():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "a"})
    with main.parallel("task"):
        with main.parblock():
            main.component("x", "doubler", streams={"input": "a", "output": "xa"})
        with main.parblock():
            main.component("y", "addconst", streams={"input": "a", "output": "ya"},
                           params={"k": 5})
    main.component("sum", "adder", streams={"a": "xa", "b": "ya", "output": "out"})
    main.component("snk", "collector", streams={"input": "out"})
    rt, result = run_app(b, nodes=3, iters=6)
    assert result.components["snk"].ordered() == [2 * k + k + 5 for k in range(6)]


def test_slice_parallel_assembles_frame():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "array_source", streams={"output": "raw"},
                   params={"size": 64})
    with main.parallel("slice", n=4):
        main.component("sc", "slice_scaler",
                       streams={"input": "raw", "output": "scaled"},
                       params={"factor": 3})
    main.component("snk", "collector", streams={"input": "scaled"})
    rt, result = run_app(b, nodes=4, iters=5)
    frames = result.components["snk"].ordered()
    for k, frame in enumerate(frames):
        assert np.allclose(frame, 3.0 * k)


def test_crossdep_halo_computation():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "array_source", streams={"output": "raw"},
                   params={"size": 32})
    with main.parallel("crossdep", n=4):
        with main.parblock():
            main.component("h", "slice_scaler",
                           streams={"input": "raw", "output": "mid"},
                           params={"factor": 1})
        with main.parblock():
            main.component("v", "halo_smoother",
                           streams={"input": "mid", "output": "out"})
    main.component("snk", "collector", streams={"input": "out"})
    rt, result = run_app(b, nodes=4, iters=4)
    frames = result.components["snk"].ordered()
    # source emits constant arrays, so smoothing is the identity
    for k, frame in enumerate(frames):
        assert np.allclose(frame, float(k))


def test_source_request_stop_truncates_run():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "a"},
                   params={"limit": 3})
    main.component("snk", "collector", streams={"input": "a"})
    rt, result = run_app(b, nodes=2, depth=1, iters=100)
    # limit=3: iterations 0..3 run (stop requested during iteration 3)
    assert result.completed_iterations == 4


def test_read_before_write_surfaces_as_error():
    # A sink whose input stream's writer runs in parallel (not ordered) —
    # build_graph's sanity check catches it; bypass that check by writing
    # directly against the stream store instead.
    from repro.hinch.stream import Stream

    s = Stream("x")
    with pytest.raises(StreamError):
        s.get(3)


def test_trace_records_all_jobs():
    rt, result = run_app(linear_app(), nodes=2, iters=6, trace=True)
    events = result.trace.events
    task_events = [e for e in events if e.kind == "task"]
    assert len(task_events) == 3 * 6
    assert result.trace.makespan() > 0
    assert 0 < result.trace.utilization(2) <= 1.0


def test_invalid_nodes_rejected():
    program = expand(linear_app().build(), PORTS)
    with pytest.raises(SchedulingError):
        ThreadedRuntime(program, REGISTRY, nodes=0, max_iterations=1)


def test_component_exception_propagates():
    class Exploder:
        pass

    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "a"})
    main.component("dbl", "doubler", streams={"input": "a", "output": "b"})
    main.component("snk", "collector", streams={"input": "b"})
    program = expand(b.build(), PORTS)

    class FailingDoubler(REGISTRY["doubler"]):
        def run(self, job):
            if job.iteration == 2:
                raise RuntimeError("boom at iteration 2")
            super().run(job)

    registry = dict(REGISTRY)
    registry["doubler"] = FailingDoubler
    rt = ThreadedRuntime(program, registry, nodes=2, max_iterations=10)
    with pytest.raises(RuntimeError, match="boom at iteration 2"):
        rt.run()


# -- reconfiguration end-to-end ----------------------------------------------------


def reconfig_app(period=4) -> AppBuilder:
    """Pipeline with an optional +100 stage toggled every `period` iters."""
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "a"})
    main.component("tick", "event_sender",
                   streams={"input": "a", "output": "b"},
                   params={"queue": "ui", "period": period, "event": "flip"})
    with main.manager("m", queue="ui") as mgr:
        mgr.on("flip", "toggle", option="extra")
        with main.option("extra", enabled=False, bypass=[("b", "c")]):
            main.component("plus", "lifecycle_probe",
                           streams={"input": "b", "output": "c"})
    main.component("snk", "collector", streams={"input": "c"})
    return b


@pytest.mark.parametrize("nodes", [1, 3])
def test_toggle_option_changes_data_path(nodes):
    LifecycleProbe.instances.clear()
    rt, result = run_app(reconfig_app(period=4), nodes=nodes, depth=2, iters=16)
    assert result.completed_iterations == 16
    assert result.reconfig_count >= 2  # toggled on and off at least once
    values = result.components["snk"].ordered()
    assert len(values) == 16
    # Early iterations (before the first drain completes) pass through;
    # once 'extra' is live its +100 shows up; later it is removed again.
    assert values[0] == 0
    assert any(v >= 100 for v in values)
    assert any(v < 100 for v in values[8:])
    # value is always either k or k+100
    for k, v in enumerate(values):
        assert v in (k, k + 100)


def test_option_components_created_and_torn_down():
    LifecycleProbe.instances.clear()
    rt, result = run_app(reconfig_app(period=3), nodes=2, depth=2, iters=18)
    probes = LifecycleProbe.instances
    assert probes, "option component was never created"
    assert all(p.setup_count == 1 for p in probes)
    # every disabled splice tears the probe down
    torn_down = [p for p in probes if p.teardown_count == 1]
    assert torn_down
    # the number of create/teardown cycles matches the reconfig count scale
    assert len(probes) >= result.reconfig_count / 2


def test_events_ignored_when_no_handler():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "a"})
    main.component("tick", "event_sender",
                   streams={"input": "a", "output": "b"},
                   params={"queue": "ui", "period": 2, "event": "unknown_event"})
    with main.manager("m", queue="ui") as mgr:
        mgr.on("flip", "toggle", option="o")
        with main.option("o", enabled=False, bypass=[("b", "c")]):
            main.component("x", "doubler", streams={"input": "b", "output": "c"})
    main.component("snk", "collector", streams={"input": "c"})
    rt, result = run_app(b, nodes=2, iters=8)
    assert result.reconfig_count == 0
    assert result.events_ignored > 0


def test_forward_handler_routes_events():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "a"})
    main.component("tick", "event_sender",
                   streams={"input": "a", "output": "b"},
                   params={"queue": "front", "period": 2, "event": "flip"})
    with main.manager("router", queue="front") as r:
        r.on("flip", "forward", target="back")
        main.component("id1", "addconst", streams={"input": "b", "output": "c"},
                       params={"k": 0})
    with main.manager("m", queue="back") as mgr:
        mgr.on("flip", "enable", option="extra")
        with main.option("extra", enabled=False, bypass=[("c", "d")]):
            main.component("plus", "addconst",
                           streams={"input": "c", "output": "d"},
                           params={"k": 100})
    main.component("snk", "collector", streams={"input": "d"})
    rt, result = run_app(b, nodes=2, iters=12)
    assert result.reconfig_count == 1  # enabled once; further enables are no-ops
    values = result.components["snk"].ordered()
    assert values[-1] == 11 + 100


def test_reconfigure_request_reaches_members():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "a"})
    main.component("tick", "event_sender",
                   streams={"input": "a", "output": "b"},
                   params={"queue": "ui", "period": 3, "event": "move"})
    with main.manager("m", queue="ui") as mgr:
        mgr.on("move", "reconfigure", request="pos=5,5")
        main.component("r", "reconfigurable", streams={"input": "b", "output": "c"})
    main.component("snk", "collector", streams={"input": "c"})
    rt, result = run_app(b, nodes=2, iters=9)
    r = result.components["r"]
    assert "pos=5,5" in r.requests
    assert r.params["pos"] == "5,5"
    assert result.reconfig_count == 0  # requests do not rebuild the graph


def test_external_event_injection():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "a"})
    with main.manager("m", queue="ui") as mgr:
        mgr.on("on", "enable", option="extra")
        with main.option("extra", enabled=False, bypass=[("a", "c")]):
            main.component("plus", "addconst",
                           streams={"input": "a", "output": "c"},
                           params={"k": 1000})
    main.component("snk", "collector", streams={"input": "c"})
    program = expand(b.build(), PORTS)
    rt = ThreadedRuntime(program, REGISTRY, nodes=2, pipeline_depth=2,
                         max_iterations=10)
    rt.post_event("ui", "on")  # user presses a key before the run
    result = rt.run()
    assert result.reconfig_count == 1
    assert result.components["snk"].ordered()[-1] == 9 + 1000


def test_initial_option_states_override():
    rt, result = run_app(reconfig_app(period=1000), nodes=1, iters=4,
                         option_states={"extra": True})
    values = result.components["snk"].ordered()
    assert values == [100, 101, 102, 103]
