"""Concurrency stress for pool-backed streams.

Sliced writers race on the shared whole-frame buffer while a full
``pipeline_depth`` of iterations is in flight; the result must be
bit-identical to a sequential fill, every slot must be released, and the
pool's working set must stay bounded by the pipeline depth.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import StreamError
from repro.hinch.shm import SharedPlanePool
from repro.hinch.stream import Stream, StreamStore

ROWS, COLS, SLICES = 3, 17, 6
DEPTH, ITERS = 4, 40


def _expected(iteration: int) -> np.ndarray:
    out = np.empty((SLICES * ROWS, COLS), dtype=np.int32)
    for k in range(SLICES):
        out[k * ROWS:(k + 1) * ROWS, :] = iteration * 1000 + k
    return out


def test_sliced_writers_full_pipeline_bit_identical_to_sequential():
    pool = SharedPlanePool()
    store = StreamStore(pool)
    stream = store.stream("frame")
    sem = threading.Semaphore(DEPTH)  # pipeline admission, like the scheduler
    ok: dict[int, bool] = {}

    def write_slice(iteration: int, k: int) -> None:
        buf = stream.ensure_buffer(
            iteration, shape=(SLICES * ROWS, COLS), dtype=np.int32
        )
        buf[k * ROWS:(k + 1) * ROWS, :] = iteration * 1000 + k

    def run_iteration(iteration: int) -> None:
        with sem:
            writers = [
                threading.Thread(target=write_slice, args=(iteration, k))
                for k in range(SLICES)
            ]
            for t in writers:
                t.start()
            for t in writers:
                t.join()
            # reader runs after every writer copy, as the scheduler orders
            got = stream.get(iteration)
            ok[iteration] = bool(np.array_equal(got, _expected(iteration)))
            store.release_iteration(iteration)

    threads = [
        threading.Thread(target=run_iteration, args=(it,))
        for it in range(ITERS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
        assert not t.is_alive()

    assert ok == {it: True for it in range(ITERS)}
    assert stream.stats == (ITERS * SLICES, ITERS)
    assert stream.live_slots == 0
    # every plane went back to the free list ...
    assert pool.live_planes == 0
    # ... and the working set converged to the pipeline depth: at most
    # DEPTH slots were ever live, so at most DEPTH planes exist
    assert pool.total_planes <= DEPTH


def test_put_is_write_once_under_contention():
    stream = Stream("s")
    n = 8
    barrier = threading.Barrier(n)
    wins: list[int] = []
    errors: list[int] = []
    lock = threading.Lock()

    def racer(i: int) -> None:
        barrier.wait()
        try:
            stream.put(0, i)
            with lock:
                wins.append(i)
        except StreamError:
            with lock:
                errors.append(i)

    threads = [threading.Thread(target=racer, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert len(wins) == 1
    assert len(errors) == n - 1
    assert stream.get(0) == wins[0]


def test_ensure_buffer_allocates_exactly_once_under_contention():
    pool = SharedPlanePool()
    stream = Stream("s", pool)
    n = 16
    barrier = threading.Barrier(n)
    buffers: list[np.ndarray] = []
    lock = threading.Lock()

    def racer() -> None:
        barrier.wait()
        buf = stream.ensure_buffer(0, shape=(8, 8), dtype=np.uint8)
        with lock:
            buffers.append(buf)

    threads = [threading.Thread(target=racer) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert len(buffers) == n
    assert pool.stats.acquires == 1  # one plane, shared by every copy
    assert all(b is buffers[0] for b in buffers)


def test_concurrent_release_returns_plane_exactly_once():
    pool = SharedPlanePool()
    stream = Stream("s", pool)
    stream.ensure_buffer(0, shape=(8, 8), dtype=np.uint8)
    n = 8
    barrier = threading.Barrier(n)

    def racer() -> None:
        barrier.wait()
        stream.release(0)

    threads = [threading.Thread(target=racer) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    # a double release would corrupt the free list (the same plane handed
    # out twice); the slot pop makes release idempotent instead
    assert pool.stats.released == 1
    assert pool.live_planes == 0


def test_sliced_write_after_put_still_raises_with_pool():
    pool = SharedPlanePool()
    stream = Stream("s", pool)
    stream.put(0, np.zeros(4))
    with pytest.raises(StreamError, match="after finalizing"):
        stream.ensure_buffer(0, shape=(4,), dtype=np.float64)
