"""Tests for the dataflow scheduler state machine (no threads)."""

from __future__ import annotations

import pytest

from repro.core import AppBuilder, expand
from repro.core.program import ProgramGraph
from repro.errors import SchedulingError
from repro.hinch.jobqueue import Job
from repro.hinch.scheduler import DataflowScheduler, ReconfigPlan

from tests.hinch.helpers import PORTS


def linear_pg() -> ProgramGraph:
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "a"})
    main.component("dbl", "doubler", streams={"input": "a", "output": "b"})
    main.component("snk", "collector", streams={"input": "b"})
    return expand(b.build(), PORTS).build_graph()


def drive_to_completion(sched: DataflowScheduler) -> list[Job]:
    """Run jobs in FIFO order single-threaded; returns execution order."""
    order: list[Job] = []
    frontier = list(sched.start())
    while frontier:
        job = frontier.pop(0)
        order.append(job)
        frontier.extend(sched.complete(job))
    assert sched.done
    return order


def test_all_jobs_execute_once():
    sched = DataflowScheduler(linear_pg(), pipeline_depth=3, max_iterations=4)
    order = drive_to_completion(sched)
    assert len(order) == 3 * 4
    assert len(set(order)) == len(order)
    assert sched.completed_iterations == 4


def test_intra_iteration_order_respected():
    sched = DataflowScheduler(linear_pg(), pipeline_depth=2, max_iterations=3)
    order = drive_to_completion(sched)
    pos = {(j.node_id, j.iteration): i for i, j in enumerate(order)}
    for k in range(3):
        assert pos[("src", k)] < pos[("dbl", k)] < pos[("snk", k)]


def test_cross_iteration_self_dependency():
    sched = DataflowScheduler(linear_pg(), pipeline_depth=5, max_iterations=4)
    order = drive_to_completion(sched)
    pos = {(j.node_id, j.iteration): i for i, j in enumerate(order)}
    for node in ("src", "dbl", "snk"):
        for k in range(3):
            assert pos[(node, k)] < pos[(node, k + 1)]


def test_pipeline_depth_bounds_in_flight():
    pg = linear_pg()
    sched = DataflowScheduler(pg, pipeline_depth=2, max_iterations=10)
    frontier = list(sched.start())
    max_in_flight = sched.in_flight
    while frontier:
        job = frontier.pop(0)
        frontier.extend(sched.complete(job))
        max_in_flight = max(max_in_flight, sched.in_flight)
    assert max_in_flight <= 2


def test_pipeline_depth_one_is_strictly_sequential():
    sched = DataflowScheduler(linear_pg(), pipeline_depth=1, max_iterations=3)
    order = drive_to_completion(sched)
    iterations = [j.iteration for j in order]
    assert iterations == sorted(iterations)


def test_zero_iterations_done_immediately():
    sched = DataflowScheduler(linear_pg(), pipeline_depth=2, max_iterations=0)
    assert sched.start() == []
    assert sched.done


def test_request_stop_halts_admission():
    sched = DataflowScheduler(linear_pg(), pipeline_depth=1, max_iterations=100)
    frontier = list(sched.start())
    executed = []
    while frontier:
        job = frontier.pop(0)
        executed.append(job)
        if job.iteration == 2 and job.node_id == "src":
            sched.request_stop()
        frontier.extend(sched.complete(job))
    assert sched.done
    # iterations 0..2 run to completion; nothing beyond admitted
    assert max(j.iteration for j in executed) == 2
    assert sched.completed_iterations == 3


def test_duplicate_completion_rejected():
    sched = DataflowScheduler(linear_pg(), pipeline_depth=1, max_iterations=1)
    (job,) = sched.start()
    sched.complete(job)
    with pytest.raises(SchedulingError, match="duplicate|undispatched|unknown"):
        sched.complete(job)


def test_unknown_completion_rejected():
    sched = DataflowScheduler(linear_pg(), pipeline_depth=1, max_iterations=1)
    sched.start()
    with pytest.raises(SchedulingError):
        sched.complete(Job(iteration=7, node_id="src"))


def test_double_start_rejected():
    sched = DataflowScheduler(linear_pg(), pipeline_depth=1, max_iterations=1)
    sched.start()
    with pytest.raises(SchedulingError, match="already started"):
        sched.start()


def test_invalid_parameters_rejected():
    pg = linear_pg()
    with pytest.raises(SchedulingError):
        DataflowScheduler(pg, pipeline_depth=0, max_iterations=1)
    with pytest.raises(SchedulingError):
        DataflowScheduler(pg, pipeline_depth=1, max_iterations=-1)


# -- reconfiguration ------------------------------------------------------------


class _ReconfigHooks:
    """Hooks that rebuild the graph from a program on reconfigure."""

    def __init__(self, program):
        self.program = program
        self.states = program.default_option_states()
        self.reconfigured_at: list[int] = []
        self.released: list[int] = []

    def on_iteration_complete(self, iteration: int) -> None:
        self.released.append(iteration)

    def on_reconfigure(self, plans, resume_iteration):
        for plan in plans:
            self.states.update(plan.changes)
        self.reconfigured_at.append(resume_iteration)
        return self.program.build_graph(self.states)


def optional_program():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "a"})
    with main.manager("m", queue="q"):
        with main.option("opt", enabled=False, bypass=[("a", "b")]):
            main.component("extra", "doubler", streams={"input": "a", "output": "b"})
    main.component("snk", "collector", streams={"input": "b"})
    return expand(b.build(), PORTS)


def test_reconfig_drains_then_switches():
    program = optional_program()
    hooks = _ReconfigHooks(program)
    pg = program.build_graph()
    sched = DataflowScheduler(pg, pipeline_depth=3, max_iterations=8, hooks=hooks)
    frontier = list(sched.start())
    executed = []
    requested = False
    while frontier:
        job = frontier.pop(0)
        executed.append(job)
        if not requested and job.iteration == 1 and job.node_id == "m.enter":
            sched.request_reconfig(
                ReconfigPlan(manager="m", changes={"opt": True})
            )
            requested = True
        frontier.extend(sched.complete(job))
    assert sched.done
    assert sched.reconfig_count == 1
    # 'extra' only executes in iterations after the switch point
    extra_iters = [j.iteration for j in executed if j.node_id == "extra"]
    assert extra_iters
    switch = hooks.reconfigured_at[0]
    assert min(extra_iters) == switch
    assert sched.completed_iterations == 8
    # iterations released in order
    assert hooks.released == list(range(8))


def test_reconfig_applies_merged_plans():
    program = optional_program()
    hooks = _ReconfigHooks(program)
    sched = DataflowScheduler(
        program.build_graph(), pipeline_depth=2, max_iterations=6, hooks=hooks
    )
    frontier = list(sched.start())
    fired = False
    while frontier:
        job = frontier.pop(0)
        if not fired and job.node_id == "m.enter":
            # enable then disable before quiescence: net no-op is applied
            sched.request_reconfig(ReconfigPlan("m", {"opt": True}))
            sched.request_reconfig(ReconfigPlan("m", {"opt": False}))
            fired = True
        frontier.extend(sched.complete(job))
    assert sched.done
    assert hooks.states == {"opt": False}
    assert sched.reconfig_count == 1  # drained once, merged plans


def test_reconfig_halts_admission_until_quiescent():
    program = optional_program()
    hooks = _ReconfigHooks(program)
    sched = DataflowScheduler(
        program.build_graph(), pipeline_depth=4, max_iterations=10, hooks=hooks
    )
    frontier = list(sched.start())
    in_flight_at_reconfig = None
    while frontier:
        job = frontier.pop(0)
        if job.iteration == 0 and job.node_id == "m.enter":
            sched.request_reconfig(ReconfigPlan("m", {"opt": True}))
            in_flight_at_reconfig = sched.in_flight
        frontier.extend(sched.complete(job))
    assert in_flight_at_reconfig is not None
    switch = hooks.reconfigured_at[0]
    # admission stopped: the switch happened exactly after the iterations
    # that were in flight at request time drained
    assert switch == in_flight_at_reconfig
    assert sched.completed_iterations == 10
