"""Batched dispatch: lease equivalence, speculation units, fault recovery.

The lease machinery (ready extension, speculative follow-ons, worker-
resident slots, the oversubscription guard) must be invisible in the
output: every batch size and worker count produces the threaded
backend's frames bit-for-bit, including when a worker is killed or
wedged *mid-lease* — the per-record acknowledgement protocol guarantees
each checkpoint delta applies exactly once, so the sink sees neither
duplicated nor missing frames.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.apps import build_blur, build_pip, make_program
from repro.components.registry import default_registry
from repro.core import AppBuilder, expand
from repro.errors import SchedulingError
from repro.hinch import ProcessRuntime, ThreadedRuntime
from repro.hinch.jobqueue import Job, JobQueue
from repro.hinch.scheduler import DataflowScheduler

from tests.hinch.helpers import PORTS

REG = default_registry()


def pip_spec():
    return build_pip(1, width=64, height=48, factor=4, slices=2, frames=2,
                     collect=True)


def blur_spec():
    return build_blur(3, width=48, height=36, slices=3, frames=2,
                      collect=True)


def run_threaded(spec, *, iters, name="app"):
    program = make_program(spec, name=name)
    return ThreadedRuntime(program, REG, nodes=2, pipeline_depth=2,
                           max_iterations=iters).run()


def make_process(spec, *, iters, workers=2, batch=4, name="app", **kwargs):
    program = make_program(spec, name=name)
    return ProcessRuntime(program, REG, workers=workers, pipeline_depth=2,
                          max_iterations=iters, batch=batch, **kwargs)


def kinds_of(result):
    counts: dict[str, int] = {}
    for event in result.fault_events:
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    return counts


def shm_entries():
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


# -- batch equivalence --------------------------------------------------------


@pytest.mark.parametrize("batch", [1, 2, 4, 8])
@pytest.mark.parametrize("workers", [1, 4])
def test_batched_pip_bit_identical(batch, workers):
    """Every lease size and worker count reproduces the threaded frames,
    and the stream read/write accounting (deferred-read replay included)
    matches the job-at-a-time dispatcher counter for counter."""
    spec = pip_spec()
    thr = run_threaded(spec, iters=4)
    rt = make_process(spec, iters=4, workers=workers, batch=batch)
    prc = rt.run()
    a = thr.components["sink"].ordered_frames()
    b = prc.components["sink"].ordered_frames()
    assert len(a) == len(b) == 4
    for x, y in zip(a, b):
        assert x == y
    assert prc.stream_stats == thr.stream_stats


@pytest.mark.parametrize("batch", [2, 4])
def test_batched_blur_planes_identical(batch):
    spec = blur_spec()
    thr = run_threaded(spec, iters=4)
    prc = make_process(spec, iters=4, workers=4, batch=batch).run()
    a = thr.components["sink"].ordered_planes()
    b = prc.components["sink"].ordered_planes()
    assert len(a) == len(b) == 4
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_batched_reconfiguration_is_deterministic():
    """Lease assembly never scans past a control node, so manager timing
    — and with it the reconfiguration log — matches ``batch=1``."""
    spec = build_blur(reconfigurable=True, period=3, width=48, height=36,
                      slices=3, frames=2, collect=True)
    program = make_program(spec, name="blur35")
    thr_rt = ThreadedRuntime(program, REG, nodes=1, pipeline_depth=1,
                             max_iterations=9)
    thr = thr_rt.run()
    prc_rt = ProcessRuntime(program, REG, workers=1, pipeline_depth=1,
                            max_iterations=9, batch=4)
    prc = prc_rt.run()
    assert prc_rt.reconfig_log == thr_rt.reconfig_log
    a = thr.components["sink"].ordered_planes()
    b = prc.components["sink"].ordered_planes()
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_oversubscription_guard_consolidates_and_stays_identical():
    """With one (forced) physical core, CPU-bound work is held for the
    busy worker's next lease instead of waking more processes: dormant
    slots never fork, and the output is still bit-identical."""
    spec = pip_spec()
    thr = run_threaded(spec, iters=4)
    rt = make_process(spec, iters=4, workers=4, batch=4)
    rt._cores = 1
    prc = rt.run()
    assert rt._dormant >= 1
    a = thr.components["sink"].ordered_frames()
    b = prc.components["sink"].ordered_frames()
    assert len(a) == len(b) == 4
    for x, y in zip(a, b):
        assert x == y


# -- faults mid-lease ---------------------------------------------------------


@pytest.mark.parametrize("at_job", [2, 3])
def test_worker_killed_mid_lease_is_bit_identical(at_job):
    """A worker dying partway through a multi-job lease: acknowledged
    records stay applied (exactly once — the sink has no duplicated and
    no missing frames), unacknowledged members are retried or retracted,
    and no shm plane leaks."""
    spec = pip_spec()
    before = shm_entries()
    thr = run_threaded(spec, iters=4)
    rt = make_process(spec, iters=4, workers=2, batch=4,
                      faults=f"kill:{at_job}")
    prc = rt.run()
    kinds = kinds_of(prc)
    assert kinds["worker_failure"] == 1
    assert kinds["respawn"] == 1
    # The job the worker died on may have been a speculative lease member
    # — recovered by retraction, not retry — so only consistency of the
    # retry accounting is asserted, not a minimum count.
    assert rt.scheduler.retries == kinds.get("retry", 0)
    assert rt.pool.live_planes == 0
    assert rt.pool.total_planes == 0
    assert shm_entries() - before == set()
    a = thr.components["sink"].ordered_frames()
    b = prc.components["sink"].ordered_frames()
    assert len(a) == len(b) == 4
    for x, y in zip(a, b):
        assert x == y


def test_worker_hung_mid_lease_reaped_and_requeued():
    """The watchdog window is per job, not per lease: a kernel wedged on
    a mid-lease entry is reaped, the unacknowledged tail requeued, and
    the planes come out identical."""
    spec = blur_spec()
    before = shm_entries()
    thr = run_threaded(spec, iters=4)
    rt = make_process(spec, iters=4, workers=2, batch=4, faults="hang:3",
                      watchdog=1.0)
    prc = rt.run()
    kinds = kinds_of(prc)
    assert kinds["watchdog_kill"] == 1
    assert kinds["respawn"] == 1
    assert rt.scheduler.retries == kinds.get("retry", 0)
    assert rt.pool.total_planes == 0
    assert shm_entries() - before == set()
    a = thr.components["sink"].ordered_planes()
    b = prc.components["sink"].ordered_planes()
    assert len(a) == len(b) == 4
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_kill_mid_lease_under_reconfiguration():
    """Lease recovery composes with live reconfiguration: the respawned
    worker replays the splice history and the log stays deterministic."""
    spec = build_blur(reconfigurable=True, period=3, width=48, height=36,
                      slices=3, frames=2, collect=True)
    program = make_program(spec, name="blur35")
    thr_rt = ThreadedRuntime(program, REG, nodes=1, pipeline_depth=1,
                             max_iterations=9)
    thr = thr_rt.run()
    prc_rt = ProcessRuntime(program, REG, workers=1, pipeline_depth=1,
                            max_iterations=9, batch=4, faults="kill:5")
    prc = prc_rt.run()
    assert kinds_of(prc)["respawn"] == 1
    assert prc_rt.reconfig_log == thr_rt.reconfig_log
    a = thr.components["sink"].ordered_planes()
    b = prc.components["sink"].ordered_planes()
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


# -- scheduler speculation units ----------------------------------------------


def linear_pg():
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "a"})
    main.component("dbl", "doubler", streams={"input": "a", "output": "b"})
    main.component("snk", "collector", streams={"input": "b"})
    return expand(b.build(), PORTS).build_graph()


def test_extract_followons_chains_successors_and_pipeline():
    sched = DataflowScheduler(linear_pg(), pipeline_depth=3, max_iterations=3)
    lease = list(sched.start())
    assert lease == [Job(iteration=0, node_id="src")]
    extras = sched.extract_followons(lease, 4)
    assert Job(iteration=0, node_id="dbl") in extras
    assert Job(iteration=1, node_id="src") in extras
    assert len(extras) == len(set(extras)) <= 4


def test_extract_followons_pipeline_only_skips_successors():
    sched = DataflowScheduler(linear_pg(), pipeline_depth=3, max_iterations=3)
    lease = list(sched.start())
    extras = sched.extract_followons(lease, 4, pipeline_only=True)
    assert extras == [
        Job(iteration=1, node_id="src"),
        Job(iteration=2, node_id="src"),
    ]


def test_extract_followons_is_chainable_filters_successors_only():
    sched = DataflowScheduler(linear_pg(), pipeline_depth=3, max_iterations=3)
    lease = list(sched.start())
    extras = sched.extract_followons(
        lease, 4, is_chainable=lambda node_id: node_id != "dbl"
    )
    assert all(job.node_id != "dbl" for job in extras)
    assert Job(iteration=1, node_id="src") in extras  # pipeline unfiltered


def test_retract_restores_normal_readiness():
    sched = DataflowScheduler(linear_pg(), pipeline_depth=2, max_iterations=2)
    lease = list(sched.start())
    extras = sched.extract_followons(lease, 1)
    assert extras == [Job(iteration=0, node_id="dbl")]
    # Predecessor src@0 has not completed: the retracted job is not yet
    # ready, and its predecessor's completion re-emits it as usual.
    assert sched.retract(extras[0]) == []
    ready = sched.complete(lease[0])
    assert Job(iteration=0, node_id="dbl") in ready
    with pytest.raises(SchedulingError):
        sched.retract(Job(iteration=0, node_id="snk"))  # never dispatched
    with pytest.raises(SchedulingError):
        sched.retract(Job(iteration=7, node_id="src"))  # unknown iteration


def test_retract_after_predecessor_completed_reemits_immediately():
    """The mid-lease death deadlock: the speculative member's producer
    acknowledged before the worker died, so no future completion will
    re-emit it — retract must hand it back ready right now."""
    sched = DataflowScheduler(linear_pg(), pipeline_depth=2, max_iterations=2)
    lease = list(sched.start())
    extras = sched.extract_followons(lease, 1)
    assert extras == [Job(iteration=0, node_id="dbl")]
    ready = sched.complete(lease[0])
    assert Job(iteration=0, node_id="dbl") not in ready  # still speculative
    assert sched.retract(extras[0]) == [Job(iteration=0, node_id="dbl")]
    # And the re-emission is real: completing it unblocks the sink.
    ready = sched.complete(extras[0])
    assert Job(iteration=0, node_id="snk") in ready


# -- job queue primitives -----------------------------------------------------


def test_try_pop_where_respects_stop_barrier():
    q = JobQueue()
    q.push_all([
        Job(iteration=0, node_id="a"),
        Job(iteration=0, node_id="ctl"),
        Job(iteration=0, node_id="b"),
    ])
    is_ctl = lambda job: job.node_id == "ctl"  # noqa: E731
    assert q.try_pop_where(lambda j: j.node_id == "b", stop=is_ctl) is None
    got = q.try_pop_where(lambda j: j.node_id == "a", stop=is_ctl)
    assert got == Job(iteration=0, node_id="a")
    assert len(q) == 2  # barrier and tail untouched


def test_peek_is_non_destructive():
    q = JobQueue()
    assert q.peek() is None
    q.push(Job(iteration=0, node_id="a"))
    assert q.peek() == Job(iteration=0, node_id="a")
    assert len(q) == 1
    assert q.try_pop() == Job(iteration=0, node_id="a")
    assert q.peek() is None
