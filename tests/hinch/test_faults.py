"""Fault tolerance: the dispatcher survives worker crashes and hangs.

Recovery must be invisible in the output — every scenario below pins the
process backend's frames against the threaded runtime bit-for-bit while
workers are being killed or wedged — and complete in the accounting: shm
leases return to the pool, retries are recorded, and nothing leaks into
``/dev/shm``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.apps import build_blur, build_pip, make_program
from repro.components.registry import default_registry
from repro.errors import SchedulingError, WorkerFailure
from repro.hinch import FaultInjector, FaultSpec, ProcessRuntime, ThreadedRuntime
from repro.hinch.faults import parse_faults

REG = default_registry()


def pip_spec():
    return build_pip(1, width=64, height=48, factor=4, slices=2, frames=2,
                     collect=True)


def blur_spec():
    return build_blur(3, width=48, height=36, slices=3, frames=2,
                      collect=True)


def run_threaded(spec, *, iters, name="app"):
    program = make_program(spec, name=name)
    return ThreadedRuntime(program, REG, nodes=2, pipeline_depth=2,
                           max_iterations=iters).run()


def make_process(spec, *, iters, workers=2, name="app", **kwargs):
    program = make_program(spec, name=name)
    return ProcessRuntime(program, REG, workers=workers, pipeline_depth=2,
                          max_iterations=iters, **kwargs)


def kinds_of(result):
    counts: dict[str, int] = {}
    for event in result.fault_events:
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    return counts


def shm_entries():
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


# -- the tentpole scenario ---------------------------------------------------


@pytest.mark.parametrize("at_job", [1, 3])
def test_worker_killed_mid_run_is_bit_identical(at_job):
    """A worker hard-crashing mid-iteration costs nothing but a retry:
    output equals the threaded backend and no shm segment is orphaned."""
    spec = pip_spec()
    before = shm_entries()
    thr = run_threaded(spec, iters=4)
    rt = make_process(spec, iters=4, faults=f"kill:{at_job}")
    prc = rt.run()
    kinds = kinds_of(prc)
    assert kinds["worker_failure"] == 1
    assert kinds["retry"] == 1
    assert kinds["respawn"] == 1
    assert rt.scheduler.retries == 1
    assert rt.pool.live_planes == 0
    assert rt.pool.total_planes == 0
    assert shm_entries() - before == set()
    a = thr.components["sink"].ordered_frames()
    b = prc.components["sink"].ordered_frames()
    assert len(a) == len(b) == 4
    for x, y in zip(a, b):
        assert x == y


def test_hung_kernel_reaped_by_watchdog():
    spec = blur_spec()
    thr = run_threaded(spec, iters=4)
    rt = make_process(spec, iters=4, faults="hang:2", watchdog=1.0)
    prc = rt.run()
    kinds = kinds_of(prc)
    assert kinds["watchdog_kill"] == 1
    assert kinds["retry"] == 1
    assert kinds["respawn"] == 1
    a = thr.components["sink"].ordered_planes()
    b = prc.components["sink"].ordered_planes()
    assert len(a) == len(b) == 4
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_slow_fault_delays_but_never_fails():
    spec = blur_spec()
    thr = run_threaded(spec, iters=4)
    rt = make_process(spec, iters=4, faults="slow:2:30")
    prc = rt.run()
    assert prc.fault_events == []
    assert rt.scheduler.retries == 0
    a = thr.components["sink"].ordered_planes()
    b = prc.components["sink"].ordered_planes()
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_kill_under_live_reconfiguration_is_bit_identical():
    """Recovery composes with reconfiguration: the respawned worker
    replays the reconfigure history, so a crash between splices still
    produces the threaded backend's exact output."""
    spec = build_blur(reconfigurable=True, period=3, width=48, height=36,
                      slices=3, frames=2, collect=True)
    program = make_program(spec, name="blur35")
    thr_rt = ThreadedRuntime(program, REG, nodes=1, pipeline_depth=1,
                             max_iterations=9)
    thr = thr_rt.run()
    prc_rt = ProcessRuntime(program, REG, workers=1, pipeline_depth=1,
                            max_iterations=9, faults="kill:5")
    prc = prc_rt.run()
    assert kinds_of(prc)["respawn"] == 1
    assert prc_rt.reconfig_log == thr_rt.reconfig_log
    a = thr.components["sink"].ordered_planes()
    b = prc.components["sink"].ordered_planes()
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


# -- respawn vs. degrade -----------------------------------------------------


def test_degrade_to_surviving_pool_without_respawn():
    spec = blur_spec()
    thr = run_threaded(spec, iters=4)
    rt = make_process(spec, iters=4, workers=3, faults="kill:1",
                      respawn=False)
    prc = rt.run()
    kinds = kinds_of(prc)
    assert kinds["degrade"] == 1
    assert "respawn" not in kinds
    a = thr.components["sink"].ordered_planes()
    b = prc.components["sink"].ordered_planes()
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_degrade_to_zero_raises_worker_failure():
    rt = make_process(blur_spec(), iters=2, workers=1, faults="kill:1",
                      respawn=False)
    with pytest.raises(WorkerFailure):
        rt.run()
    assert rt.pool.total_planes == 0


def test_retry_budget_exhausted_raises_structured_failure():
    rt = make_process(blur_spec(), iters=2, faults="kill:1", max_retries=0)
    with pytest.raises(WorkerFailure) as info:
        rt.run()
    assert info.value.job is not None
    assert info.value.worker is not None
    assert rt.pool.total_planes == 0


def test_fault_events_carry_incarnation_and_job():
    rt = make_process(pip_spec(), iters=4, faults="kill:1")
    rt.run()
    failure = next(e for e in rt.fault_events if e["kind"] == "worker_failure")
    assert failure["job"] is not None
    assert isinstance(failure["incarnation"], int)
    respawn = next(e for e in rt.fault_events if e["kind"] == "respawn")
    assert respawn["incarnation"] > failure["incarnation"]


def test_trace_records_fault_kinds():
    rt = make_process(pip_spec(), iters=4, faults="kill:1", trace=True)
    result = rt.run()
    counts = result.trace.kind_counts()
    assert counts.get("worker_failure") == 1
    assert counts.get("respawn") == 1


# -- error reporting ---------------------------------------------------------


def test_component_exception_carries_remote_traceback():
    """A deterministic kernel crash is not retried; it surfaces as the
    original exception chained to a WorkerFailure holding the worker's
    formatted traceback (satellite: the ``tb`` must not be dropped)."""
    from repro.hinch.component import Component

    class Exploding(Component):
        ports = REG["luma_source"].ports

        def run(self, job):
            raise RuntimeError("kernel exploded")

    registry = dict(REG)
    registry["luma_source"] = Exploding
    program = make_program(blur_spec(), name="blur")
    rt = ProcessRuntime(program, registry, workers=2, max_iterations=2)
    with pytest.raises(RuntimeError, match="kernel exploded") as info:
        rt.run()
    cause = info.value.__cause__
    assert isinstance(cause, WorkerFailure)
    assert "kernel exploded" in cause.remote_traceback
    assert "Traceback" in cause.remote_traceback
    assert rt.scheduler.retries == 0  # deterministic errors fail fast


def test_error_during_shutdown_drain_is_surfaced():
    """Satellite regression: a worker failing while the dispatcher drains
    the stop handshake used to be swallowed; it must raise."""
    from repro.components.streaming import PlaneSink

    class BadSnapshot(PlaneSink):
        def snapshot_state(self):
            raise RuntimeError("snapshot exploded")

    registry = dict(REG)
    registry["plane_sink"] = BadSnapshot
    program = make_program(blur_spec(), name="blur")
    rt = ProcessRuntime(program, registry, workers=2, max_iterations=2)
    with pytest.raises(RuntimeError, match="snapshot exploded"):
        rt.run()
    assert rt.pool.total_planes == 0


# -- the injection harness ---------------------------------------------------


def test_parse_faults_round_trip():
    specs = parse_faults("kill:1,hang:5,slow:2:50")
    assert specs == [
        FaultSpec("kill", 1),
        FaultSpec("hang", 5),
        FaultSpec("slow", 2, ms=50.0),
    ]


@pytest.mark.parametrize("text", [
    "boom:1",          # unknown kind
    "kill",            # missing index
    "kill:0",          # 1-based indices
    "kill:x",          # non-integer
    "slow:2",          # slow needs a duration
    "slow:2:0",        # ... a positive one
    "kill:1,hang:1",   # duplicate job index
    "kill:1:9",        # kill takes no duration
])
def test_parse_faults_rejects_malformed(text):
    with pytest.raises(SchedulingError):
        parse_faults(text)


def test_injector_directives_are_one_shot():
    inj = FaultInjector("kill:2,slow:3:10")
    assert inj.directive(1) is None
    assert inj.directive(2) == ("kill",)
    assert inj.directive(2) is None  # consumed
    assert inj.directive(3) == ("slow", 10.0)
    assert inj.remaining == []
    assert [s.kind for s in inj.injected] == ["kill", "slow"]


def test_scheduler_requeue_guards():
    """requeue() only accepts jobs the scheduler actually dispatched."""
    from repro.hinch.jobqueue import Job

    spec = blur_spec()
    program = make_program(spec, name="blur")
    rt = make_process(spec, iters=2)
    try:
        with pytest.raises(SchedulingError):
            rt.scheduler.requeue(Job(iteration=0, node_id="nope"))
    finally:
        rt.pool.close()


# -- spec hygiene (fuzzer-pinned) --------------------------------------------


def test_injector_rejects_duplicate_indices_in_spec_lists():
    """The dict keyed by at_job would silently keep only the last
    directive — programmatic spec lists get the same rejection as the
    parsed CLI syntax."""
    specs = [FaultSpec("kill", 2), FaultSpec("slow", 2, ms=10.0)]
    with pytest.raises(SchedulingError, match="job 2"):
        FaultInjector(specs)


def test_fault_spec_describe_round_trips_through_parser():
    specs = parse_faults("kill:1,hang:5,slow:2:50,slow:7:2.5")
    text = ",".join(s.describe() for s in specs)
    assert text == "kill:1,hang:5,slow:2:50,slow:7:2.5"
    assert parse_faults(text) == specs


def test_injector_remaining_reports_unfired_specs():
    inj = FaultInjector("kill:2,slow:9:10,kill:40")
    inj.directive(1)
    inj.directive(2)
    assert [s.describe() for s in inj.remaining] == ["slow:9:10", "kill:40"]


def test_unfired_faults_surface_in_run_summary():
    """A fault aimed past the end of the run must not vanish silently:
    the run result carries an ``unfired`` event naming the spec."""
    rt = make_process(blur_spec(), iters=2, workers=1,
                      faults="kill:1,kill:5000")
    before = shm_entries()
    result = rt.run()
    assert shm_entries() == before
    unfired = [e for e in result.fault_events if e["kind"] == "unfired"]
    assert len(unfired) == 1
    assert "kill:5000" in unfired[0]["detail"]
    assert "never fired" in unfired[0]["detail"]
    # the fired kill still recovered normally
    assert kinds_of(result).get("worker_failure") == 1
