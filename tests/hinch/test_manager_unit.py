"""Isolated unit tests for ManagerRuntime (mock controller)."""

from __future__ import annotations

from repro.core.ast import EventHandler
from repro.core.program import ManagerInfo
from repro.hinch.events import Event, EventBroker
from repro.hinch.manager import ManagerRuntime


class FakeController:
    def __init__(self, states: dict[str, bool]):
        self.states = dict(states)
        self.applied: list[dict] = []
        self.requests: list[str] = []

    def target_option_state(self, option: str) -> bool:
        return self.states[option]

    def apply_option_changes(self, manager: str, changes: dict) -> None:
        self.applied.append(dict(changes))
        self.states.update(changes)

    def send_reconfigure_request(self, manager: str, request: str) -> None:
        self.requests.append(request)


def make_manager(handlers, states, queue="q"):
    broker = EventBroker()
    controller = FakeController(states)
    info = ManagerInfo(
        qname="m", queue=queue, handlers=tuple(handlers),
        options=tuple(states), members=(),
    )
    return ManagerRuntime(info, broker, controller), broker, controller


def test_empty_queue_is_noop():
    mgr, broker, ctl = make_manager(
        [EventHandler("e", "toggle", option="o")], {"o": False}
    )
    mgr.invoke(0, "enter")
    assert ctl.applied == []
    assert mgr.events_handled == 0


def test_toggle_flips_state():
    mgr, broker, ctl = make_manager(
        [EventHandler("e", "toggle", option="o")], {"o": False}
    )
    broker.post("q", Event("e"))
    mgr.invoke(0, "enter")
    assert ctl.applied == [{"o": True}]
    assert mgr.events_handled == 1


def test_enable_when_already_enabled_is_ignored():
    """Paper: 'The event is ignored when the option is already in the
    required state.'"""
    mgr, broker, ctl = make_manager(
        [EventHandler("e", "enable", option="o")], {"o": True}
    )
    broker.post("q", Event("e"))
    mgr.invoke(0, "enter")
    assert ctl.applied == []


def test_disable_when_enabled_applies():
    mgr, broker, ctl = make_manager(
        [EventHandler("e", "disable", option="o")], {"o": True}
    )
    broker.post("q", Event("e"))
    mgr.invoke(0, "exit")
    assert ctl.applied == [{"o": False}]


def test_two_toggles_in_one_poll_cancel_out():
    mgr, broker, ctl = make_manager(
        [EventHandler("e", "toggle", option="o")], {"o": False}
    )
    broker.post("q", Event("e"))
    broker.post("q", Event("e"))
    mgr.invoke(0, "enter")
    assert ctl.applied == []  # net no-op never reaches the scheduler


def test_three_toggles_net_one_change():
    mgr, broker, ctl = make_manager(
        [EventHandler("e", "toggle", option="o")], {"o": False}
    )
    for _ in range(3):
        broker.post("q", Event("e"))
    mgr.invoke(0, "enter")
    assert ctl.applied == [{"o": True}]


def test_one_event_two_handlers_swaps_pair():
    """Blur-35 pattern: one event toggles both kernels' options."""
    mgr, broker, ctl = make_manager(
        [
            EventHandler("switch", "toggle", option="k3"),
            EventHandler("switch", "toggle", option="k5"),
        ],
        {"k3": True, "k5": False},
    )
    broker.post("q", Event("switch"))
    mgr.invoke(0, "enter")
    assert ctl.applied == [{"k3": False, "k5": True}]


def test_forward_copies_event():
    mgr, broker, ctl = make_manager(
        [EventHandler("e", "forward", target="downstream")], {}
    )
    broker.post("q", Event("e", payload=5, source="comp"))
    mgr.invoke(0, "enter")
    forwarded = broker.queue("downstream").poll()
    assert len(forwarded) == 1
    assert forwarded[0].payload == 5
    assert forwarded[0].source == "comp"


def test_reconfigure_request_broadcast():
    mgr, broker, ctl = make_manager(
        [EventHandler("move", "reconfigure", request="pos=1,2")], {}
    )
    broker.post("q", Event("move"))
    mgr.invoke(3, "enter")
    assert ctl.requests == ["pos=1,2"]


def test_reconfigure_request_payload_substitution():
    mgr, broker, ctl = make_manager(
        [EventHandler("move", "reconfigure", request="pos=${payload}")], {}
    )
    broker.post("q", Event("move", payload="7,9"))
    mgr.invoke(0, "enter")
    assert ctl.requests == ["pos=7,9"]


def test_unmatched_events_counted_ignored():
    mgr, broker, ctl = make_manager(
        [EventHandler("known", "toggle", option="o")], {"o": False}
    )
    broker.post("q", Event("mystery"))
    broker.post("q", Event("known"))
    mgr.invoke(0, "enter")
    assert mgr.events_ignored == 1
    assert mgr.events_handled == 1


def test_mixed_events_processed_in_order():
    mgr, broker, ctl = make_manager(
        [
            EventHandler("on", "enable", option="o"),
            EventHandler("off", "disable", option="o"),
        ],
        {"o": False},
    )
    broker.post("q", Event("on"))
    broker.post("q", Event("off"))
    broker.post("q", Event("on"))
    mgr.invoke(0, "enter")
    # last write wins within the poll: net enable
    assert ctl.applied == [{"o": True}]
