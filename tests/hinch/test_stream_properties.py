"""Property tests for stream invariants under random operation sequences."""

from __future__ import annotations

import numpy as np
from hypothesis import given, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.errors import StreamError
from repro.hinch.stream import Stream, StreamStore


class StreamMachine(RuleBasedStateMachine):
    """Model-based test: a Stream against a plain dict reference model."""

    def __init__(self):
        super().__init__()
        self.stream = Stream("s")
        self.model: dict[int, object] = {}
        self.finalized: set[int] = set()

    iterations = st.integers(0, 5)

    @rule(k=iterations, value=st.integers())
    def put(self, k, value):
        if k in self.model:
            try:
                self.stream.put(k, value)
                raise AssertionError("double write must raise")
            except StreamError:
                pass
        else:
            self.stream.put(k, value)
            self.model[k] = value
            self.finalized.add(k)

    @rule(k=iterations)
    def get(self, k):
        if k in self.model:
            assert self.stream.get(k) == self.model[k]
        else:
            try:
                self.stream.get(k)
                raise AssertionError("read-before-write must raise")
            except StreamError:
                pass

    @rule(k=iterations)
    def ensure(self, k):
        if k in self.finalized:
            try:
                self.stream.ensure_buffer(k, lambda: [0])
                raise AssertionError("sliced write after put must raise")
            except StreamError:
                pass
        else:
            buf = self.stream.ensure_buffer(k, lambda: [0])
            if k in self.model:
                assert buf is self.model[k]
            else:
                self.model[k] = buf

    @rule(k=iterations)
    def release(self, k):
        self.stream.release(k)
        self.model.pop(k, None)
        self.finalized.discard(k)

    @invariant()
    def live_slots_match_model(self):
        assert self.stream.live_slots == len(self.model)


TestStreamModel = StreamMachine.TestCase


@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 3)),
                max_size=30))
def test_prop_store_release_clears_everything(ops):
    store = StreamStore()
    live: set[tuple[str, int]] = set()
    for name, k in ops:
        store.stream(name).put(*_fresh(store, name, k))
        live.add((name, _last_put[0]))
    for _, k in list(live):
        store.release_iteration(k)
    # releasing every iteration seen leaves nothing behind
    for name, k in live:
        store.release_iteration(k)
    assert store.total_live_slots() == 0


_last_put = [0]


def _fresh(store, name, k):
    """Find an unused iteration near k to avoid double-write errors."""
    stream = store.stream(name)
    while stream.has(k):
        k += 1
    _last_put[0] = k
    return k, object()
