"""Chain fusion (--fuse): structure, bit-identity, faults, interning.

The fusion compiler (:mod:`repro.hinch.fusion`) rewrites provable linear
chains into single-dispatch fused kernels whose intermediate planes stay
worker-local.  The contract tested here is absolute: fused output is
bit-identical to unfused output on every application, every backend,
every batch size, and across live reconfigurations — and a worker killed
mid-fused-job requeues the whole fused job exactly once.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.analysis.diagnostics import DiagnosticBag
from repro.analysis.formats import check_formats, runtime_expectations
from repro.apps import build_blur, build_jpip, build_pip, make_program
from repro.components.registry import default_ports, default_registry
from repro.core import expand, parse_string
from repro.hinch import ProcessRuntime, ThreadedRuntime
from repro.hinch.fusion import (
    FusedChain,
    fuse_chains,
    numba_available,
    resolve_backend,
)
from repro.hinch.grouping import find_linear_chains
from repro.hinch.shm import NameInterner

REG = default_registry()


def _jpip_program(**overrides):
    kwargs = dict(width=64, height=48, pip_height=48, factor=4, slices=3,
                  frames=2, collect=True)
    kwargs.update(overrides)
    return make_program(build_jpip(1, **kwargs), name="jpip1")


def _fused_graph(program):
    pg = program.build_graph()
    solution = check_formats(DiagnosticBag(), program, pg)
    expectations = runtime_expectations(program, pg, solution=solution)
    return len(pg.graph), fuse_chains(pg, program, REG, expectations)


# -- compiler structure ------------------------------------------------------


def test_jpip_fuses_twenty_chains():
    """The small JPiP build collapses 45 nodes to 21: one source+decode
    pair per stream plus sliced idct+downscale / idct+blend pairs."""
    before, (pg, report) = _fused_graph(_jpip_program())
    assert (before, len(pg.graph)) == (45, 21)
    assert len(report.chains) == 20
    assert not report.dropped
    families = {"+".join(m.class_name for m in c) for c in report.chains}
    assert families == {
        "mjpeg_source+jpeg_decode",
        "idct_field+downscale_field",
        "idct_field+blend_field",
    }


def test_internal_streams_never_reach_the_store():
    _, (pg, report) = _fused_graph(_jpip_program())
    assert "bg_bits" in report.internal_streams
    assert "pip0_plane_y" in report.internal_streams
    for chain in report.chains:
        assert isinstance(chain, FusedChain)
        for name in chain.internal:
            # internal streams leave the rewritten stream tables entirely
            assert name in report.internal_streams


def test_fused_nodes_are_derived_families():
    _, (pg, report) = _fused_graph(_jpip_program())
    for family in report.derived:
        assert "+" in family
    chain_ids = {c.node_id for c in report.chains}
    fused_nodes = {
        n.node_id for n in pg.graph
        if isinstance(n.payload, FusedChain)
    }
    assert fused_nodes == chain_ids


def test_refusals_are_reported_per_stream():
    _, (pg, report) = _fused_graph(_jpip_program())
    # sliced IDCT reads the unsliced decoder output: not provable 1:1
    assert "mixed sliced/unsliced endpoints" in report.refused["bg_coeffs_y"]


def test_backend_resolution_and_fallback():
    assert resolve_backend("numpy") == "numpy"
    with pytest.raises(ValueError, match="unknown fuse backend"):
        resolve_backend("cuda")
    if not numba_available():
        assert resolve_backend("numba") == "numpy"


def test_requested_numba_recorded_even_when_absent():
    program = _jpip_program()
    pg = program.build_graph()
    solution = check_formats(DiagnosticBag(), program, pg)
    expectations = runtime_expectations(program, pg, solution=solution)
    _, report = fuse_chains(pg, program, REG, expectations, "numba")
    assert report.requested_backend == "numba"
    assert report.backend in ("numpy", "numba")
    if not numba_available():
        assert report.backend == "numpy"


# -- grouping refusals (shared chain-eligibility rules) ----------------------


def test_chains_never_cross_control_nodes():
    program = make_program(
        build_blur(reconfigurable=True, period=3, width=48, height=36,
                   slices=3, frames=2), name="blur35")
    pg = program.build_graph()
    control = {n.node_id for n in pg.graph if n.kind != "task"}
    assert control  # the manager node
    for chain in find_linear_chains(pg.graph, pg.crossdep_nodes):
        assert not set(chain) & control


def test_chains_never_include_crossdep_members():
    program = make_program(
        build_blur(5, width=48, height=36, slices=3, frames=2), name="blur5")
    pg = program.build_graph()
    assert pg.crossdep_nodes  # the vertical blur reads a halo
    for chain in find_linear_chains(pg.graph, pg.crossdep_nodes):
        assert not set(chain) & pg.crossdep_nodes


def test_chains_never_cross_option_boundaries():
    program = make_program(
        build_jpip(2, width=64, height=48, pip_height=48, factor=4,
                   slices=3, frames=2, reconfigurable=True, period=2),
        name="jpip12")
    pg = program.build_graph()
    by_id = {n.node_id: n for n in pg.graph}
    for chain in find_linear_chains(pg.graph, pg.crossdep_nodes):
        options = {by_id[m].payload.options for m in chain}
        assert len(options) == 1


# -- bit-identity: fused == unfused everywhere -------------------------------


def _spec(app):
    if app == "pip":
        return build_pip(1, width=64, height=48, factor=4, slices=2,
                         frames=2, collect=True)
    if app == "blur":
        return build_blur(5, width=48, height=36, slices=3, frames=2,
                          collect=True)
    return build_jpip(1, width=64, height=48, pip_height=48, factor=4,
                      slices=3, frames=2, collect=True)


def _collected(result, app):
    sink = result.components["sink"]
    if app == "blur":
        return sink.ordered_planes()
    return sink.ordered_frames()


def _assert_same(a, b):
    assert len(a) == len(b) and len(a) > 0
    for x, y in zip(a, b):
        if isinstance(x, np.ndarray):
            assert np.array_equal(x, y)
        else:
            assert x == y


@pytest.mark.parametrize("app", ["pip", "blur", "jpip"])
@pytest.mark.parametrize("fuse_backend", ["numpy", "numba"])
def test_threaded_fused_identical(app, fuse_backend):
    program = make_program(_spec(app), name=app)
    ref = ThreadedRuntime(program, REG, nodes=2, pipeline_depth=2,
                          max_iterations=4).run()
    fused_rt = ThreadedRuntime(program, REG, nodes=2, pipeline_depth=2,
                               max_iterations=4, fuse=True,
                               fuse_backend=fuse_backend)
    fused = fused_rt.run()
    assert fused_rt.fusion_report is not None
    _assert_same(_collected(ref, app), _collected(fused, app))


@pytest.mark.parametrize("app", ["pip", "blur", "jpip"])
@pytest.mark.parametrize("batch", [1, 4])
def test_process_fused_identical(app, batch):
    program = make_program(_spec(app), name=app)
    ref = ThreadedRuntime(program, REG, nodes=2, pipeline_depth=2,
                          max_iterations=4).run()
    fused = ProcessRuntime(program, REG, workers=2, pipeline_depth=2,
                           max_iterations=4, batch=batch, fuse=True).run()
    _assert_same(_collected(ref, app), _collected(fused, app))


def test_process_fused_numba_request_falls_back_identically():
    program = make_program(_spec("jpip"), name="jpip1")
    ref = ThreadedRuntime(program, REG, nodes=2, pipeline_depth=2,
                          max_iterations=4).run()
    rt = ProcessRuntime(program, REG, workers=2, pipeline_depth=2,
                        max_iterations=4, fuse=True, fuse_backend="numba")
    fused = rt.run()
    assert rt.fusion_report is not None
    if not numba_available():
        assert rt.fusion_report.backend == "numpy"
    _assert_same(_collected(ref, "jpip"), _collected(fused, "jpip"))


def test_fused_source_decode_skips_the_bitstream():
    """The source+decode pair kernel proves the Huffman round-trip away:
    the encoded-frame cache stays untouched while output is identical."""
    program = make_program(_spec("jpip"), name="jpip1")
    ref = ThreadedRuntime(program, REG, nodes=1, pipeline_depth=1,
                          max_iterations=3).run()
    fused = ThreadedRuntime(program, REG, nodes=1, pipeline_depth=1,
                            max_iterations=3, fuse=True).run()
    _assert_same(_collected(ref, "jpip"), _collected(fused, "jpip"))
    ref_sources = [c for c in ref.components.values()
                   if type(c).__name__ == "MjpegSource"]
    fused_sources = [c for c in fused.components.values()
                     if type(c).__name__ == "MjpegSource"]
    assert ref_sources and all(s._cache for s in ref_sources)
    assert fused_sources and all(not s._cache for s in fused_sources)
    assert all(s._zz_cache for s in fused_sources)


# -- live reconfiguration ----------------------------------------------------


def test_reconfigurable_blur_fused_matches_unfused():
    spec = build_blur(reconfigurable=True, period=3, width=48, height=36,
                      slices=3, frames=2, collect=True)
    program = make_program(spec, name="blur35")
    ref_rt = ThreadedRuntime(program, REG, nodes=1, pipeline_depth=1,
                             max_iterations=9)
    ref = ref_rt.run()
    fused_rt = ProcessRuntime(program, REG, workers=1, pipeline_depth=1,
                              max_iterations=9, fuse=True)
    fused = fused_rt.run()
    assert ref_rt.reconfig_log
    assert fused_rt.reconfig_log == ref_rt.reconfig_log
    _assert_same(ref.components["sink"].ordered_planes(),
                 fused.components["sink"].ordered_planes())


def test_reconfigurable_jpip_fused_matches_unfused():
    spec = build_jpip(2, width=64, height=48, pip_height=48, factor=4,
                      slices=3, frames=2, reconfigurable=True, period=2,
                      collect=True)
    program = make_program(spec, name="jpip12")
    ref_rt = ThreadedRuntime(program, REG, nodes=1, pipeline_depth=1,
                             max_iterations=6)
    ref = ref_rt.run()
    fused_rt = ProcessRuntime(program, REG, workers=1, pipeline_depth=1,
                              max_iterations=6, fuse=True)
    fused = fused_rt.run()
    assert ref_rt.reconfig_log
    assert fused_rt.reconfig_log == ref_rt.reconfig_log
    _assert_same(ref.components["sink"].ordered_frames(),
                 fused.components["sink"].ordered_frames())


# -- fault tolerance ---------------------------------------------------------


def test_kill_mid_fused_job_requeues_whole_job_once():
    program = _jpip_program()
    ref = ThreadedRuntime(program, REG, nodes=2, pipeline_depth=2,
                          max_iterations=4).run()
    rt = ProcessRuntime(program, REG, workers=2, pipeline_depth=2,
                        max_iterations=4, fuse=True, faults="kill:7")
    result = rt.run()
    kinds: dict[str, int] = {}
    for event in result.fault_events:
        kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
    assert kinds.get("worker_failure") == 1
    assert kinds.get("retry") == 1  # the whole fused job, exactly once
    assert rt.scheduler.retries == 1
    _assert_same(_collected(ref, "jpip"), _collected(result, "jpip"))


# -- converter auto-insertion (X504 -> X506) ---------------------------------


_CONVERT_SPEC = """<?xml version="1.0" ?>
<xspcl version="1.0">
  <procedure name="main">
    <body>
      <component name="src" class="luma_source">
        <stream port="output" ref="raw"/>
        <param name="width" value="16"/><param name="height" value="16"/>
        <param name="frames" value="2"/>
      </component>
      <component name="sink" class="plane_sink">
        <stream port="input" ref="raw"
                format="kind=plane shape=height,width dtype=float32"/>
        <param name="width" value="16"/><param name="height" value="16"/>
        <param name="collect" value="1"/>
      </component>
    </body>
  </procedure>
</xspcl>
"""


def _convert_program():
    spec = parse_string(_CONVERT_SPEC)
    return expand(spec, default_ports(), name="convert")


@pytest.mark.parametrize("runtime_cls", [ThreadedRuntime, ProcessRuntime])
def test_converter_auto_inserted_at_build(runtime_cls):
    program = _convert_program()
    kwargs = ({"nodes": 1} if runtime_cls is ThreadedRuntime
              else {"workers": 1})
    result = runtime_cls(program, REG, pipeline_depth=2, max_iterations=3,
                         **kwargs).run()
    planes = result.components["sink"].ordered_planes()
    assert len(planes) == 3
    assert all(p.dtype == np.float32 for p in planes)


def test_fusion_absorbs_the_auto_inserted_converter():
    program = _convert_program()
    ref = ThreadedRuntime(program, REG, nodes=1, pipeline_depth=2,
                          max_iterations=3).run()
    fused_rt = ThreadedRuntime(program, REG, nodes=1, pipeline_depth=2,
                               max_iterations=3, fuse=True)
    fused = fused_rt.run()
    report = fused_rt.fusion_report
    assert report is not None and report.chains
    members = {m.class_name for c in report.chains for m in c}
    assert "convert_plane" in members
    assert "raw.as_float32" in report.internal_streams
    _assert_same(ref.components["sink"].ordered_planes(),
                 fused.components["sink"].ordered_planes())


# -- lease-pickle string interning -------------------------------------------


def test_interner_round_trips_arbitrary_messages():
    interner = NameInterner(["alpha", "beta", "gamma"])
    msg = ("lease", [("alpha", 3, ("beta", "delta")), {"gamma": None}], 7)
    assert interner.loads(interner.dumps(msg)) == msg


def test_interner_code_zero_and_unknown_strings():
    interner = NameInterner(["aa", "bb"])
    # "aa" interns to code 0 — falsy, must still intern
    data = interner.dumps(["aa", "zz", "bb"])
    assert interner.loads(data) == ["aa", "zz", "bb"]
    assert b"aa" not in data
    assert b"zz" in data


def test_interned_lease_smaller_than_plain_pickle():
    names = [f"pip0_idct_y/idct[{i}]+scale0_y[{i}]" for i in range(8)]
    interner = NameInterner(names)
    lease = ("lease", [(n, i, 2) for i, n in enumerate(names)], 3)
    assert len(interner.dumps(lease)) < len(pickle.dumps(lease, protocol=5))
    assert interner.loads(interner.dumps(lease)) == lease


def test_interner_table_derivation_covers_fused_payloads():
    program = _jpip_program()
    _, (pg, report) = _fused_graph(program)
    names = set(NameInterner.names_of(pg))
    for chain in report.chains:
        assert chain.node_id in names
        for member in chain:
            assert member.instance_id in names


def test_fused_process_run_shrinks_meta_bytes():
    program = _jpip_program()
    plain = ProcessRuntime(program, REG, workers=2, pipeline_depth=2,
                           max_iterations=4).run()
    fused = ProcessRuntime(program, REG, workers=2, pipeline_depth=2,
                           max_iterations=4, fuse=True).run()
    assert 0 < fused.pool_stats["meta_pickled_bytes"] < (
        plain.pool_stats["meta_pickled_bytes"]
    )


# -- profitability guard (sliced pairs under parallel headroom) --------------


def _fused_with_headroom(program, headroom, registry=REG):
    pg = program.build_graph()
    solution = check_formats(DiagnosticBag(), program, pg)
    expectations = runtime_expectations(program, pg, solution=solution)
    return fuse_chains(pg, program, registry, expectations,
                       parallel_headroom=headroom)


def test_sliced_pairs_fuse_only_without_spare_parallel_headroom():
    """Welding slice pairs into one job forfeits cross-iteration overlap,
    so it only pays when there are no spare workers to overlap on."""
    program = _jpip_program()  # sliced stages are 3 copies wide
    for headroom in (None, 1, 3):
        _, report = _fused_with_headroom(program, headroom)
        assert len(report.chains) == 20
        assert not any(
            "unprofitable" in r for r in report.refused.values()
        )
    _, report = _fused_with_headroom(program, 8)
    families = {"+".join(m.class_name for m in c) for c in report.chains}
    # unsliced 1:1 chains always fuse — they have no overlap to forfeit
    assert families == {"mjpeg_source+jpeg_decode"}
    unprofitable = {
        name for name, reason in report.refused.items()
        if "unprofitable" in reason
    }
    assert unprofitable == {
        "bg_plane_y", "bg_plane_u", "bg_plane_v",
        "pip0_plane_y", "pip0_plane_u", "pip0_plane_v",
        "small0_y", "small0_u", "small0_v",
    }


def test_peephole_pairs_are_exempt_from_the_guard():
    """A pair with a real combined kernel elides work outright — that
    beats pipeline overlap, so the guard must not refuse it."""
    program = _jpip_program()
    registry = dict(REG)

    class PeepholeDownscale(registry["downscale_field"]):
        @classmethod
        def compile_fused_pair(cls, upstream_cls, upstream, instance,
                               backend):
            return None  # no kernel yet; the override marks the intent

    registry["downscale_field"] = PeepholeDownscale
    _, report = _fused_with_headroom(program, 8, registry)
    families = {"+".join(m.class_name for m in c) for c in report.chains}
    assert "idct_field+downscale_field" in families
    assert "idct_field+blend_field" not in families
    unprofitable = {
        name for name, reason in report.refused.items()
        if "unprofitable" in reason
    }
    assert unprofitable == {
        "bg_plane_y", "bg_plane_u", "bg_plane_v",
        "small0_y", "small0_u", "small0_v",
    }


def test_blur_n4_never_fuses_with_or_without_headroom():
    """Pin: Blur's stencil stages live in crossdep regions (halo
    exchange), so --fuse welds nothing there no matter the headroom —
    there is no unprofitable fusion for the guard to even refuse."""
    program = make_program(
        build_blur(5, width=48, height=36, slices=4, frames=2,
                   collect=True),
        name="blur5",
    )
    for headroom in (None, 1, 4, 8):
        _, report = _fused_with_headroom(program, headroom)
        assert len(report.chains) == 0
        assert not any(
            "unprofitable" in r for r in report.refused.values()
        )
