"""Tests for the adversarial scenario fuzzer (`repro.fuzz`).

Covers generator determinism and JSON round-tripping, the lint/build
oracle over every deliberate mutation, shrinker invariants (monotone
simplification, failure-kind preservation), campaign artifact handling,
the `fuzz` CLI entry point, and the committed shrunk regression case
that originally exposed the discarded-diagnostics format bug.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.diagnostics import DiagnosticBag, Severity
from repro.analysis.engine import lint_spec
from repro.cli import main
from repro.components.registry import default_ports, default_registry
from repro.core.expander import expand
from repro.errors import StreamFormatError
from repro.fuzz import (
    CaseFailure,
    build_spec,
    check_case,
    generate_case,
    run_campaign,
    shrink_case,
)
from repro.fuzz.campaign import replay_file, save_failure
from repro.fuzz.generator import MUTATIONS, FuzzCase, case_from_dict

FIXTURE = Path(__file__).with_name("case-4242.json")


def _static_case(**overrides) -> FuzzCase:
    base = dict(
        seed=9000,
        palette="video",
        width=16,
        height=12,
        iterations=2,
        stages=[],
        reconfig=None,
        faults=[],
        knobs={"workers": 1, "batch": 1, "depth": 1,
               "fuse": False, "autotune": False},
        mutation=None,
    )
    base.update(overrides)
    return FuzzCase(**base)


# -- generator ---------------------------------------------------------------


def test_generator_is_deterministic_per_seed():
    for seed in range(25):
        assert generate_case(seed).to_json() == generate_case(seed).to_json()


def test_generator_varies_across_seeds():
    shapes = {generate_case(seed).to_json() for seed in range(25)}
    assert len(shapes) > 20  # near-unique; collisions would gut coverage


def test_case_json_round_trip():
    for seed in (0, 7, 42, 4242):
        case = generate_case(seed)
        assert case_from_dict(json.loads(case.to_json())) == case


def test_generated_cases_always_build():
    # the generator must only emit buildable ASTs, mutants included
    for seed in range(40):
        build_spec(generate_case(seed))


def test_max_nodes_bounds_stage_cost():
    for seed in range(40):
        case = generate_case(seed, max_nodes=6)
        cost = sum(s["slices"] * (2 if s["kind"] == "blur" else 1)
                   for s in case.stages)
        assert cost <= 6 - 2


# -- oracles -----------------------------------------------------------------


@pytest.mark.parametrize("mutation", MUTATIONS)
def test_every_mutation_is_lint_visible_and_build_rejected(mutation):
    # agreement: lint flags the corruption AND the build refuses it,
    # so check_case reports no failure
    case = _static_case(mutation=mutation)
    assert check_case(case) is None


def test_clean_static_case_passes_all_oracles():
    assert check_case(_static_case()) is None


def test_regression_case_4242_replays_clean():
    """The committed shrunk case: X501 must be a *build* error too.

    Before `solve_formats_or_raise`, the runtimes dropped the format
    solver's diagnostic bag, so this lint-rejected spec ran anyway
    (a 13-row sink silently consuming 12-row planes).
    """
    case, failure = replay_file(FIXTURE)
    assert failure is None, f"regression resurfaced: {failure}"

    # pin both halves of the agreement explicitly
    registry = default_registry()
    ports = default_ports(registry)
    spec = build_spec(case)
    codes = {d.code for d in lint_spec(spec, ports=ports)
             if d.severity is Severity.ERROR}
    assert "X501" in codes

    from repro.hinch import ThreadedRuntime

    program = expand(spec, ports)
    with pytest.raises(StreamFormatError, match="X501"):
        ThreadedRuntime(program, registry, nodes=1, pipeline_depth=1,
                        max_iterations=case.iterations)


# -- shrinker ----------------------------------------------------------------


def _loaded_case() -> FuzzCase:
    return _static_case(
        iterations=6,
        stages=[{"kind": "convert", "slices": 3},
                {"kind": "blur", "slices": 2},
                {"kind": "convert", "slices": 1}],
        reconfig={"stage": 1, "toggles": 2},
        faults=["kill:2", "slow:3:10"],
        knobs={"workers": 3, "batch": 2, "depth": 4,
               "fuse": True, "autotune": False},
    )


def test_shrinker_strips_everything_irrelevant():
    # synthetic oracle: fails whenever at least one stage remains
    def check(case):
        if case.stages:
            return CaseFailure("synthetic", f"{len(case.stages)} stage(s)")
        return None

    case = _loaded_case()
    shrunk, failure = shrink_case(case, check(case), check)
    assert failure.kind == "synthetic"
    assert len(shrunk.stages) == 1
    assert shrunk.reconfig is None
    assert shrunk.faults == []
    assert shrunk.iterations == 2
    assert shrunk.knobs["fuse"] is False
    assert shrunk.knobs["workers"] == 1


def test_shrinker_never_trades_failure_kinds():
    # two-stage cases fail one way, one-stage cases a *different* way;
    # shrinking the former must stop before crossing into the latter
    def check(case):
        if len(case.stages) >= 2:
            return CaseFailure("deep", "two or more stages")
        if len(case.stages) == 1:
            return CaseFailure("shallow", "exactly one stage")
        return None

    case = _loaded_case()
    shrunk, failure = shrink_case(case, check(case), check)
    assert failure.kind == "deep"
    assert len(shrunk.stages) == 2


def test_shrinker_respects_evaluation_budget():
    calls = 0

    def check(case):
        nonlocal calls
        calls += 1
        return CaseFailure("stuck", "always fails, never simplifiable")

    # every proposal "fails the same way", so the loop would restart
    # forever without the budget
    from repro.fuzz import shrink

    case = _loaded_case()
    shrink_case(case, check(case), check)
    assert calls <= shrink.MAX_EVALS


# -- campaign ----------------------------------------------------------------


def test_campaign_persists_shrunk_failures_with_replay_line(
    tmp_path, monkeypatch
):
    def fake_check(case):
        if case.stages:
            return CaseFailure("synthetic", "stage present")
        return None

    monkeypatch.setattr("repro.fuzz.campaign.check_case", fake_check)
    # seeds chosen so at least one generated case has stages
    report = run_campaign(seed=0, cases=6, out_dir=tmp_path)
    assert not report.ok
    assert report.cases == 6
    assert report.passed + len(report.failures) == 6
    for case, failure, path in report.failures:
        assert failure.kind == "synthetic"
        assert len(case.stages) == 1  # shrunk
        payload = json.loads(Path(path).read_text())
        assert payload["_failure"]["kind"] == "synthetic"
        assert "--replay" in payload["_replay"]


def test_save_failure_replay_round_trip(tmp_path):
    case = _static_case()
    path = save_failure(case, CaseFailure("demo", "detail"), tmp_path)
    replayed, failure = replay_file(path)
    assert replayed == case  # metadata keys stripped before replay
    assert failure is None


def test_campaign_runs_one_real_case(tmp_path):
    report = run_campaign(seed=0, cases=1, out_dir=tmp_path)
    assert report.ok
    assert report.passed == 1


# -- CLI ---------------------------------------------------------------------


@pytest.mark.parametrize(
    "argv",
    [
        ["fuzz", "--cases", "0"],
        ["fuzz", "--max-nodes", "1"],
    ],
)
def test_fuzz_cli_rejects_degenerate_arguments(argv, capsys):
    assert main(argv) == 2
    assert "usage error:" in capsys.readouterr().err


def test_fuzz_cli_replays_fixture(capsys):
    assert main(["fuzz", "--replay", str(FIXTURE)]) == 0
    assert "PASS" in capsys.readouterr().out


def test_fuzz_cli_reports_failures(tmp_path, monkeypatch, capsys):
    def fake_check(case):
        return CaseFailure("synthetic", "forced")

    monkeypatch.setattr("repro.fuzz.campaign.check_case", fake_check)
    assert main(["fuzz", "--seed", "0", "--cases", "2", "--no-shrink",
                 "--out", str(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert "synthetic" in err
    assert "--replay" in err
