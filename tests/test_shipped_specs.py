"""The XSPCL files shipped in examples/specs/ stay valid and faithful."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.components.registry import default_ports
from repro.core import expand, parse_file, spec_to_xml, parse_string, validate

SPECS_DIR = Path(__file__).resolve().parent.parent / "examples" / "specs"
SPEC_FILES = sorted(SPECS_DIR.glob("*.xml"))


def test_specs_are_shipped():
    names = {p.stem for p in SPEC_FILES}
    assert {"pip1", "pip12", "jpip1", "blur3", "blur35"} <= names


@pytest.mark.parametrize("path", SPEC_FILES, ids=lambda p: p.stem)
def test_spec_validates_and_expands(path):
    spec = parse_file(path)
    validate(spec, registry=default_ports())
    program = expand(spec, default_ports(), name=path.stem)
    pg = program.build_graph()
    assert len(pg.graph) > 0
    assert pg.graph.is_acyclic()


@pytest.mark.parametrize("path", SPEC_FILES, ids=lambda p: p.stem)
def test_spec_roundtrips(path):
    spec = parse_file(path)
    assert parse_string(spec_to_xml(spec)) == spec


def test_shipped_specs_match_builders():
    """Regeneratable: shipped XML equals the current app builders' output."""
    from repro.apps import build_blur, build_jpip, build_pip

    builders = {
        "pip1": lambda: build_pip(1),
        "pip12": lambda: build_pip(2, reconfigurable=True),
        "jpip1": lambda: build_jpip(1),
        "blur3": lambda: build_blur(3),
        "blur35": lambda: build_blur(reconfigurable=True),
    }
    for name, builder in builders.items():
        shipped = parse_file(SPECS_DIR / f"{name}.xml")
        assert shipped == builder(), (
            f"{name}.xml is stale; regenerate with "
            f"`python -m repro apps {name} -o examples/specs/{name}.xml`"
        )
