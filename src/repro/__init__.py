"""repro — XSPCL, Hinch, and SpaceCAKE: an ICPP 2007 reproduction.

A component-based coordination language for efficient reconfigurable
streaming applications (Nijhuis, Bos, Bal), reproduced as a Python
library:

* :mod:`repro.core` — the XSPCL language: parse/validate/expand/build;
* :mod:`repro.hinch` — the runtime: streams, events, dataflow scheduling,
  reconfiguration, threaded execution;
* :mod:`repro.spacecake` — the MPSoC machine model and virtual-time
  simulation backend;
* :mod:`repro.prediction` — SPC analytic performance prediction, WCET,
  deadlines;
* :mod:`repro.components` — the component library (video, filters,
  mini-JPEG, skeletons) and registry;
* :mod:`repro.apps` — the paper's applications and baselines;
* :mod:`repro.bench` — the experiment harness regenerating the paper's
  figures.

Typical entry points::

    from repro import AppBuilder, ThreadedRuntime, SimRuntime, expand
    from repro.components.registry import default_ports, default_registry
"""

from repro.core import AppBuilder, expand, parse_file, parse_string, validate
from repro.hinch import ThreadedRuntime
from repro.spacecake import SimRuntime

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AppBuilder",
    "expand",
    "parse_file",
    "parse_string",
    "validate",
    "ThreadedRuntime",
    "SimRuntime",
]
