"""Worst-case execution time estimation (paper §6, future work).

"An XSPCL specification could be used to estimate the worst case
execution time by recursively traversing the component graph."  Two
bounds per iteration:

* :func:`wcet_sequential` — every leaf serialized (holds on any number
  of processors, including 1);
* :func:`wcet_span` — the critical path (the floor no machine can beat).

Any actual execution of one iteration lies between the two; the tests
assert the simulator respects both.
"""

from __future__ import annotations

from repro.graph.spc import Leaf, Parallel, Series, SPNode
from repro.prediction.pamela import LeafCostFn

__all__ = ["wcet_sequential", "wcet_span", "wcet_parallel"]


def wcet_sequential(tree: SPNode, leaf_cost: LeafCostFn) -> float:
    """Upper bound: total work, as if run on a single processor."""
    return sum(leaf_cost(leaf) for leaf in tree.leaves())


def wcet_span(tree: SPNode, leaf_cost: LeafCostFn) -> float:
    """Lower bound: the critical path through the SP tree."""

    def evaluate(node: SPNode) -> float:
        if isinstance(node, Leaf):
            return leaf_cost(node)
        if isinstance(node, Series):
            return sum(evaluate(c) for c in node.children)
        assert isinstance(node, Parallel)
        return max(evaluate(c) for c in node.children)

    return evaluate(tree)


def wcet_parallel(tree: SPNode, leaf_cost: LeafCostFn, nodes: int) -> float:
    """Brent bound for ``nodes`` processors: max(span, work/nodes).

    Any greedy schedule of the SP tree on ``nodes`` identical processors
    finishes within span + work/nodes, and no schedule beats either term
    alone — so this is the standard two-sided estimate the auto-tuner
    seeds its worker-count search from.
    """
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    return max(
        wcet_span(tree, leaf_cost),
        wcet_sequential(tree, leaf_cost) / nodes,
    )
