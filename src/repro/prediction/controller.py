"""Cost-model seed for the elastic auto-tuner (ROADMAP item 3).

The online controller in :mod:`repro.hinch.autotune` corrects itself
from *measured* occupancy, but its first decision happens before any
measurement exists.  This module supplies that starting point: evaluate
the analytic cost model (the same PAM-SoC-style evaluation
:func:`repro.prediction.check_deadline` uses) across candidate worker
counts and recommend the smallest count whose predicted steady-state
initiation interval is within ``tolerance`` of the best achievable —
adding workers past that point buys nothing the model can see, so the
runtime should have to *measure* a reason before paying for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.program import Program
from repro.errors import PredictionError
from repro.prediction.deadline import check_deadline

__all__ = ["SeedPlan", "seed_plan"]


@dataclass(frozen=True)
class SeedPlan:
    """Cost-model recommendation used to seed the online controller."""

    #: smallest worker count within ``tolerance`` of the best predicted II
    workers: int
    #: predicted initiation interval (cycles/frame) at ``workers``
    initiation_interval: float
    #: predicted II per candidate count, ``{n: cycles}`` for 1..max
    intervals: dict[int, float]
    tolerance: float

    def predicted_speedup(self, n: int) -> float:
        """Predicted throughput of ``n`` workers relative to one."""
        base = self.intervals.get(1)
        cur = self.intervals.get(n)
        if not base or not cur:
            return 1.0
        return base / cur


def seed_plan(
    program: Program,
    registry: Mapping[str, type],
    *,
    max_workers: int,
    pipeline_depth: int = 5,
    option_states: Mapping[str, bool] | None = None,
    tolerance: float = 0.10,
) -> SeedPlan:
    """Evaluate 1..max_workers analytically and pick the knee.

    The predicted II is monotone non-increasing in workers (work/P
    shrinks, span is fixed), so the "knee" is the first count within
    ``tolerance`` of the II at ``max_workers``.
    """
    if max_workers < 1:
        raise PredictionError(
            f"max_workers must be >= 1, got {max_workers}"
        )
    intervals: dict[int, float] = {}
    for n in range(1, max_workers + 1):
        report = check_deadline(
            program,
            registry,
            nodes=n,
            frame_budget_cycles=1.0,
            pipeline_depth=pipeline_depth,
            option_states=option_states,
        )
        intervals[n] = report.initiation_interval
    best = intervals[max_workers]
    chosen = max_workers
    for n in sorted(intervals):
        if intervals[n] <= best * (1.0 + tolerance):
            chosen = n
            break
    return SeedPlan(
        workers=chosen,
        initiation_interval=intervals[chosen],
        intervals=intervals,
        tolerance=tolerance,
    )
