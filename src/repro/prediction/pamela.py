"""PAMELA/SPC-style analytic performance prediction.

The SPC model evaluates a series-parallel composition tree recursively:

* a leaf costs its job's cycles (compute + runtime overhead + memory
  traffic at an assumed blended rate);
* series composition adds;
* parallel composition on ``P`` processors is bounded below by both the
  critical path (longest child) and the aggregated work divided by ``P``
  — van Gemund's contention term.  We predict with that lower bound,
  which for the paper's wide, regular parallel sections is tight.

Whole-run prediction adds the software-pipeline model: with iteration
span ``S``, per-iteration work ``W``, ``P`` processors, pipeline depth
``D`` and heaviest single job ``L``, iterations initiate every
``II = max(W/P, S/D, L)`` cycles and the run takes ``S + (iters-1)*II``.
The ``L`` term is the stateful-component bound: a component must finish
iteration *k* before starting *k+1*, so one heavyweight serial stage
(JPiP's entropy decoder) caps throughput no matter how many cores exist.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.program import ComponentInstance, Program
from repro.errors import PredictionError
from repro.graph.spc import Leaf, Parallel, Series, SPNode
from repro.spacecake.costmodel import CostModel, CostParams

__all__ = [
    "LeafCostFn",
    "cost_model_leaf_fn",
    "predict_iteration",
    "predict_run",
]

#: maps an SP leaf to its cost in cycles
LeafCostFn = Callable[[Leaf], float]

#: default blended memory rate for predicted traffic (between the L2 and
#: DRAM per-byte rates of the cache model — prediction has no cache state;
#: calibrated against the simulator in tests/prediction)
DEFAULT_MEM_CYCLES_PER_BYTE = 0.65


def cost_model_leaf_fn(
    cost_model: CostModel,
    *,
    nodes: int,
    mem_cycles_per_byte: float = DEFAULT_MEM_CYCLES_PER_BYTE,
) -> LeafCostFn:
    """Leaf costs from the SpaceCAKE cost model.

    Leaves carrying a :class:`ComponentInstance` payload get their job
    cost; synthetic leaves (manager enter/exit) get the manager invoke
    cost; barriers are free.
    """

    def fn(leaf: Leaf) -> float:
        instance = leaf.payload
        if isinstance(instance, ComponentInstance):
            cost = cost_model.job_cost(instance)
            traffic = sum(t.nbytes for t in cost.traffic)
            return (
                cost.compute_cycles
                + cost_model.overhead_cycles(nodes=nodes)
                + traffic * mem_cycles_per_byte
            )
        if leaf.label.endswith((".enter", ".exit")):
            return cost_model.params.manager_invoke_cycles
        return leaf.weight

    return fn


def predict_iteration(tree: SPNode, nodes: int, leaf_cost: LeafCostFn) -> float:
    """Predicted cycles for one iteration of the SP tree on ``nodes``."""
    if nodes < 1:
        raise PredictionError(f"nodes must be >= 1, got {nodes}")

    def total_work(node: SPNode) -> float:
        if isinstance(node, Leaf):
            return leaf_cost(node)
        return sum(total_work(c) for c in node.children)  # type: ignore[attr-defined]

    def evaluate(node: SPNode) -> float:
        if isinstance(node, Leaf):
            return leaf_cost(node)
        if isinstance(node, Series):
            return sum(evaluate(c) for c in node.children)
        assert isinstance(node, Parallel)
        span = max(evaluate(c) for c in node.children)
        work = sum(total_work(c) for c in node.children)
        return max(span, work / nodes)

    return evaluate(tree)


def predict_run(
    program: Program,
    registry: Mapping[str, type],
    *,
    nodes: int,
    iterations: int,
    pipeline_depth: int = 5,
    cost_params: CostParams | None = None,
    option_states: Mapping[str, bool] | None = None,
    mem_cycles_per_byte: float = DEFAULT_MEM_CYCLES_PER_BYTE,
) -> float:
    """Predicted cycles for a whole run (pipeline model, see module doc).

    ``registry`` maps class names to Component implementations so their
    cost profiles can be consulted (same registry the simulator uses).
    """
    if iterations < 1:
        raise PredictionError(f"iterations must be >= 1, got {iterations}")
    tree = program.to_sp_tree(option_states)
    cost_model = CostModel(registry, cost_params)
    leaf_cost = cost_model_leaf_fn(
        cost_model, nodes=nodes, mem_cycles_per_byte=mem_cycles_per_byte
    )
    span = predict_iteration(tree, nodes, leaf_cost)
    work = sum(leaf_cost(leaf) for leaf in tree.leaves())
    heaviest = max(leaf_cost(leaf) for leaf in tree.leaves())
    initiation = max(work / nodes, span / pipeline_depth, heaviest)
    return span + (iterations - 1) * initiation
