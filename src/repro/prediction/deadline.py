"""Deadline analysis for real-time streaming (paper §6, future work).

"Currently, XSPCL does not provide the means to express deadlines in
real-time systems.  However, an XSPCL specification could be used to
estimate the worst case execution time by recursively traversing the
component graph."

This module closes that loop: given a per-frame cycle budget (the
deadline of a periodic streaming application, e.g. cycles-per-frame at
25 fps on a 200 MHz tile = 8 Mcycles), it checks whether a configuration
sustains the required throughput and latency, and searches for the
smallest node count that does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.program import Program
from repro.errors import PredictionError
from repro.prediction.pamela import (
    DEFAULT_MEM_CYCLES_PER_BYTE,
    cost_model_leaf_fn,
    predict_iteration,
)
from repro.prediction.estimate import wcet_sequential, wcet_span
from repro.spacecake.costmodel import CostModel, CostParams

__all__ = ["DeadlineReport", "check_deadline", "min_nodes_for_deadline"]


@dataclass(frozen=True)
class DeadlineReport:
    """Throughput/latency verdict for one (program, nodes, budget)."""

    nodes: int
    frame_budget_cycles: float
    #: steady-state initiation interval: one frame leaves every II cycles
    initiation_interval: float
    #: per-iteration span (latency from frame in to frame out)
    iteration_span: float
    #: serialized worst case (upper bound at any node count)
    wcet: float
    pipeline_depth: int

    @property
    def meets_throughput(self) -> bool:
        return self.initiation_interval <= self.frame_budget_cycles

    @property
    def latency_frames(self) -> float:
        """Pipeline latency expressed in frame periods."""
        return self.iteration_span / self.frame_budget_cycles

    @property
    def headroom(self) -> float:
        """Fraction of the budget left per frame (negative = miss)."""
        return 1.0 - self.initiation_interval / self.frame_budget_cycles


def check_deadline(
    program: Program,
    registry: Mapping[str, type],
    *,
    nodes: int,
    frame_budget_cycles: float,
    pipeline_depth: int = 5,
    cost_params: CostParams | None = None,
    option_states: Mapping[str, bool] | None = None,
    mem_cycles_per_byte: float = DEFAULT_MEM_CYCLES_PER_BYTE,
) -> DeadlineReport:
    """Analyse whether the configuration sustains one frame per budget."""
    if frame_budget_cycles <= 0:
        raise PredictionError(
            f"frame budget must be > 0, got {frame_budget_cycles}"
        )
    tree = program.to_sp_tree(option_states)
    cost_model = CostModel(registry, cost_params)
    leaf_cost = cost_model_leaf_fn(
        cost_model, nodes=nodes, mem_cycles_per_byte=mem_cycles_per_byte
    )
    span = predict_iteration(tree, nodes, leaf_cost)
    work = wcet_sequential(tree, leaf_cost)
    heaviest = max(leaf_cost(leaf) for leaf in tree.leaves())
    initiation = max(work / nodes, span / pipeline_depth, heaviest)
    return DeadlineReport(
        nodes=nodes,
        frame_budget_cycles=frame_budget_cycles,
        initiation_interval=initiation,
        iteration_span=span,
        wcet=work,
        pipeline_depth=pipeline_depth,
    )


def min_nodes_for_deadline(
    program: Program,
    registry: Mapping[str, type],
    *,
    frame_budget_cycles: float,
    max_nodes: int = 9,
    pipeline_depth: int = 5,
    cost_params: CostParams | None = None,
    option_states: Mapping[str, bool] | None = None,
) -> DeadlineReport | None:
    """Smallest node count (<= max_nodes) meeting the budget, or None.

    Monotone in nodes (work/P shrinks, span never grows), so a linear
    scan from 1 suffices; the tile caps at 9 cores anyway.
    """
    for nodes in range(1, max_nodes + 1):
        report = check_deadline(
            program,
            registry,
            nodes=nodes,
            frame_budget_cycles=frame_budget_cycles,
            pipeline_depth=pipeline_depth,
            cost_params=cost_params,
            option_states=option_states,
        )
        if report.meets_throughput:
            return report
    return None
