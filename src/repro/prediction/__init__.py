"""Performance prediction on the SPC model (paper §2 item 1, Fig. 1).

"SPC allows efficient performance prediction ...  Performance prediction
can be used to verify that the application meets its deadlines.
Moreover, it can be used to tune application parameters."  The paper's
companion tool is PAM-SoC (Varbanescu et al.); this package implements
the same idea: evaluate the SP composition tree analytically against a
machine description, without simulating.

* :mod:`repro.prediction.pamela` — contention-aware recursive evaluation
  of one iteration (series = sum; parallel on P processors =
  max(critical path, work/P)), plus a pipeline model for whole runs;
* :mod:`repro.prediction.estimate` — the worst-case execution time
  estimator sketched in the paper's future work ("an XSPCL specification
  could be used to estimate the worst case execution time by recursively
  traversing the component graph").
"""

from repro.prediction.pamela import (
    LeafCostFn,
    cost_model_leaf_fn,
    predict_iteration,
    predict_run,
)
from repro.prediction.estimate import (
    wcet_parallel,
    wcet_sequential,
    wcet_span,
)
from repro.prediction.deadline import (
    DeadlineReport,
    check_deadline,
    min_nodes_for_deadline,
)
from repro.prediction.controller import SeedPlan, seed_plan

__all__ = [
    "LeafCostFn",
    "cost_model_leaf_fn",
    "predict_iteration",
    "predict_run",
    "wcet_parallel",
    "wcet_sequential",
    "wcet_span",
    "DeadlineReport",
    "check_deadline",
    "min_nodes_for_deadline",
    "SeedPlan",
    "seed_plan",
]
