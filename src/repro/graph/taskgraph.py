"""Flat task graphs: the DAG one application iteration executes.

The XSPCL expander lowers an SP composition tree (:mod:`repro.graph.spc`)
into a :class:`TaskGraph`, adding the sparse cross-dependency edges of
``shape="crossdep"`` regions where needed.  The Hinch scheduler executes
one instance of this DAG per application iteration (with pipeline
parallelism *across* instances).

A :class:`TaskNode` carries:

``kind``
    ``"task"`` for a component execution, ``"barrier"`` for a
    synchronization point inserted by SP-ization, ``"manager_enter"`` /
    ``"manager_exit"`` for the pseudo-nodes bracketing a managed
    (reconfigurable) subgraph.
``payload``
    Opaque handle, usually a component-instance descriptor.
``weight``
    Nominal cost used by prediction and by unit tests; the simulator uses
    the cost model instead.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.errors import GraphError
from repro.graph.spc import Leaf, Parallel, Series, SPNode

__all__ = ["TaskNode", "TaskGraph"]

_KINDS = ("task", "barrier", "manager_enter", "manager_exit")


class TaskNode:
    """One node of a flat task graph."""

    __slots__ = ("node_id", "label", "kind", "payload", "weight")

    def __init__(
        self,
        node_id: str,
        *,
        label: str | None = None,
        kind: str = "task",
        payload: Any = None,
        weight: float = 1.0,
    ) -> None:
        if kind not in _KINDS:
            raise GraphError(f"unknown node kind {kind!r}; expected one of {_KINDS}")
        if weight < 0:
            raise GraphError(f"node weight must be >= 0, got {weight}")
        self.node_id = node_id
        self.label = label if label is not None else node_id
        self.kind = kind
        self.payload = payload
        self.weight = float(weight)

    @property
    def is_synthetic(self) -> bool:
        """True for barrier/manager pseudo-nodes that carry no user work."""
        return self.kind != "task"

    def __repr__(self) -> str:
        return f"TaskNode({self.node_id!r}, kind={self.kind!r})"


class TaskGraph:
    """A directed acyclic graph of :class:`TaskNode` objects.

    Mutating operations maintain predecessor/successor indices; acyclicity
    is enforced lazily by :meth:`topological_order` (checking on every
    ``add_edge`` would make graph construction quadratic).
    """

    def __init__(self) -> None:
        self._nodes: dict[str, TaskNode] = {}
        self._succ: dict[str, list[str]] = {}
        self._pred: dict[str, list[str]] = {}
        self._edge_set: set[tuple[str, str]] = set()

    # -- construction ------------------------------------------------------

    def add_node(
        self,
        node_id: str,
        *,
        label: str | None = None,
        kind: str = "task",
        payload: Any = None,
        weight: float = 1.0,
    ) -> TaskNode:
        if node_id in self._nodes:
            raise GraphError(f"duplicate node id {node_id!r}")
        node = TaskNode(
            node_id, label=label, kind=kind, payload=payload, weight=weight
        )
        self._nodes[node_id] = node
        self._succ[node_id] = []
        self._pred[node_id] = []
        return node

    def add_edge(self, src: str, dst: str) -> None:
        if src not in self._nodes:
            raise GraphError(f"unknown edge source {src!r}")
        if dst not in self._nodes:
            raise GraphError(f"unknown edge target {dst!r}")
        if src == dst:
            raise GraphError(f"self-loop on {src!r}")
        if (src, dst) in self._edge_set:
            return  # idempotent: series over shared layers may repeat edges
        self._edge_set.add((src, dst))
        self._succ[src].append(dst)
        self._pred[dst].append(src)

    def remove_node(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise GraphError(f"unknown node {node_id!r}")
        for p in self._pred[node_id]:
            self._succ[p].remove(node_id)
            self._edge_set.discard((p, node_id))
        for s in self._succ[node_id]:
            self._pred[s].remove(node_id)
            self._edge_set.discard((node_id, s))
        del self._nodes[node_id]
        del self._succ[node_id]
        del self._pred[node_id]

    # -- queries -----------------------------------------------------------

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[TaskNode]:
        return iter(self._nodes.values())

    def node(self, node_id: str) -> TaskNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    @property
    def node_ids(self) -> list[str]:
        return list(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edge_set)

    def has_edge(self, src: str, dst: str) -> bool:
        return (src, dst) in self._edge_set

    def edges(self) -> Iterator[tuple[str, str]]:
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield (src, dst)

    def successors(self, node_id: str) -> list[str]:
        try:
            return list(self._succ[node_id])
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    def predecessors(self, node_id: str) -> list[str]:
        try:
            return list(self._pred[node_id])
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    def in_degree(self, node_id: str) -> int:
        return len(self._pred[node_id])

    def out_degree(self, node_id: str) -> int:
        return len(self._succ[node_id])

    def sources(self) -> list[str]:
        """Nodes with no predecessors, in insertion order."""
        return [n for n in self._nodes if not self._pred[n]]

    def sinks(self) -> list[str]:
        """Nodes with no successors, in insertion order."""
        return [n for n in self._nodes if not self._succ[n]]

    def topological_order(self) -> list[str]:
        """Kahn's algorithm; raises :class:`GraphError` on a cycle."""
        indeg = {n: len(self._pred[n]) for n in self._nodes}
        frontier = [n for n, d in indeg.items() if d == 0]
        order: list[str] = []
        while frontier:
            node = frontier.pop()
            order.append(node)
            for succ in self._succ[node]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    frontier.append(succ)
        if len(order) != len(self._nodes):
            stuck = sorted(n for n, d in indeg.items() if d > 0)
            raise GraphError(f"task graph contains a cycle through {stuck[:5]}")
        return order

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
            return True
        except GraphError:
            return False

    def ancestors(self, node_id: str) -> set[str]:
        """All transitive predecessors of ``node_id`` (excluding itself)."""
        seen: set[str] = set()
        stack = list(self.predecessors(node_id))
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self._pred[cur])
        return seen

    def descendants(self, node_id: str) -> set[str]:
        """All transitive successors of ``node_id`` (excluding itself)."""
        seen: set[str] = set()
        stack = list(self.successors(node_id))
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self._succ[cur])
        return seen

    def copy(self) -> "TaskGraph":
        dup = TaskGraph()
        for node in self:
            dup.add_node(
                node.node_id,
                label=node.label,
                kind=node.kind,
                payload=node.payload,
                weight=node.weight,
            )
        for src, dst in self.edges():
            dup.add_edge(src, dst)
        return dup

    def subgraph(self, keep: Iterable[str]) -> "TaskGraph":
        """Induced subgraph over ``keep`` (edges between kept nodes only)."""
        keep_set = set(keep)
        unknown = keep_set - set(self._nodes)
        if unknown:
            raise GraphError(f"unknown nodes in subgraph request: {sorted(unknown)[:5]}")
        sub = TaskGraph()
        for node_id in self._nodes:  # preserve insertion order
            if node_id in keep_set:
                node = self._nodes[node_id]
                sub.add_node(
                    node.node_id,
                    label=node.label,
                    kind=node.kind,
                    payload=node.payload,
                    weight=node.weight,
                )
        for src, dst in self.edges():
            if src in keep_set and dst in keep_set:
                sub.add_edge(src, dst)
        return sub

    # -- SP lowering ---------------------------------------------------------

    @classmethod
    def from_sp(cls, tree: SPNode, *, id_prefix: str = "") -> "TaskGraph":
        """Lower an SP composition tree to a flat DAG.

        Series composition connects the sinks of the left subgraph to the
        sources of the right subgraph; parallel composition is a disjoint
        union.  When both sides of a series junction are plural, a
        zero-weight *barrier* node is inserted instead of a full bipartite
        edge set — this is the paper's "synchronization point between each
        operation" (e.g. all Downscale and IDCT components finish before
        any Blend runs), it keeps the lowered graph two-terminal
        series-parallel, and it keeps edge counts linear in the slice
        count.  Leaf labels become node ids, deduplicated with a numeric
        suffix when a label repeats.
        """
        graph = cls()
        used: dict[str, int] = {}

        def fresh_id(label: str) -> str:
            count = used.get(label, 0)
            used[label] = count + 1
            base = f"{id_prefix}{label}"
            return base if count == 0 else f"{base}.{count}"

        def connect(sinks: list[str], sources: list[str]) -> None:
            if len(sinks) > 1 and len(sources) > 1:
                barrier = fresh_id("join")
                graph.add_node(barrier, kind="barrier", weight=0.0)
                for sink in sinks:
                    graph.add_edge(sink, barrier)
                for source in sources:
                    graph.add_edge(barrier, source)
            else:
                for sink in sinks:
                    for source in sources:
                        graph.add_edge(sink, source)

        def build(node: SPNode) -> tuple[list[str], list[str]]:
            """Returns (sources, sinks) of the lowered subgraph."""
            if isinstance(node, Leaf):
                nid = fresh_id(node.label)
                graph.add_node(
                    nid, label=node.label, payload=node.payload, weight=node.weight
                )
                return [nid], [nid]
            if isinstance(node, Series):
                first_sources: list[str] | None = None
                prev_sinks: list[str] = []
                for child in node.children:
                    c_sources, c_sinks = build(child)
                    if first_sources is None:
                        first_sources = c_sources
                    else:
                        connect(prev_sinks, c_sources)
                    prev_sinks = c_sinks
                assert first_sources is not None
                return first_sources, prev_sinks
            if isinstance(node, Parallel):
                all_sources: list[str] = []
                all_sinks: list[str] = []
                for child in node.children:
                    c_sources, c_sinks = build(child)
                    all_sources.extend(c_sources)
                    all_sinks.extend(c_sinks)
                return all_sources, all_sinks
            raise GraphError(f"unknown SP node type {type(node).__name__}")

        build(tree)
        return graph

    def __repr__(self) -> str:
        return f"TaskGraph(nodes={len(self)}, edges={self.num_edges})"
