"""DOT (graphviz) export for task graphs and SP trees.

Purely textual — no graphviz dependency.  Useful for debugging expanded
applications and for documentation; the examples write ``.dot`` files a
user can render with ``dot -Tpng``.
"""

from __future__ import annotations

from repro.graph.spc import Leaf, Parallel, SPNode
from repro.graph.taskgraph import TaskGraph

__all__ = ["taskgraph_to_dot", "sp_to_dot"]

_KIND_STYLE = {
    "task": ("box", "white"),
    "barrier": ("diamond", "gray85"),
    "manager_enter": ("invtrapezium", "lightblue"),
    "manager_exit": ("trapezium", "lightblue"),
}


def _quote(s: str) -> str:
    return '"' + s.replace("\\", "\\\\").replace('"', '\\"') + '"'


def taskgraph_to_dot(graph: TaskGraph, *, name: str = "taskgraph") -> str:
    """Render a :class:`TaskGraph` as a DOT digraph string."""
    lines = [f"digraph {_quote(name)} {{", "  rankdir=TB;", "  node [fontsize=10];"]
    for node in graph:
        shape, fill = _KIND_STYLE.get(node.kind, ("box", "white"))
        lines.append(
            f"  {_quote(node.node_id)} [label={_quote(node.label)} "
            f"shape={shape} style=filled fillcolor={_quote(fill)}];"
        )
    for src, dst in graph.edges():
        lines.append(f"  {_quote(src)} -> {_quote(dst)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def sp_to_dot(tree: SPNode, *, name: str = "sp") -> str:
    """Render an SP composition tree as a DOT digraph string.

    Composite nodes appear as small circles labelled ``;`` (series) or
    ``||`` (parallel); leaves as boxes.
    """
    lines = [f"digraph {_quote(name)} {{", "  rankdir=TB;", "  node [fontsize=10];"]
    counter = 0

    def emit(node: SPNode) -> str:
        nonlocal counter
        nid = f"n{counter}"
        counter += 1
        if isinstance(node, Leaf):
            lines.append(f"  {nid} [label={_quote(node.label)} shape=box];")
        else:
            sym = ";" if not isinstance(node, Parallel) else "||"
            lines.append(f"  {nid} [label={_quote(sym)} shape=circle];")
            for child in node.children:  # type: ignore[attr-defined]
                cid = emit(child)
                lines.append(f"  {nid} -> {cid};")
        return nid

    emit(tree)
    lines.append("}")
    return "\n".join(lines) + "\n"
