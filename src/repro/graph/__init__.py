"""Series-parallel graph algebra and flat task graphs.

This package implements the SPC (Series-Parallel Contention) structural
model the paper adopts from van Gemund: an application's task graph is
built recursively from *series* and *parallel* composition of subgraphs,
with components at the leaves.  The XSPCL expander lowers a specification
onto :class:`~repro.graph.spc.SPNode` trees, which are then flattened to a
:class:`~repro.graph.taskgraph.TaskGraph` (a plain DAG) that the Hinch
scheduler and the SpaceCAKE simulator execute.

Cross-dependency regions (XSPCL ``shape="crossdep"``) are deliberately
*not* series-parallel; :mod:`repro.graph.analysis` provides SP-ization
(inserting synchronization barriers) so performance prediction can still
run, exactly as the paper prescribes.
"""

from repro.graph.spc import Leaf, Parallel, Series, SPNode, parallel, series
from repro.graph.taskgraph import TaskGraph, TaskNode
from repro.graph.analysis import (
    critical_path,
    is_series_parallel,
    sp_ize,
    sp_reduction,
)

__all__ = [
    "Leaf",
    "Parallel",
    "Series",
    "SPNode",
    "series",
    "parallel",
    "TaskGraph",
    "TaskNode",
    "critical_path",
    "is_series_parallel",
    "sp_ize",
    "sp_reduction",
]
