"""SP (series-parallel) composition trees — the SPC structural model.

The paper expresses task graphs in van Gemund's SPC model: a graph is
specified *recursively* by combining subgraphs with sequential and parallel
constructs; the leaves of the hierarchy are individual components.  This
module is the algebra itself, independent of XSPCL syntax and of any
runtime concern.

Design notes
------------
* Nodes are immutable after construction (hashable by identity is not
  enough — structural equality is needed by tests and by the expander's
  procedure-instantiation cache — so ``__eq__`` compares structure).
* ``Series``/``Parallel`` auto-flatten nested compositions of the same
  kind: ``series(a, series(b, c))`` equals ``series(a, b, c)``.  This
  keeps trees canonical so structural equality is meaningful.
* A ``Leaf`` carries an opaque ``payload`` (typically a component
  instance descriptor) and a ``label`` for display and for the DOT
  exporter.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import GraphError

__all__ = ["SPNode", "Leaf", "Series", "Parallel", "series", "parallel"]


class SPNode:
    """Abstract base of SP composition trees."""

    __slots__ = ()

    def leaves(self) -> list["Leaf"]:
        """All leaves in left-to-right (series) order."""
        out: list[Leaf] = []
        self._collect_leaves(out)
        return out

    def _collect_leaves(self, out: list["Leaf"]) -> None:
        raise NotImplementedError

    def depth(self) -> int:
        """Height of the composition tree (a leaf has depth 1)."""
        raise NotImplementedError

    def width(self) -> int:
        """Maximum number of leaves that may execute concurrently.

        Pipeline parallelism is not counted — this is parallelism *within*
        one iteration of the task graph, which is what the SPC model
        describes.
        """
        raise NotImplementedError

    def serial_length(self) -> int:
        """Number of leaves on the longest series chain (unit weights)."""
        raise NotImplementedError

    def map_leaves(self, fn: Callable[["Leaf"], "SPNode"]) -> "SPNode":
        """Structurally rebuild the tree, replacing each leaf by ``fn(leaf)``.

        ``fn`` may return any SP subtree, which makes this the substrate
        for procedure inlining and data-parallel replication.
        """
        raise NotImplementedError

    def __iter__(self) -> Iterator["SPNode"]:
        """Pre-order traversal of all nodes (self first)."""
        yield self

    # -- operator sugar ---------------------------------------------------
    def __rshift__(self, other: "SPNode") -> "Series":
        """``a >> b`` is series composition."""
        return series(self, other)

    def __or__(self, other: "SPNode") -> "Parallel":
        """``a | b`` is (task-)parallel composition."""
        return parallel(self, other)


class Leaf(SPNode):
    """A leaf of the SP tree: one schedulable unit of work."""

    __slots__ = ("label", "payload", "weight")

    def __init__(self, label: str, payload: Any = None, weight: float = 1.0) -> None:
        if not label:
            raise GraphError("Leaf label must be non-empty")
        if weight < 0:
            raise GraphError(f"Leaf weight must be >= 0, got {weight}")
        self.label = label
        self.payload = payload
        self.weight = float(weight)

    def _collect_leaves(self, out: list["Leaf"]) -> None:
        out.append(self)

    def depth(self) -> int:
        return 1

    def width(self) -> int:
        return 1

    def serial_length(self) -> int:
        return 1

    def map_leaves(self, fn: Callable[["Leaf"], SPNode]) -> SPNode:
        return fn(self)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Leaf)
            and self.label == other.label
            and self.payload == other.payload
            and self.weight == other.weight
        )

    def __hash__(self) -> int:
        return hash(("leaf", self.label, self.weight))

    def __repr__(self) -> str:
        return f"Leaf({self.label!r})"


class _Composite(SPNode):
    """Shared machinery of Series and Parallel."""

    __slots__ = ("children",)
    _kind = "?"

    def __init__(self, children: tuple[SPNode, ...]) -> None:
        if len(children) < 1:
            raise GraphError(f"{type(self).__name__} needs at least one child")
        self.children = children

    def _collect_leaves(self, out: list[Leaf]) -> None:
        for child in self.children:
            child._collect_leaves(out)

    def depth(self) -> int:
        return 1 + max(c.depth() for c in self.children)

    def map_leaves(self, fn: Callable[[Leaf], SPNode]) -> SPNode:
        mapped = [c.map_leaves(fn) for c in self.children]
        ctor = series if isinstance(self, Series) else parallel
        return ctor(*mapped)

    def __iter__(self) -> Iterator[SPNode]:
        yield self
        for child in self.children:
            yield from child

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.children == other.children  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((self._kind, self.children))

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.children)
        return f"{type(self).__name__}({inner})"


class Series(_Composite):
    """Sequential composition: children run one after another."""

    __slots__ = ()
    _kind = "series"

    def width(self) -> int:
        return max(c.width() for c in self.children)

    def serial_length(self) -> int:
        return sum(c.serial_length() for c in self.children)


class Parallel(_Composite):
    """Parallel composition: children are independent within an iteration."""

    __slots__ = ()
    _kind = "parallel"

    def width(self) -> int:
        return sum(c.width() for c in self.children)

    def serial_length(self) -> int:
        return max(c.serial_length() for c in self.children)


def _flatten(kind: type, items: tuple[SPNode, ...]) -> tuple[SPNode, ...]:
    out: list[SPNode] = []
    for item in items:
        if not isinstance(item, SPNode):
            raise GraphError(f"expected SPNode, got {type(item).__name__}")
        if type(item) is kind:
            out.extend(item.children)  # type: ignore[attr-defined]
        else:
            out.append(item)
    return tuple(out)


def series(*children: SPNode) -> SPNode:
    """Series-compose subtrees; singletons collapse, nesting flattens."""
    flat = _flatten(Series, children)
    if len(flat) == 1:
        return flat[0]
    return Series(flat)


def parallel(*children: SPNode) -> SPNode:
    """Parallel-compose subtrees; singletons collapse, nesting flattens."""
    flat = _flatten(Parallel, children)
    if len(flat) == 1:
        return flat[0]
    return Parallel(flat)
