"""Structural analyses on task graphs: SP recognition, SP-ization, paths.

The SPC model allows efficient performance prediction, but XSPCL also
admits optimized non-SP subgraphs (``shape="crossdep"``).  The paper's
rule is: *"If performance prediction is required on this structure, it has
to be transformed into SP form by adding a synchronization point between
the parblocks."*  :func:`sp_ize` implements exactly that transformation
(synchronized layers), and :func:`is_series_parallel` implements classic
two-terminal series-parallel recognition so tests can verify which graphs
are SP before/after.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable

from repro.errors import GraphError, NotSeriesParallelError
from repro.graph.taskgraph import TaskGraph

__all__ = [
    "is_series_parallel",
    "sp_reduction",
    "sp_ize",
    "critical_path",
    "topological_levels",
]

_VSRC = "__sp_virtual_source__"
_VSNK = "__sp_virtual_sink__"


def _as_two_terminal_multigraph(
    graph: TaskGraph,
) -> tuple[dict[str, Counter], dict[str, Counter], str, str]:
    """Build succ/pred multigraph adjacency with a single source and sink."""
    succ: dict[str, Counter] = {n.node_id: Counter() for n in graph}
    pred: dict[str, Counter] = {n.node_id: Counter() for n in graph}
    for u, v in graph.edges():
        succ[u][v] += 1
        pred[v][u] += 1

    sources = graph.sources()
    sinks = graph.sinks()
    if not sources or not sinks:
        raise GraphError("graph has no source or no sink (cyclic or empty)")

    src, snk = _VSRC, _VSNK
    succ[src] = Counter()
    pred[src] = Counter()
    succ[snk] = Counter()
    pred[snk] = Counter()
    for s in sources:
        succ[src][s] += 1
        pred[s][src] += 1
    for t in sinks:
        succ[t][snk] += 1
        pred[snk][t] += 1
    return succ, pred, src, snk


def sp_reduction(graph: TaskGraph) -> int:
    """Run series/parallel reductions to a fixpoint; return remaining edges.

    The input is first closed into a two-terminal DAG with a virtual
    source and sink.  Reductions:

    * **parallel**: collapse multi-edges ``u => v`` to a single edge;
    * **series**: a node with exactly one predecessor and one successor
      (and not the virtual terminals) is replaced by a direct edge.

    A two-terminal graph is series-parallel iff this terminates with a
    single edge from the virtual source to the virtual sink, i.e. a
    return value of 1.
    """
    if len(graph) == 0:
        return 1  # the empty graph is vacuously SP
    succ, pred, src, snk = _as_two_terminal_multigraph(graph)

    # Parallel reduction: multi-edges count once.
    def edge_count() -> int:
        return sum(1 for u in succ for _ in succ[u])  # distinct (u, v) pairs

    worklist = [n for n in succ if n not in (src, snk)]
    while worklist:
        node = worklist.pop()
        if node not in succ:
            continue
        if len(pred[node]) == 1 and len(succ[node]) == 1:
            (p,) = pred[node].keys()
            (s,) = succ[node].keys()
            if p == s:
                continue  # would create a self-loop; not reducible
            # Series-reduce: remove node, add edge p -> s (parallel
            # reduction is implicit because Counter collapses to one key).
            succ[p].pop(node, None)
            pred[s].pop(node, None)
            succ[p][s] += 1
            pred[s][p] += 1
            del succ[node]
            del pred[node]
            # p or s may have become series-reducible or have multi-edges.
            worklist.append(p)
            worklist.append(s)
        else:
            # Parallel reduction: clamp multi-edge multiplicities to 1;
            # that may enable a series reduction at either endpoint.
            changed = False
            for tgt, mult in list(succ[node].items()):
                if mult > 1:
                    succ[node][tgt] = 1
                    pred[tgt][node] = 1
                    changed = True
                    worklist.append(tgt)
            if changed:
                worklist.append(node)
    # Final sweep of parallel reductions at terminals.
    for node in list(succ):
        for tgt, mult in list(succ[node].items()):
            if mult > 1:
                succ[node][tgt] = 1
                pred[tgt][node] = 1
    return edge_count()


def is_series_parallel(graph: TaskGraph) -> bool:
    """True iff the (two-terminal closure of the) graph is series-parallel."""
    if not graph.is_acyclic():
        return False
    return sp_reduction(graph) == 1


def topological_levels(graph: TaskGraph) -> dict[str, int]:
    """Longest-path level of each node (sources are level 0)."""
    levels: dict[str, int] = {}
    for node_id in graph.topological_order():
        preds = graph.predecessors(node_id)
        levels[node_id] = 0 if not preds else 1 + max(levels[p] for p in preds)
    return levels


def sp_ize(graph: TaskGraph, *, barrier_prefix: str = "sync") -> TaskGraph:
    """Return an SP over-approximation of ``graph`` via synchronized layers.

    Nodes are grouped by longest-path level; a barrier node is inserted
    between consecutive levels and the original edges are replaced by
    ``level L -> barrier_L -> level L+1`` edges.  Every original
    dependency is preserved transitively (an edge u->v implies
    ``level(u) < level(v)``), so the result is a conservative SP schedule
    — the paper's "synchronization point between the parblocks".

    Barriers have weight 0 and ``kind="barrier"``.
    """
    levels = topological_levels(graph)
    if not levels:
        return TaskGraph()
    max_level = max(levels.values())
    out = TaskGraph()
    for node in graph:
        out.add_node(
            node.node_id,
            label=node.label,
            kind=node.kind,
            payload=node.payload,
            weight=node.weight,
        )
    barriers: list[str] = []
    for lvl in range(max_level):
        bid = f"{barrier_prefix}.{lvl}"
        if bid in out:
            raise GraphError(f"barrier id {bid!r} collides with an existing node")
        out.add_node(bid, kind="barrier", weight=0.0)
        barriers.append(bid)
    by_level: dict[int, list[str]] = {}
    for node_id, lvl in levels.items():
        by_level.setdefault(lvl, []).append(node_id)
    for lvl in range(max_level):
        for node_id in by_level.get(lvl, []):
            out.add_edge(node_id, barriers[lvl])
        for node_id in by_level.get(lvl + 1, []):
            out.add_edge(barriers[lvl], node_id)
    return out


def critical_path(
    graph: TaskGraph,
    weight: Callable[[str], float] | None = None,
) -> tuple[float, list[str]]:
    """Longest weighted path; returns ``(total_weight, node_id_path)``.

    ``weight`` maps a node id to its cost; defaults to the node's stored
    ``weight``.  Edge weights are zero (dependencies are free; the cost
    model charges communication to the consumer).
    """
    if weight is None:
        weight = lambda nid: graph.node(nid).weight  # noqa: E731
    best: dict[str, float] = {}
    best_pred: dict[str, str | None] = {}
    order = graph.topological_order()
    if not order:
        return 0.0, []
    for node_id in order:
        w = weight(node_id)
        preds = graph.predecessors(node_id)
        if not preds:
            best[node_id] = w
            best_pred[node_id] = None
        else:
            p = max(preds, key=lambda q: best[q])
            best[node_id] = best[p] + w
            best_pred[node_id] = p
    end = max(best, key=lambda nid: best[nid])
    path: list[str] = []
    cur: str | None = end
    while cur is not None:
        path.append(cur)
        cur = best_pred[cur]
    path.reverse()
    return best[end], path


def require_series_parallel(graph: TaskGraph, context: str = "") -> None:
    """Raise :class:`NotSeriesParallelError` unless the graph is SP."""
    if not is_series_parallel(graph):
        suffix = f" ({context})" if context else ""
        raise NotSeriesParallelError(
            "graph is not series-parallel; apply sp_ize() first" + suffix
        )
