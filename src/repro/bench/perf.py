"""Tracked wall-clock performance harness for the SpaceCAKE simulator.

The simulator is the reproduction's workhorse: every figure sweep, every
calibration test, and every reconfiguration experiment runs through it,
so its *Python* wall-clock throughput is a first-class artifact — distinct
from the simulated cycle counts, which are pinned by the golden fixture
(:mod:`repro.bench.golden`).  This module measures it three ways:

* **figure sweeps** — end-to-end wall time of the fig8/fig9/fig10
  regenerations (fresh :class:`~repro.bench.harness.Harness` per repeat,
  so memoization never hides work);
* **simulator micro-benchmarks** — one :class:`SimRuntime` run per
  scenario, reporting wall seconds plus derived **jobs/sec** and
  **events/sec** throughput;
* **substrate micro-benchmarks** — the raw event-engine and scheduler
  loops, isolating the two hot layers under the simulator.

``python -m repro bench`` runs a profile, writes the results to
``BENCH_simulator.json`` at the repo root, and compares wall-clock
metrics against the committed baseline (``--check`` makes a >25%
regression a failing exit, which is what CI runs).  Every metric records
both the best-of-``repeats`` time (``seconds``, the least-noise
estimate, used for the rates) and the median (``median_seconds``, the
robust one); regression checks compare *medians* so a single stalled
repeat on a noisy CI machine cannot fail the gate by itself.  See
``docs/performance.md`` for the tolerance rationale.
"""

from __future__ import annotations

import platform
import statistics
import sys
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ReproError

__all__ = [
    "PerfProfile", "PROFILES", "collect", "compare", "render_report",
    "DEFAULT_OUTPUT", "DEFAULT_MAX_REGRESSION",
]

#: Written at the repo root; the committed copy is the CI baseline.
DEFAULT_OUTPUT = "BENCH_simulator.json"

#: A wall-clock metric may drift this much over the committed baseline
#: before ``--check`` fails (generous: CI machines are noisy).
DEFAULT_MAX_REGRESSION = 0.25


@dataclass(frozen=True)
class PerfProfile:
    """One measurement configuration.

    ``scale`` is the harness frame scale; ``sweep_nodes`` bounds the
    fig9/fig10 node axis (the full figures sweep 1..9 nodes, which is
    overkill for a smoke run); ``micro_frames`` is the iteration count
    of the simulator micro-benchmarks.
    """

    name: str
    scale: float
    repeats: int
    sweep_nodes: tuple[int, ...]
    micro_frames: int


PROFILES: dict[str, PerfProfile] = {
    # CI smoke: seconds, not minutes, yet still covers every variant,
    # the reconfiguration drain, and multi-node cache interleaving.
    "quick": PerfProfile("quick", scale=0.25, repeats=3,
                         sweep_nodes=(1, 4, 9), micro_frames=48),
    # Paper-scale sweeps; for tracking real numbers on a quiet machine.
    "full": PerfProfile("full", scale=1.0, repeats=3,
                        sweep_nodes=tuple(range(1, 10)), micro_frames=96),
}


def _timed_runs(
    fn: Callable[[], object], repeats: int
) -> tuple[list[float], object]:
    """Run ``fn`` ``repeats`` times; return (all timings, best result)."""
    times: list[float] = []
    best = float("inf")
    best_result: object = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        times.append(elapsed)
        if elapsed < best:
            best, best_result = elapsed, result
    return times, best_result


def _timing_entry(times: list[float]) -> dict[str, float]:
    """Both estimators of one metric's wall time.

    ``seconds`` (the minimum) is the traditional least-noise estimate
    and feeds the derived rates; ``median_seconds`` is what the
    regression gate compares — robust to a single slow repeat.
    """
    return {
        "seconds": min(times),
        "median_seconds": statistics.median(times),
    }


# -- figure sweeps --------------------------------------------------------------


def _time_sweeps(profile: PerfProfile) -> dict[str, dict]:
    from repro.bench import figures
    from repro.bench.harness import Harness

    sweeps: dict[str, dict] = {}
    runs = [
        ("fig8", lambda h: figures.fig8_sequential_overhead(h)),
        ("fig9", lambda h: figures.fig9_speedup(h, nodes=profile.sweep_nodes)),
        ("fig10", lambda h: figures.fig10_reconfiguration_overhead(
            h, nodes=profile.sweep_nodes)),
    ]
    for name, fn in runs:
        # A fresh Harness per repeat: the memo cache must not turn the
        # second repeat into a no-op.
        times, _ = _timed_runs(
            lambda fn=fn: fn(Harness(frames_scale=profile.scale)),
            profile.repeats,
        )
        sweeps[name] = _timing_entry(times)
    return sweeps


# -- simulator micro-benchmarks ---------------------------------------------------


def _sim_micro(name: str, *, nodes: int, frames: int, repeats: int) -> dict:
    """Time one SimRuntime run; derive jobs/sec and events/sec."""
    from repro.bench.harness import PIPELINE_DEPTH, Harness

    harness = Harness()  # program construction is warmed up outside timing
    program = harness.program(name, "xspcl")
    registry = harness.registry

    def run():
        from repro.spacecake import SimRuntime

        rt = SimRuntime(
            program, registry, nodes=nodes, pipeline_depth=PIPELINE_DEPTH,
            max_iterations=frames,
        )
        result = rt.run()
        return result, rt.engine.events_processed

    times, outcome = _timed_runs(run, repeats)
    result, events = outcome
    seconds = min(times)
    return {
        "variant": name,
        "nodes": nodes,
        "frames": frames,
        **_timing_entry(times),
        "jobs": result.jobs_executed,
        "events": events,
        "jobs_per_sec": result.jobs_executed / seconds,
        "events_per_sec": events / seconds,
    }


def _engine_micro(repeats: int, n_events: int = 200_000) -> dict:
    """Raw EventEngine throughput: schedule-and-drain no-op records."""
    from repro.spacecake.devent import EventEngine

    def run():
        engine = EventEngine()
        sink = [0]

        def handler(record, sink=sink):
            sink[0] += record

        for i in range(n_events):
            engine.schedule(float(i % 97), handler, 1)
        engine.run()
        return engine.events_processed

    times, processed = _timed_runs(run, repeats)
    return {
        "events": processed,
        **_timing_entry(times),
        "events_per_sec": processed / min(times),
    }


def _scheduler_micro(repeats: int, iterations: int = 200) -> dict:
    """Scheduler admit/complete drain over a real app graph, jobs/sec.

    Blur-3x3's task graph (sliced blur phases with crossdeps) drained in
    LIFO order — pure scheduler work, no cost model or cache behind it.
    """
    from repro.apps import build_blur, make_program
    from repro.hinch.scheduler import DataflowScheduler

    pg = make_program(build_blur(3), name="bench-sched").build_graph()

    def run():
        sched = DataflowScheduler(
            pg, pipeline_depth=5, max_iterations=iterations
        )
        frontier = list(sched.start())
        count = 0
        while frontier:
            job = frontier.pop()
            count += 1
            frontier.extend(sched.complete(job))
        if not sched.done:
            raise ReproError("scheduler micro-benchmark did not drain")
        return count

    times, jobs = _timed_runs(run, repeats)
    return {
        "jobs": jobs,
        **_timing_entry(times),
        "jobs_per_sec": jobs / min(times),
    }


def _time_micro(profile: PerfProfile) -> dict[str, dict]:
    frames = profile.micro_frames
    repeats = profile.repeats
    return {
        # PiP-2 on 4 nodes is the reference simulator benchmark: unsliced
        # components (64-bucket traffic runs) under real contention.
        "sim_pip2_n4": _sim_micro("PiP-2", nodes=4,
                                  frames=frames, repeats=repeats),
        # JPiP-2 stresses the sliced path: many short bucket runs per job.
        "sim_jpip2_n4": _sim_micro("JPiP-2", nodes=4,
                                   frames=max(2, frames // 4),
                                   repeats=repeats),
        # PiP-12 exercises the reconfiguration drain + plan rebuilds.
        "sim_pip12_n4": _sim_micro("PiP-12", nodes=4,
                                   frames=frames, repeats=repeats),
        "event_engine": _engine_micro(repeats),
        "scheduler": _scheduler_micro(repeats),
    }


# -- collection / comparison --------------------------------------------------------


def collect(
    profile: PerfProfile,
    *,
    scale: float | None = None,
    repeats: int | None = None,
) -> dict:
    """Measure everything; returns the ``BENCH_simulator.json`` payload."""
    if scale is not None or repeats is not None:
        profile = PerfProfile(
            name=profile.name,
            scale=scale if scale is not None else profile.scale,
            repeats=repeats if repeats is not None else profile.repeats,
            sweep_nodes=profile.sweep_nodes,
            micro_frames=profile.micro_frames,
        )
    return {
        "schema": 1,
        "profile": profile.name,
        "scale": profile.scale,
        "repeats": profile.repeats,
        "sweep_nodes": list(profile.sweep_nodes),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "sweeps": _time_sweeps(profile),
        "micro": _time_micro(profile),
    }


def _wall_metrics(payload: dict) -> dict[str, float]:
    """Flatten every wall-clock metric to ``section/name -> seconds``.

    Prefers the median when recorded (payloads since the medians
    de-flake) and falls back to best-of for older baselines.
    """
    metrics: dict[str, float] = {}
    for section in ("sweeps", "micro"):
        for name, entry in payload.get(section, {}).items():
            seconds = entry.get("median_seconds", entry.get("seconds"))
            if isinstance(seconds, (int, float)):
                metrics[f"{section}/{name}"] = float(seconds)
    return metrics


def compare(
    current: dict,
    baseline: dict,
    *,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> list[str]:
    """Wall-clock regressions of ``current`` vs ``baseline``.

    Returns human-readable descriptions of every metric that got more
    than ``max_regression`` slower; empty means the comparison passes.
    Only wall times are compared (the rates are redundant with them) —
    the *median* over the profile's repeats on each side, so one stalled
    repeat cannot flip the gate — and only metrics present on both
    sides: a renamed or added benchmark is not a regression.  Profiles
    must match: comparing a quick run to a full baseline times
    different work.
    """
    if current.get("profile") != baseline.get("profile"):
        raise ReproError(
            f"profile mismatch: current={current.get('profile')!r} "
            f"baseline={baseline.get('profile')!r}"
        )
    regressions = []
    cur = _wall_metrics(current)
    base = _wall_metrics(baseline)
    for name in sorted(cur.keys() & base.keys()):
        before, after = base[name], cur[name]
        if before > 0 and after > before * (1.0 + max_regression):
            regressions.append(
                f"{name}: {after:.3f}s vs baseline {before:.3f}s "
                f"({after / before - 1.0:+.0%}, limit "
                f"{max_regression:+.0%})"
            )
    return regressions


def render_report(payload: dict, baseline: dict | None = None) -> str:
    """Human-readable summary of one collection (and baseline deltas)."""
    lines = [
        f"profile {payload['profile']} (scale {payload['scale']}, "
        f"best of {payload['repeats']}) on Python {payload['python']}"
    ]
    base = _wall_metrics(baseline) if baseline else {}
    for section in ("sweeps", "micro"):
        lines.append(f"{section}:")
        for name, entry in payload[section].items():
            parts = [f"  {name:<16} {entry['seconds']:8.3f}s"]
            if "jobs_per_sec" in entry:
                parts.append(f"{entry['jobs_per_sec']:>12,.0f} jobs/s")
            if "events_per_sec" in entry:
                parts.append(f"{entry['events_per_sec']:>12,.0f} events/s")
            before = base.get(f"{section}/{name}")
            if before:
                parts.append(f"[{entry['seconds'] / before - 1.0:+.0%} vs baseline]")
            lines.append(" ".join(parts))
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Thin module entry point; ``python -m repro bench`` is the real CLI."""
    from repro.cli import main as cli_main

    args = list(argv) if argv is not None else sys.argv[1:]
    return cli_main(["bench", *args])


if __name__ == "__main__":
    sys.exit(main())
