"""Golden-equivalence snapshots of the figure sweeps.

The PR that introduced the precompiled job-plan fast path (JobPlan +
batched cache accesses + incremental scheduler state) promises *bit-
identical* simulation semantics: same cycle counts, same iteration and
reconfiguration counts, same cache hit/miss statistics.  This module
collects every observable of the fig8/fig9/fig10 sweeps into one plain
dict so the promise is testable:

* ``collect_golden()`` runs the sweeps (at a reduced ``frames_scale`` so
  the equivalence test stays fast) and returns the snapshot;
* ``tests/bench/fixtures/golden_fig_sweeps.json`` holds the snapshot
  taken from the *pre-optimization* implementation;
* ``tests/bench/test_golden_equivalence.py`` asserts exact equality —
  floats are compared after a JSON round-trip, which is lossless for
  Python floats (shortest-repr round-tripping).

Regenerate the fixture (only when the simulation *semantics* change on
purpose, never to paper over a fast-path divergence) with::

    PYTHONPATH=src python -m repro.bench.golden tests/bench/fixtures/golden_fig_sweeps.json
"""

from __future__ import annotations

import json
import sys
from typing import Sequence

from repro.bench.harness import Harness, RECONFIG_VARIANTS, STATIC_VARIANTS
from repro.spacecake import SimResult
from repro.spacecake.cache import AccessLevel

__all__ = ["GOLDEN_SCALE", "GOLDEN_NODES", "collect_golden", "result_snapshot"]

#: Scale / node grid of the committed fixture: small enough that the
#: equivalence test runs in seconds, wide enough to cover every variant,
#: the sequential baselines, multi-core cache interleavings, and the
#: reconfiguration drain path.
GOLDEN_SCALE = 0.25
GOLDEN_NODES = (1, 2, 4, 9)


def result_snapshot(result: SimResult) -> dict:
    """Every deterministic observable of one simulated run."""
    return {
        "cycles": result.cycles,
        "completed_iterations": result.completed_iterations,
        "reconfig_count": result.reconfig_count,
        "jobs_executed": result.jobs_executed,
        "events_handled": result.events_handled,
        "components_created": result.components_created,
        "utilization": result.utilization,
        "core_busy_cycles": list(result.core_busy_cycles),
        "cache_accesses": {
            lvl.value: result.cache_stats.accesses[lvl] for lvl in AccessLevel
        },
        "cache_bytes": {
            lvl.value: result.cache_stats.bytes_by_level[lvl] for lvl in AccessLevel
        },
        "reconfig_log": [
            [resume, dict(states)] for resume, states in result.reconfig_log
        ],
    }


def collect_golden(
    scale: float = GOLDEN_SCALE, nodes: Sequence[int] = GOLDEN_NODES
) -> dict:
    """Run the fig8/fig9/fig10 sweeps; return all observables as one dict."""
    h = Harness(frames_scale=scale)
    runs: dict[str, dict] = {}
    for name in STATIC_VARIANTS:
        runs[f"seq/{name}"] = result_snapshot(h.run_sequential(name))
        for n in nodes:
            runs[f"xspcl/{name}/n{n}"] = result_snapshot(h.run_xspcl(name, nodes=n))
    for name in RECONFIG_VARIANTS:
        for n in nodes:
            runs[f"xspcl/{name}/n{n}"] = result_snapshot(h.run_xspcl(name, nodes=n))
    return {
        "scale": scale,
        "nodes": list(nodes),
        "runs": runs,
    }


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    if len(args) != 1:
        print("usage: python -m repro.bench.golden OUTPUT.json", file=sys.stderr)
        return 2
    snapshot = collect_golden()
    with open(args[0], "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"golden snapshot ({len(snapshot['runs'])} runs) written to {args[0]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
