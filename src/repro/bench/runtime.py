"""Real-runtime throughput suite: frames/sec on the execution backends.

The simulator harness (:mod:`repro.bench.perf`) times *virtual* machines;
this module times the machinery that actually runs components — the
threaded backend and the shared-memory process backend — on the paper's
applications (PiP, Blur-5x5, JPiP) at 1/2/4 workers.  For each
(application, backend, width) cell it reports median wall seconds over
``repeats`` runs, the derived frames/sec, and the speedup over the same
backend at one worker; one traced run per application records per-worker
occupancy (the fig-8-style utilisation view).

Honesty notes, encoded in the payload rather than prose:

* ``cpu_count`` records the measuring host.  CPU-bound kernels cannot
  speed up beyond the physical core count — on a 1-core CI runner the
  PiP/Blur speedup at 4 workers is ~1x *by physics*, not by defect, so
  tests gate their CPU-bound speedup assertions on ``cpu_count``.
* The ``probe`` section isolates what the runtime itself contributes:
  a sliced stage whose kernel *blocks* (sleeps) instead of burning CPU.
  Blocking kernels overlap on any host, so the probe's speedup curve is
  a core-count-independent measurement of dispatcher scalability — if
  the central queue, the RPC path, or the splice machinery serialised
  execution, the probe would flatline at 1x.

``python -m repro bench --suite runtime`` writes ``BENCH_runtime.json``
at the repo root and compares medians against the committed baseline
(CI runs ``--check``).  See ``docs/performance.md`` for the tolerance
rationale.
"""

from __future__ import annotations

import os
import platform
import statistics
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.components.registry import default_ports, default_registry
from repro.core.builder import AppBuilder
from repro.core.expander import expand
from repro.core.ports import PortSpec
from repro.errors import ReproError
from repro.hinch.component import Component, JobContext
from repro.hinch.tracing import ATTRIBUTION_KINDS

__all__ = [
    "RuntimeProfile", "PROFILES", "collect", "compare", "render_report",
    "DEFAULT_OUTPUT", "DEFAULT_MAX_REGRESSION", "AUTOTUNE_MIN_RATIO",
    "build_sleep_probe", "probe_registry",
]

#: Written at the repo root; the committed copy is the CI baseline.
DEFAULT_OUTPUT = "BENCH_runtime.json"

#: Runtime benches time real OS scheduling (process spawn, pipe wakeups,
#: actual sleeps), which is noisier than the simulator's pure-Python
#: loops — hence a wider gate than perf.py's 0.25.  Medians over
#: ``repeats`` runs absorb one-off stalls; the margin absorbs sustained
#: CI neighbour noise.
DEFAULT_MAX_REGRESSION = 0.35

#: Elastic auto-tuning gate: the configuration the controller converges
#: to must deliver at least this fraction of the best static grid cell's
#: throughput (medians over ``repeats`` on both sides).  The gate is on
#: the *converged* configuration, not the whole adaptive run — the run
#: deliberately starts mis-tuned, so its wall clock prices in the very
#: transients the controller exists to escape.
AUTOTUNE_MIN_RATIO = 0.95


@dataclass(frozen=True)
class RuntimeProfile:
    """One measurement configuration for the runtime suite."""

    name: str
    frames: int
    repeats: int
    width: int
    height: int
    slices: int
    workers: tuple[int, ...]
    pipeline_depth: int
    #: sliced width of the blocking-probe stage
    probe_stages: int
    #: per-job blocking time of the probe kernel, milliseconds
    probe_sleep_ms: float
    #: lease size for process-backend cells (1 = job-at-a-time dispatch)
    batch: int = 1


PROFILES: dict[str, RuntimeProfile] = {
    # CI smoke: small frames, few iterations — still spawns real worker
    # processes and crosses real shared-memory planes.  Dimensions are
    # multiples of 16 so the 4:2:0 chroma planes stay 8x8-block aligned
    # for the JPEG stages.
    "quick": RuntimeProfile(
        "quick", frames=8, repeats=3, width=160, height=128, slices=4,
        workers=(1, 2, 4), pipeline_depth=4, probe_stages=4,
        probe_sleep_ms=15.0, batch=4,
    ),
    # Paper-scale frames for tracking real numbers on a quiet machine.
    "full": RuntimeProfile(
        "full", frames=24, repeats=3, width=720, height=576, slices=8,
        workers=(1, 2, 4), pipeline_depth=5, probe_stages=4,
        probe_sleep_ms=25.0, batch=4,
    ),
}


# -- the dispatcher-scalability probe ---------------------------------------


class ProbeSource(Component):
    """Emits a tiny frame; negligible work by construction."""

    ports = PortSpec(outputs=("output",))

    def run(self, job: JobContext) -> None:
        job.write("output", np.full((8, 8), job.iteration % 251,
                                    dtype=np.uint8))


class ProbeSleep(Component):
    """A kernel that *blocks* instead of computing.

    Stands in for I/O-bound stages (capture, disk, network, accelerator
    waits).  ``time.sleep`` releases the GIL and occupies no core, so N
    concurrent copies finish in one sleep period on any machine — making
    throughput scaling a pure function of the runtime's dispatch path.
    """

    ports = PortSpec(inputs=("input",), outputs=("output",),
                     required_params=("ms",))

    def run(self, job: JobContext) -> None:
        src = job.read("input")
        out = job.buffer("output", shape=src.shape, dtype=src.dtype)
        time.sleep(float(self.require_param("ms")) / 1000.0)
        if self.slice is None:
            out[...] = src
        else:
            index, total = self.slice
            out[index::total, :] = src[index::total, :]


class ProbeSink(Component):
    ports = PortSpec(inputs=("input",))

    def __init__(self, instance: Any) -> None:
        super().__init__(instance)
        self.frames_seen = 0

    def run(self, job: JobContext) -> None:
        job.read("input")
        self.frames_seen += 1

    def snapshot_state(self) -> int:
        return self.frames_seen

    def merge_state(self, state: int) -> None:
        self.frames_seen += state

    def checkpoint_state(self) -> int | None:
        if not self.frames_seen:
            return None
        state, self.frames_seen = self.frames_seen, 0
        return state


def probe_registry() -> dict[str, type[Component]]:
    return default_registry({
        "probe_source": ProbeSource,
        "probe_sleep": ProbeSleep,
        "probe_sink": ProbeSink,
    })


def build_sleep_probe(*, stages: int, sleep_ms: float):
    """Source -> sliced blocking stage (``stages`` copies) -> sink."""
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "probe_source", streams={"output": "raw"})
    with main.parallel("slice", n=stages):
        main.component("work", "probe_sleep",
                       streams={"input": "raw", "output": "out"},
                       params={"ms": sleep_ms})
    main.component("sink", "probe_sink", streams={"input": "out"})
    return b.build()


def probe_program(profile: RuntimeProfile):
    spec = build_sleep_probe(stages=profile.probe_stages,
                             sleep_ms=profile.probe_sleep_ms)
    return expand(spec, default_ports(probe_registry()), name="sleep-probe")


# -- measurement -------------------------------------------------------------


def _app_programs(profile: RuntimeProfile) -> dict[str, Any]:
    from repro.apps import (
        build_audio,
        build_blur,
        build_jpip,
        build_pip,
        make_program,
    )

    w, h, s = profile.width, profile.height, profile.slices
    return {
        "pip": make_program(
            build_pip(1, width=w, height=h, factor=4, slices=s,
                      frames=max(2, profile.frames // 2)),
            name="pip1"),
        "blur": make_program(
            build_blur(5, width=w, height=h, slices=s,
                       frames=max(2, profile.frames // 2)),
            name="blur5"),
        "jpip": make_program(
            build_jpip(1, width=w, height=h, pip_height=h, factor=4,
                       slices=s, frames=max(2, profile.frames // 2)),
            name="jpip1"),
        # anti-JPiP profile: ~1 KiB records, dispatch-dominated — the
        # workload where batching/fusion overhead knobs actually show
        "audio": make_program(
            build_audio(channels=8, block=64, slices=2,
                        frames=max(2, profile.frames // 2)),
            name="audio8"),
    }


def _run_once(
    program: Any,
    registry: Any,
    backend: str,
    n: int,
    profile: RuntimeProfile,
    *,
    trace: bool = False,
    batch: int | None = None,
    fuse: bool = False,
    autotune: bool = False,
) -> Any:
    if backend == "threaded":
        from repro.hinch import ThreadedRuntime

        rt = ThreadedRuntime(
            program, registry, nodes=n,
            pipeline_depth=profile.pipeline_depth,
            max_iterations=profile.frames, trace=trace, fuse=fuse,
        )
    elif backend == "process":
        from repro.hinch import ProcessRuntime

        rt = ProcessRuntime(
            program, registry, workers=n,
            pipeline_depth=profile.pipeline_depth,
            max_iterations=profile.frames, trace=trace,
            batch=profile.batch if batch is None else batch,
            fuse=fuse, autotune=autotune,
        )
    else:
        raise ReproError(f"unknown backend {backend!r}")
    return rt.run()


def _measure_cell(
    program: Any, registry: Any, backend: str, n: int,
    profile: RuntimeProfile, *, fuse: bool = False,
) -> dict[str, Any]:
    """Median-of-``repeats`` wall time for one standalone cell.

    Used for isolated measurements (tests, ad-hoc probes); the full
    suite goes through :func:`_measure_app`, which interleaves repeats
    across cells to cancel host drift.
    """
    times: list[float] = []
    for _ in range(max(1, profile.repeats)):
        result = _run_once(program, registry, backend, n, profile,
                           fuse=fuse)
        if result.completed_iterations != profile.frames:
            raise ReproError(
                f"{backend} x{n}: completed {result.completed_iterations} "
                f"of {profile.frames} iterations"
            )
        times.append(result.elapsed_seconds)
    median = statistics.median(times)
    return {
        "workers": n,
        "frames": profile.frames,
        "seconds": min(times),
        "median_seconds": median,
        "frames_per_sec": profile.frames / median,
    }


def _measure_app(
    program: Any, registry: Any, profile: RuntimeProfile,
) -> dict[str, Any]:
    """Median-of-``repeats`` wall time per (backend, workers) cell.

    Timings come from ``RunResult.elapsed_seconds``, which includes
    worker spawn on the process backend — startup is part of what a user
    pays, so it is not hidden.

    Repeats are interleaved round-robin across every cell rather than
    run cell-by-cell: host drift over the suite (frequency scaling,
    cache and page warmth, background load) then lands on all
    configurations equally instead of flattering whichever cell happened
    to run first — on a loaded single-core host that ordering bias
    easily exceeds the n1-vs-n4 difference being measured.
    """
    sections = (
        ("threaded", "threaded", False),
        ("process", "process", False),
        # chain fusion (--fuse): same apps, linear chains compiled to
        # single-dispatch kernels — the utilization-gap closer
        ("process_fused", "process", True),
    )
    configs = [
        (label, backend, fuse, n)
        for label, backend, fuse in sections
        for n in profile.workers
    ]
    samples: dict[tuple[str, int], list[float]] = {
        (label, n): [] for label, _, _, n in configs
    }
    for _ in range(max(1, profile.repeats)):
        for label, backend, fuse, n in configs:
            result = _run_once(program, registry, backend, n, profile,
                               fuse=fuse)
            if result.completed_iterations != profile.frames:
                raise ReproError(
                    f"{label} x{n}: completed "
                    f"{result.completed_iterations} of {profile.frames} "
                    "iterations"
                )
            samples[(label, n)].append(result.elapsed_seconds)
    out: dict[str, Any] = {}
    for label, _backend, _fuse in sections:
        cells: dict[str, Any] = {}
        base_fps: float | None = None
        for n in profile.workers:
            times = samples[(label, n)]
            median = statistics.median(times)
            cell = {
                "workers": n,
                "frames": profile.frames,
                "seconds": min(times),
                "median_seconds": median,
                "frames_per_sec": profile.frames / median,
            }
            if n == min(profile.workers):
                base_fps = cell["frames_per_sec"]
            cell["speedup"] = (
                cell["frames_per_sec"] / base_fps if base_fps else 0.0
            )
            cells[f"n{n}"] = cell
        out[label] = cells
    # fused-over-unfused throughput ratio per worker count — the
    # headline chain-fusion number (acceptance: >= 2x on JPiP process)
    out["fused_over_unfused"] = {
        f"n{n}": round(
            out["process_fused"][f"n{n}"]["frames_per_sec"]
            / out["process"][f"n{n}"]["frames_per_sec"], 4,
        )
        for n in profile.workers
    }
    # one traced process run per variant at the widest configuration:
    # per-worker occupancy (dispatcher control jobs appear as worker -1)
    widest = max(profile.workers)
    for key, fuse in (("occupancy", False), ("occupancy_fused", True)):
        result = _run_once(program, registry, "process", widest, profile,
                           trace=True, fuse=fuse)
        pool = result.pool_stats
        trace = result.trace
        span = trace.makespan()
        # Utilization of the *parallel* (sliced) stages only.  Their
        # compute is identical fused and unfused — fusion never changes
        # a sliced kernel's math — so this isolates the scheduling
        # effect: unfused, sliced jobs sit starved behind the serial
        # bitstream stages; fused, the makespan collapses around them.
        # Aggregate `utilization` conflates that with the peephole
        # doing strictly *less* work per frame (on a 1-core host it can
        # drop while throughput triples), hence the separate metric.
        sliced_busy = sum(
            e.duration for e in trace.events
            if e.kind not in ATTRIBUTION_KINDS and "[" in e.node_id
        )
        # Denominator honesty: lazy spawn (and elastic resize) mean the
        # pool may never fork all ``widest`` slots — utilisation over
        # the configured ceiling undercounts how busy the live workers
        # were, so both ratios divide by workers that actually ran.
        live = max(
            result.workers_spawned or len(trace.workers_seen()), 1
        )
        out[key] = {
            "workers": widest,
            "workers_spawned": result.workers_spawned,
            "per_worker_busy": {
                str(w): round(busy, 6)
                for w, busy in trace.per_worker_busy().items()
            },
            "utilization": round(trace.utilization(live), 4),
            "parallel_stage_utilization": round(
                sliced_busy / (span * live), 4) if span > 0 else 0.0,
            "busy_seconds": round(trace.busy_time(), 6),
            "jobs": sum(
                1 for e in trace.events if e.kind not in ATTRIBUTION_KINDS
            ),
            # Dispatch-path cost counters: bytes pickled for control
            # metadata and how many values crossed the pipes as pickles
            # rather than shared planes.  Batching and fusion both exist
            # to shrink these.
            "meta_pickled_bytes": pool.get("meta_pickled_bytes", 0),
            "pickle_packs": pool.get("pickle_packs", 0),
        }
    return out


def _measure_dispatch_overhead(profile: RuntimeProfile) -> dict[str, Any]:
    """Pure dispatcher throughput: empty-kernel jobs/sec, batched vs not.

    The sleep probe at 0 ms blocks for nothing and computes nothing, so
    wall time is dispatch machinery only — pickling, pipe wakeups,
    readiness bookkeeping.  Comparing ``batch=1`` against the profile's
    batch isolates what lease batching buys independent of core count.
    Informational: not flattened by :func:`_wall_metrics`, so it never
    trips the regression gate.
    """
    registry = probe_registry()
    spec = build_sleep_probe(stages=profile.probe_stages, sleep_ms=0.0)
    program = expand(spec, default_ports(registry), name="dispatch-probe")
    n = max(profile.workers)
    out: dict[str, Any] = {"workers": n}
    for label, batch in (("unbatched", 1), ("batched", profile.batch)):
        times: list[float] = []
        jobs = 0
        for _ in range(max(1, profile.repeats)):
            result = _run_once(program, registry, "process", n, profile,
                               batch=batch)
            if result.completed_iterations != profile.frames:
                raise ReproError(
                    f"dispatch_overhead/{label}: completed "
                    f"{result.completed_iterations} of {profile.frames}"
                )
            # task jobs per iteration: source + sliced copies + sink
            jobs = profile.frames * (profile.probe_stages + 2)
            times.append(result.elapsed_seconds)
        median = statistics.median(times)
        out[label] = {
            "batch": batch,
            "jobs": jobs,
            "median_seconds": round(median, 6),
            "jobs_per_sec": round(jobs / median, 2),
        }
    unbatched = out["unbatched"]["jobs_per_sec"]
    if unbatched:
        out["batched_speedup"] = round(
            out["batched"]["jobs_per_sec"] / unbatched, 4
        )
    return out


def _measure_faults(profile: RuntimeProfile) -> dict[str, Any]:
    """Fault-recovery probe: lose a worker mid-run, measure the cost.

    Uses the sleep-probe app (runtime-dominated, core-count independent)
    at the widest worker configuration.  ``kill`` loses a worker without
    warning mid-run; ``hang`` wedges one until the watchdog fires.  Both
    must still complete every frame.  This section is informational — it
    is deliberately *not* flattened by :func:`_wall_metrics`, so recovery
    timing (dominated by the scripted fault, not by runtime code) never
    trips the regression gate.
    """
    from repro.hinch import ProcessRuntime

    registry = probe_registry()
    program = probe_program(profile)
    n = max(profile.workers)
    mid_job = max(1, profile.frames)  # roughly mid-run in dispatch order
    watchdog = max(0.5, profile.probe_sleep_ms * 20.0 / 1000.0)
    out: dict[str, Any] = {"workers": n, "watchdog": watchdog}
    scenarios: tuple[tuple[str, dict[str, Any]], ...] = (
        ("clean", {}),
        ("kill", {"faults": f"kill:{mid_job}"}),
        ("hang", {"faults": f"hang:{mid_job}", "watchdog": watchdog}),
    )
    for scenario, kwargs in scenarios:
        rt = ProcessRuntime(
            program, registry, workers=n,
            pipeline_depth=profile.pipeline_depth,
            max_iterations=profile.frames, **kwargs,
        )
        result = rt.run()
        if result.completed_iterations != profile.frames:
            raise ReproError(
                f"faults/{scenario}: completed {result.completed_iterations} "
                f"of {profile.frames} iterations"
            )
        kinds: dict[str, int] = {}
        for event in result.fault_events:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        out[scenario] = {
            "seconds": round(result.elapsed_seconds, 6),
            "fault_kinds": kinds,
            "retries": rt.scheduler.retries,
            "frames_seen": result.components["sink"].frames_seen,
            "leaked_planes": rt.pool.live_planes,
        }
    return out


def _measure_autotune(profile: RuntimeProfile) -> dict[str, Any]:
    """Closed-loop controller vs. a hand-tuned static grid (JPiP).

    Three measurements, medians over ``repeats``:

    * a static ``(workers, batch)`` grid with fusion on — the best cell
      is what a careful human would ship;
    * one adaptive run per repeat, deliberately started mis-tuned
      (widest pool, ``batch=1``) so the controller has work to do;
    * the configuration the *last* adaptive run converged to, re-run
      statically — transition costs excluded, which is exactly the
      claim under test ("does the controller land somewhere good?").

    ``ratio`` is converged-over-best-static frames/sec and gates CI at
    :data:`AUTOTUNE_MIN_RATIO` via :func:`compare`.  Wall times here
    are deliberately *not* flattened by :func:`_wall_metrics`: the
    section carries its own gate and the adaptive trajectory is
    timing-dependent, so a baseline-delta check would only add noise.
    """
    from repro.apps import build_jpip, make_program
    from repro.core.reslice import reslice
    from repro.hinch import ProcessRuntime

    # One decision costs two agreeing observation windows plus a
    # cooldown; walking batch *and* pool size home takes several.  The
    # per-app frame budget is far too short for that, so this section
    # runs longer regardless of profile.
    frames = max(64, profile.frames)
    prof = RuntimeProfile(**{**profile.__dict__, "frames": frames})
    registry = default_registry()
    program = make_program(
        build_jpip(1, width=prof.width, height=prof.height,
                   pip_height=prof.height, factor=4, slices=prof.slices,
                   frames=frames),
        name="jpip1")

    def median_fps(times: list[float]) -> float:
        return frames / statistics.median(times)

    static: dict[str, Any] = {}
    best: dict[str, Any] | None = None
    for n in prof.workers:
        for b in sorted({1, prof.batch}):
            times: list[float] = []
            for _ in range(max(1, prof.repeats)):
                result = _run_once(program, registry, "process", n, prof,
                                   batch=b, fuse=True)
                if result.completed_iterations != frames:
                    raise ReproError(
                        f"autotune/static n{n}b{b}: completed "
                        f"{result.completed_iterations} of {frames}"
                    )
                times.append(result.elapsed_seconds)
            cell = {
                "workers": n, "batch": b,
                "median_seconds": round(statistics.median(times), 6),
                "frames_per_sec": round(median_fps(times), 4),
            }
            static[f"n{n}b{b}"] = cell
            if best is None or cell["frames_per_sec"] > best["frames_per_sec"]:
                best = {"key": f"n{n}b{b}", **cell}
    assert best is not None

    start_workers = max(prof.workers)
    times = []
    events: list[dict[str, Any]] = []
    final_workers, final_batch = start_workers, 1
    for _ in range(max(1, prof.repeats)):
        rt = ProcessRuntime(
            program, registry, workers=start_workers,
            pipeline_depth=prof.pipeline_depth, max_iterations=frames,
            batch=1, fuse=True, autotune=True,
        )
        result = rt.run()
        if result.completed_iterations != frames:
            raise ReproError(
                f"autotune/adaptive: completed "
                f"{result.completed_iterations} of {frames}"
            )
        times.append(result.elapsed_seconds)
        events = result.autotune_events
        final_workers, final_batch = rt.workers, rt.batch
    adaptive_fps = median_fps(times)

    converged_slices: dict[str, int] = {}
    for event in events:
        if event.get("slices"):
            converged_slices.update(event["slices"])
    converged_program = (
        reslice(program, converged_slices) if converged_slices else program
    )
    times = []
    for _ in range(max(1, prof.repeats)):
        result = _run_once(converged_program, registry, "process",
                           final_workers, prof, batch=final_batch,
                           fuse=True)
        if result.completed_iterations != frames:
            raise ReproError(
                f"autotune/converged: completed "
                f"{result.completed_iterations} of {frames}"
            )
        times.append(result.elapsed_seconds)
    converged_fps = median_fps(times)

    decisions = []
    for event in events:
        predicted = event.get("predicted_fps")
        achieved = event.get("achieved_fps")
        decisions.append({
            "kind": event["kind"],
            "iteration": event["iteration"],
            "reason": event["reason"],
            "predicted_fps": round(predicted, 4) if predicted else None,
            "achieved_fps": round(achieved, 4) if achieved else None,
            "prediction_error": (
                round(achieved / predicted - 1.0, 4)
                if predicted and achieved else None
            ),
        })
    return {
        "app": "jpip",
        "frames": frames,
        "gate": AUTOTUNE_MIN_RATIO,
        "static": static,
        "best_static": best,
        "adaptive": {
            "start_workers": start_workers,
            "start_batch": 1,
            "frames_per_sec": round(adaptive_fps, 4),
        },
        "converged": {
            "workers": final_workers,
            "batch": final_batch,
            "slices": converged_slices,
            "frames_per_sec": round(converged_fps, 4),
        },
        "ratio": round(converged_fps / best["frames_per_sec"], 4),
        "decisions": decisions,
    }


def collect(
    profile: RuntimeProfile, *, repeats: int | None = None
) -> dict[str, Any]:
    """Measure everything; returns the ``BENCH_runtime.json`` payload."""
    if repeats is not None:
        profile = RuntimeProfile(**{
            **profile.__dict__, "repeats": repeats,
        })
    registry = default_registry()
    payload: dict[str, Any] = {
        "schema": 1,
        "suite": "runtime",
        "profile": profile.name,
        "frames": profile.frames,
        "repeats": profile.repeats,
        "workers": list(profile.workers),
        "python": platform.python_version(),
        "platform": platform.platform(),
        #: speedup ceilings are physical: CPU-bound kernels cannot beat
        #: this number no matter how well the runtime scales
        "cpu_count": os.cpu_count(),
        "batch": profile.batch,
        "apps": {},
    }
    for name, program in _app_programs(profile).items():
        payload["apps"][name] = _measure_app(program, registry, profile)
    payload["probe"] = _measure_app(
        probe_program(profile), probe_registry(), profile
    )
    payload["faults"] = _measure_faults(profile)
    payload["dispatch_overhead"] = _measure_dispatch_overhead(profile)
    payload["autotune"] = _measure_autotune(profile)
    return payload


# -- comparison / report ----------------------------------------------------


def _wall_metrics(payload: dict) -> dict[str, float]:
    """Flatten ``app/backend/nN -> median seconds`` for regression checks."""
    metrics: dict[str, float] = {}
    sections = dict(payload.get("apps", {}))
    if "probe" in payload:
        sections["probe"] = payload["probe"]
    for app, backends in sections.items():
        for backend, cells in backends.items():
            if backend not in ("threaded", "process", "process_fused"):
                continue  # occupancy / ratio sections are informational
            for key, cell in cells.items():
                seconds = cell.get("median_seconds", cell.get("seconds"))
                if isinstance(seconds, (int, float)):
                    metrics[f"{app}/{backend}/{key}"] = float(seconds)
    return metrics


def compare(
    current: dict,
    baseline: dict,
    *,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> list[str]:
    """Median wall-clock regressions of ``current`` vs ``baseline``.

    Same contract as :func:`repro.bench.perf.compare`: only metrics
    present on both sides, profiles must match, and the returned list is
    empty when the comparison passes.
    """
    if current.get("profile") != baseline.get("profile"):
        raise ReproError(
            f"profile mismatch: current={current.get('profile')!r} "
            f"baseline={baseline.get('profile')!r}"
        )
    regressions = []
    cur = _wall_metrics(current)
    base = _wall_metrics(baseline)
    for name in sorted(cur.keys() & base.keys()):
        before, after = base[name], cur[name]
        if before > 0 and after > before * (1.0 + max_regression):
            regressions.append(
                f"{name}: {after:.3f}s vs baseline {before:.3f}s "
                f"({after / before - 1.0:+.0%}, limit "
                f"{max_regression:+.0%})"
            )
    # The autotune section gates on its own absolute criterion rather
    # than a baseline delta: the controller must converge to within
    # ``gate`` of the best static configuration *in this collection*.
    auto = current.get("autotune")
    if auto:
        ratio = auto.get("ratio")
        floor = auto.get("gate", AUTOTUNE_MIN_RATIO)
        if isinstance(ratio, (int, float)) and ratio < floor:
            regressions.append(
                f"autotune/{auto.get('app', 'jpip')}: converged at "
                f"{ratio:.3f}x of best static "
                f"({auto['converged']['frames_per_sec']:.2f} vs "
                f"{auto['best_static']['frames_per_sec']:.2f} f/s, "
                f"gate {floor:.2f}x)"
            )
    return regressions


def render_report(payload: dict, baseline: dict | None = None) -> str:
    """Human-readable summary of one collection (and baseline deltas)."""
    lines = [
        f"runtime suite, profile {payload['profile']} "
        f"({payload['frames']} frames, median of {payload['repeats']}) "
        f"on Python {payload['python']}, {payload['cpu_count']} core(s)"
    ]
    base = _wall_metrics(baseline) if baseline else {}
    sections = dict(payload.get("apps", {}))
    if "probe" in payload:
        sections["probe"] = payload["probe"]
    for app, backends in sections.items():
        lines.append(f"{app}:")
        for backend in ("threaded", "process", "process_fused"):
            cells = backends.get(backend, {})
            for key in sorted(cells, key=lambda k: int(k[1:])):
                cell = cells[key]
                parts = [
                    f"  {backend:<13} x{cell['workers']}"
                    f" {cell['median_seconds']:8.3f}s"
                    f" {cell['frames_per_sec']:8.2f} f/s"
                    f"  {cell['speedup']:5.2f}x"
                ]
                before = base.get(f"{app}/{backend}/{key}")
                if before:
                    delta = cell["median_seconds"] / before - 1.0
                    parts.append(f"[{delta:+.0%} vs baseline]")
                lines.append(" ".join(parts))
        ratio = backends.get("fused_over_unfused")
        if ratio:
            pairs = ", ".join(
                f"{k}={v:.2f}x"
                for k, v in sorted(ratio.items(), key=lambda kv: int(kv[0][1:]))
            )
            lines.append(f"  fused/unfused throughput: {pairs}")
        for occ_key in ("occupancy", "occupancy_fused"):
            occ = backends.get(occ_key)
            if occ:
                busy = ", ".join(
                    f"w{w}={v:.3f}s"
                    for w, v in occ["per_worker_busy"].items()
                )
                psu = occ.get("parallel_stage_utilization")
                psu_part = (
                    f", parallel stages {psu:.1%}" if psu is not None else ""
                )
                lines.append(
                    f"  {occ_key} x{occ['workers']}: {busy} "
                    f"(utilization {occ['utilization']:.0%}{psu_part})"
                )
    auto = payload.get("autotune")
    if auto:
        best = auto["best_static"]
        conv = auto["converged"]
        adaptive = auto["adaptive"]
        lines.append(
            f"autotune ({auto['app']}, {auto['frames']} frames, "
            f"gate >= {auto['gate']:.2f}x of best static):"
        )
        lines.append(
            f"  best static    {best['key']:<8}"
            f"{best['frames_per_sec']:8.2f} f/s"
        )
        lines.append(
            f"  adaptive run   n{adaptive['start_workers']}b"
            f"{adaptive['start_batch']}->  "
            f"{adaptive['frames_per_sec']:8.2f} f/s (incl. transients)"
        )
        lines.append(
            f"  converged      n{conv['workers']}b{conv['batch']:<6}"
            f"{conv['frames_per_sec']:8.2f} f/s  {auto['ratio']:5.2f}x"
        )
        for d in auto["decisions"]:
            tail = ""
            if d["predicted_fps"] is not None and d["achieved_fps"] is not None:
                tail = (
                    f" — predicted {d['predicted_fps']:.1f} f/s, "
                    f"achieved {d['achieved_fps']:.1f}"
                    f" ({d['prediction_error']:+.0%})"
                )
            lines.append(
                f"    [{d['kind']}@{d['iteration']}] {d['reason']}{tail}"
            )
    faults = payload.get("faults")
    if faults:
        lines.append(f"fault recovery (probe, x{faults['workers']}):")
        for scenario in ("clean", "kill", "hang"):
            cell = faults.get(scenario)
            if not cell:
                continue
            kinds = cell.get("fault_kinds", {})
            detail = (
                ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
                or "no faults"
            )
            lines.append(
                f"  {scenario:<6} {cell['seconds']:8.3f}s  "
                f"retries={cell['retries']}  {detail}"
            )
    overhead = payload.get("dispatch_overhead")
    if overhead:
        lines.append(f"dispatch overhead (empty kernels, x{overhead['workers']}):")
        for label in ("unbatched", "batched"):
            cell = overhead.get(label)
            if not cell:
                continue
            lines.append(
                f"  {label:<9} batch={cell['batch']}"
                f" {cell['median_seconds']:8.3f}s"
                f" {cell['jobs_per_sec']:9.1f} jobs/s"
            )
        if "batched_speedup" in overhead:
            lines.append(
                f"  batching speedup: {overhead['batched_speedup']:.2f}x"
            )
    return "\n".join(lines)
