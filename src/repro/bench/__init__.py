"""Benchmark harness: regenerates every result figure of the paper.

* :mod:`repro.bench.harness` — application variants (PiP-1/2, JPiP-1/2,
  Blur-3x3/5x5, PiP-12, JPiP-12, Blur-35), their XSPCL and sequential
  builds, and cached simulation runners;
* :mod:`repro.bench.figures` — FIG8 (sequential overhead), FIG9 (speedup
  on 1..9 nodes), FIG10 (reconfiguration overhead), plus the ablations
  listed in DESIGN.md §5;
* :mod:`repro.bench.report` — ASCII tables and charts so the regenerated
  figures print like the paper's.
"""

from repro.bench.harness import (
    RECONFIG_VARIANTS,
    STATIC_VARIANTS,
    Harness,
)
from repro.bench.figures import (
    fig8_sequential_overhead,
    fig9_speedup,
    fig10_reconfiguration_overhead,
)

__all__ = [
    "Harness",
    "STATIC_VARIANTS",
    "RECONFIG_VARIANTS",
    "fig8_sequential_overhead",
    "fig9_speedup",
    "fig10_reconfiguration_overhead",
]
