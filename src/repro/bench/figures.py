"""Regeneration of the paper's result figures and the ablation studies.

Each function returns a ``FigureResult`` whose ``rows`` hold the raw
numbers and whose ``render()`` prints the series the way the paper's
figure reports them.  Paper headline values are embedded as
``paper_notes`` so a run shows measured-vs-paper side by side (absolute
cycle counts are not expected to match — the shape is; see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.bench.harness import (
    Harness,
    RECONFIG_VARIANTS,
    STATIC_VARIANTS,
)
from repro.bench.report import bar_chart, format_table, line_chart

__all__ = [
    "FigureResult",
    "fig8_sequential_overhead",
    "fig9_speedup",
    "fig10_reconfiguration_overhead",
    "ablation_fusion",
    "ablation_pipeline_depth",
    "ablation_spization",
    "prediction_accuracy",
]

DEFAULT_NODES = tuple(range(1, 10))  # "a tile with at most 9 TriMedia cores"


@dataclass
class FigureResult:
    figure_id: str
    title: str
    headers: tuple[str, ...]
    rows: list[tuple]
    chart: str = ""
    paper_notes: tuple[str, ...] = ()

    def render(self) -> str:
        parts = [
            format_table(self.headers, self.rows,
                         title=f"{self.figure_id}: {self.title}")
        ]
        if self.chart:
            parts.append(self.chart)
        if self.paper_notes:
            parts.append("Paper reports:")
            parts.extend(f"  - {note}" for note in self.paper_notes)
        return "\n\n".join(parts)


def fig8_sequential_overhead(harness: Harness | None = None) -> FigureResult:
    """Figure 8: XSPCL vs hand-written sequential versions (cycles)."""
    h = harness or Harness()
    rows = []
    bars = []
    for name in STATIC_VARIANTS:
        seq = h.run_sequential(name).cycles
        xspcl = h.run_xspcl(name, nodes=1).cycles
        overhead = h.sequential_overhead(name)
        rows.append((name, seq / 1e6, xspcl / 1e6, f"{overhead * 100:+.1f}%"))
        bars.append((f"{name} seq", seq / 1e6))
        bars.append((f"{name} XSPCL", xspcl / 1e6))
    return FigureResult(
        figure_id="FIG8",
        title="Sequential overhead (1 node, cycles x 1e6)",
        headers=("variant", "sequential Mcyc", "XSPCL Mcyc", "overhead"),
        rows=rows,
        chart=bar_chart(bars, unit="M", title="cycles x 1e6"),
        paper_notes=(
            "PiP-1/PiP-2 overhead ~5% (stream buffering between split components)",
            "JPiP overhead ~18% (significantly more cache misses than sequential)",
            "Blur overhead ~0 (<1.1%, measuring noise; no operations combined)",
        ),
    )


def fig9_speedup(
    harness: Harness | None = None,
    nodes: Sequence[int] = DEFAULT_NODES,
) -> FigureResult:
    """Figure 9: speedup vs the fastest sequential version, 1..9 nodes."""
    h = harness or Harness()
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for name in STATIC_VARIANTS:
        speedups = [h.speedup(name, n) for n in nodes]
        rows.append((name, *[f"{s:.2f}" for s in speedups]))
        series[name] = [(float(n), s) for n, s in zip(nodes, speedups)]
    series["ideal"] = [(float(n), float(n)) for n in nodes]
    return FigureResult(
        figure_id="FIG9",
        title="Speedup on the SpaceCAKE tile (vs fastest sequential)",
        headers=("variant", *[f"n={n}" for n in nodes]),
        rows=rows,
        chart=line_chart(series, title="speedup vs nodes",
                         x_label="nodes", y_label="speedup"),
        paper_notes=(
            "All applications exhibit good efficiency",
            "JPiP performs worst (high sequential overhead)",
            "Blur performs best (largest computation/communication ratio)",
        ),
    )


def fig10_reconfiguration_overhead(
    harness: Harness | None = None,
    nodes: Sequence[int] = DEFAULT_NODES,
) -> FigureResult:
    """Figure 10: reconfigurable variants vs static averages, 1..9 nodes."""
    h = harness or Harness()
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for name in RECONFIG_VARIANTS:
        overheads = [h.reconfig_overhead(name, n) * 100 for n in nodes]
        rows.append((name, *[f"{o:.1f}%" for o in overheads]))
        series[name] = [(float(n), o) for n, o in zip(nodes, overheads)]
    return FigureResult(
        figure_id="FIG10",
        title="Reconfiguration overhead (toggle every 12 frames, %)",
        headers=("variant", *[f"n={n}" for n in nodes]),
        rows=rows,
        chart=line_chart(series, title="reconfiguration overhead (%) vs nodes",
                         x_label="nodes", y_label="overhead %"),
        paper_notes=(
            "Overhead stays below 15% although reconfiguration is frequent",
            "Overhead increases with the number of nodes (drain serializes)",
            "Small non-monotonic variations occur",
        ),
    )


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md §5)
# ---------------------------------------------------------------------------


def ablation_fusion(
    harness: Harness | None = None,
    nodes: Sequence[int] = (1, 4, 9),
) -> FigureResult:
    """ABL-1 (paper §4.1 discussion): component grouping vs parallelism.

    Three structures per application and node count:

    * **split** — the XSPCL pipeline as-is;
    * **grouped** — the same pipeline with linear chains "scheduled as
      one entity" (the paper's proposed future version, implemented in
      :mod:`repro.hinch.grouping`);
    * **fused** — the source-level fused components (the sequential
      baselines) run under the same Hinch runtime.

    Grouping/fusion avoid intermediate-stream cache misses but "reduce
    the amount of parallelism in the application", so they win at 1 node
    and lose at scale — the balance the paper leaves to future research.
    """
    h = harness or Harness()
    rows = []
    for name in ("PiP-2", "JPiP-1"):
        for n in nodes:
            split = h.run_xspcl(name, nodes=n).cycles
            grouped = _run_grouped_under_hinch(h, name, n)
            fused = _run_fused_under_hinch(h, name, n)
            rows.append(
                (name, n, split / 1e6,
                 grouped / 1e6 if grouped is not None else float("nan"),
                 fused / 1e6,
                 f"{(grouped / split - 1) * 100:+.1f}%" if grouped else "n/a",
                 f"{(fused / split - 1) * 100:+.1f}%")
            )
    return FigureResult(
        figure_id="ABL-1",
        title="Fusion ablation: split vs grouped vs fused stages under Hinch",
        headers=("variant", "nodes", "split Mcyc", "grouped Mcyc",
                 "fused Mcyc", "grouped vs split", "fused vs split"),
        rows=rows,
        paper_notes=(
            "Grouping producer/consumer cuts cache misses but reduces "
            "parallelism; 'choosing the right balance is subject to "
            "further research'",
        ),
    )


def _run_grouped_under_hinch(h: Harness, name: str, nodes: int) -> float | None:
    """The §4.1 grouped structure; only JPiP expresses one (slice-local
    IDCT+downscale on the Y field).  Returns None where no grouping is
    legal (PiP's blend needs all overlay slices)."""
    from repro.apps import build_jpip, make_program
    from repro.spacecake import SimRuntime
    from repro.bench.harness import PIPELINE_DEPTH

    if not name.startswith("JPiP"):
        return None
    n_pips = int(name.split("-")[1])
    prog_key = (name, "grouped")
    program = h._programs.get(prog_key)
    if program is None:
        program = make_program(
            build_jpip(n_pips, grouped_stages=True), name=f"{name}/grouped"
        )
        h._programs[prog_key] = program
    key = ("grouped-hinch", name, nodes, h.frames(name))
    cached = h._results.get(key)
    if cached is None:
        cached = SimRuntime(
            program,
            h.registry,
            nodes=nodes,
            pipeline_depth=PIPELINE_DEPTH,
            max_iterations=h.frames(name),
            cost_params=h.cost_params,
            group_chains=True,
        ).run()
        h._results[key] = cached
    return cached.cycles


def _run_fused_under_hinch(h: Harness, name: str, nodes: int) -> float:
    from repro.spacecake import SimRuntime
    from repro.bench.harness import PIPELINE_DEPTH

    key = ("fused-hinch", name, nodes, h.frames(name))
    cached = h._results.get(key)
    if cached is None:
        cached = SimRuntime(
            h.program(name, "sequential"),
            h.registry,
            nodes=nodes,
            pipeline_depth=PIPELINE_DEPTH,
            max_iterations=h.frames(name),
            cost_params=h.cost_params,
        ).run()
        h._results[key] = cached
    return cached.cycles


def ablation_pipeline_depth(
    harness: Harness | None = None,
    depths: Sequence[int] = (1, 2, 3, 5, 8),
    nodes: int = 4,
    variant: str = "PiP-1",
) -> FigureResult:
    """ABL-2: pipeline depth sweep (paper fixes depth at 5)."""
    h = harness or Harness()
    from repro.spacecake import SimRuntime

    rows = []
    for depth in depths:
        result = SimRuntime(
            h.program(variant, "xspcl"),
            h.registry,
            nodes=nodes,
            pipeline_depth=depth,
            max_iterations=h.frames(variant),
            cost_params=h.cost_params,
        ).run()
        rows.append((variant, nodes, depth, result.cycles / 1e6,
                     f"{result.utilization * 100:.0f}%"))
    return FigureResult(
        figure_id="ABL-2",
        title="Pipeline depth ablation (concurrent iterations)",
        headers=("variant", "nodes", "depth", "Mcyc", "utilization"),
        rows=rows,
        paper_notes=(
            "The paper schedules five iterations concurrently; deeper "
            "pipelines buy utilization until dependencies saturate",
        ),
    )


def ablation_spization(
    harness: Harness | None = None,
    nodes: Sequence[int] = (1, 3, 9),
) -> FigureResult:
    """ABL-3: crossdep Blur vs its SP-ized form (paper §3.3).

    SP-ization inserts a synchronization point between the blur phases —
    required for prediction, paid for in parallelism.
    """
    h = harness or Harness()
    from repro.apps import build_blur, make_program
    from repro.bench.harness import PIPELINE_DEPTH
    from repro.spacecake import SimRuntime

    sp_prog = make_program(build_blur(3, sp_form=True), name="blur3-sp")
    rows = []
    for n in nodes:
        crossdep = h.run_xspcl("Blur-3x3", nodes=n).cycles
        sp = SimRuntime(
            sp_prog, h.registry, nodes=n, pipeline_depth=PIPELINE_DEPTH,
            max_iterations=h.frames("Blur-3x3"), cost_params=h.cost_params,
        ).run().cycles
        rows.append((n, crossdep / 1e6, sp / 1e6,
                     f"{(sp / crossdep - 1) * 100:+.1f}%"))
    return FigureResult(
        figure_id="ABL-3",
        title="SP-ization penalty: crossdep Blur vs synchronized phases",
        headers=("nodes", "crossdep Mcyc", "SP form Mcyc", "SP penalty"),
        rows=rows,
        paper_notes=(
            "'optimized subgraphs with non-SP dependencies can easily be "
            "expressed'; SP form is only needed for prediction",
        ),
    )


def prediction_accuracy(
    harness: Harness | None = None,
    nodes: Sequence[int] = (1, 4, 9),
) -> FigureResult:
    """PRED: PAMELA-style analytic estimate vs simulated cycles."""
    h = harness or Harness()
    from repro.bench.harness import PIPELINE_DEPTH
    from repro.prediction import predict_run

    rows = []
    for name in ("PiP-1", "JPiP-1", "Blur-3x3"):
        for n in nodes:
            simulated = h.run_xspcl(name, nodes=n).cycles
            predicted = predict_run(
                h.program(name, "xspcl"), h.registry, nodes=n,
                iterations=h.frames(name), pipeline_depth=PIPELINE_DEPTH,
                cost_params=h.cost_params,
            )
            rows.append((name, n, simulated / 1e6, predicted / 1e6,
                         f"{(predicted / simulated - 1) * 100:+.1f}%"))
    return FigureResult(
        figure_id="PRED",
        title="Prediction accuracy (PAMELA estimate vs simulation)",
        headers=("variant", "nodes", "simulated Mcyc", "predicted Mcyc",
                 "error"),
        rows=rows,
        paper_notes=(
            "The framework feeds XSPCL to a performance estimation tool "
            "for parallelization decisions (Fig. 1 / PAM-SoC)",
        ),
    )
