"""Experiment harness: the paper's application variants on the simulator.

Experimental setup reproduced from §4:

* PiP and Blur process 96 frames; JPiP processes 24 ("because of limited
  simulation speed" — theirs and ours alike);
* five iterations are scheduled concurrently (pipeline depth 5);
* speedups are measured against the *fastest* sequential version;
* at one node, synchronization operations are disabled (the cost model's
  sync term vanishes when ``nodes == 1``);
* sequential baselines run without the Hinch runtime: one node, depth 1,
  all runtime overhead constants zeroed.

``Harness`` memoizes simulation results, so a figure sweep never runs
the same configuration twice.  ``frames_scale`` shrinks frame counts
uniformly for quick runs (tests use it; the real figures use 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.apps import (
    build_blur,
    build_blur_sequential,
    build_jpip,
    build_jpip_sequential,
    build_pip,
    build_pip_sequential,
    make_program,
)
from repro.components.registry import default_registry
from repro.core.ast import Spec
from repro.core.program import Program
from repro.errors import ReproError
from repro.spacecake import CostParams, SimResult, SimRuntime

__all__ = ["VariantDef", "STATIC_VARIANTS", "RECONFIG_VARIANTS", "Harness",
           "SEQUENTIAL_PARAMS"]

#: "hand-written sequential versions, that do not use the Hinch runtime"
SEQUENTIAL_PARAMS = CostParams(
    job_overhead_cycles=0.0,
    sync_overhead_cycles=0.0,
    manager_invoke_cycles=0.0,
    barrier_cycles=0.0,
    reconfig_splice_cycles=0.0,
)

PIPELINE_DEPTH = 5  # "five iterations are simultaneously scheduled"


@dataclass(frozen=True)
class VariantDef:
    """One benchmark application variant."""

    name: str
    frames: int
    xspcl: Callable[[], Spec]
    sequential: Callable[[], Spec] | None = None
    #: names of the static variants whose average is the Fig. 10 baseline,
    #: ordered (option-disabled variant, option-enabled variant)
    static_baselines: tuple[str, ...] = ()
    #: the option whose state selects between the static baselines
    toggle_option: str = ""


STATIC_VARIANTS: dict[str, VariantDef] = {
    "PiP-1": VariantDef(
        "PiP-1", 96,
        lambda: build_pip(1),
        lambda: build_pip_sequential(1),
    ),
    "PiP-2": VariantDef(
        "PiP-2", 96,
        lambda: build_pip(2),
        lambda: build_pip_sequential(2),
    ),
    "JPiP-1": VariantDef(
        "JPiP-1", 24,
        lambda: build_jpip(1),
        lambda: build_jpip_sequential(1),
    ),
    "JPiP-2": VariantDef(
        "JPiP-2", 24,
        lambda: build_jpip(2),
        lambda: build_jpip_sequential(2),
    ),
    "Blur-3x3": VariantDef(
        "Blur-3x3", 96,
        lambda: build_blur(3),
        lambda: build_blur_sequential(3),
    ),
    "Blur-5x5": VariantDef(
        "Blur-5x5", 96,
        lambda: build_blur(5),
        lambda: build_blur_sequential(5),
    ),
}

#: §4.3: "JPiP-12 and PiP-12 start with one picture-in-picture and switch
#: a second picture-in-picture on and off every 12 frames.  Blur-35
#: switches between the 3x3 and 5x5 kernel every 12 frames."
RECONFIG_VARIANTS: dict[str, VariantDef] = {
    "PiP-12": VariantDef(
        "PiP-12", 96,
        lambda: build_pip(2, reconfigurable=True, period=12),
        static_baselines=("PiP-1", "PiP-2"),
        toggle_option="pip_opt",
    ),
    "JPiP-12": VariantDef(
        "JPiP-12", 24,
        lambda: build_jpip(2, reconfigurable=True, period=12),
        static_baselines=("JPiP-1", "JPiP-2"),
        toggle_option="pip_opt",
    ),
    "Blur-35": VariantDef(
        "Blur-35", 96,
        lambda: build_blur(reconfigurable=True, period=12),
        static_baselines=("Blur-3x3", "Blur-5x5"),
        toggle_option="blur5",
    ),
}

ALL_VARIANTS = {**STATIC_VARIANTS, **RECONFIG_VARIANTS}


class Harness:
    """Builds, simulates, and memoizes the benchmark variants."""

    def __init__(
        self,
        *,
        frames_scale: float = 1.0,
        cost_params: CostParams | None = None,
        registry: Mapping[str, type] | None = None,
    ) -> None:
        if frames_scale <= 0:
            raise ReproError(f"frames_scale must be > 0, got {frames_scale}")
        self.frames_scale = frames_scale
        self.cost_params = cost_params or CostParams()
        self.registry = registry if registry is not None else default_registry()
        self._programs: dict[tuple[str, str], Program] = {}
        self._results: dict[tuple, SimResult] = {}

    # -- building ------------------------------------------------------------

    def variant(self, name: str) -> VariantDef:
        try:
            return ALL_VARIANTS[name]
        except KeyError:
            raise ReproError(
                f"unknown variant {name!r}; known: {sorted(ALL_VARIANTS)}"
            ) from None

    def frames(self, name: str) -> int:
        return max(2, round(self.variant(name).frames * self.frames_scale))

    def program(self, name: str, flavor: str) -> Program:
        """flavor is 'xspcl' or 'sequential'; programs are cached."""
        key = (name, flavor)
        prog = self._programs.get(key)
        if prog is None:
            variant = self.variant(name)
            if flavor == "xspcl":
                spec = variant.xspcl()
            elif flavor == "sequential":
                if variant.sequential is None:
                    raise ReproError(f"variant {name!r} has no sequential build")
                spec = variant.sequential()
            else:
                raise ReproError(f"unknown flavor {flavor!r}")
            prog = make_program(spec, name=f"{name}/{flavor}")
            self._programs[key] = prog
        return prog

    # -- running ---------------------------------------------------------------

    def run_xspcl(self, name: str, *, nodes: int) -> SimResult:
        """Simulate the XSPCL version of a variant on ``nodes`` cores."""
        key = ("xspcl", name, nodes, self.frames(name))
        result = self._results.get(key)
        if result is None:
            result = SimRuntime(
                self.program(name, "xspcl"),
                self.registry,
                nodes=nodes,
                pipeline_depth=PIPELINE_DEPTH,
                max_iterations=self.frames(name),
                cost_params=self.cost_params,
            ).run()
            self._results[key] = result
        return result

    def run_sequential(self, name: str) -> SimResult:
        """Simulate the hand-written sequential baseline (no Hinch)."""
        key = ("seq", name, self.frames(name))
        result = self._results.get(key)
        if result is None:
            result = SimRuntime(
                self.program(name, "sequential"),
                self.registry,
                nodes=1,
                pipeline_depth=1,
                max_iterations=self.frames(name),
                cost_params=SEQUENTIAL_PARAMS,
            ).run()
            self._results[key] = result
        return result

    # -- derived metrics ------------------------------------------------------------

    def sequential_overhead(self, name: str) -> float:
        """Fig. 8 metric: XSPCL@1node over sequential, minus one."""
        seq = self.run_sequential(name).cycles
        xspcl = self.run_xspcl(name, nodes=1).cycles
        return xspcl / seq - 1.0

    def fastest_sequential_cycles(self, name: str) -> float:
        """§4.2: 'relative to the fastest sequential version of the
        application.  For Blur, this is the parallel version.'"""
        seq = self.run_sequential(name).cycles
        par1 = self.run_xspcl(name, nodes=1).cycles
        return min(seq, par1)

    def speedup(self, name: str, nodes: int) -> float:
        return self.fastest_sequential_cycles(name) / self.run_xspcl(
            name, nodes=nodes
        ).cycles

    def reconfig_overhead(self, name: str, nodes: int) -> float:
        """Fig. 10 metric: reconfigurable run time over the static baseline.

        The paper divides by the plain average of the two static
        applications, assuming a 50/50 duty cycle.  Our whole-graph drain
        skews the realized duty cycle (enable transitions apply a few
        frames later than disables), so we weight the static baselines by
        the dynamic run's *measured* exposure — isolating genuine
        reconfiguration cost (drain + splice) from duty-cycle accounting
        (see EXPERIMENTS.md, FIG10).
        """
        variant = self.variant(name)
        if not variant.static_baselines:
            raise ReproError(f"variant {name!r} is not a reconfigurable variant")
        result = self.run_xspcl(name, nodes=nodes)
        frames = self.frames(name)
        program = self.program(name, "xspcl")
        initial = program.options[variant.toggle_option].default_enabled
        on = result.option_exposure(
            variant.toggle_option, initial=initial, total_iterations=frames
        )
        off_name, on_name = variant.static_baselines
        c_off = self.run_xspcl(off_name, nodes=nodes).cycles
        c_on = self.run_xspcl(on_name, nodes=nodes).cycles
        baseline = ((frames - on) * c_off + on * c_on) / frames
        return result.cycles / baseline - 1.0
