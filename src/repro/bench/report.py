"""ASCII rendering of benchmark results: tables, bars, line charts.

Pure string formatting — the bench harness stays usable in any terminal
and in CI logs, with no plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "bar_chart", "line_chart"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]

    def render_row(items: Sequence[str]) -> str:
        return "  ".join(item.rjust(widths[i]) for i, item in enumerate(items))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(r) for r in cells)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


def bar_chart(
    items: Sequence[tuple[str, float]],
    *,
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart, scaled to the maximum value."""
    if not items:
        return "(no data)"
    peak = max(v for _, v in items) or 1.0
    label_w = max(len(k) for k, _ in items)
    lines = [title] if title else []
    for label, value in items:
        bar = "#" * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(f"{label.ljust(label_w)} |{bar.ljust(width)}| "
                     f"{value:,.1f}{unit}")
    return "\n".join(lines)


def line_chart(
    series: dict[str, list[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 18,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Each series gets a distinct mark; overlapping points show the mark of
    the later series.  Axes are annotated with min/max.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(0.0, min(ys)), max(ys)
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1
    grid = [[" "] * width for _ in range(height)]
    marks = "*+ox@#%&"
    for mark, (name, pts) in zip(marks * 3, series.items()):
        for x, y in pts:
            col = round((x - x0) / (x1 - x0) * (width - 1))
            row = height - 1 - round((y - y0) / (y1 - y0) * (height - 1))
            grid[row][col] = mark
    lines = [title] if title else []
    lines.append(f"{y_label} (max {y1:,.2f})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x0:,.0f} .. {x1:,.0f}")
    legend = "  ".join(
        f"{mark}={name}" for mark, name in zip(marks * 3, series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)
