"""JPEG Picture-in-Picture (paper §4, application 2; structure Fig. 7).

"The input videos consist of compressed JPEG images ...  Besides down
scaling and blending, the application also has to decode the JPEG
images. ...  Data parallelism is exploited by running the IDCT, down
scale and blend components using 45 slices.  The input image size is
1280x720.  The down scale factor is 16."

Per input: ``mjpeg source -> jpeg decode -> IDCT y/u/v`` (decode stages);
the background's decoded fields feed the blend chain directly, each pip's
fields go through a downscale stage first.  Every operation is separated
by a synchronization point, i.e. the graph is in series-parallel form
("before the Blend components are run, all Downscale and IDCT components
must have finished") — our expander inserts exactly those barriers.

Geometry note (documented deviation, see EXPERIMENTS.md): a 16x down
scale of a 4:2:0 chroma plane needs input rows divisible by 32, which
720 is not.  The background stays at the paper's 1280x720; pip inputs
use 1280x704 so every stage stays integer and block-aligned, and pips
use 44 slices (16 rows each) while background-side stages use the
paper's 45.
"""

from __future__ import annotations

from repro.apps.common import FIELDS, halve
from repro.core.ast import Spec
from repro.core.builder import AppBuilder, ProcedureBuilder
from repro.errors import XSPCLError

__all__ = ["build_jpip", "jpip_positions"]

PIP_HEIGHT_DEFAULT = 704  # see geometry note above


def jpip_positions(
    n_pips: int, width: int, height: int, pip_width: int, pip_height: int,
    factor: int,
) -> list[tuple[int, int]]:
    """Non-overlapping anchors for the scaled-down overlays."""
    if n_pips > 4:
        raise XSPCLError(f"at most 4 picture-in-pictures supported, got {n_pips}")
    ow, oh = pip_width // factor, pip_height // factor
    margin = 16
    anchors = [
        (margin, margin),
        (margin, width - ow - margin),
        (height - oh - margin, margin),
        (height - oh - margin, width - ow - margin),
    ]
    return anchors[:n_pips]


def _decode_field_stage(b: AppBuilder) -> None:
    """Per-field IDCT procedure with explicit field geometry."""
    proc = b.procedure(
        "idct_stage",
        stream_formals=["coeffs_in", "plane_out"],
        param_formals={"width": None, "height": None, "slices": None},
    )
    with proc.parallel("slice", n="${slices}"):
        proc.component(
            "idct",
            "idct_field",
            streams={"coeffs": "${coeffs_in}", "output": "${plane_out}"},
            params={"width": "${width}", "height": "${height}"},
        )


def _idct_scale_stage(b: AppBuilder) -> None:
    """Grouped per-field stage: IDCT and downscale share each slice copy.

    The downscale of slice *i* reads exactly the rows IDCT copy *i*
    produced (row-partitioned identically), so placing both in one slice
    parblock is semantically safe and lets the runtime schedule them "as
    one entity" (paper §4.1) — the intermediate plane slice stays in the
    producing core's cache.
    """
    proc = b.procedure(
        "idct_scale_stage",
        stream_formals=["coeffs_in", "small_out"],
        param_formals={"width": None, "height": None, "slices": None,
                       "factor": None},
    )
    with proc.parallel("slice", n="${slices}"):
        proc.component(
            "idct",
            "idct_field",
            streams={"coeffs": "${coeffs_in}", "output": "plane"},
            params={"width": "${width}", "height": "${height}"},
        )
        proc.component(
            "scale",
            "downscale_field",
            streams={"input": "plane", "output": "${small_out}"},
            params={"width": "${width}", "height": "${height}",
                    "factor": "${factor}"},
        )


def _emit_input_decode(
    main: ProcedureBuilder,
    *,
    tag: str,
    width: int,
    height: int,
    seed: int,
    slices: int,
    frames: int | None,
    grouped_y: bool = False,
    grouped_factor: int = 16,
) -> None:
    """Source + decode + per-field IDCT for one MJPEG input, inline.

    ``grouped_y`` (pip inputs of the grouped variant): the Y field's IDCT
    and downscale share one slice region (see :func:`_idct_scale_stage`);
    chroma fields stay split because the 16x chroma downscale is not
    slice-local to the block-aligned IDCT partitioning.
    """
    src_params = {"width": width, "height": height, "seed": seed}
    if frames is not None:
        src_params["frames"] = frames
    main.component(f"{tag}_read", "mjpeg_source",
                   streams={"output": f"{tag}_bits"}, params=src_params)
    main.component(
        f"{tag}_decode",
        "jpeg_decode",
        streams={"input": f"{tag}_bits"}
        | {f"coeffs_{f}": f"{tag}_coeffs_{f}" for f in FIELDS},
        params={"width": width, "height": height},
    )
    with main.parallel("task"):
        for f in FIELDS:
            with main.parblock():
                if grouped_y and f == "y":
                    main.call(
                        "idct_scale_stage",
                        name=f"{tag}_idct_{f}",
                        streams={
                            "coeffs_in": f"{tag}_coeffs_{f}",
                            "small_out": f"small{tag.removeprefix('pip')}_{f}",
                        },
                        params={
                            "width": halve(width, f),
                            "height": halve(height, f),
                            "slices": slices,
                            "factor": grouped_factor,
                        },
                    )
                else:
                    main.call(
                        "idct_stage",
                        name=f"{tag}_idct_{f}",
                        streams={
                            "coeffs_in": f"{tag}_coeffs_{f}",
                            "plane_out": f"{tag}_plane_{f}",
                        },
                        params={
                            "width": halve(width, f),
                            "height": halve(height, f),
                            "slices": slices,
                        },
                    )


def _emit_pip_chain(
    main: ProcedureBuilder,
    *,
    index: int,
    field: str,
    pip_width: int,
    pip_height: int,
    bg_width: int,
    bg_height: int,
    factor: int,
    pip_slices: int,
    bg_slices: int,
    position: tuple[int, int],
    bg_stream: str,
    out_stream: str,
    skip_downscale: bool = False,
) -> None:
    w, h = halve(pip_width, field), halve(pip_height, field)
    if not skip_downscale:
        with main.parallel("slice", n=pip_slices):
            main.component(
                f"scale{index}_{field}",
                "downscale_field",
                streams={"input": f"pip{index}_plane_{field}",
                         "output": f"small{index}_{field}"},
                params={"width": w, "height": h, "factor": factor},
            )
    row, col = position
    with main.parallel("slice", n=bg_slices):
        main.component(
            f"blend{index}_{field}",
            "blend_field",
            streams={
                "background": bg_stream,
                "overlay": f"small{index}_{field}",
                "output": out_stream,
            },
            params={
                "width": halve(bg_width, field),
                "height": halve(bg_height, field),
                "pos_row": halve(row, field),
                "pos_col": halve(col, field),
                "overlay_width": w // factor,
                "overlay_height": h // factor,
            },
        )


def build_jpip(
    n_pips: int = 1,
    *,
    width: int = 1280,
    height: int = 720,
    pip_height: int = PIP_HEIGHT_DEFAULT,
    factor: int = 16,
    slices: int = 45,
    frames: int | None = None,
    reconfigurable: bool = False,
    period: int = 12,
    collect: bool = False,
    quality: int = 75,
    grouped_stages: bool = False,
) -> Spec:
    """Build the JPiP application spec (JPiP-12 with ``reconfigurable``).

    ``slices`` applies to background-side stages (45 in the paper); pip
    stages use the block-aligned count implied by ``pip_height``/16-row
    slices.  ``grouped_stages`` builds the paper-§4.1 "scheduled as one
    entity" variant: each pip's Y-field IDCT and downscale share a slice
    copy (run ``group_chains=True`` on a runtime to merge them into one
    job); incompatible with ``reconfigurable``.
    """
    if n_pips < 1:
        raise XSPCLError(f"need at least one picture-in-picture, got {n_pips}")
    if reconfigurable and n_pips < 2:
        raise XSPCLError("the reconfigurable variant toggles the 2nd pip; use n_pips>=2")
    if grouped_stages and reconfigurable:
        raise XSPCLError("grouped_stages is a static-variant study only")
    pip_width = width
    pip_slices = pip_height // 16  # 16 rows per slice, block-aligned
    positions = jpip_positions(n_pips, width, height, pip_width, pip_height,
                               factor)

    b = AppBuilder()
    _decode_field_stage(b)
    if grouped_stages:
        _idct_scale_stage(b)
    main = b.procedure("main")

    static_pips = list(range(n_pips - 1 if reconfigurable else n_pips))
    optional_pip = n_pips - 1 if reconfigurable else None

    # Decode stages for background + static pips, mutually independent.
    with main.parallel("task"):
        with main.parblock():
            _emit_input_decode(main, tag="bg", width=width, height=height,
                               seed=400, slices=slices, frames=frames)
        for i in static_pips:
            with main.parblock():
                _emit_input_decode(main, tag=f"pip{i}", width=pip_width,
                                   height=pip_height, seed=500 + i,
                                   slices=pip_slices, frames=frames,
                                   grouped_y=grouped_stages,
                                   grouped_factor=factor)

    if reconfigurable:
        main.component(
            "timer", "timer",
            # Phase-align the toggle so ON/OFF exposure balances over a
            # finite run: whole-graph draining delays each transition by
            # roughly the pipeline depth, which would otherwise
            # under-expose the enabled state (see EXPERIMENTS.md, FIG10).
            params={"queue": "ui", "period": period, "event": "toggle_pip",
                    "offset": -(period // 2)},
        )

    def blend_kwargs(field: str) -> dict:
        return dict(
            field=field, pip_width=pip_width, pip_height=pip_height,
            bg_width=width, bg_height=height, factor=factor,
            pip_slices=pip_slices, bg_slices=slices,
        )

    # Static blend chains per field.
    with main.parallel("task"):
        for field in FIELDS:
            with main.parblock():
                upstream = f"bg_plane_{field}"
                for chain_pos, i in enumerate(static_pips):
                    last = chain_pos == len(static_pips) - 1
                    out = (
                        f"out_{field}"
                        if (last and optional_pip is None)
                        else f"mid{i}_{field}"
                    )
                    _emit_pip_chain(
                        main, index=i, position=positions[i],
                        bg_stream=upstream, out_stream=out,
                        skip_downscale=grouped_stages and field == "y",
                        **blend_kwargs(field),
                    )
                    upstream = out

    if optional_pip is not None:
        i = optional_pip
        prev = static_pips[-1]
        with main.manager("mgr", queue="ui") as mgr:
            mgr.on("toggle_pip", "toggle", option="pip_opt")
            with main.option(
                "pip_opt",
                enabled=False,
                bypass=[(f"mid{prev}_{f}", f"out_{f}") for f in FIELDS],
            ):
                _emit_input_decode(main, tag=f"pip{i}", width=pip_width,
                                   height=pip_height, seed=500 + i,
                                   slices=pip_slices, frames=frames)
                with main.parallel("task"):
                    for field in FIELDS:
                        with main.parblock():
                            _emit_pip_chain(
                                main, index=i, position=positions[i],
                                bg_stream=f"mid{prev}_{field}",
                                out_stream=f"out_{field}",
                                **blend_kwargs(field),
                            )

    sink_params = {"width": width, "height": height}
    if collect:
        sink_params["collect"] = True
    main.component("sink", "video_sink",
                   streams={f: f"out_{f}" for f in FIELDS},
                   params=sink_params)
    return b.build()
