"""Gaussian Blur (paper §4, application 3).

"A 3x3 or 5x5 Gaussian blurring kernel is applied to the luminance field
of an 360x288 uncompressed video file.  The standard deviation of both
kernels is set to 1. ...  The kernel is separated into an horizontal and
vertical phase.  The two phases are run in parallel using cross
dependencies ... 9 data-parallel slices are used."

Structure::

    luma source -> [ crossdep n=9:  blur_h | blur_v ] -> plane sink

The reconfigurable variant (Blur-35) holds *both* kernel sizes as options
of one manager — 3x3 initially enabled, 5x5 disabled — and one timer
event toggles both, switching kernels every ``period`` frames.
"""

from __future__ import annotations

from repro.core.ast import Spec
from repro.core.builder import AppBuilder, ProcedureBuilder
from repro.errors import XSPCLError

__all__ = ["build_blur"]


def _blur_phases(
    main: ProcedureBuilder,
    *,
    tag: str,
    size: int,
    sigma: float,
    slices: int,
    width: int,
    height: int,
    in_stream: str,
    out_stream: str,
    sp_form: bool = False,
) -> None:
    """The two blur phases: crossdep (default) or SP-ized.

    ``sp_form=True`` replaces the crossdep region by two consecutive
    slice regions — the paper's "synchronization point between the
    parblocks" transformation, used by the SP-ization ablation bench.
    """
    geometry = {"width": width, "height": height, "size": size, "sigma": sigma}
    if sp_form:
        with main.parallel("slice", n=slices):
            main.component(
                f"h{tag}",
                "blur_h_field",
                streams={"input": in_stream, "output": f"mid{tag}"},
                params=geometry,
            )
        with main.parallel("slice", n=slices):
            main.component(
                f"v{tag}",
                "blur_v_field",
                streams={"input": f"mid{tag}", "output": out_stream},
                params=geometry,
            )
        return
    with main.parallel("crossdep", n=slices):
        with main.parblock():
            main.component(
                f"h{tag}",
                "blur_h_field",
                streams={"input": in_stream, "output": f"mid{tag}"},
                params=geometry,
            )
        with main.parblock():
            main.component(
                f"v{tag}",
                "blur_v_field",
                streams={"input": f"mid{tag}", "output": out_stream},
                params=geometry,
            )


def build_blur(
    size: int = 3,
    *,
    width: int = 360,
    height: int = 288,
    sigma: float = 1.0,
    slices: int = 9,
    frames: int | None = None,
    reconfigurable: bool = False,
    period: int = 12,
    collect: bool = False,
    sp_form: bool = False,
) -> Spec:
    """Build the Blur application spec.

    Static: one crossdep region with the given kernel ``size`` (3 or 5).
    ``reconfigurable=True`` builds Blur-35: both kernels as options,
    toggled together every ``period`` frames (initial state: 3x3).
    ``sp_form=True`` uses the SP-ized structure (ablation ABL-3).
    """
    if size not in (3, 5):
        raise XSPCLError(f"kernel size must be 3 or 5, got {size}")
    b = AppBuilder()
    main = b.procedure("main")
    src_params = {"width": width, "height": height, "seed": 300}
    if frames is not None:
        src_params["frames"] = frames
    main.component("src", "luma_source", streams={"output": "raw"},
                   params=src_params)

    if not reconfigurable:
        _blur_phases(
            main, tag=str(size), size=size, sigma=sigma, slices=slices,
            width=width, height=height, in_stream="raw", out_stream="out",
            sp_form=sp_form,
        )
    else:
        main.component(
            "timer",
            "timer",
                        # Phase-align the toggle so ON/OFF exposure balances over a
            # finite run: whole-graph draining delays each transition by
            # roughly the pipeline depth, which would otherwise
            # under-expose the enabled state (see EXPERIMENTS.md, FIG10).
            params={"queue": "ui", "period": period, "event": "switch_kernel",
                    "offset": -(period // 2)},
        )
        with main.manager("mgr", queue="ui") as mgr:
            mgr.on("switch_kernel", "toggle", option="blur3")
            mgr.on("switch_kernel", "toggle", option="blur5")
            for ksize, enabled in ((3, True), (5, False)):
                with main.option(f"blur{ksize}", enabled=enabled):
                    _blur_phases(
                        main, tag=str(ksize), size=ksize, sigma=sigma,
                        slices=slices, width=width, height=height,
                        in_stream="raw", out_stream="out",
                    )

    sink_params = {"width": width, "height": height}
    if collect:
        sink_params["collect"] = True
    main.component("sink", "plane_sink", streams={"input": "out"},
                   params=sink_params)
    return b.build()
