"""The paper's three applications, their sequential baselines, and the
reconfigurable variants (paper §4).

Every builder returns an XSPCL :class:`~repro.core.ast.Spec` constructed
through the public :class:`~repro.core.builder.AppBuilder` API — i.e. the
applications are genuine XSPCL programs (serializable to XML via
:func:`~repro.core.xmlio.spec_to_xml`), not hand-wired graphs.

* :mod:`repro.apps.pip`  — Picture-in-Picture: uncompressed 720x576
  video, per-field downscale(x4)+blend pipelines, 8 data-parallel slices.
* :mod:`repro.apps.jpip` — JPEG Picture-in-Picture: MJPEG 1280x720
  inputs, JPEG decode -> IDCT -> downscale(x16) -> blend, 45 slices
  (Fig. 7).
* :mod:`repro.apps.blur` — 3x3/5x5 Gaussian blur on the luminance of
  360x288 video; horizontal/vertical phases under crossdep, 9 slices.
* :mod:`repro.apps.sequential` — the hand-written fused baselines of
  §4.1 (no data parallelism, fused downscale+blend / IDCT+downscale+
  blend stages).

Reconfigurable variants (PiP-12, JPiP-12, Blur-35) are the same builders
with ``reconfigurable=True``: a timer posts an event every ``period``
frames and a manager toggles the relevant option(s) (§4.3).
"""

from repro.apps.pip import build_pip
from repro.apps.jpip import build_jpip
from repro.apps.blur import build_blur
from repro.apps.audio import build_audio
from repro.apps.sequential import (
    build_blur_sequential,
    build_jpip_sequential,
    build_pip_sequential,
)
from repro.apps.common import make_program

__all__ = [
    "build_pip",
    "build_jpip",
    "build_blur",
    "build_audio",
    "build_pip_sequential",
    "build_jpip_sequential",
    "build_blur_sequential",
    "make_program",
]
