"""Shared helpers for the application builders."""

from __future__ import annotations

from repro.components.registry import default_ports
from repro.core.ast import Spec
from repro.core.expander import expand
from repro.core.program import Program

__all__ = ["make_program", "FIELDS", "field_scale", "halve"]

#: the three color fields processed concurrently (paper Fig. 7)
FIELDS = ("y", "u", "v")


def field_scale(field: str) -> int:
    """Resolution divisor of a field in 4:2:0 (1 for Y, 2 for chroma)."""
    return 1 if field == "y" else 2


def halve(value: int, field: str) -> int:
    """Scale a Y-plane dimension/coordinate to the given field."""
    return value // field_scale(field)


def make_program(spec: Spec, *, name: str) -> Program:
    """Validate + expand an application spec against the default registry."""
    return expand(spec, default_ports(), name=name)
