"""Audio / sensor fusion: the anti-JPiP workload.

The paper's applications move large video frames through few dispatches;
this one moves tiny int16 records (``channels x block`` samples, ~1 KiB)
through *many* dispatches — a microphone array and a vibration sensor,
each band-filtered per channel, fused into one feature stream::

    mic source -> band_filter[slices over channels] --.
                                                      fuse -> sink
    vib source -> band_filter[slices over channels] --'

Per-record kernel work is microseconds, so dispatch overhead dominates:
the workload that rewards ``--batch``/``--fuse`` and punishes naive
per-job dispatch.  The bench registers it beside pip/blur/jpip for
exactly that contrast, and the fuzzer palette draws on its components.

The reconfigurable variant wraps the vibration branch in a manager
option toggled every ``period`` records — fusion degrades to a
mic-only passthrough (weight 1.0) while the branch is disabled.
"""

from __future__ import annotations

from repro.core.ast import Spec
from repro.core.builder import AppBuilder, ProcedureBuilder
from repro.errors import XSPCLError

__all__ = ["build_audio"]


def _branch(
    main: ProcedureBuilder,
    *,
    tag: str,
    seed: int,
    taps: str,
    channels: int,
    block: int,
    slices: int,
    frames: int | None,
    out_stream: str,
) -> None:
    src_params: dict = {"channels": channels, "block": block, "seed": seed}
    if frames is not None:
        src_params["frames"] = frames
    geometry = {"channels": channels, "block": block, "taps": taps}
    main.component(f"{tag}_src", "audio_source",
                   streams={"samples": f"{tag}_raw"}, params=src_params)
    if slices > 1:
        with main.parallel("slice", n=slices):
            main.component(f"{tag}_filt", "band_filter",
                           streams={"input": f"{tag}_raw",
                                    "output": out_stream},
                           params=geometry)
    else:
        main.component(f"{tag}_filt", "band_filter",
                       streams={"input": f"{tag}_raw",
                                "output": out_stream},
                       params=geometry)


def build_audio(
    *,
    channels: int = 8,
    block: int = 64,
    slices: int = 2,
    frames: int | None = None,
    reconfigurable: bool = False,
    period: int = 16,
    collect: bool = False,
) -> Spec:
    """Build the audio/sensor-fusion spec.

    Static: both branches always fused.  ``reconfigurable=True`` wraps
    the vibration branch in a manager option toggled every ``period``
    records; a bypass reroutes fusion input ``b`` to the mic stream
    while the branch is off (weight stays 0.5, so the fused output is
    then just the mic signal).
    """
    if channels < 1 or block < 1:
        raise XSPCLError(
            f"need channels >= 1 and block >= 1, got {channels}x{block}"
        )
    if slices > channels:
        raise XSPCLError(
            f"cannot slice {channels} channels {slices} ways"
        )
    b = AppBuilder()
    main = b.procedure("main")
    _branch(main, tag="mic", seed=7, taps="smooth", channels=channels,
            block=block, slices=slices, frames=frames, out_stream="mic_filt")

    fuse_params = {"channels": channels, "block": block, "weight": 0.5}
    sink_params: dict = {"channels": channels, "block": block}
    if collect:
        sink_params["collect"] = True

    if not reconfigurable:
        _branch(main, tag="vib", seed=31, taps="diff", channels=channels,
                block=block, slices=slices, frames=frames,
                out_stream="vib_filt")
        main.component("fuse", "fuse_sensors",
                       streams={"a": "mic_filt", "b": "vib_filt",
                                "fused": "features"},
                       params=fuse_params)
        main.component("sink", "feature_sink", streams={"input": "features"},
                       params=sink_params)
        return b.build()

    main.component("clock", "timer",
                   params={"queue": "reconf", "period": period,
                           "event": "toggle_vib"})
    with main.manager("vib_mgr", queue="reconf") as mgr:
        mgr.on("toggle_vib", "toggle", option="vib_branch")
        # While the branch is off the mic filter writes "features"
        # directly (the bypass), so the sink keeps streaming.
        with main.option("vib_branch", enabled=True,
                         bypass=[("mic_filt", "features")]):
            _branch(main, tag="vib", seed=31, taps="diff",
                    channels=channels, block=block, slices=slices,
                    frames=frames, out_stream="vib_filt")
            main.component("fuse", "fuse_sensors",
                           streams={"a": "mic_filt", "b": "vib_filt",
                                    "fused": "features"},
                           params=fuse_params)
    main.component("sink", "feature_sink", streams={"input": "features"},
                   params=sink_params)
    return b.build()
