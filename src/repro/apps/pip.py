"""Picture-in-Picture (paper §4, application 1).

"This application reads multiple uncompressed video files and combines
these into a single video file.  One file contains the background video,
which is simply copied.  The other files contain the picture-in-picture
videos.  These videos are scaled down in size by a factor of 4 and
blended into the background video.  Task parallelism is exploited by
processing these components in a pipeline, and by processing the various
color fields in the images concurrently.  Data parallelism is exploited
by running the down scaler and blender using 8 slices.  The size of the
image frames is 720x576."

Structure produced (per color field f, for n picture-in-pictures)::

    bg source ---------------------------------.
    pip1 source -> downscale[8 slices] -> blend1[8 slices] -> ...
    pip2 source -> downscale[8 slices] -> blend2[8 slices] -> sink

The reconfigurable variant (PiP-12) wraps the *last* picture-in-picture
in an ``<option>`` inside a ``<manager>``; a timer component posts a
toggle event every ``period`` frames, and stream bypasses route the
previous blend stage directly to the sink while the option is disabled.
"""

from __future__ import annotations

from repro.apps.common import FIELDS, halve
from repro.core.ast import Spec
from repro.core.builder import AppBuilder, ProcedureBuilder
from repro.errors import XSPCLError

__all__ = ["build_pip", "pip_positions"]


def pip_positions(
    n_pips: int, width: int, height: int, factor: int
) -> list[tuple[int, int]]:
    """Non-overlapping (row, col) anchors for up to four overlays."""
    if n_pips > 4:
        raise XSPCLError(f"at most 4 picture-in-pictures supported, got {n_pips}")
    ow, oh = width // factor, height // factor
    margin = 16
    anchors = [
        (margin, margin),
        (margin, width - ow - margin),
        (height - oh - margin, margin),
        (height - oh - margin, width - ow - margin),
    ]
    for row, col in anchors[:n_pips]:
        if row < 0 or col < 0:
            raise XSPCLError(
                f"frame {width}x{height} too small for overlay {ow}x{oh}"
            )
    return anchors[:n_pips]


def _source(main: ProcedureBuilder, name: str, prefix: str, *, width: int,
            height: int, seed: int, frames: int | None) -> None:
    params = {"width": width, "height": height, "seed": seed}
    if frames is not None:
        params["frames"] = frames
    main.component(
        name,
        "video_source",
        streams={f: f"{prefix}_{f}" for f in FIELDS},
        params=params,
    )


def _scale_blend_stage(
    b: AppBuilder,
) -> None:
    """Procedure: downscale + blend of one field of one pip (sliced)."""
    proc = b.procedure(
        "scale_blend",
        stream_formals=["pip_in", "bg_in", "out"],
        param_formals={
            "width": None,       # pip field plane geometry (input of scaler)
            "height": None,
            "bg_width": None,    # background field plane geometry
            "bg_height": None,
            "factor": 4,
            "slices": 8,
            "pos_row": 0,
            "pos_col": 0,
            "overlay_width": None,   # pip field dims after downscale
            "overlay_height": None,
        },
    )
    with proc.parallel("slice", n="${slices}"):
        proc.component(
            "scale",
            "downscale_field",
            streams={"input": "${pip_in}", "output": "small"},
            params={
                "width": "${width}",
                "height": "${height}",
                "factor": "${factor}",
            },
        )
    with proc.parallel("slice", n="${slices}"):
        proc.component(
            "blend",
            "blend_field",
            streams={
                "background": "${bg_in}",
                "overlay": "small",
                "output": "${out}",
            },
            params={
                "width": "${bg_width}",
                "height": "${bg_height}",
                "pos_row": "${pos_row}",
                "pos_col": "${pos_col}",
                "overlay_width": "${overlay_width}",
                "overlay_height": "${overlay_height}",
            },
        )


def _field_chain(
    main: ProcedureBuilder,
    *,
    pips: list[int],
    field: str,
    width: int,
    height: int,
    factor: int,
    slices: int,
    positions: list[tuple[int, int]],
    bg_stream: str,
    out_stream: str,
) -> None:
    """Chained scale+blend stages of one field, for the given pip indices."""
    upstream = bg_stream
    for chain_pos, pip_index in enumerate(pips):
        last = chain_pos == len(pips) - 1
        out = out_stream if last else f"mid{pip_index}_{field}"
        row, col = positions[pip_index]
        main.call(
            "scale_blend",
            name=f"sb{pip_index}_{field}",
            streams={
                "pip_in": f"pip{pip_index}_{field}",
                "bg_in": upstream,
                "out": out,
            },
            params={
                "width": halve(width, field),
                "height": halve(height, field),
                "bg_width": halve(width, field),
                "bg_height": halve(height, field),
                "factor": factor,
                "slices": slices,
                "pos_row": halve(row, field),
                "pos_col": halve(col, field),
                "overlay_width": halve(width, field) // factor,
                "overlay_height": halve(height, field) // factor,
            },
        )
        upstream = out


def build_pip(
    n_pips: int = 1,
    *,
    width: int = 720,
    height: int = 576,
    factor: int = 4,
    slices: int = 8,
    frames: int | None = None,
    reconfigurable: bool = False,
    period: int = 12,
    collect: bool = False,
) -> Spec:
    """Build the PiP application spec.

    ``reconfigurable=True`` produces the PiP-12 variant: the last pip is
    optional (initially *off* — the application "start[s] with one
    picture-in-picture"), toggled by a timer every ``period`` frames.
    ``collect`` makes the sink retain output frames (tests only).
    """
    if n_pips < 1:
        raise XSPCLError(f"need at least one picture-in-picture, got {n_pips}")
    if reconfigurable and n_pips < 2:
        raise XSPCLError("the reconfigurable variant toggles the 2nd pip; use n_pips>=2")
    positions = pip_positions(n_pips, width, height, factor)

    b = AppBuilder()
    _scale_blend_stage(b)
    main = b.procedure("main")

    static_pips = list(range(n_pips - 1 if reconfigurable else n_pips))
    optional_pip = n_pips - 1 if reconfigurable else None

    # Sources: background + static pips, mutually independent.  The
    # optional pip's source lives inside its option, so it is created and
    # destroyed with the rest of the optional subgraph.
    with main.parallel("task"):
        with main.parblock():
            _source(main, "bg", "bg", width=width, height=height, seed=100,
                    frames=frames)
        for i in static_pips:
            with main.parblock():
                _source(main, f"pip{i}", f"pip{i}", width=width, height=height,
                        seed=200 + i, frames=frames)

    def chain_kwargs(field: str) -> dict:
        return dict(
            field=field, width=width, height=height, factor=factor,
            slices=slices, positions=positions,
        )

    if reconfigurable:
        main.component(
            "timer",
            "timer",
                        # Phase-align the toggle so ON/OFF exposure balances over a
            # finite run: whole-graph draining delays each transition by
            # roughly the pipeline depth, which would otherwise
            # under-expose the enabled state (see EXPERIMENTS.md, FIG10).
            params={"queue": "ui", "period": period, "event": "toggle_pip",
                    "offset": -(period // 2)},
        )

    # Static per-field chains.  With an optional pip the static chains end
    # in mid streams that the option either extends or bypasses.
    with main.parallel("task"):
        for field in FIELDS:
            with main.parblock():
                if static_pips:
                    last_static = static_pips[-1]
                    out = (
                        f"mid{last_static}_{field}"
                        if optional_pip is not None
                        else f"out_{field}"
                    )
                    _field_chain(
                        main, pips=static_pips, bg_stream=f"bg_{field}",
                        out_stream=out, **chain_kwargs(field),
                    )

    if optional_pip is not None:
        i = optional_pip
        prev = static_pips[-1]
        with main.manager("mgr", queue="ui") as mgr:
            mgr.on("toggle_pip", "toggle", option="pip_opt")
            with main.option(
                "pip_opt",
                enabled=False,
                bypass=[(f"mid{prev}_{f}", f"out_{f}") for f in FIELDS],
            ):
                _source(main, f"pip{i}", f"pip{i}", width=width, height=height,
                        seed=200 + i, frames=frames)
                with main.parallel("task"):
                    for field in FIELDS:
                        with main.parblock():
                            _field_chain(
                                main, pips=[i],
                                bg_stream=f"mid{prev}_{field}",
                                out_stream=f"out_{field}",
                                **chain_kwargs(field),
                            )

    sink_params = {"width": width, "height": height}
    if collect:
        sink_params["collect"] = True
    main.component(
        "sink",
        "video_sink",
        streams={f: f"out_{f}" for f in FIELDS},
        params=sink_params,
    )
    return b.build()
