"""Hand-written sequential baselines (paper §4.1).

"We compare the XSPCL versions of our applications to hand-written
sequential versions, that do not use the Hinch runtime system.  The
sequential versions of PiP and JPiP combine several operations, for
example down scaling and blending, into a single function. ...  In the
sequential Blur application, no operations are combined."

These baselines are themselves XSPCL specs — but with *fused* component
classes, no data-parallel slices, and no managers.  The benchmark harness
runs them at 1 node, pipeline depth 1, with the runtime overhead
constants zeroed, which models straight-line C execution on one core;
see :mod:`repro.bench.harness`.
"""

from __future__ import annotations

from repro.apps.common import FIELDS, halve
from repro.apps.jpip import PIP_HEIGHT_DEFAULT, jpip_positions
from repro.apps.pip import pip_positions
from repro.core.ast import Spec
from repro.core.builder import AppBuilder
from repro.errors import XSPCLError

__all__ = ["build_pip_sequential", "build_jpip_sequential", "build_blur_sequential"]


def build_pip_sequential(
    n_pips: int = 1,
    *,
    width: int = 720,
    height: int = 576,
    factor: int = 4,
    frames: int | None = None,
    collect: bool = False,
) -> Spec:
    """Fused PiP: per field, each pip is one downscale+blend function."""
    if n_pips < 1:
        raise XSPCLError(f"need at least one picture-in-picture, got {n_pips}")
    positions = pip_positions(n_pips, width, height, factor)
    b = AppBuilder()
    main = b.procedure("main")
    for tag, seed in [("bg", 100)] + [(f"pip{i}", 200 + i) for i in range(n_pips)]:
        params = {"width": width, "height": height, "seed": seed}
        if frames is not None:
            params["frames"] = frames
        main.component(tag, "video_source",
                       streams={f: f"{tag}_{f}" for f in FIELDS}, params=params)
    for field in FIELDS:
        upstream = f"bg_{field}"
        for i in range(n_pips):
            out = f"out_{field}" if i == n_pips - 1 else f"mid{i}_{field}"
            row, col = positions[i]
            main.component(
                f"fused{i}_{field}",
                "downscale_blend_field",
                streams={
                    "background": upstream,
                    "overlay_hi": f"pip{i}_{field}",
                    "output": out,
                },
                params={
                    "width": halve(width, field),
                    "height": halve(height, field),
                    "factor": factor,
                    "pos_row": halve(row, field),
                    "pos_col": halve(col, field),
                },
            )
            upstream = out
    sink_params = {"width": width, "height": height}
    if collect:
        sink_params["collect"] = True
    main.component("sink", "video_sink",
                   streams={f: f"out_{f}" for f in FIELDS}, params=sink_params)
    return b.build()


def build_jpip_sequential(
    n_pips: int = 1,
    *,
    width: int = 1280,
    height: int = 720,
    pip_height: int = PIP_HEIGHT_DEFAULT,
    factor: int = 16,
    frames: int | None = None,
    collect: bool = False,
) -> Spec:
    """Fused JPiP: each input decodes with a per-block decode+IDCT (the
    classic hand-written decoder structure — coefficients never leave
    registers/L1), and each pip's downscale+blend is one function."""
    if n_pips < 1:
        raise XSPCLError(f"need at least one picture-in-picture, got {n_pips}")
    pip_width = width
    positions = jpip_positions(n_pips, width, height, pip_width, pip_height,
                               factor)
    b = AppBuilder()
    main = b.procedure("main")
    inputs = [("bg", 400, width, height)] + [
        (f"pip{i}", 500 + i, pip_width, pip_height) for i in range(n_pips)
    ]
    for tag, seed, w, h in inputs:
        params = {"width": w, "height": h, "seed": seed}
        if frames is not None:
            params["frames"] = frames
        main.component(f"{tag}_read", "mjpeg_source",
                       streams={"output": f"{tag}_bits"}, params=params)
        main.component(
            f"{tag}_decode",
            "jpeg_decode_idct",
            streams={"input": f"{tag}_bits"}
            | {f: f"{tag}_plane_{f}" for f in FIELDS},
            params={"width": w, "height": h},
        )
    for field in FIELDS:
        upstream = f"bg_plane_{field}"
        for i in range(n_pips):
            out = f"out_{field}" if i == n_pips - 1 else f"mid{i}_{field}"
            row, col = positions[i]
            main.component(
                f"fused{i}_{field}",
                "downscale_blend_field",
                streams={
                    "background": upstream,
                    "overlay_hi": f"pip{i}_plane_{field}",
                    "output": out,
                },
                params={
                    "width": halve(width, field),
                    "height": halve(height, field),
                    "factor": factor,
                    "pos_row": halve(row, field),
                    "pos_col": halve(col, field),
                },
            )
            upstream = out
    sink_params = {"width": width, "height": height}
    if collect:
        sink_params["collect"] = True
    main.component("sink", "video_sink",
                   streams={f: f"out_{f}" for f in FIELDS}, params=sink_params)
    return b.build()


def build_blur_sequential(
    size: int = 3,
    *,
    width: int = 360,
    height: int = 288,
    sigma: float = 1.0,
    frames: int | None = None,
    collect: bool = False,
) -> Spec:
    """Sequential Blur: same two phases, unsliced ("no operations are
    combined")."""
    if size not in (3, 5):
        raise XSPCLError(f"kernel size must be 3 or 5, got {size}")
    b = AppBuilder()
    main = b.procedure("main")
    src_params = {"width": width, "height": height, "seed": 300}
    if frames is not None:
        src_params["frames"] = frames
    main.component("src", "luma_source", streams={"output": "raw"},
                   params=src_params)
    geometry = {"width": width, "height": height, "size": size, "sigma": sigma}
    main.component("h", "blur_h_field",
                   streams={"input": "raw", "output": "mid"}, params=geometry)
    main.component("v", "blur_v_field",
                   streams={"input": "mid", "output": "out"}, params=geometry)
    sink_params = {"width": width, "height": height}
    if collect:
        sink_params["collect"] = True
    main.component("sink", "plane_sink", streams={"input": "out"},
                   params=sink_params)
    return b.build()
