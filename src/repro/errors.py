"""Exception hierarchy for the XSPCL / Hinch / SpaceCAKE reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  The sub-hierarchy mirrors
the pipeline stages: parse -> validate -> expand -> schedule -> simulate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class XSPCLError(ReproError):
    """Base class for errors in XSPCL specification processing."""


class ParseError(XSPCLError):
    """The XSPCL document is not well-formed or uses unknown tags.

    Carries the source line when the underlying XML parser provides one.
    """

    def __init__(self, message: str, *, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ValidationError(XSPCLError):
    """The specification is well-formed XML but semantically invalid.

    Examples: duplicate procedure names, missing ``main``, recursive
    procedure calls, wrong parameter arity, a stream with two writers.
    """


class ExpansionError(XSPCLError):
    """Procedure inlining or parallel-shape replication failed."""


class GraphError(ReproError):
    """Structural problem in a task graph (cycle, unknown node, ...)."""


class NotSeriesParallelError(GraphError):
    """An operation that requires an SP graph was given a non-SP graph."""


class SchedulingError(ReproError):
    """The Hinch scheduler reached an inconsistent state."""


class WorkerFailure(SchedulingError):
    """A worker process was lost and the work could not be recovered.

    Raised by the process backend when a worker dies (or hangs past the
    watchdog) and either the in-flight job's retry budget is exhausted or
    no worker remains to take the work.  Carries enough structure for the
    caller to tell *which* worker and job were involved, plus the remote
    traceback when the worker managed to report one before dying.
    """

    def __init__(
        self,
        message: str,
        *,
        worker: int | None = None,
        job: tuple[int, str] | None = None,
        remote_traceback: str | None = None,
    ) -> None:
        self.worker = worker
        self.job = job
        self.remote_traceback = remote_traceback
        if remote_traceback:
            message = (
                f"{message}\n--- remote traceback (worker {worker}) ---\n"
                f"{remote_traceback.rstrip()}"
            )
        super().__init__(message)


class StreamError(ReproError):
    """Stream protocol violation (double write, read-before-write, ...)."""


class StreamFormatError(StreamError):
    """A stream buffer diverged from its reconciled format.

    Raised when a writer's geometry disagrees with the solved port
    format the analysis pass (X5xx, ``repro.analysis.formats``)
    established for the stream — or with the geometry another slice copy
    already allocated.  Carries the full context so the failure can be
    traced back to the offending XSPCL binding: the stream, the
    iteration, the writing node, and the declared-vs-observed geometry.
    """

    def __init__(
        self,
        message: str,
        *,
        stream: str | None = None,
        iteration: int | None = None,
        node: str | None = None,
        declared: tuple | None = None,
        observed: tuple | None = None,
    ) -> None:
        self.stream = stream
        self.iteration = iteration
        self.node = node
        self.declared = declared
        self.observed = observed
        super().__init__(message)


class EventError(ReproError):
    """Event queue misuse (unknown queue, bad payload, ...)."""


class ReconfigurationError(ReproError):
    """A reconfiguration request could not be applied."""


class ComponentError(ReproError):
    """A component implementation misbehaved (wrong ports, bad output...)."""


class RegistryError(ComponentError):
    """Unknown component class name, or duplicate registration."""


class SimulationError(ReproError):
    """The SpaceCAKE discrete-event simulation reached a bad state."""


class PredictionError(ReproError):
    """Performance prediction could not be computed for this graph."""


class CodecError(ReproError):
    """Mini-JPEG encode/decode failure (corrupt bitstream, bad marker...)."""
