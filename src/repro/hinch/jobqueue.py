"""The central job queue (paper: "automatic load balancing using a
central job queue").

A job is one execution of one task-graph node in one iteration.  The
queue is a plain FIFO guarded by a condition variable: any idle worker
pops the oldest ready job, which is Hinch's load-balancing policy — work
goes wherever there is a free processor, no affinity, no stealing
hierarchy.  (Cache-affinity effects of this policy are modelled by the
SpaceCAKE cost model, not here.)
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

__all__ = ["Job", "JobQueue"]


@dataclass(frozen=True, slots=True)
class Job:
    """One (iteration, node) execution.

    ``slots=True``: a simulation sweep allocates one Job per node per
    iteration (millions across the figure sweeps), so the per-instance
    dict is pure overhead.  Jobs are never ordered — the queue is FIFO
    and the simulator's event heap orders by (time, seq) — so no
    ``order=True``.
    """

    iteration: int
    node_id: str


class JobQueue:
    """Thread-safe FIFO with shutdown support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._items: deque[Job] = deque()
        self._closed = False
        self._pushed = 0

    def push(self, job: Job) -> None:
        with self._not_empty:
            if self._closed:
                return  # late completions during shutdown are dropped
            self._items.append(job)
            self._pushed += 1
            self._not_empty.notify()

    def push_all(self, jobs: list[Job]) -> None:
        with self._not_empty:
            if self._closed:
                return
            self._items.extend(jobs)
            self._pushed += len(jobs)
            self._not_empty.notify(len(jobs))

    def pop(self, timeout: float | None = None) -> Job | None:
        """Block until a job is available; None on close or timeout."""
        with self._not_empty:
            while not self._items and not self._closed:
                if not self._not_empty.wait(timeout=timeout):
                    return None
            if self._items:
                return self._items.popleft()
            return None  # closed and drained

    def try_pop(self) -> Job | None:
        with self._lock:
            if self._items:
                return self._items.popleft()
            return None

    def close(self) -> None:
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def total_pushed(self) -> int:
        with self._lock:
            return self._pushed
