"""The central job queue (paper: "automatic load balancing using a
central job queue").

A job is one execution of one task-graph node in one iteration.  The
queue is a plain FIFO guarded by a condition variable: any idle worker
pops the oldest ready job, which is Hinch's load-balancing policy — work
goes wherever there is a free processor, no affinity, no stealing
hierarchy.  (Cache-affinity effects of this policy are modelled by the
SpaceCAKE cost model, not here.)
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.errors import SchedulingError

__all__ = ["Job", "JobQueue"]


@dataclass(frozen=True, slots=True)
class Job:
    """One (iteration, node) execution.

    ``slots=True``: a simulation sweep allocates one Job per node per
    iteration (millions across the figure sweeps), so the per-instance
    dict is pure overhead.  Jobs are never ordered — the queue is FIFO
    and the simulator's event heap orders by (time, seq) — so no
    ``order=True``.
    """

    iteration: int
    node_id: str


class JobQueue:
    """Thread-safe FIFO with two distinct shutdown modes.

    * :meth:`close` — *abort*.  Workers stop as soon as the remaining
      items run out, and any job pushed afterwards is silently dropped.
      This is the failure path: a worker crashed, whatever completions
      are still in flight no longer matter.
    * :meth:`drain` — *graceful sentinel*.  Called only when the
      scheduler reports ``done`` (every admitted iteration completed, so
      no further job can ever become ready).  Remaining items are still
      served; once empty, every ``pop`` returns ``None``.  A ``push``
      after drain is a scheduling bug — completed work would be lost —
      and raises :class:`~repro.errors.SchedulingError` instead of
      dropping the job on the floor.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._items: deque[Job] = deque()
        self._closed = False
        self._draining = False
        self._pushed = 0
        self._high_water = 0

    def push(self, job: Job) -> int:
        """Enqueue one job; returns the number accepted (0 after close)."""
        with self._not_empty:
            if self._closed:
                return 0  # aborted: late completions are dropped
            if self._draining:
                raise SchedulingError(
                    f"job {job!r} pushed after drain(): the scheduler "
                    "reported done, so this completion would be lost"
                )
            self._items.append(job)
            self._pushed += 1
            if len(self._items) > self._high_water:
                self._high_water = len(self._items)
            self._not_empty.notify()
            return 1

    def push_all(self, jobs: list[Job]) -> int:
        """Enqueue jobs; returns the number accepted (0 after close)."""
        if not jobs:
            return 0
        with self._not_empty:
            if self._closed:
                return 0
            if self._draining:
                raise SchedulingError(
                    f"{len(jobs)} job(s) pushed after drain(): the "
                    "scheduler reported done, so these completions would "
                    "be lost"
                )
            self._items.extend(jobs)
            self._pushed += len(jobs)
            if len(self._items) > self._high_water:
                self._high_water = len(self._items)
            self._not_empty.notify(len(jobs))
            return len(jobs)

    def push_front(self, job: Job) -> int:
        """Re-enqueue a recovered job at the FIFO head (failure retry).

        A retry jumps the queue so the re-run of iteration *k*'s node
        does not queue behind work from deeper iterations that (directly
        or via the pipeline) depends on it.  Unlike :meth:`push`, this is
        legal while draining: a retry re-issues a job the scheduler still
        counts as dispatched-but-incomplete, so ``drain()`` (which
        requires the scheduler to be *done*) can never have happened with
        such a job outstanding — tolerating the call keeps the failure
        path free of ordering assumptions about shutdown.
        """
        with self._not_empty:
            if self._closed:
                return 0  # aborted: the retry no longer matters
            self._items.appendleft(job)
            self._pushed += 1
            if len(self._items) > self._high_water:
                self._high_water = len(self._items)
            self._not_empty.notify()
            return 1

    def pop(self, timeout: float | None = None) -> Job | None:
        """Block until a job is available; None on shutdown or timeout."""
        with self._not_empty:
            while not self._items and not self._closed and not self._draining:
                if not self._not_empty.wait(timeout=timeout):
                    return None
            if self._items:
                return self._items.popleft()
            return None  # shut down and drained

    def try_pop(self) -> Job | None:
        with self._lock:
            if self._items:
                return self._items.popleft()
            return None

    def peek(self) -> Job | None:
        """Head of the FIFO without removing it (None when empty).

        Lets the process dispatcher's oversubscription guard inspect the
        head before committing to a dispatch — a deferred head simply
        stays queued, with no pop/push-front churn and no inflation of
        :attr:`total_pushed`.
        """
        with self._lock:
            if self._items:
                return self._items[0]
            return None

    def try_pop_where(self, match, stop=None) -> Job | None:
        """Pop the first queued job satisfying ``match``, scanning from
        the head; abandon the scan (returning ``None``) at the first job
        for which ``stop`` is true.

        This is the lease-assembly primitive of the process dispatcher:
        it lets batching pull additional *ready* jobs into a worker's
        lease (preferring affinity matches) without ever reordering
        across a control-node job — ``stop`` marks those, so manager
        invocations keep their FIFO position exactly as at ``--batch 1``.
        """
        with self._lock:
            for index, job in enumerate(self._items):
                if stop is not None and stop(job):
                    return None
                if match(job):
                    del self._items[index]
                    return job
            return None

    def close(self) -> None:
        """Abort: stop serving once empty, drop any further push."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def drain(self) -> None:
        """Graceful shutdown: serve what remains, then sentinel workers.

        Only valid once the scheduler is ``done`` — after this call, a
        push is an error rather than a silent drop.
        """
        with self._not_empty:
            self._draining = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def total_pushed(self) -> int:
        with self._lock:
            return self._pushed

    def take_high_water(self) -> int:
        """Deepest the queue got since the last call, then reset.

        The auto-tuner samples this per observation window as its queue-
        pressure signal: a persistently deep queue with saturated workers
        argues for growing the pool; resetting on read makes each window
        independent.
        """
        with self._lock:
            hw = self._high_water
            self._high_water = len(self._items)
            return hw
