"""Backend-agnostic dataflow scheduling state machine.

Hinch "runs the application in a data flow style by putting a job in [the
central] queue for each component that is ready to be run".  This module
is that readiness logic, shared verbatim by the threaded runtime and by
the SpaceCAKE virtual-time simulator — the two backends differ only in
*who executes* a ready job and *when* completion is reported.

Execution model (DESIGN.md §6):

* The application runs ``max_iterations`` iterations of the task graph;
  node *n* of iteration *k* is ready when all its graph predecessors in
  *k* are done **and** *n* itself finished iteration *k-1* (components
  are stateful and streams are in order).
* Up to ``pipeline_depth`` iterations are in flight concurrently — the
  paper's implicit pipeline parallelism ("the underlying runtime system
  automatically starts multiple concurrent iterations"; five in the
  experiments).
* Reconfiguration: a manager handler calls :meth:`request_reconfig`; the
  scheduler stops admitting iterations, lets the in-flight ones drain
  (the paper: "the amount of parallelism in the application drops until
  the application is run sequentially"), then asks the runtime — via
  :class:`SchedulerHooks` — to splice components and rebuild the task
  graph, and resumes admission.  Components for options being *enabled*
  were already created when the event arrived, off the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.core.program import ProgramGraph
from repro.errors import SchedulingError
from repro.hinch.jobqueue import Job

__all__ = ["DataflowScheduler", "SchedulerHooks", "ReconfigPlan"]


@dataclass
class ReconfigPlan:
    """One requested reconfiguration: option-state changes to apply."""

    manager: str
    changes: dict[str, bool]
    reason: str = ""


class SchedulerHooks(Protocol):
    """Callbacks the runtime provides to the scheduler."""

    def on_iteration_complete(self, iteration: int) -> None:
        """All nodes of ``iteration`` finished (release stream slots)."""

    def on_reconfigure(
        self, plans: list[ReconfigPlan], resume_iteration: int
    ) -> ProgramGraph:
        """Graph is quiescent: splice components, return the new graph."""


class _NullHooks:
    def on_iteration_complete(self, iteration: int) -> None:
        pass

    def on_reconfigure(
        self, plans: list[ReconfigPlan], resume_iteration: int
    ) -> ProgramGraph:  # pragma: no cover - only reached with reconfig
        raise SchedulingError("reconfiguration requested but no hooks installed")


@dataclass
class _IterationState:
    remaining: dict[str, int]
    dispatched: set[str] = field(default_factory=set)
    done: set[str] = field(default_factory=set)


class DataflowScheduler:
    """Tracks readiness; emits ready jobs, consumes completions.

    Not thread-safe by itself — the threaded runtime serializes calls
    with a lock; the simulator is single-threaded.
    """

    def __init__(
        self,
        pg: ProgramGraph,
        *,
        pipeline_depth: int = 5,
        max_iterations: int,
        hooks: SchedulerHooks | None = None,
    ) -> None:
        if pipeline_depth < 1:
            raise SchedulingError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
        if max_iterations < 0:
            raise SchedulingError(f"max_iterations must be >= 0, got {max_iterations}")
        self.pipeline_depth = pipeline_depth
        self.max_iterations = max_iterations
        self.hooks: SchedulerHooks = hooks if hooks is not None else _NullHooks()

        self._set_graph(pg)
        self._iters: dict[int, _IterationState] = {}
        self._last_done: dict[str, int] = {n: -1 for n in pg.graph.node_ids}
        self._next_admit = 0
        self._halted = False
        self._pending_plans: list[ReconfigPlan] = []
        self._completed_iterations = 0
        self._reconfig_count = 0
        self._retries = 0
        self._started = False

    # -- public state ------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        return len(self._iters)

    @property
    def done(self) -> bool:
        return (
            self._started
            and not self._iters
            and not self._pending_plans
            and (self._next_admit >= self.max_iterations or self._halted_forever)
        )

    @property
    def completed_iterations(self) -> int:
        return self._completed_iterations

    @property
    def reconfig_count(self) -> int:
        return self._reconfig_count

    @property
    def retries(self) -> int:
        """Jobs returned to the ready set after their worker was lost."""
        return self._retries

    _halted_forever = False  # set by request_stop

    def _set_graph(self, pg: ProgramGraph) -> None:
        """Install ``pg`` and precompute the per-iteration admission state.

        Admission used to rebuild a full ``{node: in_degree}`` dict (and
        ``complete`` re-queried successor lists) for every iteration; the
        graph only changes on reconfiguration, so both are derived once
        here and the per-admission work collapses to one ``dict.copy()``.
        """
        self.pg = pg
        graph = pg.graph
        self._succ = {n: graph.successors(n) for n in graph.node_ids}
        self._indeg_template = {n: graph.in_degree(n) for n in graph.node_ids}
        self._source_nodes = [n for n, d in self._indeg_template.items() if d == 0]
        self._node_count = len(graph)

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> list[Job]:
        """Admit the initial iterations; returns the first ready jobs."""
        if self._started:
            raise SchedulingError("scheduler already started")
        self._started = True
        return self._admit()

    def complete(self, job: Job) -> list[Job]:
        """Record a finished job; returns newly ready jobs."""
        state = self._iters.get(job.iteration)
        if state is None:
            raise SchedulingError(
                f"completion for unknown iteration {job.iteration} ({job.node_id})"
            )
        if job.node_id not in state.dispatched:
            raise SchedulingError(
                f"completion for undispatched job {job.node_id}@{job.iteration}"
            )
        if job.node_id in state.done:
            raise SchedulingError(
                f"duplicate completion for {job.node_id}@{job.iteration}"
            )
        state.done.add(job.node_id)
        self._last_done[job.node_id] = job.iteration

        ready: list[Job] = []
        iteration = job.iteration
        # (a) successors within the iteration (the _check_ready conditions
        # inlined with the iteration state held in locals: this runs once
        # per graph edge per iteration)
        remaining = state.remaining
        dispatched = state.dispatched
        last_done = self._last_done
        prev_iteration = iteration - 1
        for succ in self._succ[job.node_id]:
            left = remaining[succ] - 1
            remaining[succ] = left
            if (
                left == 0
                and succ not in dispatched
                and last_done[succ] == prev_iteration
            ):
                dispatched.add(succ)
                ready.append(Job(iteration=iteration, node_id=succ))
        # (b) the same node in the next iteration (cross-iteration dep)
        nxt = self._iters.get(iteration + 1)
        if nxt is not None:
            self._check_ready(job.node_id, iteration + 1, ready)

        if len(state.done) == self._node_count:
            del self._iters[job.iteration]
            self._completed_iterations += 1
            self.hooks.on_iteration_complete(job.iteration)
            ready.extend(self._after_iteration())
        return ready

    def requeue(self, job: Job) -> None:
        """Validate that a lost job may be re-issued (worker failure).

        The job must be *dispatched but not done* — retrying a completed
        job would double-complete it, and retrying a never-dispatched one
        means the runtime's in-flight bookkeeping diverged from the
        scheduler's.  The job stays in the ``dispatched`` set (the caller
        pushes it back onto the queue), so the eventual completion flows
        through :meth:`complete` unchanged.
        """
        state = self._iters.get(job.iteration)
        if state is None:
            raise SchedulingError(
                f"requeue for unknown iteration {job.iteration} ({job.node_id})"
            )
        if job.node_id not in state.dispatched:
            raise SchedulingError(
                f"requeue for undispatched job {job.node_id}@{job.iteration}"
            )
        if job.node_id in state.done:
            raise SchedulingError(
                f"requeue for completed job {job.node_id}@{job.iteration}"
            )
        self._retries += 1

    def extract_followons(self, lease, limit, is_eligible=None,
                          pipeline_only=False, is_chainable=None):
        """Speculatively extend a job lease along the dataflow (batching).

        Given ``lease`` — jobs about to be shipped to one worker — return
        up to ``limit`` additional jobs whose *only* missing dependencies
        are earlier members of the (extended) lease: successors within an
        iteration (grouped-chain tails, fan-out consumers whose other
        inputs are already done) and the same node in the next admitted
        iteration (pipeline extension).  Because the queue's readiness
        invariant means a producer and its consumer are never queued
        together, batching deeper than one job per dependency chain is
        only possible speculatively — the worker runs the lease in order,
        so the data dependencies hold worker-locally.

        Chosen jobs are marked ``dispatched`` immediately: the real
        completions of their lease predecessors will decrement in-degrees
        as usual but not re-emit them.  If the worker dies mid-lease the
        runtime calls :meth:`retract` for each speculative job, after
        which the normal completion flow re-emits it.  Admission state is
        never touched, so the ``pipeline_depth`` bound and reconfiguration
        quiescence are exactly as at batch size 1.

        ``is_eligible`` filters candidate node ids (the process runtime
        excludes control nodes, which must run on the dispatcher).

        ``pipeline_only`` restricts extension to the next-iteration jobs
        of nodes already in the lease, skipping same-iteration
        successors.  A node's consecutive iterations can never run
        concurrently (iteration *k+1* waits for *k*), so chaining them
        onto one worker forfeits no parallelism — whereas a successor
        could have run on another worker once its readiness was
        announced.  The process runtime uses this mode while idle
        workers remain.

        ``is_chainable`` refines that trade-off per node: when given (and
        ``pipeline_only`` is false), a same-iteration successor is only
        speculated if ``is_chainable(node_id)`` — the process runtime
        passes its learned CPU-bound predicate here once physical cores
        are saturated, so compute kernels chain (spreading them over more
        workers than cores buys nothing) while blocking kernels still
        spread.  Pipeline extensions are never filtered by it.
        """
        if limit <= 0:
            return []
        out: list[Job] = []
        assumed: set[tuple[int, str]] = {
            (j.iteration, j.node_id) for j in lease
        }
        hyp_remaining: dict[tuple[int, str], int] = {}
        hyp_last: dict[str, int] = {}
        frontier = list(lease)
        while frontier and len(out) < limit:
            next_frontier: list[Job] = []
            for job in frontier:
                if len(out) >= limit:
                    break
                iteration, node_id = job.iteration, job.node_id
                hyp_last[node_id] = max(
                    hyp_last.get(node_id, self._last_done[node_id]), iteration
                )
                state = self._iters.get(iteration)
                if state is not None and not pipeline_only:
                    for succ in self._succ[node_id]:
                        key = (iteration, succ)
                        left = hyp_remaining.get(key)
                        if left is None:
                            left = state.remaining[succ]
                        left -= 1
                        hyp_remaining[key] = left
                        if (
                            left == 0
                            and succ not in state.dispatched
                            and key not in assumed
                            and hyp_last.get(succ, self._last_done[succ])
                            == iteration - 1
                            and (is_eligible is None or is_eligible(succ))
                            and (is_chainable is None or is_chainable(succ))
                        ):
                            state.dispatched.add(succ)
                            assumed.add(key)
                            cand = Job(iteration=iteration, node_id=succ)
                            out.append(cand)
                            next_frontier.append(cand)
                            if len(out) >= limit:
                                break
                nxt = self._iters.get(iteration + 1)
                if nxt is not None and len(out) < limit:
                    key = (iteration + 1, node_id)
                    left = hyp_remaining.get(key, nxt.remaining[node_id])
                    if (
                        left == 0
                        and node_id not in nxt.dispatched
                        and key not in assumed
                        and hyp_last[node_id] == iteration
                        and (is_eligible is None or is_eligible(node_id))
                    ):
                        nxt.dispatched.add(node_id)
                        assumed.add(key)
                        cand = Job(iteration=iteration + 1, node_id=node_id)
                        out.append(cand)
                        next_frontier.append(cand)
            frontier = next_frontier
        return out

    def retract(self, job: Job) -> list[Job]:
        """Un-dispatch a speculative lease job whose worker died.

        Records stream back per job in lease order, so a dead worker's
        unacknowledged speculative members are known never to have run;
        clearing the ``dispatched`` mark restores the normal readiness
        path.  The job's *dependencies*, however, may already be done —
        earlier lease members acknowledge individually, and a producer's
        completion lands before the worker dies on a later member — in
        which case no future :meth:`complete` call will ever touch this
        job again.  Readiness is therefore re-checked here: the returned
        jobs (the retracted job itself, at most) are ready *now* and
        must be requeued by the caller; an empty list means a retried
        predecessor will re-emit it through :meth:`complete` as usual.
        """
        state = self._iters.get(job.iteration)
        if state is None:
            raise SchedulingError(
                f"retract for unknown iteration {job.iteration} ({job.node_id})"
            )
        if job.node_id in state.done:
            raise SchedulingError(
                f"retract for completed job {job.node_id}@{job.iteration}"
            )
        if job.node_id not in state.dispatched:
            raise SchedulingError(
                f"retract for undispatched job {job.node_id}@{job.iteration}"
            )
        state.dispatched.discard(job.node_id)
        ready: list[Job] = []
        self._check_ready(job.node_id, job.iteration, ready)
        return ready

    @property
    def lowest_live_iteration(self) -> int | None:
        """The oldest in-flight iteration (stream slots below it are
        released); ``None`` when the graph is quiescent."""
        return min(self._iters, default=None)

    def request_reconfig(self, plan: ReconfigPlan) -> None:
        """Queue a reconfiguration; admission halts until it is applied."""
        self._pending_plans.append(plan)
        self._halted = True

    def request_stop(self) -> None:
        """Stop admitting new iterations (end of input)."""
        self._halted_forever = True

    # -- internals ---------------------------------------------------------------------

    def _check_ready(self, node_id: str, iteration: int, out: list[Job]) -> None:
        state = self._iters.get(iteration)
        if state is None:
            return
        if node_id in state.dispatched:
            return
        if state.remaining[node_id] != 0:
            return
        if self._last_done[node_id] != iteration - 1:
            return
        state.dispatched.add(node_id)
        out.append(Job(iteration=iteration, node_id=node_id))

    def _admit(self) -> list[Job]:
        ready: list[Job] = []
        while (
            not self._halted
            and not self._halted_forever
            and len(self._iters) < self.pipeline_depth
            and self._next_admit < self.max_iterations
        ):
            k = self._next_admit
            self._next_admit += 1
            self._iters[k] = _IterationState(remaining=self._indeg_template.copy())
            for node_id in self._source_nodes:
                self._check_ready(node_id, k, ready)
        return ready

    def _after_iteration(self) -> list[Job]:
        if self._pending_plans and not self._iters:
            # Quiescent: apply every queued plan in arrival order.
            plans, self._pending_plans = self._pending_plans, []
            resume = self._next_admit
            new_pg = self.hooks.on_reconfigure(plans, resume)
            self._set_graph(new_pg)
            self._reconfig_count += 1
            # Every node (kept or spliced) is considered caught-up: all
            # iterations below `resume` have completed globally.
            self._last_done = {n: resume - 1 for n in new_pg.graph.node_ids}
            self._halted = False
        return self._admit()
