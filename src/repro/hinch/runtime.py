"""ThreadedRuntime: Hinch executing for real on worker threads.

This is the *correctness* backend: components compute actual data (numpy
frames, JPEG bitstreams...), streams carry it, managers reconfigure live.
``nodes`` worker threads pop jobs from the central queue — under CPython's
GIL this yields concurrency, not parallel speedup; performance curves come
from the SpaceCAKE simulator (:mod:`repro.spacecake`), which reuses the
same :class:`~repro.hinch.scheduler.DataflowScheduler` and this module's
:class:`ComponentHost` splice logic.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.program import ComponentInstance, Program, ProgramGraph
from repro.errors import SchedulingError
from repro.hinch.component import Component, JobContext
from repro.hinch.events import Event, EventBroker
from repro.hinch.fusion import FusedChain, FusionReport, run_fused
from repro.hinch.jobqueue import Job, JobQueue
from repro.hinch.manager import ManagerRuntime
from repro.hinch.scheduler import DataflowScheduler, ReconfigPlan
from repro.hinch.shm import SharedPlanePool
from repro.hinch.stream import StreamStore
from repro.hinch.tracing import TraceEvent, Tracer

__all__ = ["ThreadedRuntime", "RunResult", "ComponentHost"]


@dataclass
class RunResult:
    """Outcome of one application run."""

    completed_iterations: int
    elapsed_seconds: float
    reconfig_count: int
    trace: Tracer
    components: dict[str, Component]
    stream_stats: dict[str, tuple[int, int]]  # name -> (writes, reads)
    events_handled: int = 0
    events_ignored: int = 0
    #: allocation + serialization counters from the plane pool (see
    #: :class:`repro.hinch.shm.PoolStats`); summed across processes on
    #: the process backend
    pool_stats: dict[str, int] = field(default_factory=dict)
    #: worker failures, retries and respawns observed by the process
    #: backend (empty elsewhere); each entry is a dict with at least
    #: ``kind``/``worker``/``detail`` keys — see docs/fault-tolerance.md
    fault_events: list[dict[str, Any]] = field(default_factory=list)
    #: worker slots that actually forked (lazy spawn and elastic resize
    #: mean this can differ from the configured ``--workers`` in either
    #: direction); equals ``nodes`` on the threaded backend
    workers_spawned: int = 0
    #: auto-tuner decisions applied during the run, each a dict with
    #: ``kind``/``reason``/``predicted_fps``/``achieved_fps`` keys
    autotune_events: list[dict[str, Any]] = field(default_factory=list)


class ComponentHost:
    """Owns live component objects and applies reconfiguration splices.

    Shared by both backends: the threaded runtime creates/destroys real
    component objects; the simulator reuses the same bookkeeping so that
    creation costs and membership stay identical.
    """

    def __init__(
        self, program: Program, registry: Mapping[str, type[Component]]
    ) -> None:
        self.program = program
        self.registry = registry
        self.live: dict[str, Component] = {}
        self.created_total = 0
        #: build-time instance overrides: auto-inserted converters and
        #: readers rebound to converted streams (program is never mutated)
        self.overrides: dict[str, ComponentInstance] = {}

    def create(self, instance_id: str) -> Component:
        instance = self.overrides.get(instance_id)
        if instance is None:
            instance = self.program.components[instance_id]
        cls = self.registry[instance.class_name]
        component = cls(instance)
        component.setup()
        if instance.slice is not None:
            index, total = instance.slice
            component.reconfigure(f"slice={index}/{total}")
        if instance.reconfigure:
            component.reconfigure(instance.reconfigure)
        self.created_total += 1
        return component

    def populate(self, active: tuple[str, ...]) -> None:
        for instance_id in active:
            self.live[instance_id] = self.create(instance_id)

    def splice(
        self,
        new_active: tuple[str, ...],
        precreated: dict[str, Component],
    ) -> tuple[list[str], list[str]]:
        """Swap membership to ``new_active``; returns (added, removed)."""
        new_set = set(new_active)
        removed = [i for i in self.live if i not in new_set]
        for instance_id in removed:
            self.live.pop(instance_id).teardown()
        added = [i for i in new_active if i not in self.live]
        for instance_id in added:
            component = precreated.pop(instance_id, None)
            if component is None:
                component = self.create(instance_id)
            self.live[instance_id] = component
        # A re-slice can keep an instance id while changing its
        # descriptor (copy 0 of 4 becomes copy 0 of 2): the surviving
        # object still holds the old slice assignment and must be
        # rebuilt.  Only slice-elastic (stateless) components are ever
        # re-sliced, so recreation loses nothing.
        for instance_id in new_active:
            if instance_id in added:
                continue
            instance = self.overrides.get(
                instance_id, self.program.components.get(instance_id)
            )
            component = self.live[instance_id]
            if instance is not None and component.instance != instance:
                component.teardown()
                self.live[instance_id] = self.create(instance_id)
                added.append(instance_id)
        return added, removed


class ThreadedRuntime:
    """Run a Program on worker threads with real component execution."""

    def __init__(
        self,
        program: Program,
        registry: Mapping[str, type[Component]],
        *,
        nodes: int = 1,
        pipeline_depth: int = 5,
        max_iterations: int,
        trace: bool = False,
        option_states: Mapping[str, bool] | None = None,
        group_chains: bool = False,
        fuse: bool = False,
        fuse_backend: str = "numpy",
    ) -> None:
        if nodes < 1:
            raise SchedulingError(f"nodes must be >= 1, got {nodes}")
        self.program = program
        self.nodes = nodes
        self.pipeline_depth = pipeline_depth
        self.max_iterations = max_iterations
        self.group_chains = group_chains
        self.fuse = fuse
        self.fuse_backend = fuse_backend
        self.fusion_report: FusionReport | None = None
        #: per-fused-node execution caches (intermediate temps, compiled
        #: kernels); discarded whenever the graph is rebuilt
        self._fused_caches: dict[str, dict[str, Any]] = {}
        self.broker = EventBroker()
        # Process-local plane pool: sliced-writer buffers are recycled
        # across iterations instead of reallocated (same pool class the
        # process backend uses in shared-memory mode).
        self.pool = SharedPlanePool(shared=False)
        self.streams = StreamStore(self.pool)
        self.tracer = Tracer(enabled=trace)
        self.host = ComponentHost(program, registry)

        self._lock = threading.RLock()
        self.pg: ProgramGraph = self._make_pg(program, option_states)
        self._target_states: dict[str, bool] = dict(self.pg.option_states)
        self._precreated: dict[str, Component] = {}
        self.host.populate(self.pg.active_components)
        self.managers = {
            qname: ManagerRuntime(info, self.broker, self)
            for qname, info in program.managers.items()
        }
        self.scheduler = DataflowScheduler(
            self.pg,
            pipeline_depth=pipeline_depth,
            max_iterations=max_iterations,
            hooks=self,
        )
        self.queue = JobQueue()
        self._failure: BaseException | None = None
        self._start_time = 0.0
        #: (resume_iteration, option states) per applied reconfiguration
        self.reconfig_log: list[tuple[int, dict[str, bool]]] = []

    def _make_pg(
        self, program: Program, option_states: Mapping[str, bool] | None
    ) -> ProgramGraph:
        pg = program.build_graph(option_states)
        # The reconciled port formats become each stream's authoritative
        # buffer expectation (replacing first-write inference); recomputed
        # here so reconfiguration installs the new configuration's solution.
        from repro.analysis.formats import (
            auto_insert_converters,
            runtime_expectations,
            solve_formats_or_raise,
        )

        solution = solve_formats_or_raise(program, pg)
        expectations = runtime_expectations(program, pg, solution=solution)
        # X506 sites: bridge convertible dtype mismatches at build time;
        # the rebound reader/converter instances live in host.overrides.
        pg, overrides, expectations = auto_insert_converters(
            program, pg, self.host.registry, expectations, solution
        )
        self.host.overrides = overrides
        self.streams.set_expectations(expectations)
        if self.group_chains:
            from repro.hinch.grouping import group_linear_chains

            pg = group_linear_chains(pg)
        if self.fuse:
            from repro.hinch.fusion import fuse_chains

            pg, self.fusion_report = fuse_chains(
                pg, program, self.host.registry, expectations,
                self.fuse_backend,
            )
        # fused temps/kernels are per-graph; reconfiguration rebuilds them
        self._fused_caches = {}
        return pg

    # -- SchedulerHooks ------------------------------------------------------

    def on_iteration_complete(self, iteration: int) -> None:
        self.streams.release_iteration(iteration)

    def on_reconfigure(
        self, plans: list[ReconfigPlan], resume_iteration: int
    ) -> ProgramGraph:
        states = dict(self.pg.option_states)
        for plan in plans:
            states.update(plan.changes)
        new_pg = self._make_pg(self.program, states)
        self.host.splice(new_pg.active_components, self._precreated)
        # Anything pre-created for a change that was later reverted is
        # discarded here (its option ended up disabled).
        for component in self._precreated.values():
            component.teardown()
        self._precreated.clear()
        self.pg = new_pg
        self._target_states = dict(states)
        self.reconfig_log.append((resume_iteration, dict(states)))
        return new_pg

    # -- ReconfigController -----------------------------------------------------

    def target_option_state(self, option_qname: str) -> bool:
        with self._lock:
            return self._target_states[option_qname]

    def apply_option_changes(self, manager: str, changes: dict[str, bool]) -> None:
        with self._lock:
            effective = {
                opt: state
                for opt, state in changes.items()
                if self._target_states.get(opt) != state
            }
            if not effective:
                return
            self._target_states.update(effective)
            # Pre-create components for options being enabled, while the
            # subgraph is still active (paper §3.4: reduces reconfig time).
            for opt, state in effective.items():
                if state:
                    for member in self.program.options[opt].members:
                        if (
                            member not in self.host.live
                            and member not in self._precreated
                        ):
                            self._precreated[member] = self.host.create(member)
            self.scheduler.request_reconfig(
                ReconfigPlan(manager=manager, changes=effective)
            )

    def send_reconfigure_request(self, manager: str, request: str) -> None:
        with self._lock:
            members = list(self.program.managers[manager].members)
            live = [self.host.live[m] for m in members if m in self.host.live]
        for component in live:
            component.reconfigure(request)

    # -- event injection -----------------------------------------------------------

    def post_event(self, queue: str, name: str, payload: Any = None) -> None:
        """Inject an external (user) event."""
        self.broker.post(queue, Event(name=name, payload=payload))

    # -- execution --------------------------------------------------------------------

    def _execute(self, job: Job, worker: int) -> None:
        node = self.pg.graph.node(job.node_id)
        start = time.perf_counter()
        member_times: list[tuple[str, float, float]] | None = None
        if node.kind == "task":
            payload = node.payload
            if isinstance(payload, FusedChain):
                # One dispatch for the whole chain; intermediate planes
                # stay local to this job (repro.hinch.fusion).
                member_times = run_fused(
                    payload,
                    job.iteration,
                    self.streams,
                    self.broker,
                    self.pg.aliases,
                    self.host.live,
                    stop_requester=self._request_stop,
                    cache=self._fused_caches.setdefault(job.node_id, {}),
                )
            else:
                # Grouped nodes carry a tuple of instances: run them
                # back-to-back as one scheduled entity (paper §4.1).
                instances = (
                    payload if isinstance(payload, tuple) else (payload,)
                )
                for instance in instances:
                    component = self.host.live[instance.instance_id]
                    ctx = JobContext(
                        instance,
                        job.iteration,
                        self.streams,
                        self.broker,
                        self.pg.aliases,
                        stop_requester=self._request_stop,
                    )
                    component.run(ctx)
        elif node.kind in ("manager_enter", "manager_exit"):
            manager = self.managers[node.payload]
            with self._lock:
                manager.invoke(job.iteration, node.kind.removeprefix("manager_"))
        # barriers: nothing to do
        end = time.perf_counter()
        if self.tracer.enabled:
            self.tracer.record(
                TraceEvent(
                    node_id=job.node_id,
                    iteration=job.iteration,
                    worker=worker,
                    start=start,
                    end=end,
                    kind=node.kind,
                )
            )
            if member_times:
                # constituent-node attribution inside the fused job
                for member_id, m_start, m_end in member_times:
                    self.tracer.record(
                        TraceEvent(
                            node_id=member_id,
                            iteration=job.iteration,
                            worker=worker,
                            start=m_start,
                            end=m_end,
                            kind="fused_member",
                        )
                    )

    def _request_stop(self) -> None:
        with self._lock:
            self.scheduler.request_stop()

    def _worker(self, worker_id: int) -> None:
        while True:
            job = self.queue.pop()
            if job is None:
                return
            try:
                self._execute(job, worker_id)
            except BaseException as exc:  # propagate to run()
                with self._lock:
                    if self._failure is None:
                        self._failure = exc
                self.queue.close()
                return
            with self._lock:
                ready = self.scheduler.complete(job)
                done = self.scheduler.done
            self.queue.push_all(ready)
            if done:
                self.queue.drain()

    def run(self) -> RunResult:
        """Execute to completion; returns statistics and live components."""
        self._start_time = time.perf_counter()
        with self._lock:
            initial = self.scheduler.start()
            done_immediately = self.scheduler.done
        self.queue.push_all(initial)
        if done_immediately:
            self.queue.drain()
        threads = [
            threading.Thread(
                target=self._worker, args=(i,), name=f"hinch-worker-{i}",
                daemon=True,
            )
            for i in range(self.nodes)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if self._failure is not None:
            raise self._failure
        elapsed = time.perf_counter() - self._start_time
        stream_stats = {
            name: self.streams.stream(name).stats for name in self.streams.names
        }
        return RunResult(
            completed_iterations=self.scheduler.completed_iterations,
            elapsed_seconds=elapsed,
            reconfig_count=self.scheduler.reconfig_count,
            trace=self.tracer,
            components=dict(self.host.live),
            stream_stats=stream_stats,
            events_handled=sum(m.events_handled for m in self.managers.values()),
            events_ignored=sum(m.events_ignored for m in self.managers.values()),
            pool_stats=self.pool.stats.as_dict(),
            workers_spawned=self.nodes,
        )
