"""Execution tracing: who ran what, when, where.

Both backends record a :class:`TraceEvent` per executed job — wall-clock
seconds in the threaded runtime, virtual cycles in the simulator.  The
trace feeds utilization statistics, the benchmark reports, and debugging
(export to a Gantt-style text chart).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable

__all__ = ["TraceEvent", "Tracer", "ATTRIBUTION_KINDS", "CONTROL_KINDS"]

#: Event kinds that *attribute* time already covered by another event
#: (fused-chain members run inside their fused job's span).  Occupancy
#: analytics skip them or every fused second would count twice.
ATTRIBUTION_KINDS = frozenset({"fused_member"})

#: Zero-duration marker events recording a runtime decision rather than
#: executed work — the auto-tuner stamps one per reconfiguration it
#: applies.  Excluded from busy/occupancy accounting alongside
#: :data:`ATTRIBUTION_KINDS`; they exist for the timeline, not the sums.
CONTROL_KINDS = frozenset({"autotune"})


@dataclass(frozen=True, slots=True)
class TraceEvent:
    node_id: str
    iteration: int
    worker: int
    start: float
    end: float
    kind: str = "task"

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Thread-safe append-only trace log."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        # No-op fast path: bail before touching the lock when disabled.
        # Hot callers (the simulator completes millions of jobs per
        # sweep) additionally check ``enabled`` *before* constructing the
        # TraceEvent, so a disabled tracer costs one attribute read.
        if not self.enabled:
            return
        with self._lock:
            self._events.append(event)

    @property
    def events(self) -> list[TraceEvent]:
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    # -- analytics ----------------------------------------------------------

    def busy_time(self, worker: int | None = None) -> float:
        """Total busy time, optionally for one worker."""
        return sum(
            e.duration
            for e in self.events
            if e.kind not in ATTRIBUTION_KINDS
            and e.kind not in CONTROL_KINDS
            and (worker is None or e.worker == worker)
        )

    def makespan(self) -> float:
        events = self.events
        if not events:
            return 0.0
        return max(e.end for e in events) - min(e.start for e in events)

    def utilization(self, workers: int) -> float:
        """Busy fraction across ``workers`` over the makespan.

        Degenerate denominators — an empty trace, a zero-length span, or
        zero workers (lazy spawn can finish a trivial run before any
        worker forks) — yield 0.0 rather than dividing by zero.
        """
        span = self.makespan()
        if span <= 0 or workers <= 0:
            return 0.0
        return self.busy_time() / (span * workers)

    def per_worker_busy(self) -> dict[int, float]:
        """Busy seconds per worker — the fig-8-style occupancy curve.

        Dispatcher-executed control jobs (manager invocations) appear
        under worker ``-1`` on the process backend.
        """
        totals: dict[int, float] = {}
        for e in self.events:
            if e.kind in ATTRIBUTION_KINDS or e.kind in CONTROL_KINDS:
                continue
            totals[e.worker] = totals.get(e.worker, 0.0) + e.duration
        return dict(sorted(totals.items()))

    def workers_seen(self) -> frozenset[int]:
        """Worker ids that executed real work (control jobs excluded).

        With lazy spawn ``--workers N`` may fork fewer than N processes;
        occupancy denominators must count the workers that *ran*, not the
        configured ceiling.  Dispatcher control jobs (worker ``-1``) and
        decision markers do not make a worker "live".
        """
        return frozenset(
            e.worker
            for e in self.events
            if e.worker >= 0
            and e.kind not in ATTRIBUTION_KINDS
            and e.kind not in CONTROL_KINDS
        )

    def kind_counts(self) -> dict[str, int]:
        """Events per ``kind`` — e.g. how many retries/respawns a run saw."""
        counts: dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return counts

    def per_node_totals(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for e in self.events:
            totals[e.node_id] = totals.get(e.node_id, 0.0) + e.duration
        return totals

    def gantt(self, *, width: int = 72, workers: int | None = None) -> str:
        """Coarse ASCII Gantt chart (one row per worker)."""
        events = self.events
        if not events:
            return "(empty trace)"
        t0 = min(e.start for e in events)
        t1 = max(e.end for e in events)
        span = max(t1 - t0, 1e-12)
        rows = sorted({e.worker for e in events})
        if workers is not None:
            rows = list(range(workers))
        lines = []
        for w in rows:
            cells = [" "] * width
            for e in events:
                if e.worker != w:
                    continue
                lo = int((e.start - t0) / span * (width - 1))
                hi = max(lo, int((e.end - t0) / span * (width - 1)))
                mark = e.node_id[0] if e.node_id else "#"
                for i in range(lo, hi + 1):
                    cells[i] = mark
            lines.append(f"w{w:>2} |{''.join(cells)}|")
        return "\n".join(lines)


def merge_traces(traces: Iterable[Tracer]) -> Tracer:
    """Combine several traces into one (for multi-phase experiments)."""
    merged = Tracer()
    for t in traces:
        for e in t.events:
            merged.record(e)
    return merged
