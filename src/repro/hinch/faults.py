"""Deterministic fault injection for the process backend.

Fault tolerance that is only exercised by real hardware failures is
untested fault tolerance.  This module lets a run *script* worker
failures: each :class:`FaultSpec` names one dispatched task job (1-based,
counted in dispatch order on the dispatcher, re-dispatches included) and
a failure mode to apply to the worker that receives it:

* ``kill``  — the worker exits with ``os._exit`` before running the job,
  exactly like a segfault or OOM kill: no goodbye, no state flush.
* ``hang``  — the worker sleeps forever holding the job; only the
  dispatcher's per-job watchdog (``watchdog=`` / ``--watchdog``) can
  recover from this one.
* ``slow``  — the worker sleeps ``ms`` milliseconds, then runs the job
  normally; useful for exercising watchdog *near*-misses.

Specs are one-shot: the directive is consumed when its job index is
dispatched, so the retry of a killed job runs clean.  Everything is
counted on the dispatcher, which keeps injection deterministic for a
given schedule — the same spec kills the same job every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SchedulingError

__all__ = ["FaultSpec", "FaultInjector", "parse_faults"]

#: failure modes understood by the worker loop
KINDS = ("kill", "hang", "slow")


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One scripted failure: hit dispatched task job number ``at_job``."""

    kind: str
    at_job: int
    ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise SchedulingError(
                f"unknown fault kind {self.kind!r} (expected one of {KINDS})"
            )
        if self.at_job < 1:
            raise SchedulingError(
                f"fault job index must be >= 1 (1-based dispatch order), "
                f"got {self.at_job}"
            )
        if self.kind == "slow" and self.ms <= 0:
            raise SchedulingError(
                f"slow fault needs a positive latency, got {self.ms}ms"
            )

    def directive(self) -> tuple:
        """The wire form shipped to the worker with the job message."""
        if self.kind == "slow":
            return ("slow", self.ms)
        return (self.kind,)

    def describe(self) -> str:
        """The CLI syntax for this spec (``kill:3`` / ``slow:2:50``)."""
        if self.kind == "slow":
            ms = self.ms
            ms_s = f"{ms:g}"
            return f"slow:{self.at_job}:{ms_s}"
        return f"{self.kind}:{self.at_job}"


def _check_unique(specs: Sequence[FaultSpec]) -> None:
    """Two directives at one dispatch index would shadow each other."""
    seen: set[int] = set()
    for spec in specs:
        if spec.at_job in seen:
            raise SchedulingError(
                f"two faults target dispatched job {spec.at_job}; "
                "indices must be unique (the later directive would "
                "silently shadow the earlier one)"
            )
        seen.add(spec.at_job)


def parse_faults(text: str) -> list[FaultSpec]:
    """Parse the CLI syntax: ``kill:1,hang:5,slow:2:50``.

    Each comma-separated entry is ``kind:job`` (``slow`` takes a third
    ``:ms`` field).  Job indices are 1-based dispatch order and must be
    unique — two faults aimed at the same job would shadow each other.
    """
    specs: list[FaultSpec] = []
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        kind = parts[0].strip()
        try:
            if kind == "slow":
                if len(parts) != 3:
                    raise ValueError("slow takes kind:job:ms")
                specs.append(FaultSpec(kind, int(parts[1]), float(parts[2])))
            else:
                if len(parts) != 2:
                    raise ValueError("expected kind:job")
                specs.append(FaultSpec(kind, int(parts[1])))
        except ValueError as exc:
            raise SchedulingError(
                f"malformed fault spec {entry!r}: {exc} "
                "(syntax: kill:J | hang:J | slow:J:MS, comma-separated)"
            ) from None
    _check_unique(specs)
    return specs


class FaultInjector:
    """Hands out one-shot fault directives keyed by dispatch index."""

    def __init__(self, specs: Iterable[FaultSpec] | str) -> None:
        if isinstance(specs, str):
            specs = parse_faults(specs)
        specs = list(specs)
        # A dict would quietly keep only the *last* directive per index;
        # reject the collision here too so programmatic spec lists get
        # the same protection as the parsed CLI syntax.
        _check_unique(specs)
        self._pending: dict[int, FaultSpec] = {s.at_job: s for s in specs}
        self.injected: list[FaultSpec] = []

    def directive(self, job_index: int) -> tuple | None:
        """The directive for the ``job_index``-th dispatched task job.

        Consumes the spec (one-shot): the retry of a faulted job is
        dispatched with no directive attached.
        """
        spec = self._pending.pop(job_index, None)
        if spec is None:
            return None
        self.injected.append(spec)
        return spec.directive()

    @property
    def remaining(self) -> list[FaultSpec]:
        """Specs whose job index was never dispatched (run too short)."""
        return sorted(self._pending.values(), key=lambda s: s.at_job)


def coerce_injector(
    faults: "str | Sequence[FaultSpec] | FaultInjector | None",
) -> FaultInjector | None:
    """Normalize the runtime's ``faults=`` argument to an injector."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    return FaultInjector(faults)
