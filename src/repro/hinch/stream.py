"""Streaming communication: the synchronous primitive between components.

A stream is "a data structure in which the data is only used for a
limited amount of time ... typically implemented using a FIFO queue"
(paper §1).  With pipeline parallelism, up to ``pipeline_depth``
iterations are in flight, so a stream holds one *slot per iteration*;
slots are released when their iteration completes, which bounds memory to
the pipeline depth — the FIFO behaviour of the paper without a separate
ring-buffer implementation.

Data-parallel copies share the stream: the slot is a whole-frame buffer
allocated by the first writer copy (:meth:`Stream.ensure_buffer`), into
which each copy writes its assigned region.  Unsliced writers use
:meth:`Stream.put` exactly once per iteration.

The scheduler guarantees writers run before readers inside an iteration;
the stream *verifies* this (read-before-write and double-put raise
:class:`~repro.errors.StreamError`), so an under-ordered coordination
graph is caught loudly instead of producing garbage frames.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.errors import StreamError

__all__ = ["Stream", "StreamStore"]


class Stream:
    """One named stream: per-iteration slots with write-once discipline."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._slots: dict[int, Any] = {}
        self._finalized: set[int] = set()
        self._writes = 0
        self._reads = 0

    # -- writer API ----------------------------------------------------------

    def put(self, iteration: int, value: Any) -> None:
        """Write the whole value for ``iteration`` (unsliced writer)."""
        with self._lock:
            if iteration in self._slots:
                raise StreamError(
                    f"stream {self.name!r}: double write in iteration {iteration}"
                )
            self._slots[iteration] = value
            self._finalized.add(iteration)
            self._writes += 1

    def ensure_buffer(self, iteration: int, factory: Callable[[], Any]) -> Any:
        """Create-or-get the mutable slot buffer for a sliced writer.

        All slice copies of the writer call this with an equivalent
        factory; the first call allocates.  The returned buffer is
        mutated in place (each copy fills its region), so the slot is
        immediately visible — ordering is the scheduler's job.
        """
        with self._lock:
            if iteration in self._finalized:
                raise StreamError(
                    f"stream {self.name!r}: sliced write after finalizing "
                    f"put() in iteration {iteration}"
                )
            buffer = self._slots.get(iteration)
            if buffer is None:
                buffer = factory()
                self._slots[iteration] = buffer
            self._writes += 1
            return buffer

    # -- reader API ------------------------------------------------------------

    def get(self, iteration: int) -> Any:
        """Read the value for ``iteration``; raises if not yet written."""
        with self._lock:
            if iteration not in self._slots:
                raise StreamError(
                    f"stream {self.name!r}: read before write in iteration "
                    f"{iteration} (task graph does not order producer before "
                    "consumer)"
                )
            self._reads += 1
            return self._slots[iteration]

    def has(self, iteration: int) -> bool:
        with self._lock:
            return iteration in self._slots

    # -- lifecycle ---------------------------------------------------------------

    def release(self, iteration: int) -> None:
        """Drop the slot for a completed iteration (idempotent)."""
        with self._lock:
            self._slots.pop(iteration, None)
            self._finalized.discard(iteration)

    @property
    def live_slots(self) -> int:
        with self._lock:
            return len(self._slots)

    @property
    def stats(self) -> tuple[int, int]:
        """(writes, reads) counters, for tests and tracing."""
        with self._lock:
            return self._writes, self._reads

    def __repr__(self) -> str:
        return f"Stream({self.name!r}, live={self.live_slots})"


class StreamStore:
    """All streams of one running application, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._streams: dict[str, Stream] = {}
        #: cached list of all streams, invalidated on stream creation, so
        #: the per-iteration release sweep doesn't rebuild it every time
        self._snapshot: list[Stream] | None = None

    def stream(self, name: str) -> Stream:
        with self._lock:
            stream = self._streams.get(name)
            if stream is None:
                stream = Stream(name)
                self._streams[name] = stream
                self._snapshot = None
            return stream

    def release_iteration(self, iteration: int) -> None:
        """Release the given iteration's slot in every stream."""
        with self._lock:
            streams = self._snapshot
            if streams is None:
                streams = self._snapshot = list(self._streams.values())
        for stream in streams:
            stream.release(iteration)

    @property
    def names(self) -> list[str]:
        with self._lock:
            return list(self._streams)

    def total_live_slots(self) -> int:
        with self._lock:
            streams = list(self._streams.values())
        return sum(s.live_slots for s in streams)
