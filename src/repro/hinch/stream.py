"""Streaming communication: the synchronous primitive between components.

A stream is "a data structure in which the data is only used for a
limited amount of time ... typically implemented using a FIFO queue"
(paper §1).  With pipeline parallelism, up to ``pipeline_depth``
iterations are in flight, so a stream holds one *slot per iteration*;
slots are released when their iteration completes, which bounds memory to
the pipeline depth — the FIFO behaviour of the paper without a separate
ring-buffer implementation.

Data-parallel copies share the stream: the slot is a whole-frame buffer
allocated by the first writer copy (:meth:`Stream.ensure_buffer`), into
which each copy writes its assigned region.  Unsliced writers use
:meth:`Stream.put` exactly once per iteration.

The scheduler guarantees writers run before readers inside an iteration;
the stream *verifies* this (read-before-write and double-put raise
:class:`~repro.errors.StreamError`), so an under-ordered coordination
graph is caught loudly instead of producing garbage frames.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Mapping

import numpy as np

from repro.errors import StreamError, StreamFormatError
from repro.hinch.shm import Packed, PlaneRef, SharedPlanePool

__all__ = ["Stream", "StreamStore"]


class Stream:
    """One named stream: per-iteration slots with write-once discipline.

    When the owning :class:`StreamStore` carries a
    :class:`~repro.hinch.shm.SharedPlanePool`, sliced-writer buffers are
    acquired from the pool (by ``shape``/``dtype``) instead of allocated
    fresh, and handed back when the iteration's slot is released — after
    warm-up the stream stops allocating entirely.
    """

    def __init__(self, name: str, pool: SharedPlanePool | None = None) -> None:
        self.name = name
        self.pool = pool
        self._lock = threading.Lock()
        self._slots: dict[int, Any] = {}
        self._finalized: set[int] = set()
        #: iteration -> PlaneRef for pool-acquired ensure_buffer() planes
        self._refs: dict[int, PlaneRef] = {}
        self._writes = 0
        self._reads = 0
        #: solved (shape, dtype) from the format-reconciliation pass; when
        #: set, writers are validated against it instead of trusting the
        #: first write (X501/X503 territory at runtime)
        self.expected: tuple[tuple[int, ...], np.dtype] | None = None
        #: first-write geometry actually seen: ("plane", shape, dtype name)
        #: for ndarrays, (kind, None, None) for opaque payloads
        self.observed: tuple | None = None

    def set_expected(self, shape: tuple[int, ...], dtype: Any) -> None:
        """Install the reconciled format as this stream's authority."""
        self.expected = (tuple(shape), np.dtype(dtype))

    def _observe(self, value: Any) -> None:
        if self.observed is not None:
            return
        if isinstance(value, np.ndarray):
            self.observed = ("plane", tuple(value.shape), value.dtype.name)
        elif isinstance(value, Packed):
            # Process-backend transport descriptor: a bare plane exposes
            # its geometry through the ref; pickled payloads stay opaque.
            if value.kind == "plane" and value.refs:
                ref = value.refs[0]
                self.observed = (
                    "plane", tuple(ref.shape), np.dtype(ref.dtype).name
                )
            else:
                self.observed = ("packed", None, None)
        else:
            kind = getattr(value, "FORMAT_KIND", None) or getattr(
                type(value), "FORMAT_KIND", None
            )
            if kind is None and isinstance(value, (int, float)):
                kind = "scalar"
            self.observed = (kind or type(value).__name__, None, None)

    def check_expected(
        self,
        iteration: int,
        shape: tuple[int, ...] | None,
        dtype: Any,
        writer: str | None,
    ) -> None:
        if self.expected is None or shape is None:
            return
        want_shape, want_dtype = self.expected
        got_dtype = np.dtype(dtype) if dtype is not None else None
        if tuple(shape) != want_shape or (
            got_dtype is not None and got_dtype != want_dtype
        ):
            raise StreamFormatError(
                f"stream {self.name!r}: ensure_buffer geometry mismatch in "
                f"iteration {iteration}: node {writer or '?'} produced "
                f"{tuple(shape)}/{got_dtype}, but the reconciled port format "
                f"declares {want_shape}/{want_dtype} (see lint codes "
                "X501/X503, `python -m repro lint`)",
                stream=self.name,
                iteration=iteration,
                node=writer,
                declared=(want_shape, want_dtype.name),
                observed=(tuple(shape), got_dtype.name if got_dtype else None),
            )

    # -- writer API ----------------------------------------------------------

    def put(self, iteration: int, value: Any, *, writer: str | None = None) -> None:
        """Write the whole value for ``iteration`` (unsliced writer)."""
        with self._lock:
            if iteration in self._slots:
                raise StreamError(
                    f"stream {self.name!r}: double write in iteration {iteration}"
                )
            if isinstance(value, np.ndarray):
                self.check_expected(iteration, value.shape, value.dtype, writer)
            elif isinstance(value, Packed) and value.kind == "plane" and value.refs:
                ref = value.refs[0]
                self.check_expected(
                    iteration, tuple(ref.shape), ref.dtype, writer
                )
            self._observe(value)
            self._slots[iteration] = value
            self._finalized.add(iteration)
            self._writes += 1

    def ensure_buffer(
        self,
        iteration: int,
        factory: Callable[[], Any] | None = None,
        *,
        shape: tuple[int, ...] | None = None,
        dtype: Any = None,
        writer: str | None = None,
    ) -> Any:
        """Create-or-get the mutable slot buffer for a sliced writer.

        All slice copies of the writer call this with an equivalent
        allocation request; the first call allocates.  The returned
        buffer is mutated in place (each copy fills its region), so the
        slot is immediately visible — ordering is the scheduler's job.

        Writers that know their output geometry pass ``shape``/``dtype``,
        which lets a pool-backed store recycle planes across iterations;
        ``factory`` is the fallback for arbitrary buffers (always a fresh
        allocation).

        Every call after the first is validated against the existing
        allocation: slice copies disagreeing on geometry would otherwise
        silently share a wrong-size buffer and corrupt frames far from
        the faulty writer, so a mismatch raises :class:`StreamError`
        here instead.
        """
        with self._lock:
            if iteration in self._finalized:
                raise StreamError(
                    f"stream {self.name!r}: sliced write after finalizing "
                    f"put() in iteration {iteration}"
                )
            self.check_expected(iteration, shape, dtype, writer)
            buffer = self._slots.get(iteration)
            if buffer is not None and shape is not None and isinstance(
                buffer, np.ndarray
            ):
                want_dtype = np.dtype(dtype) if dtype is not None else None
                if tuple(shape) != buffer.shape or (
                    want_dtype is not None and want_dtype != buffer.dtype
                ):
                    raise StreamFormatError(
                        f"stream {self.name!r}: ensure_buffer geometry "
                        f"mismatch in iteration {iteration}: node "
                        f"{writer or '?'} requested {tuple(shape)}/"
                        f"{want_dtype}, slot already allocated as "
                        f"{buffer.shape}/{buffer.dtype} (see lint codes "
                        "X501/X503, `python -m repro lint`)",
                        stream=self.name,
                        iteration=iteration,
                        node=writer,
                        declared=(buffer.shape, buffer.dtype.name),
                        observed=(
                            tuple(shape),
                            want_dtype.name if want_dtype else None,
                        ),
                    )
            if buffer is None:
                if shape is not None:
                    if self.pool is not None:
                        buffer, ref = self.pool.acquire(tuple(shape), dtype)
                        self._refs[iteration] = ref
                    else:
                        buffer = np.empty(tuple(shape), dtype=dtype)
                elif factory is not None:
                    buffer = factory()
                else:
                    raise StreamError(
                        f"stream {self.name!r}: ensure_buffer needs a "
                        "factory or a shape"
                    )
                self._observe(buffer)
                self._slots[iteration] = buffer
            self._writes += 1
            return buffer

    def slot_ref(self, iteration: int) -> PlaneRef | None:
        """The pool plane backing this iteration's buffer, if any."""
        with self._lock:
            return self._refs.get(iteration)

    # -- reader API ------------------------------------------------------------

    def get(self, iteration: int) -> Any:
        """Read the value for ``iteration``; raises if not yet written."""
        with self._lock:
            if iteration not in self._slots:
                raise StreamError(
                    f"stream {self.name!r}: read before write in iteration "
                    f"{iteration} (task graph does not order producer before "
                    "consumer)"
                )
            self._reads += 1
            return self._slots[iteration]

    def has(self, iteration: int) -> bool:
        with self._lock:
            return iteration in self._slots

    # -- lifecycle ---------------------------------------------------------------

    def release(self, iteration: int) -> None:
        """Drop the slot for a completed iteration (idempotent).

        Pool-backed buffers — whether acquired here via
        :meth:`ensure_buffer` or written as :class:`~repro.hinch.shm.Packed`
        transport values by a process dispatcher — go back to the pool's
        free lists, preserving the slot-per-iteration memory bound.
        """
        with self._lock:
            value = self._slots.pop(iteration, None)
            self._finalized.discard(iteration)
            ref = self._refs.pop(iteration, None)
        if self.pool is not None:
            if ref is not None:
                self.pool.release(ref)
            else:
                self.pool.release_packed(value)

    @property
    def live_slots(self) -> int:
        with self._lock:
            return len(self._slots)

    @property
    def stats(self) -> tuple[int, int]:
        """(writes, reads) counters, for tests and tracing."""
        with self._lock:
            return self._writes, self._reads

    def __repr__(self) -> str:
        return f"Stream({self.name!r}, live={self.live_slots})"


class StreamStore:
    """All streams of one running application, created on first use.

    An optional :class:`~repro.hinch.shm.SharedPlanePool` becomes the
    buffer backend of every stream: sliced-writer buffers and packed
    transport values are recycled through it instead of allocated per
    iteration.
    """

    def __init__(self, pool: SharedPlanePool | None = None) -> None:
        self.pool = pool
        self._lock = threading.Lock()
        self._streams: dict[str, Stream] = {}
        #: cached list of all streams, invalidated on stream creation, so
        #: the per-iteration release sweep doesn't rebuild it every time
        self._snapshot: list[Stream] | None = None
        #: stream name -> (shape, dtype) from the format-reconciliation
        #: pass, installed on streams as they are created
        self._expectations: dict[str, tuple[tuple[int, ...], Any]] = {}

    def set_expectations(
        self, expectations: Mapping[str, tuple[tuple[int, ...], Any]]
    ) -> None:
        """Install solved per-stream formats as buffer authorities.

        ``expectations`` maps stream name to ``(shape, dtype)`` — the
        output of :func:`repro.analysis.formats.runtime_expectations`.
        Replaces the previous expectation table (reconfiguration swaps
        the active configuration's solution in) and applies to both
        existing and future streams.
        """
        with self._lock:
            self._expectations = dict(expectations)
            for name, stream in self._streams.items():
                exp = self._expectations.get(name)
                if exp is not None:
                    stream.set_expected(*exp)
                else:
                    stream.expected = None

    def observed_formats(self) -> dict[str, tuple]:
        """First-write geometry per stream, for format-parity checks."""
        with self._lock:
            return {
                name: s.observed
                for name, s in self._streams.items()
                if s.observed is not None
            }

    def stream(self, name: str) -> Stream:
        with self._lock:
            stream = self._streams.get(name)
            if stream is None:
                stream = Stream(name, self.pool)
                exp = self._expectations.get(name)
                if exp is not None:
                    stream.set_expected(*exp)
                self._streams[name] = stream
                self._snapshot = None
            return stream

    def release_iteration(self, iteration: int) -> None:
        """Release the given iteration's slot in every stream."""
        with self._lock:
            streams = self._snapshot
            if streams is None:
                streams = self._snapshot = list(self._streams.values())
        for stream in streams:
            stream.release(iteration)

    @property
    def names(self) -> list[str]:
        with self._lock:
            return list(self._streams)

    def total_live_slots(self) -> int:
        with self._lock:
            streams = list(self._streams.values())
        return sum(s.live_slots for s in streams)
