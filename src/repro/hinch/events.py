"""Asynchronous event communication (paper §2.3b, §3.4).

Events are "an asynchronous communication primitive for small pieces of
data": a component may post an event at any moment, independent of the
current iteration; managers poll their queue when invoked at subgraph
entry/exit and react by toggling options, forwarding, or broadcasting
reconfiguration requests.

Queues are named and owned by an :class:`EventBroker`; sending components
receive the queue *name* through an initialization parameter (exactly the
paper's prototype mechanism) and resolve it through the broker at post
time.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field
from typing import Any

from repro.errors import EventError

__all__ = [
    "Event",
    "EventQueue",
    "EventBroker",
    "EventStormWarning",
    "DEFAULT_HIGH_WATER",
]

#: default per-queue pending-event count that triggers a storm warning.
#: Normal applications hold a handful of events between manager polls;
#: thousands pending means nobody is polling the queue, or a forward
#: loop between managers is amplifying events (lint X405 catches the
#: statically visible case).
DEFAULT_HIGH_WATER = 10_000


class EventStormWarning(RuntimeWarning):
    """An event queue crossed its high-water mark between polls."""


@dataclass(frozen=True)
class Event:
    """A small asynchronous message.

    ``name`` selects the manager handler; ``payload`` is free-form (used
    e.g. as the reconfiguration request detail); ``source`` identifies
    the posting component (or ``"external"`` for user input injected by
    the harness).
    """

    name: str
    payload: Any = None
    source: str = "external"


class EventQueue:
    """Thread-safe FIFO of events.

    The queue is unbounded by design (posting must never block a
    component), but it *watches* its own depth: crossing ``high_water``
    pending events between polls emits an :class:`EventStormWarning`, and
    the threshold doubles after each warning so a runaway storm logs
    O(log n) warnings instead of one per post.  Draining the queue
    (:meth:`poll`) re-arms the original threshold.  Pass
    ``high_water=None`` to disable the check.
    """

    def __init__(
        self, name: str, *, high_water: int | None = DEFAULT_HIGH_WATER
    ) -> None:
        if high_water is not None and high_water < 1:
            raise EventError(
                f"event queue high_water must be >= 1 or None, got {high_water}"
            )
        self.name = name
        self.high_water = high_water
        self._warn_at = high_water
        self._lock = threading.Lock()
        self._items: list[Event] = []
        self._posted = 0

    def post(self, event: Event) -> None:
        warn_depth = None
        with self._lock:
            self._items.append(event)
            self._posted += 1
            if self._warn_at is not None and len(self._items) >= self._warn_at:
                warn_depth = len(self._items)
                self._warn_at *= 2
        if warn_depth is not None:
            warnings.warn(
                f"event queue {self.name!r} holds {warn_depth} undelivered "
                f"events (high-water {self.high_water}): no manager is "
                "polling it, or a manager forward loop is amplifying events "
                "(lint X405 detects the static case)",
                EventStormWarning,
                stacklevel=2,
            )

    def poll(self) -> list[Event]:
        """Drain and return all pending events (oldest first)."""
        with self._lock:
            items, self._items = self._items, []
            self._warn_at = self.high_water
        return items

    def peek_count(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def total_posted(self) -> int:
        """Number of events ever posted (for tests and statistics)."""
        with self._lock:
            return self._posted

    def __repr__(self) -> str:
        return f"EventQueue({self.name!r}, pending={self.peek_count()})"


class EventBroker:
    """Name -> queue directory; creates queues on first use.

    Queue names are global to an application run (see expander notes);
    parametrizing a procedure with different queue names yields distinct
    queues.
    """

    def __init__(self, *, high_water: int | None = DEFAULT_HIGH_WATER) -> None:
        self._lock = threading.Lock()
        self._queues: dict[str, EventQueue] = {}
        self._high_water = high_water

    def queue(self, name: str) -> EventQueue:
        if not name:
            raise EventError("event queue name must be non-empty")
        with self._lock:
            queue = self._queues.get(name)
            if queue is None:
                queue = EventQueue(name, high_water=self._high_water)
                self._queues[name] = queue
            return queue

    def post(self, queue_name: str, event: Event) -> None:
        self.queue(queue_name).post(event)

    @property
    def queue_names(self) -> list[str]:
        with self._lock:
            return list(self._queues)
