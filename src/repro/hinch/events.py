"""Asynchronous event communication (paper §2.3b, §3.4).

Events are "an asynchronous communication primitive for small pieces of
data": a component may post an event at any moment, independent of the
current iteration; managers poll their queue when invoked at subgraph
entry/exit and react by toggling options, forwarding, or broadcasting
reconfiguration requests.

Queues are named and owned by an :class:`EventBroker`; sending components
receive the queue *name* through an initialization parameter (exactly the
paper's prototype mechanism) and resolve it through the broker at post
time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import EventError

__all__ = ["Event", "EventQueue", "EventBroker"]


@dataclass(frozen=True)
class Event:
    """A small asynchronous message.

    ``name`` selects the manager handler; ``payload`` is free-form (used
    e.g. as the reconfiguration request detail); ``source`` identifies
    the posting component (or ``"external"`` for user input injected by
    the harness).
    """

    name: str
    payload: Any = None
    source: str = "external"


class EventQueue:
    """Thread-safe FIFO of events."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._items: list[Event] = []
        self._posted = 0

    def post(self, event: Event) -> None:
        with self._lock:
            self._items.append(event)
            self._posted += 1

    def poll(self) -> list[Event]:
        """Drain and return all pending events (oldest first)."""
        with self._lock:
            items, self._items = self._items, []
        return items

    def peek_count(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def total_posted(self) -> int:
        """Number of events ever posted (for tests and statistics)."""
        with self._lock:
            return self._posted

    def __repr__(self) -> str:
        return f"EventQueue({self.name!r}, pending={self.peek_count()})"


class EventBroker:
    """Name -> queue directory; creates queues on first use.

    Queue names are global to an application run (see expander notes);
    parametrizing a procedure with different queue names yields distinct
    queues.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queues: dict[str, EventQueue] = {}

    def queue(self, name: str) -> EventQueue:
        if not name:
            raise EventError("event queue name must be non-empty")
        with self._lock:
            queue = self._queues.get(name)
            if queue is None:
                queue = EventQueue(name)
                self._queues[name] = queue
            return queue

    def post(self, queue_name: str, event: Event) -> None:
        self.queue(queue_name).post(event)

    @property
    def queue_names(self) -> list[str]:
        with self._lock:
            return list(self._queues)
