"""Manager invocation logic (paper §3.4), shared by both backends.

A manager "is invoked twice in every iteration: at the entrance of its
subgraph ... and at the exit".  When invoked it polls its event queue and
applies, per event, the actions its handlers define:

* enable / disable / toggle an option — "ignored when the option is
  already in the required state";
* forward the event to another queue;
* send a reconfiguration request to all components in the managed
  subgraph.

The manager does not mutate the scheduler directly; it talks to a
:class:`ReconfigController` provided by the runtime, which owns option
target-states, pre-creates components for options being enabled ("as soon
as the event is detected, even though the contained subgraph is still
active"), and files a :class:`~repro.hinch.scheduler.ReconfigPlan`.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.program import ManagerInfo
from repro.hinch.events import Event, EventBroker

__all__ = ["ManagerRuntime", "ReconfigController"]


class ReconfigController(Protocol):
    """Runtime services a manager needs."""

    def target_option_state(self, option_qname: str) -> bool:
        """Current state including not-yet-applied pending changes."""

    def apply_option_changes(self, manager: str, changes: dict[str, bool]) -> None:
        """Queue a reconfiguration for the non-no-op subset of changes."""

    def send_reconfigure_request(self, manager: str, request: str) -> None:
        """Deliver a reconfiguration request to all active members."""


class ManagerRuntime:
    """One manager's per-run state: its queue binding and statistics."""

    def __init__(
        self,
        info: ManagerInfo,
        broker: EventBroker,
        controller: ReconfigController,
    ) -> None:
        self.info = info
        self.broker = broker
        self.controller = controller
        self.events_handled = 0
        self.events_ignored = 0

    def rebind(self, info: ManagerInfo) -> None:
        """Swap in a structurally-updated descriptor, keeping run state.

        Re-slicing rewrites the Program — member tuples change when a
        data-parallel group changes width — so the runtime hands each
        manager its replacement :class:`ManagerInfo` at the splice.
        Queue binding and statistics carry over; only the descriptor
        (handlers, members) is replaced.
        """
        if info.qname != self.info.qname or info.queue != self.info.queue:
            raise ValueError(
                f"rebind must keep identity: {self.info.qname!r}/"
                f"{self.info.queue!r} vs {info.qname!r}/{info.queue!r}"
            )
        self.info = info

    def invoke(self, iteration: int, phase: str) -> None:
        """Poll the queue and apply handlers; ``phase`` is enter/exit."""
        events = self.broker.queue(self.info.queue).poll()
        if not events:
            return
        changes: dict[str, bool] = {}
        for event in events:
            handlers = self.info.handlers_for(event.name)
            if not handlers:
                self.events_ignored += 1
                continue
            self.events_handled += 1
            for handler in handlers:
                if handler.action in ("enable", "disable", "toggle"):
                    option = handler.option
                    assert option is not None
                    current = changes.get(
                        option, self.controller.target_option_state(option)
                    )
                    if handler.action == "enable":
                        desired = True
                    elif handler.action == "disable":
                        desired = False
                    else:
                        desired = not current
                    changes[option] = desired
                elif handler.action == "forward":
                    assert handler.target is not None
                    self.broker.post(
                        handler.target,
                        Event(
                            name=event.name,
                            payload=event.payload,
                            source=event.source,
                        ),
                    )
                else:  # reconfigure
                    request = handler.request
                    assert request is not None
                    if event.payload is not None and "${payload}" in request:
                        request = request.replace(
                            "${payload}", str(event.payload)
                        )
                    self.controller.send_reconfigure_request(
                        self.info.qname, request
                    )
        # Drop no-op changes ("ignored when already in the required state").
        effective = {
            opt: state
            for opt, state in changes.items()
            if state != self.controller.target_option_state(opt)
        }
        if effective:
            self.controller.apply_option_changes(self.info.qname, effective)
