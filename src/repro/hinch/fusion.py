"""Chain fusion: compile producer→consumer chains into single-dispatch kernels.

The §4.1 grouping rewrite (:mod:`repro.hinch.grouping`) merges *graph
linear* chains — producer with one successor meeting consumer with one
predecessor.  That shape is rare in real pipelines: sliced stages meet at
barrier nodes, so the runtime bench shows per-job Python dispatch (not
pixels) dominating wall time.  This module is the grouping idea taken to
its logical end, a **chain-fusion compiler** that runs at build time and
again at every reconfiguration splice:

1. For every stream it asks whether each *reader copy* provably consumes
   only what its *paired writer copy* produced.  Unsliced 1:1 streams
   pass trivially; sliced pairs are proven through the components'
   ``writes_rows``/``reads_rows`` access contracts against the plane
   height pinned by the reconciled X5xx port formats (PR 6) — e.g. a
   block-8 IDCT copy writes rows ``[16i, 16i+16)`` of a 128-row field
   and the factor-4 downscaler copy with the same slice index reads
   exactly that band.
2. Approved pairs are contracted into :class:`FusedChain` nodes whose one
   job executes every member back-to-back per slice.  The intermediate
   plane becomes a worker-local numpy temporary (never touching
   ``Stream``/shm — no pack, no ensure rpc, no pickle), and the released
   cross-pair orderings let the mediating barrier disappear: the fused
   graph keeps structural edges plus per-stream dataflow edges for
   everything *not* proven internal, and falls back chain-by-chain (and
   ultimately to the unfused graph) if a rewrite would introduce a cycle.

Codegen backends: the always-on ``numpy`` backend composes the members'
vectorized kernels over the local temporaries; ``numba`` additionally
asks each member class for an njit-compiled replacement kernel
(:meth:`Component.compile_fused`), silently falling back per member —
and to ``numpy`` entirely — when numba is absent or compilation fails.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.core.program import ComponentInstance, ProgramGraph, StreamTable
from repro.errors import StreamError, StreamFormatError
from repro.graph.taskgraph import TaskGraph
from repro.hinch.component import Component, JobContext
from repro.hinch.events import EventBroker
from repro.hinch.grouping import GROUP_SEPARATOR

__all__ = [
    "FusedChain",
    "FusionReport",
    "fuse_chains",
    "run_fused",
    "resolve_backend",
    "numba_available",
    "FUSE_BACKENDS",
]

FUSE_BACKENDS = ("numpy", "numba")


def numba_available() -> bool:
    """True when the optional numba dependency can actually be imported."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def resolve_backend(requested: str) -> str:
    """Resolve the requested codegen backend, falling back to ``numpy``.

    ``numba`` degrades silently when the dependency is absent — the
    fused-vs-unfused bit-identity contract holds either way, so a missing
    accelerator must never fail a run.
    """
    if requested not in FUSE_BACKENDS:
        raise ValueError(
            f"unknown fuse backend {requested!r}; expected one of "
            f"{FUSE_BACKENDS}"
        )
    if requested == "numba" and not numba_available():
        return "numpy"
    return requested


class FusedChain(tuple):
    """Execution-ordered members of one fused kernel.

    A tuple subclass so every existing "grouped node" code path (lease
    assembly, input gathering, checkpoint iteration) keeps working on the
    members, while fused execution recognizes the richer type:

    ``internal``
        resolved stream name -> ``(shape, dtype)`` geometry from the
        format solution, or ``None`` for opaque (object) streams.  These
        streams live as job-local values/temporaries and never reach the
        stream store.
    ``backend``
        resolved codegen backend (``"numpy"`` or ``"numba"``).
    """

    internal: dict[str, tuple[tuple[int, ...], Any] | None]
    backend: str

    def __new__(
        cls,
        members: tuple[ComponentInstance, ...],
        internal: Mapping[str, tuple[tuple[int, ...], Any] | None],
        backend: str = "numpy",
    ) -> "FusedChain":
        self = super().__new__(cls, tuple(members))
        self.internal = dict(internal)
        self.backend = backend
        return self

    def __reduce__(self):
        return (FusedChain, (tuple(self), self.internal, self.backend))

    @property
    def node_id(self) -> str:
        return GROUP_SEPARATOR.join(m.instance_id for m in self)


@dataclass
class FusionReport:
    """What one :func:`fuse_chains` pass decided, for introspection/tests."""

    requested_backend: str
    backend: str
    chains: tuple[FusedChain, ...] = ()
    #: resolved stream names proven internal to some chain
    internal_streams: tuple[str, ...] = ()
    #: derived implementation families: fused family name -> wrapper class
    derived: dict[str, type[Component]] = field(default_factory=dict)
    #: chain node ids dropped to keep the rewritten graph acyclic
    dropped: tuple[str, ...] = ()
    #: stream name -> human-readable refusal reason (first one found)
    refused: dict[str, str] = field(default_factory=dict)

    @property
    def fused_node_count(self) -> int:
        return len(self.chains)


# ---------------------------------------------------------------------------
# Candidate approval
# ---------------------------------------------------------------------------


def _approve_stream(
    name: str,
    table: StreamTable,
    pg: ProgramGraph,
    registry: Mapping[str, type[Component]],
    expectations: Mapping[str, tuple[tuple[int, ...], Any]],
    parallel_headroom: int | None = None,
) -> tuple[list[tuple[str, str]], Any] | str:
    """Decide whether stream ``name`` can become fused-chain internal.

    Returns ``(pairs, geometry)`` — writer/reader instance-id pairs whose
    cross-pair ordering the access contracts release — or a refusal
    reason string.

    ``parallel_headroom`` (workers the caller can actually run in
    parallel, ``None`` = unknown/serial) feeds the profitability guard:
    fusing slice copy pairs is a loss when *more* workers than copies
    exist, because the unfused form lets writer copies of iteration k+1
    overlap reader copies of iteration k on the extra workers — fusion
    welds each pair into one job and forfeits that pipeline overlap.
    Pairs with a real combined kernel (``compile_fused_pair`` override)
    are exempt: they elide work outright, which beats overlap.
    """
    graph = pg.graph
    if not table.writers or not table.readers:
        return "missing endpoint"

    def inst_of(endpoint) -> ComponentInstance | None:
        iid = endpoint.instance_id
        if iid not in graph:
            return None  # already merged into a grouped node
        node = graph.node(iid)
        if node.kind != "task" or not isinstance(
            node.payload, ComponentInstance
        ):
            return None
        return node.payload

    writer_insts = [inst_of(w) for w in table.writers]
    reader_insts = [inst_of(r) for r in table.readers]
    if any(i is None for i in writer_insts + reader_insts):
        return "endpoint is not a standalone task node"
    # chains must not cross control nodes (kind filter above), crossdep
    # consumers, or option-configuration boundaries
    all_insts = writer_insts + reader_insts
    if any(i.instance_id in pg.crossdep_nodes for i in all_insts):
        return "crossdep endpoint"
    if len({i.manager for i in all_insts}) > 1:
        return "crosses a manager boundary"
    if len({i.options for i in all_insts}) > 1:
        return "crosses an option-configuration boundary"
    if len({i.definition_id for i in writer_insts}) > 1:
        return "multiple writer definitions"
    if len({i.definition_id for i in reader_insts}) > 1:
        return "multiple reader definitions"
    writer_ids = {i.instance_id for i in writer_insts}
    if writer_ids & {i.instance_id for i in reader_insts}:
        return "instance both writes and reads the stream"
    if len({i.instance_id for i in reader_insts}) != len(reader_insts):
        return "instance reads the stream on several ports"

    w_port = table.writers[0].port
    r_port = table.readers[0].port
    slices = {i.slice for i in all_insts}

    if slices == {None}:
        if len(writer_insts) == 1 and len(reader_insts) == 1:
            # Unsliced 1:1: the single reader consumes exactly the single
            # writer's whole value — pass it as a local object.
            pairs = [
                (writer_insts[0].instance_id, reader_insts[0].instance_id)
            ]
            return pairs, expectations.get(name)
        return "plural unsliced endpoints"

    if None in slices:
        return "mixed sliced/unsliced endpoints"

    # Sliced pairs: writer copy i must provably cover reader copy i.
    n_totals = {i.slice[1] for i in all_insts}
    if len(n_totals) != 1:
        return "slice counts differ"
    n = n_totals.pop()
    by_index_w = {i.slice[0]: i for i in writer_insts}
    by_index_r = {i.slice[0]: i for i in reader_insts}
    if set(by_index_w) != set(range(n)) or set(by_index_r) != set(range(n)):
        return "slice copies do not cover 0..n-1"
    if parallel_headroom is not None and parallel_headroom > n:
        r_cls0 = registry.get(reader_insts[0].class_name)
        peephole = (
            r_cls0 is not None
            and r_cls0.compile_fused_pair.__func__
            is not Component.compile_fused_pair.__func__
        )
        if not peephole:
            return (
                f"unprofitable: {n} slice copies under "
                f"{parallel_headroom}-way parallel headroom — unfused "
                "pipeline overlap beats single-job fusion"
            )
    geometry = expectations.get(name)
    if geometry is None:
        return "no reconciled plane format (X5xx) to prove row spans"
    height = int(geometry[0][0])
    pairs: list[tuple[str, str]] = []
    for i in range(n):
        w, r = by_index_w[i], by_index_r[i]
        if w.slice != r.slice:
            return "slice assignments differ within a pair"
        w_cls = registry.get(w.class_name)
        r_cls = registry.get(r.class_name)
        if w_cls is None or r_cls is None:
            return "endpoint class not in registry"
        wrote = w_cls.writes_rows(w, w_port, height)
        read = r_cls.reads_rows(r, r_port, height)
        if wrote is None or read is None:
            return (
                f"no access contract for pair {w.instance_id!r}/"
                f"{r.instance_id!r}"
            )
        if not (wrote[0] <= read[0] and read[1] <= wrote[1]):
            return (
                f"rows read {read} exceed rows written {wrote} for slice {i}"
            )
        pairs.append((w.instance_id, r.instance_id))
    return pairs, geometry


# ---------------------------------------------------------------------------
# Graph rewrite
# ---------------------------------------------------------------------------


def _build_chains(
    graph: TaskGraph, pairs: list[tuple[str, str]]
) -> list[list[str]]:
    """Union approved pairs into chains, members in topological order."""
    parent: dict[str, str] = {}

    def find(x: str) -> str:
        while parent.setdefault(x, x) != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in pairs:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
    order = {nid: i for i, nid in enumerate(graph.topological_order())}
    groups: dict[str, list[str]] = {}
    for member in parent:
        groups.setdefault(find(member), []).append(member)
    chains = [sorted(ms, key=order.__getitem__) for ms in groups.values()]
    chains.sort(key=lambda ms: order[ms[0]])
    return chains


def _rewrite(
    pg: ProgramGraph,
    chains: list[list[str]],
    approved: dict[str, tuple[list[tuple[str, str]], Any]],
    backend: str,
) -> tuple[TaskGraph, list[FusedChain]] | None:
    """Contract ``chains`` into fused nodes; None when the result cycles.

    Barrier nodes encode only ordering, and the approved access contracts
    released exactly the cross-pair orderings they enforced — so barriers
    are dropped wholesale and replaced by per-stream dataflow edges:
    every writer→reader pair for unapproved streams, matched pairs only
    for approved ones (which contract to self-edges inside a chain).
    """
    graph = pg.graph
    member_of: dict[str, str] = {}
    chain_ids: list[str] = []
    for members in chains:
        cid = GROUP_SEPARATOR.join(members)
        chain_ids.append(cid)
        for m in members:
            member_of[m] = cid
    chain_members = dict(zip(chain_ids, chains))

    # locate: instance id -> current node id (grouped nodes hold tuples)
    locate: dict[str, str] = {}
    for node in graph:
        payload = node.payload
        if isinstance(payload, ComponentInstance):
            locate[payload.instance_id] = node.node_id
        elif isinstance(payload, tuple):
            for m in payload:
                locate[m.instance_id] = node.node_id

    fused_payloads: dict[str, FusedChain] = {}
    new = TaskGraph()
    for node in graph:
        if node.kind == "barrier":
            continue
        cid = member_of.get(node.node_id)
        if cid is None:
            new.add_node(
                node.node_id,
                label=node.label,
                kind=node.kind,
                payload=node.payload,
                weight=node.weight,
            )
        elif cid not in new:
            members = tuple(
                graph.node(m).payload for m in chain_members[cid]
            )
            internal = {
                name: geometry
                for name, (prs, geometry) in approved.items()
                if any(
                    member_of.get(w) == cid and member_of.get(r) == cid
                    for w, r in prs
                )
            }
            payload = FusedChain(members, internal, backend)
            fused_payloads[cid] = payload
            new.add_node(
                cid,
                label=cid,
                kind="task",
                payload=payload,
                weight=sum(graph.node(m).weight for m in chain_members[cid]),
            )

    def mapped(instance_id: str) -> str | None:
        nid = locate.get(instance_id, instance_id)
        nid = member_of.get(nid, nid)
        return nid if nid in new else None

    # structural edges (series/parallel/crossdep/manager), barriers elided
    for u, v in graph.edges():
        if graph.node(u).kind == "barrier" or graph.node(v).kind == "barrier":
            continue
        a, b = member_of.get(u, u), member_of.get(v, v)
        if a != b and a in new and b in new:
            new.add_edge(a, b)
    # dataflow edges per stream
    for name, table in pg.streams.items():
        entry = approved.get(name)
        if entry is None:
            pairlist = [
                (w.instance_id, r.instance_id)
                for w in table.writers
                for r in table.readers
            ]
        else:
            pairlist = entry[0]
        for w_id, r_id in pairlist:
            a, b = mapped(w_id), mapped(r_id)
            if a is not None and b is not None and a != b:
                new.add_edge(a, b)

    if not new.is_acyclic():
        return None
    return new, [fused_payloads[cid] for cid in chain_ids]


def fuse_chains(
    pg: ProgramGraph,
    program: Any,
    registry: Mapping[str, type[Component]],
    expectations: Mapping[str, tuple[tuple[int, ...], Any]],
    backend: str = "numpy",
    parallel_headroom: int | None = None,
) -> tuple[ProgramGraph, FusionReport]:
    """Compile every provably-fusable chain of ``pg`` into fused nodes.

    Deterministic in its inputs: the dispatcher and every worker process
    run this independently after each reconfiguration splice and must
    agree on node ids and member order.  Returns the rewritten graph
    (or ``pg`` itself when nothing fuses) plus a :class:`FusionReport`.

    ``parallel_headroom`` enables the sliced-pair profitability guard
    (see :func:`_approve_stream`); callers pass the number of workers
    that can genuinely run in parallel (``min(workers, cores)`` on the
    process backend) or ``None`` to fuse unconditionally.
    """
    resolved = resolve_backend(backend)
    report = FusionReport(requested_backend=backend, backend=resolved)

    approved: dict[str, tuple[list[tuple[str, str]], Any]] = {}
    for name, table in pg.streams.items():
        verdict = _approve_stream(
            name, table, pg, registry, expectations,
            parallel_headroom=parallel_headroom,
        )
        if isinstance(verdict, str):
            report.refused[name] = verdict
        else:
            approved[name] = verdict

    if not approved:
        return pg, report

    all_pairs = [p for prs, _ in approved.values() for p in prs]
    chains = _build_chains(pg.graph, all_pairs)

    dropped: list[str] = []
    while chains:
        result = _rewrite(pg, chains, approved, resolved)
        if result is not None:
            break
        # A chain interacts with an external path; drop the most recently
        # discovered chain and retry (deterministic, converges).
        dropped.append(GROUP_SEPARATOR.join(chains[-1]))
        chains = chains[:-1]
    else:
        report.dropped = tuple(dropped)
        return pg, report

    new_graph, fused = result
    report.chains = tuple(fused)
    report.dropped = tuple(dropped)
    report.internal_streams = tuple(
        sorted({name for c in fused for name in c.internal})
    )
    for chain in fused:
        fam_name, cls = _derived_family(chain, registry, pg)
        if fam_name not in report.derived:
            report.derived[fam_name] = cls

    fused_pg = ProgramGraph(
        graph=new_graph,
        streams=pg.streams,
        aliases=pg.aliases,
        option_states=pg.option_states,
        active_components=pg.active_components,
        crossdep_nodes=pg.crossdep_nodes,
    )
    return fused_pg, report


def _derived_family(
    chain: FusedChain,
    registry: Mapping[str, type[Component]],
    pg: ProgramGraph,
) -> tuple[str, type[Component]]:
    """Build the derived implementation family for one fused chain.

    The family name concatenates the member class names; the wrapper
    class exposes the chain's *external* contract — every member port
    whose stream survives fusion, qualified ``<class>[<i>].<port>`` —
    so ``run --impl``/lint introspection still sees the abstract chain.
    """
    fam_name = GROUP_SEPARATOR.join(m.class_name for m in chain)
    inputs: list[str] = []
    outputs: list[str] = []
    formats: dict[str, str] = {}
    for i, member in enumerate(chain):
        spec = registry[member.class_name].ports
        for port, raw in member.streams.items():
            resolved_name = pg.resolve_stream(raw)
            if resolved_name in chain.internal:
                continue
            qualified = f"{member.class_name}[{i}].{port}"
            if spec.is_output(port):
                outputs.append(qualified)
            else:
                inputs.append(qualified)
            decl = spec.formats.get(port)
            if decl is not None:
                formats[qualified] = decl
    from repro.core.ports import PortSpec

    wrapper = type(
        "Fused_" + fam_name.replace(GROUP_SEPARATOR, "_"),
        (Component,),
        {
            "ports": PortSpec(
                inputs=tuple(inputs),
                outputs=tuple(outputs),
                open_params=True,
                formats=formats,
            ),
            "__doc__": f"Derived fused family {fam_name!r} (introspection "
            "only; execution runs the member kernels).",
        },
    )
    return fam_name, wrapper


# ---------------------------------------------------------------------------
# Fused execution (shared by both runtimes)
# ---------------------------------------------------------------------------

_MISSING = object()


class _LocalStream:
    """Stream facade for one fused-internal stream within one job."""

    __slots__ = ("_store", "_name")

    def __init__(self, store: "_FusedLocalStore", name: str) -> None:
        self._store = store
        self._name = name

    def get(self, iteration: int) -> Any:
        value = self._store.slots.get(self._name, _MISSING)
        if value is _MISSING:
            raise StreamError(
                f"fused stream {self._name!r}: read before write in "
                f"iteration {iteration} (member order broken)"
            )
        return value

    def put(self, iteration: int, value: Any, *, writer: str | None = None) -> None:
        if self._name in self._store.slots:
            raise StreamError(
                f"fused stream {self._name!r}: double write in iteration "
                f"{iteration}"
            )
        self._store.slots[self._name] = value

    def ensure_buffer(
        self,
        iteration: int,
        factory: Callable[[], Any] | None = None,
        *,
        shape: tuple[int, ...] | None = None,
        dtype: Any = None,
        writer: str | None = None,
    ) -> Any:
        buf = self._store.slots.get(self._name, _MISSING)
        if buf is not _MISSING:
            return buf
        expected = self._store.internal.get(self._name)
        if expected is not None and shape is not None:
            want_shape, want_dtype = expected
            got_dtype = np.dtype(dtype) if dtype is not None else None
            if tuple(shape) != tuple(want_shape) or (
                got_dtype is not None and got_dtype != np.dtype(want_dtype)
            ):
                raise StreamFormatError(
                    f"fused stream {self._name!r}: geometry mismatch in "
                    f"iteration {iteration}: node {writer or '?'} produced "
                    f"{tuple(shape)}/{got_dtype}, but the reconciled port "
                    f"format declares {tuple(want_shape)}/"
                    f"{np.dtype(want_dtype)}",
                    stream=self._name,
                    iteration=iteration,
                    node=writer,
                    declared=(tuple(want_shape), np.dtype(want_dtype).name),
                    observed=(
                        tuple(shape), got_dtype.name if got_dtype else None
                    ),
                )
        if shape is None and expected is not None:
            shape, dtype = expected
        if shape is not None:
            buf = self._store.temp(self._name, tuple(shape), dtype)
        elif factory is not None:
            buf = factory()
        else:
            raise StreamError(
                f"fused stream {self._name!r}: ensure_buffer needs a "
                "factory or a shape"
            )
        self._store.slots[self._name] = buf
        return buf


class _FusedLocalStore:
    """StreamStore facade: internal streams stay job-local, rest pass through.

    ``temps`` caches the intermediate planes per fused node *across
    iterations* — the scheduler serializes a node's iterations, so the
    same scratch plane is safely reused and the fused hot path stops
    allocating entirely.  Caches are discarded at reconfiguration.
    """

    __slots__ = ("_base", "internal", "slots", "_temps")

    def __init__(
        self,
        base: Any,
        chain: FusedChain,
        temps: dict[str, np.ndarray],
    ) -> None:
        self._base = base
        self.internal = chain.internal
        self.slots: dict[str, Any] = {}
        self._temps = temps

    def stream(self, name: str):
        if name in self.internal:
            return _LocalStream(self, name)
        return self._base.stream(name)

    def temp(
        self, name: str, shape: tuple[int, ...], dtype: Any
    ) -> np.ndarray:
        buf = self._temps.get(name)
        if (
            buf is None
            or buf.shape != shape
            or (dtype is not None and buf.dtype != np.dtype(dtype))
        ):
            buf = np.empty(shape, dtype=dtype)
            self._temps[name] = buf
        return buf


def run_fused(
    chain: FusedChain,
    iteration: int,
    streams: Any,
    broker: EventBroker,
    aliases: dict[str, str],
    components: Mapping[str, Component],
    *,
    stop_requester: Callable[[], None] | None = None,
    cache: dict[str, Any] | None = None,
) -> list[tuple[str, float, float]]:
    """Execute one fused job; returns per-member (instance_id, start, end).

    ``streams`` is anything exposing ``.stream(name)`` (a
    :class:`~repro.hinch.stream.StreamStore` or the process workers'
    stream view); ``cache`` is a per-fused-node dict owned by the caller,
    holding the reusable intermediate temps and, on the numba backend,
    the compiled member kernels.  Clear it on reconfiguration.
    """
    if cache is None:
        cache = {}
    temps = cache.setdefault("temps", {})
    store = _FusedLocalStore(streams, chain, temps)
    steps = cache.get("steps")
    if steps is None:
        steps = cache["steps"] = _compile_steps(chain, components, aliases)
    member_times: list[tuple[str, float, float]] = []
    for first, second, kernel in steps:
        ctx = JobContext(
            first,
            iteration,
            store,
            broker,
            aliases,
            stop_requester=stop_requester,
        )
        start = time.perf_counter()
        if second is not None:
            # pair-compiled step: one kernel covers both members; the
            # combined span is attributed to each constituent (display
            # only — fused_member events never enter busy accounting)
            ctx2 = JobContext(
                second,
                iteration,
                store,
                broker,
                aliases,
                stop_requester=stop_requester,
            )
            kernel(
                components[first.instance_id],
                components[second.instance_id],
                ctx,
                ctx2,
            )
            end = time.perf_counter()
            member_times.append((first.instance_id, start, end))
            member_times.append((second.instance_id, start, end))
            continue
        component = components[first.instance_id]
        if kernel is not None:
            kernel(component, ctx)
        else:
            component.run(ctx)
        member_times.append(
            (first.instance_id, start, time.perf_counter())
        )
    return member_times


def _compile_steps(
    chain: FusedChain,
    components: Mapping[str, Component],
    aliases: dict[str, str],
) -> list[tuple[ComponentInstance, ComponentInstance | None, Any]]:
    """Lower a chain to execution steps: pair kernels, then per-member.

    Adjacent members whose connecting streams are all chain-internal are
    offered to the downstream class's
    :meth:`~Component.compile_fused_pair` peephole; a hit collapses both
    into one step.  Remaining members get a per-member compiled kernel
    on non-default backends (:meth:`~Component.compile_fused`) or the
    interpreted ``run``.
    """
    members = list(chain)
    steps: list[tuple[ComponentInstance, ComponentInstance | None, Any]] = []
    i = 0
    while i < len(members):
        if i + 1 < len(members):
            a, b = members[i], members[i + 1]
            if _feeds_internally(a, b, chain, components, aliases):
                pair = type(components[b.instance_id]).compile_fused_pair(
                    type(components[a.instance_id]), a, b, chain.backend
                )
                if pair is not None:
                    steps.append((a, b, pair))
                    i += 2
                    continue
        member = members[i]
        kernel = (
            type(components[member.instance_id]).compile_fused(
                member, chain.backend
            )
            if chain.backend != "numpy"
            else None
        )
        steps.append((member, None, kernel))
        i += 1
    return steps


def _feeds_internally(
    a: ComponentInstance,
    b: ComponentInstance,
    chain: FusedChain,
    components: Mapping[str, Component],
    aliases: dict[str, str],
) -> bool:
    """True when every output of ``a`` is chain-internal and read by ``b``.

    The pair peephole may skip materializing ``a``'s outputs, which is
    sound only if no one outside the pair — neither another chain member
    nor the stream store — can observe them.
    """
    ports_a = type(components[a.instance_id]).ports
    ports_b = type(components[b.instance_id]).ports
    outs = {
        aliases.get(a.streams[p], a.streams[p])
        for p in ports_a.outputs
        if p in a.streams
    }
    ins = {
        aliases.get(b.streams[p], b.streams[p])
        for p in ports_b.inputs
        if p in b.streams
    }
    return bool(outs) and outs <= set(chain.internal) and outs <= ins
