"""Component grouping: schedule producer+consumer as one entity (§4.1).

"This issue can be addressed in future versions by grouping several
components into a group that is scheduled as one entity.  The consumer
components in this group will then be run immediately after the
producers, when the data is still in the cache.  However, this approach
reduces the amount of parallelism in the application ..."

:func:`group_linear_chains` implements that future version: it rewrites a
built task graph, merging *linear chains* of task nodes (single successor
meets single predecessor, both plain components with the same slice
assignment) into one composite node.  The runtimes execute a composite
node's members back-to-back in one job on one core — so in the SpaceCAKE
model the intermediate stream's cache keys are written and immediately
re-read by the same core (L1 hits), reproducing exactly the reuse the
paper predicts, while the merged node makes the lost parallelism visible
to the scheduler.

Both backends accept ``group_chains=True``; grouping is re-applied after
every reconfiguration splice.

The process backend's *speculative job leases* (``--batch N``,
``DataflowScheduler.extract_followons``) are the dynamic counterpart of
this static rewrite: a consumer whose only missing producer is an
earlier member of the same lease runs immediately after it on the same
worker — the §4.1 producer→consumer locality — but the pairing is
decided per dispatch, not baked into the graph, so the parallelism the
quote worries about is only forfeited when no other worker could have
taken the consumer anyway (the lease is retracted job-by-job if the
worker dies, and follow-ons are skipped while idle workers could use
them).  Grouping trades parallelism for locality statically and
visibly; batching recovers most of the locality with no graph change.

Chain *fusion* (:mod:`repro.hinch.fusion`, ``--fuse``) is the third and
strongest reading of the §4.1 quote: where grouping merges chains that
are linear *in the graph* (rare once sliced stages meet at barriers),
fusion proves through the components' row-access contracts that each
consumer copy reads only its paired producer copy's band, merges the
pair even though the graph shows a barrier between the stages, and
compiles the chain so the intermediate plane never leaves the worker —
not merely "still in the cache" but never in the stream store at all.

A chain must never cross a *control* node (managers, barriers), a
*crossdep* consumer (its halo edges encode a sparser ordering than
producer+consumer), or an *option-configuration* boundary (the members
would splice at different times): :func:`find_linear_chains` refuses all
three, so both the §4.1 rewrite and the X401 lint only propose chains
that every backend can actually schedule as one entity.
"""

from __future__ import annotations

from repro.core.program import ComponentInstance, ProgramGraph
from repro.graph.taskgraph import TaskGraph

__all__ = ["group_linear_chains", "find_linear_chains", "GROUP_SEPARATOR"]

GROUP_SEPARATOR = "+"


def find_linear_chains(
    graph: TaskGraph,
    crossdep_nodes: frozenset[str] | set[str] = frozenset(),
) -> list[list[str]]:
    """Maximal linear chains of fusable task nodes (length >= 2).

    Public so the lint pass (X401, ``repro.analysis.perf``) can point at
    fusion opportunities without committing to the rewrite.  A chain
    refuses to cross control nodes (non-task kinds), crossdep members
    (``crossdep_nodes``, from :attr:`ProgramGraph.crossdep_nodes`), or an
    option-configuration boundary (members with different option sets
    would splice at different times).
    """

    def fusable_edge(u: str, v: str) -> bool:
        nu, nv = graph.node(u), graph.node(v)
        # control nodes (managers, barriers) are never chain members
        if nu.kind != "task" or nv.kind != "task":
            return False
        if graph.out_degree(u) != 1 or graph.in_degree(v) != 1:
            return False
        pu = nu.payload
        pv = nv.payload
        if not isinstance(pu, ComponentInstance) or not isinstance(
            pv, ComponentInstance
        ):
            return False
        # crossdep members: the halo edges encode a sparser ordering
        # than producer+consumer; merging would serialize the region
        if u in crossdep_nodes or v in crossdep_nodes:
            return False
        # option boundaries: members spliced by different reconfigurations
        # cannot be one scheduled entity
        if pu.options != pv.options:
            return False
        if pu.manager != pv.manager:
            return False
        return pu.slice == pv.slice

    in_chain: set[str] = set()
    chains: list[list[str]] = []
    for node in graph.topological_order():
        if node in in_chain:
            continue
        # only start a chain at a node that is not a fusable continuation
        preds = graph.predecessors(node)
        if len(preds) == 1 and fusable_edge(preds[0], node):
            continue
        chain = [node]
        cur = node
        while True:
            succs = graph.successors(cur)
            if len(succs) == 1 and fusable_edge(cur, succs[0]):
                cur = succs[0]
                chain.append(cur)
            else:
                break
        if len(chain) >= 2:
            chains.append(chain)
            in_chain.update(chain)
    return chains


def group_linear_chains(pg: ProgramGraph) -> ProgramGraph:
    """Return a ProgramGraph with linear component chains merged.

    Composite nodes get id ``a+b+c`` and payload ``(inst_a, inst_b,
    inst_c)`` in execution order; everything else (streams, aliases,
    option states) is shared with the input.
    """
    graph = pg.graph
    chains = find_linear_chains(graph, pg.crossdep_nodes)
    if not chains:
        return pg
    member_of: dict[str, str] = {}
    for chain in chains:
        gid = GROUP_SEPARATOR.join(chain)
        for node_id in chain:
            member_of[node_id] = gid

    grouped = TaskGraph()
    for node in graph:
        if node.node_id in member_of:
            gid = member_of[node.node_id]
            if gid not in grouped:
                chain = gid.split(GROUP_SEPARATOR)
                grouped.add_node(
                    gid,
                    label=gid,
                    kind="task",
                    payload=tuple(graph.node(n).payload for n in chain),
                    weight=sum(graph.node(n).weight for n in chain),
                )
        else:
            grouped.add_node(
                node.node_id,
                label=node.label,
                kind=node.kind,
                payload=node.payload,
                weight=node.weight,
            )

    def rename(node_id: str) -> str:
        return member_of.get(node_id, node_id)

    for u, v in graph.edges():
        gu, gv = rename(u), rename(v)
        if gu != gv:
            grouped.add_edge(gu, gv)

    return ProgramGraph(
        graph=grouped,
        streams=pg.streams,
        aliases=pg.aliases,
        option_states=pg.option_states,
        active_components=pg.active_components,
        crossdep_nodes=pg.crossdep_nodes,
    )
