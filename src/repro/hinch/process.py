"""ProcessRuntime: Hinch on worker *processes* — real multi-core execution.

The threaded backend is the correctness reference but cannot speed up
CPU-bound kernels under CPython's GIL.  This backend keeps the paper's
execution model bit-for-bit — one central job queue, automatic load
balancing, quiescent-drain reconfiguration — and moves only the kernel
execution across process boundaries:

* The **dispatcher** (the calling process) owns everything stateful that
  defines the semantics: the :class:`~repro.hinch.scheduler.DataflowScheduler`,
  the :class:`~repro.hinch.manager.ManagerRuntime`s, the event broker,
  the :class:`~repro.hinch.stream.StreamStore` and the
  :class:`~repro.hinch.shm.SharedPlanePool`.  Manager invocations run
  inline on the dispatcher (traced as worker ``-1``).
* **Workers** hold mirror component instances (same splice membership as
  the dispatcher, maintained by broadcast) and do nothing but execute
  ``(iteration, node)`` jobs pulled from the central queue — the paper's
  "work goes wherever there is a free processor" policy, with the
  dispatcher handing the FIFO head to any idle worker.

Frame transport is zero-copy: stream values cross the control pipes as
:class:`~repro.hinch.shm.Packed` descriptors a few hundred bytes long,
while the pixels live in ``multiprocessing.shared_memory`` planes that
both sides map directly.  Sliced data-parallel copies running on
different cores share one output plane per (stream, iteration) — exactly
the whole-frame slot buffer of the threaded backend, now visible across
processes.  Workers never allocate planes themselves; they RPC the
dispatcher (``alloc`` / ``ensure``), which keeps the pool's free lists
single-threaded and the ``pipeline_depth`` memory bound intact.

Requires a ``fork``-capable platform (Linux): workers inherit the
compiled :class:`~repro.core.program.Program` and component registry by
address-space copy, so nothing about the application itself is pickled.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from multiprocessing.connection import Connection, wait
from typing import Any, Mapping

import numpy as np

from repro.core.program import Program, ProgramGraph
from repro.errors import SchedulingError, StreamError
from repro.hinch.component import Component, JobContext
from repro.hinch.events import Event, EventBroker
from repro.hinch.jobqueue import Job, JobQueue
from repro.hinch.manager import ManagerRuntime
from repro.hinch.runtime import ComponentHost, RunResult
from repro.hinch.scheduler import DataflowScheduler, ReconfigPlan
from repro.hinch.shm import Packed, PlaneRef, SharedPlanePool
from repro.hinch.stream import StreamStore
from repro.hinch.tracing import TraceEvent, Tracer

__all__ = ["ProcessRuntime"]

#: pool counters a worker reports back at shutdown (summed by dispatcher)
_WORKER_STAT_KEYS = (
    "meta_pickled_bytes",
    "oob_bytes",
    "plane_packs",
    "pickle_packs",
)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _RemotePlanePool(SharedPlanePool):
    """Worker-side pool facade: allocation happens on the dispatcher.

    ``acquire``/``acquire_raw`` become RPCs over the control pipe; pack,
    unpack and segment mapping (with the attachment cache) are inherited.
    The worker owns no segments, so :meth:`close` never unlinks anything.
    """

    def __init__(self, rpc: Any) -> None:
        super().__init__(shared=True)
        self._rpc = rpc

    def acquire(self, shape: tuple[int, ...], dtype: Any) -> tuple[np.ndarray, PlaneRef]:
        dt = np.dtype(dtype)
        ref: PlaneRef = self._rpc(("rpc_alloc", tuple(shape), dt.str))
        self.stats.acquires += 1
        return self.open(ref), ref

    def acquire_raw(self, nbytes: int) -> PlaneRef:
        ref: PlaneRef = self._rpc(("rpc_alloc_raw", nbytes))
        self.stats.acquires += 1
        return ref


class _RecordingBroker:
    """Collects a job's event posts for shipment with the completion."""

    def __init__(self, sink: list[tuple[str, Event]]) -> None:
        self._sink = sink

    def post(self, queue: str, event: Event) -> None:
        self._sink.append((queue, event))


class _WorkerStreams:
    """Per-job stream facade with the :class:`StreamStore` duck type.

    Reads unpack the :class:`Packed` inputs the dispatcher sent with the
    job (ndarrays come back as views into shared planes); ``put`` writes
    are packed for the completion message; ``ensure_buffer`` maps the
    shared whole-frame plane all slice copies of this (stream, iteration)
    write into.  Grouped-chain members see each other's writes locally.
    """

    def __init__(self, worker: "_Worker", inputs: dict[str, Packed]) -> None:
        self.worker = worker
        self.inputs = inputs
        #: resolved stream name -> Packed, shipped with the completion
        self.outputs: dict[str, Packed] = {}
        #: resolved stream name -> live value (unpacked inputs, local
        #: writes visible to later members of a grouped chain)
        self.values: dict[str, Any] = {}
        #: resolved stream name -> shared ensure-buffer view
        self.ensured: dict[str, np.ndarray] = {}

    def stream(self, name: str) -> "_WorkerStream":
        return _WorkerStream(self, name)


class _WorkerStream:
    __slots__ = ("ws", "name")

    def __init__(self, ws: _WorkerStreams, name: str) -> None:
        self.ws = ws
        self.name = name

    def get(self, iteration: int) -> Any:
        ws = self.ws
        value = ws.values.get(self.name)
        if value is not None:
            return value
        buf = ws.ensured.get(self.name)
        if buf is not None:
            return buf
        packed = ws.inputs.get(self.name)
        if packed is None:
            raise StreamError(
                f"stream {self.name!r}: read before write in iteration "
                f"{iteration} (input not shipped with the job)"
            )
        value = ws.worker.pool.unpack(packed)
        ws.values[self.name] = value
        return value

    def put(self, iteration: int, value: Any) -> None:
        ws = self.ws
        if self.name in ws.outputs:
            raise StreamError(
                f"stream {self.name!r}: double write in iteration {iteration}"
            )
        ws.values[self.name] = value
        ws.outputs[self.name] = ws.worker.pool.pack(value)

    def ensure_buffer(
        self,
        iteration: int,
        factory: Any = None,
        *,
        shape: tuple[int, ...] | None = None,
        dtype: Any = None,
    ) -> Any:
        ws = self.ws
        buf = ws.ensured.get(self.name)
        if buf is None:
            if shape is None:
                # Legacy factory path: use the factory's array purely as
                # a geometry prototype — the actual buffer must be the
                # shared plane every slice copy maps.
                proto = factory()
                if not isinstance(proto, np.ndarray):
                    raise StreamError(
                        f"stream {self.name!r}: the process backend needs "
                        "ndarray buffers (pass shape=/dtype= to job.buffer)"
                    )
                shape, dtype = proto.shape, proto.dtype
            ref: PlaneRef = ws.worker.rpc(
                ("rpc_ensure", self.name, iteration, tuple(shape),
                 np.dtype(dtype).str)
            )
            buf = ws.worker.pool.open(ref)
            ws.ensured[self.name] = buf
        return buf


class _Worker:
    """Worker-process main object: mirrors components, executes jobs."""

    def __init__(
        self,
        conn: Connection,
        program: Program,
        registry: Mapping[str, type[Component]],
        option_states: dict[str, bool],
        group_chains: bool,
        worker_id: int,
    ) -> None:
        self.conn = conn
        self.program = program
        self.registry = registry
        self.group_chains = group_chains
        self.worker_id = worker_id
        self.pool = _RemotePlanePool(self.rpc)
        self.pg = self._make_pg(option_states)
        self.host = ComponentHost(program, registry)
        self.host.populate(self.pg.active_components)

    def _make_pg(self, option_states: Mapping[str, bool]) -> ProgramGraph:
        pg = self.program.build_graph(option_states)
        if self.group_chains:
            from repro.hinch.grouping import group_linear_chains

            pg = group_linear_chains(pg)
        return pg

    # -- dispatcher RPC -----------------------------------------------------

    def rpc(self, request: tuple[Any, ...]) -> Any:
        """Round-trip to the dispatcher, absorbing interleaved control.

        The dispatcher may broadcast a ``reconfigure`` while this worker
        is mid-job (manager nodes run dispatcher-side concurrently with
        task jobs, as in the threaded backend); it is applied here and
        the wait continues.  Splice/job messages cannot interleave — the
        dispatcher only splices at quiescence and never sends jobs to a
        busy worker.
        """
        self.conn.send(request)
        while True:
            reply = self.conn.recv()
            if reply[0] == "rpc":
                return reply[1]
            self._handle_control(reply)

    def _handle_control(self, msg: tuple[Any, ...]) -> None:
        tag = msg[0]
        if tag == "reconfigure":
            _, manager, request = msg
            for member in self.program.managers[manager].members:
                component = self.host.live.get(member)
                if component is not None:
                    component.reconfigure(request)
        elif tag == "splice":
            new_pg = self._make_pg(msg[1])
            self.host.splice(new_pg.active_components, {})
            self.pg = new_pg
        else:  # pragma: no cover - protocol error
            raise SchedulingError(f"worker got unexpected message {tag!r}")

    # -- job execution ------------------------------------------------------

    def _run_job(
        self, iteration: int, node_id: str, inputs: dict[str, Packed]
    ) -> None:
        node = self.pg.graph.node(node_id)
        payload = node.payload
        instances = payload if isinstance(payload, tuple) else (payload,)
        ws = _WorkerStreams(self, inputs)
        events: list[tuple[str, Event]] = []
        broker = _RecordingBroker(events)
        stop_requested = False

        def request_stop() -> None:
            nonlocal stop_requested
            stop_requested = True

        start = time.perf_counter()
        for instance in instances:
            component = self.host.live[instance.instance_id]
            ctx = JobContext(
                instance,
                iteration,
                ws,  # type: ignore[arg-type] - StreamStore duck type
                broker,  # type: ignore[arg-type] - EventBroker duck type
                self.pg.aliases,
                stop_requester=request_stop,
            )
            component.run(ctx)
        end = time.perf_counter()
        self.conn.send(
            ("done", iteration, node_id, ws.outputs, events, stop_requested,
             start, end)
        )

    # -- main loop -----------------------------------------------------------

    def main(self) -> None:
        try:
            while True:
                msg = self.conn.recv()
                tag = msg[0]
                if tag == "job":
                    self._run_job(msg[1], msg[2], msg[3])
                elif tag == "stop":
                    snapshots = {}
                    for instance_id, component in self.host.live.items():
                        state = component.snapshot_state()
                        if state is not None:
                            snapshots[instance_id] = state
                    stats = self.pool.stats.as_dict()
                    self.conn.send(
                        ("bye", snapshots,
                         {k: stats[k] for k in _WORKER_STAT_KEYS})
                    )
                    return
                else:
                    self._handle_control(msg)
        except BaseException as exc:
            tb = traceback.format_exc()
            try:
                self.conn.send(("error", exc, tb))
            except Exception:
                try:
                    self.conn.send(("error", None, tb))
                except Exception:
                    pass
        finally:
            self.pool.close_attachments()
            self.conn.close()


def _worker_entry(
    conn: Connection,
    program: Program,
    registry: Mapping[str, type[Component]],
    option_states: dict[str, bool],
    group_chains: bool,
    worker_id: int,
) -> None:
    _Worker(conn, program, registry, option_states, group_chains,
            worker_id).main()


# ---------------------------------------------------------------------------
# Dispatcher side
# ---------------------------------------------------------------------------


class ProcessRuntime:
    """Run a Program on worker processes with real parallel execution.

    Drop-in for :class:`~repro.hinch.runtime.ThreadedRuntime` (``workers``
    replaces ``nodes``); produces bit-identical outputs because every
    semantic decision — job readiness, load balancing, event handling,
    reconfiguration — is made by the same single-threaded dispatcher
    state machines the threaded backend uses under its lock.
    """

    def __init__(
        self,
        program: Program,
        registry: Mapping[str, type[Component]],
        *,
        workers: int = 2,
        pipeline_depth: int = 5,
        max_iterations: int,
        trace: bool = False,
        option_states: Mapping[str, bool] | None = None,
        group_chains: bool = False,
    ) -> None:
        if workers < 1:
            raise SchedulingError(f"workers must be >= 1, got {workers}")
        self.program = program
        self.registry = registry
        self.workers = workers
        self.pipeline_depth = pipeline_depth
        self.max_iterations = max_iterations
        self.group_chains = group_chains
        self.broker = EventBroker()
        self.pool = SharedPlanePool(shared=True)
        self.streams = StreamStore(self.pool)
        self.tracer = Tracer(enabled=trace)
        self.host = ComponentHost(program, registry)

        self.pg: ProgramGraph = self._make_pg(program, option_states)
        self._target_states: dict[str, bool] = dict(self.pg.option_states)
        self._precreated: dict[str, Component] = {}
        self.host.populate(self.pg.active_components)
        self.managers = {
            qname: ManagerRuntime(info, self.broker, self)
            for qname, info in program.managers.items()
        }
        self.scheduler = DataflowScheduler(
            self.pg,
            pipeline_depth=pipeline_depth,
            max_iterations=max_iterations,
            hooks=self,
        )
        self.queue = JobQueue()
        self.reconfig_log: list[tuple[int, dict[str, bool]]] = []
        self._worker_pool_stats = {k: 0 for k in _WORKER_STAT_KEYS}
        self._conns: list[Connection] = []
        self._procs: list[Any] = []
        self._idle: set[int] = set()
        self._busy: dict[int, Job] = {}

    def _make_pg(
        self, program: Program, option_states: Mapping[str, bool] | None
    ) -> ProgramGraph:
        pg = program.build_graph(option_states)
        if self.group_chains:
            from repro.hinch.grouping import group_linear_chains

            pg = group_linear_chains(pg)
        return pg

    # -- SchedulerHooks ------------------------------------------------------

    def on_iteration_complete(self, iteration: int) -> None:
        self.streams.release_iteration(iteration)

    def on_reconfigure(
        self, plans: list[ReconfigPlan], resume_iteration: int
    ) -> ProgramGraph:
        states = dict(self.pg.option_states)
        for plan in plans:
            states.update(plan.changes)
        new_pg = self._make_pg(self.program, states)
        self.host.splice(new_pg.active_components, self._precreated)
        for component in self._precreated.values():
            component.teardown()
        self._precreated.clear()
        self.pg = new_pg
        self._target_states = dict(states)
        self.reconfig_log.append((resume_iteration, dict(states)))
        # The graph is quiescent (no jobs in flight), so every worker is
        # idle and will process the splice before its next job.
        for conn in self._conns:
            conn.send(("splice", dict(states)))
        return new_pg

    # -- ReconfigController --------------------------------------------------

    def target_option_state(self, option_qname: str) -> bool:
        return self._target_states[option_qname]

    def apply_option_changes(self, manager: str, changes: dict[str, bool]) -> None:
        effective = {
            opt: state
            for opt, state in changes.items()
            if self._target_states.get(opt) != state
        }
        if not effective:
            return
        self._target_states.update(effective)
        for opt, state in effective.items():
            if state:
                for member in self.program.options[opt].members:
                    if (
                        member not in self.host.live
                        and member not in self._precreated
                    ):
                        self._precreated[member] = self.host.create(member)
        self.scheduler.request_reconfig(
            ReconfigPlan(manager=manager, changes=effective)
        )

    def send_reconfigure_request(self, manager: str, request: str) -> None:
        # Dispatcher mirrors track parameter state (they are what
        # RunResult.components exposes) ...
        for member in self.program.managers[manager].members:
            component = self.host.live.get(member)
            if component is not None:
                component.reconfigure(request)
        # ... and every worker applies the request to its own mirrors,
        # possibly mid-job of an unrelated component (same concurrency
        # the threaded backend exhibits at nodes > 1).
        for conn in self._conns:
            conn.send(("reconfigure", manager, request))

    # -- event injection -----------------------------------------------------

    def post_event(self, queue: str, name: str, payload: Any = None) -> None:
        """Inject an external (user) event."""
        self.broker.post(queue, Event(name=name, payload=payload))

    # -- dispatch ------------------------------------------------------------

    def _gather_inputs(self, node: Any, iteration: int) -> dict[str, Packed]:
        """Resolve and fetch every input stream value a job needs.

        One ``get`` per (instance, input port), mirroring the threaded
        backend's per-copy ``job.read`` counters.  Streams produced by an
        earlier member of a grouped chain stay worker-local and are
        skipped.
        """
        payload = node.payload
        instances = payload if isinstance(payload, tuple) else (payload,)
        produced: set[str] = set()
        aliases = self.pg.aliases
        for instance in instances:
            ports = self.registry[instance.class_name].ports
            for port in ports.outputs:
                raw = instance.streams.get(port)
                if raw is not None:
                    produced.add(aliases.get(raw, raw))
        inputs: dict[str, Packed] = {}
        for instance in instances:
            ports = self.registry[instance.class_name].ports
            for port in ports.inputs:
                raw = instance.streams.get(port)
                if raw is None:
                    continue
                name = aliases.get(raw, raw)
                if name in produced:
                    continue
                value = self.streams.stream(name).get(iteration)
                if not isinstance(value, Packed):  # pragma: no cover
                    raise StreamError(
                        f"stream {name!r}: non-transportable slot value "
                        f"{type(value).__name__}"
                    )
                inputs[name] = value
        return inputs

    def _run_local(self, job: Job, node: Any) -> None:
        """Execute a control node (manager/barrier) on the dispatcher."""
        start = time.perf_counter()
        if node.kind in ("manager_enter", "manager_exit"):
            manager = self.managers[node.payload]
            manager.invoke(job.iteration, node.kind.removeprefix("manager_"))
        end = time.perf_counter()
        if self.tracer.enabled:
            self.tracer.record(
                TraceEvent(
                    node_id=job.node_id,
                    iteration=job.iteration,
                    worker=-1,
                    start=start,
                    end=end,
                    kind=node.kind,
                )
            )
        self._complete(job)

    def _complete(self, job: Job) -> None:
        ready = self.scheduler.complete(job)
        self.queue.push_all(ready)
        if self.scheduler.done:
            self.queue.drain()

    def _pump(self) -> None:
        """Hand the FIFO head to idle workers; run control nodes inline.

        Jobs are popped only while a worker is idle — with one worker
        this reproduces the threaded backend's single-thread FIFO order
        exactly (control jobs included), which is what makes
        reconfiguration timing deterministic at ``workers=1``.
        """
        while self._idle:
            job = self.queue.try_pop()
            if job is None:
                return
            node = self.pg.graph.node(job.node_id)
            if node.kind != "task":
                self._run_local(job, node)
                continue
            worker = min(self._idle)
            self._idle.discard(worker)
            inputs = self._gather_inputs(node, job.iteration)
            self._busy[worker] = job
            self._conns[worker].send(("job", job.iteration, job.node_id, inputs))

    # -- worker message handling ---------------------------------------------

    def _on_message(self, worker: int, msg: tuple[Any, ...]) -> None:
        tag = msg[0]
        if tag == "done":
            _, iteration, node_id, outputs, events, stop, start, end = msg
            for name, packed in outputs.items():
                self.streams.stream(name).put(iteration, packed)
            for qname, event in events:
                self.broker.post(qname, event)
            if stop:
                self.scheduler.request_stop()
            if self.tracer.enabled:
                self.tracer.record(
                    TraceEvent(
                        node_id=node_id,
                        iteration=iteration,
                        worker=worker,
                        start=start,
                        end=end,
                        kind="task",
                    )
                )
            job = self._busy.pop(worker)
            self._idle.add(worker)
            if job.iteration != iteration or job.node_id != node_id:
                raise SchedulingError(
                    f"worker {worker} completed {node_id}@{iteration}, "
                    f"expected {job.node_id}@{job.iteration}"
                )
            self._complete(job)
        elif tag == "rpc_alloc":
            _, shape, dtype = msg
            _, ref = self.pool.acquire(tuple(shape), dtype)
            self._conns[worker].send(("rpc", ref))
        elif tag == "rpc_alloc_raw":
            ref = self.pool.acquire_raw(msg[1])
            self._conns[worker].send(("rpc", ref))
        elif tag == "rpc_ensure":
            _, name, iteration, shape, dtype = msg
            stream = self.streams.stream(name)
            packed = stream.ensure_buffer(
                iteration,
                factory=lambda: self.pool.pack_plane(
                    self.pool.acquire(tuple(shape), dtype)[1]
                ),
            )
            self._conns[worker].send(("rpc", packed.refs[0]))
        elif tag == "error":
            _, exc, tb = msg
            if isinstance(exc, BaseException):
                raise exc
            raise SchedulingError(f"worker {worker} failed:\n{tb}")
        else:
            raise SchedulingError(
                f"dispatcher got unexpected message {tag!r} from worker "
                f"{worker}"
            )

    # -- run -----------------------------------------------------------------

    def _spawn_workers(self) -> None:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            raise SchedulingError(
                "ProcessRuntime needs a fork-capable platform; use "
                "ThreadedRuntime instead"
            ) from None
        for worker_id in range(self.workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_entry,
                args=(child, self.program, self.registry,
                      dict(self.pg.option_states), self.group_chains,
                      worker_id),
                name=f"hinch-proc-worker-{worker_id}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self._idle = set(range(self.workers))

    def _shutdown(self, *, graceful: bool) -> None:
        if graceful:
            for conn in self._conns:
                try:
                    conn.send(("stop",))
                except Exception:
                    pass
            for worker, conn in enumerate(self._conns):
                try:
                    while True:
                        msg = conn.recv()
                        if msg[0] == "bye":
                            _, snapshots, stats = msg
                            for instance_id, state in snapshots.items():
                                component = self.host.live.get(instance_id)
                                if component is not None:
                                    component.merge_state(state)
                            for key in _WORKER_STAT_KEYS:
                                self._worker_pool_stats[key] += stats[key]
                            break
                except (EOFError, OSError):
                    pass
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        self._conns.clear()
        self._procs.clear()
        self.pool.close()

    def run(self) -> RunResult:
        """Execute to completion; returns statistics and live components."""
        start_time = time.perf_counter()
        self._spawn_workers()
        failed = False
        try:
            initial = self.scheduler.start()
            self.queue.push_all(initial)
            if self.scheduler.done:
                self.queue.drain()
            self._pump()
            while self._busy or not self.scheduler.done:
                ready = wait(self._conns, timeout=60.0)
                if not ready:
                    dead = [i for i, p in enumerate(self._procs)
                            if not p.is_alive()]
                    if dead:
                        raise SchedulingError(
                            f"worker(s) {dead} died without reporting"
                        )
                    continue
                for conn in ready:
                    worker = self._conns.index(conn)
                    try:
                        while conn.poll():
                            self._on_message(worker, conn.recv())
                    except EOFError:
                        raise SchedulingError(
                            f"worker {worker} exited unexpectedly"
                        ) from None
                self._pump()
        except BaseException:
            failed = True
            raise
        finally:
            self._shutdown(graceful=not failed)
        elapsed = time.perf_counter() - start_time
        stream_stats = {
            name: self.streams.stream(name).stats for name in self.streams.names
        }
        pool_stats = self.pool.stats.as_dict()
        for key in _WORKER_STAT_KEYS:
            pool_stats[key] += self._worker_pool_stats[key]
        return RunResult(
            completed_iterations=self.scheduler.completed_iterations,
            elapsed_seconds=elapsed,
            reconfig_count=self.scheduler.reconfig_count,
            trace=self.tracer,
            components=dict(self.host.live),
            stream_stats=stream_stats,
            events_handled=sum(m.events_handled for m in self.managers.values()),
            events_ignored=sum(m.events_ignored for m in self.managers.values()),
            pool_stats=pool_stats,
        )
