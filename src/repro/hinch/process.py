"""ProcessRuntime: Hinch on worker *processes* — real multi-core execution.

The threaded backend is the correctness reference but cannot speed up
CPU-bound kernels under CPython's GIL.  This backend keeps the paper's
execution model bit-for-bit — one central job queue, automatic load
balancing, quiescent-drain reconfiguration — and moves only the kernel
execution across process boundaries:

* The **dispatcher** (the calling process) owns everything stateful that
  defines the semantics: the :class:`~repro.hinch.scheduler.DataflowScheduler`,
  the :class:`~repro.hinch.manager.ManagerRuntime`s, the event broker,
  the :class:`~repro.hinch.stream.StreamStore` and the
  :class:`~repro.hinch.shm.SharedPlanePool`.  Manager invocations run
  inline on the dispatcher (traced as worker ``-1``).
* **Workers** hold mirror component instances (same splice membership as
  the dispatcher, maintained by broadcast) and do nothing but execute
  ``(iteration, node)`` jobs pulled from the central queue — the paper's
  "work goes wherever there is a free processor" policy, with the
  dispatcher handing the FIFO head to any idle worker.

Frame transport is zero-copy: stream values cross the control pipes as
:class:`~repro.hinch.shm.Packed` descriptors a few hundred bytes long,
while the pixels live in ``multiprocessing.shared_memory`` planes that
both sides map directly.  Sliced data-parallel copies running on
different cores share one output plane per (stream, iteration) — exactly
the whole-frame slot buffer of the threaded backend, now visible across
processes.  Workers never allocate planes themselves; they RPC the
dispatcher (``alloc`` / ``ensure``), which keeps the pool's free lists
single-threaded and the ``pipeline_depth`` memory bound intact.

The dispatcher also owns **failure semantics** (the coordinator, not the
components, decides what a crash means): it tracks each worker's
in-flight job and shared-memory leases, and on worker death — EOF on the
control pipe, the process sentinel firing, or a per-job ``watchdog``
timeout — it reclaims the leased planes into the pool, re-queues the job
at the FIFO head with a bounded retry budget, and either respawns a
replacement worker or degrades onto the survivors.  Component state is
checkpointed job-by-job (:meth:`~repro.hinch.component.Component.
checkpoint_state`), so collected output survives a crash bit-for-bit.
Deterministic failures can be scripted with :mod:`repro.hinch.faults`.

Dispatch overhead is **amortized** with three cooperating mechanisms,
all opt-in via ``batch > 1`` (``batch=1`` reproduces the job-at-a-time
dispatcher exactly):

* **Batched job leases** — the dispatcher grows the FIFO head into a
  lease of up to ``batch`` jobs per worker: further ready jobs from the
  queue surplus, then — only while no other worker sits idle —
  *speculative* follow-ons along the dataflow
  (:meth:`~repro.hinch.scheduler.DataflowScheduler.extract_followons`)
  whose only missing dependencies are earlier lease members — they hold
  worker-locally because the lease runs in order.  One pickle out;
  records stream back per job (completions announce immediately, so
  dependent work reaches *other* workers mid-lease), with the last
  record carrying the unconsumed plane grants.
* **Worker-resident stream slots** — values a worker produced (or
  mapped via ``ensure``) stay live worker-side until their iteration
  retires; a lease that reads them ships a name token, not the plane.
  The dispatcher additionally pre-resolves learned ``ensure`` profiles
  and attaches free-list plane *grants* sized to each node's last
  allocations, eliminating most mid-job RPC round-trips.
* **Slice affinity** — with batching, each task node (in particular
  every replica of a sliced parblock) sticks to the worker that last
  ran it while that worker is idle, keeping resident slots and caches
  warm.

A job's streamed record is its only acknowledgement: a worker that dies
mid-lease acknowledged exactly the records that arrived (the pipe is
FIFO), so members from the first missing record onward are retried
job-by-job at the FIFO head — speculative members are instead retracted
back to the scheduler's normal readiness path — and checkpoint deltas
apply exactly once.

Requires a ``fork``-capable platform (Linux): workers inherit the
compiled :class:`~repro.core.program.Program` and component registry by
address-space copy, so nothing about the application itself is pickled.
"""

from __future__ import annotations

import multiprocessing
import os
import re
import time
import traceback
from multiprocessing.connection import Connection, wait
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.program import ComponentInstance, Program, ProgramGraph
from repro.errors import (
    SchedulingError,
    StreamError,
    StreamFormatError,
    WorkerFailure,
)
from repro.hinch.autotune import (
    AutotuneConfig,
    AutotuneController,
    Decision,
    Observation,
)
from repro.hinch.component import Component, JobContext
from repro.hinch.events import Event, EventBroker
from repro.hinch.faults import FaultInjector, FaultSpec, coerce_injector
from repro.hinch.fusion import FusedChain, FusionReport, run_fused
from repro.hinch.jobqueue import Job, JobQueue
from repro.hinch.manager import ManagerRuntime
from repro.hinch.runtime import ComponentHost, RunResult
from repro.hinch.scheduler import DataflowScheduler, ReconfigPlan
from repro.hinch.shm import NameInterner, Packed, PlaneRef, SharedPlanePool
from repro.hinch.stream import StreamStore
from repro.hinch.tracing import TraceEvent, Tracer

__all__ = ["ProcessRuntime"]

#: exit code of a worker killed by an injected ``kill`` fault — looks
#: exactly like an external SIGKILL/OOM to the dispatcher, the code only
#: aids post-mortem debugging of the harness itself
_FAULT_EXIT_CODE = 113

#: strips the slice index off a node id: ``idct[3]`` -> ``idct`` — the
#: auto-tuner aggregates busy time per *definition*, not per copy
_SLICE_SUFFIX = re.compile(r"\[\d+\]$")

#: pool counters a worker reports back at shutdown (summed by dispatcher)
_WORKER_STAT_KEYS = (
    "meta_pickled_bytes",
    "oob_bytes",
    "plane_packs",
    "pickle_packs",
)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _RemotePlanePool(SharedPlanePool):
    """Worker-side pool facade: allocation happens on the dispatcher.

    ``acquire``/``acquire_raw`` become RPCs over the control pipe; pack,
    unpack and segment mapping (with the attachment cache) are inherited.
    The worker owns no segments, so :meth:`close` never unlinks anything.

    Leases may carry *grants* — free-list planes the dispatcher attached
    based on the node's allocation profile.  A matching-bucket grant
    satisfies an acquire without any pipe round-trip; grants left over at
    the end of the lease ride back on the ``lease_done`` message.
    """

    def __init__(self, rpc: Any) -> None:
        super().__init__(shared=True)
        self._rpc = rpc
        #: bucket size -> granted PlaneRefs usable without an RPC
        self._grants: dict[int, list[PlaneRef]] = {}

    def add_grants(self, refs: Sequence[PlaneRef]) -> None:
        for ref in refs:
            self._grants.setdefault(ref.nbytes, []).append(ref)

    def take_unused_grants(self) -> list[PlaneRef]:
        unused = [ref for bucket in self._grants.values() for ref in bucket]
        self._grants.clear()
        return unused

    def _granted(self, nbytes: int) -> PlaneRef | None:
        bucket = self._grants.get(self.bucket_of(nbytes))
        return bucket.pop() if bucket else None

    def acquire(self, shape: tuple[int, ...], dtype: Any) -> tuple[np.ndarray, PlaneRef]:
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize if shape else dt.itemsize
        grant = self._granted(nbytes)
        if grant is not None:
            ref = PlaneRef(segment=grant.segment, nbytes=nbytes,
                           shape=tuple(shape), dtype=dt.str)
        else:
            ref = self._rpc(("rpc_alloc", tuple(shape), dt.str))
        self.stats.acquires += 1
        return self.open(ref), ref

    def acquire_raw(self, nbytes: int) -> PlaneRef:
        grant = self._granted(nbytes)
        if grant is not None:
            self.stats.acquires += 1
            return PlaneRef(segment=grant.segment, nbytes=nbytes)
        ref: PlaneRef = self._rpc(("rpc_alloc_raw", nbytes))
        self.stats.acquires += 1
        return ref


class _RecordingBroker:
    """Collects a job's event posts for shipment with the completion."""

    def __init__(self, sink: list[tuple[str, Event]]) -> None:
        self._sink = sink

    def post(self, queue: str, event: Event) -> None:
        self._sink.append((queue, event))


class _WorkerStreams:
    """Per-job stream facade with the :class:`StreamStore` duck type.

    Reads unpack the :class:`Packed` inputs the dispatcher sent with the
    job (ndarrays come back as views into shared planes); ``put`` writes
    are packed for the completion message; ``ensure_buffer`` maps the
    shared whole-frame plane all slice copies of this (stream, iteration)
    write into.  Grouped-chain members see each other's writes locally.

    Inputs this worker already holds live — produced by an earlier job of
    the same lease, or resident from a previous lease — arrive as bare
    *names* instead of :class:`Packed` planes and are seeded straight
    from the worker's resident-slot cache: no bytes cross the pipe and no
    unpack runs.  Pre-resolved ``ensure_buffer`` planes (the dispatcher
    ships the slot's :class:`PlaneRef` once it knows the node's ensure
    profile) are mapped up front, removing the per-slice ensure RPC.
    """

    def __init__(
        self,
        worker: "_Worker",
        iteration: int,
        inputs: dict[str, Packed],
        resident: tuple[str, ...] = (),
        ensured: dict[str, PlaneRef] | None = None,
    ) -> None:
        self.worker = worker
        self.inputs = inputs
        #: resolved stream name -> Packed, shipped with the completion
        self.outputs: dict[str, Packed] = {}
        #: resolved stream name -> live value (unpacked inputs, local
        #: writes visible to later members of a grouped chain)
        self.values: dict[str, Any] = {}
        #: resolved stream name -> shared ensure-buffer view
        self.ensured: dict[str, np.ndarray] = {}
        for name in resident:
            try:
                self.values[name] = worker.resident[(name, iteration)]
            except KeyError:
                raise StreamError(
                    f"stream {name!r}: dispatcher referenced a resident "
                    f"slot for iteration {iteration} this worker does not "
                    "hold"
                ) from None
        if ensured:
            for name, ref in ensured.items():
                self.ensured[name] = worker.pool.open(ref)

    def stream(self, name: str) -> "_WorkerStream":
        return _WorkerStream(self, name)


class _WorkerStream:
    __slots__ = ("ws", "name")

    def __init__(self, ws: _WorkerStreams, name: str) -> None:
        self.ws = ws
        self.name = name

    def get(self, iteration: int) -> Any:
        ws = self.ws
        value = ws.values.get(self.name)
        if value is not None:
            return value
        buf = ws.ensured.get(self.name)
        if buf is not None:
            return buf
        packed = ws.inputs.get(self.name)
        if packed is None:
            raise StreamError(
                f"stream {self.name!r}: read before write in iteration "
                f"{iteration} (input not shipped with the job)"
            )
        value = ws.worker.pool.unpack(packed)
        ws.values[self.name] = value
        return value

    def put(
        self, iteration: int, value: Any, *, writer: str | None = None
    ) -> None:
        ws = self.ws
        if self.name in ws.outputs:
            raise StreamError(
                f"stream {self.name!r}: double write in iteration {iteration}"
            )
        ws.values[self.name] = value
        ws.outputs[self.name] = ws.worker.pool.pack(value)

    def ensure_buffer(
        self,
        iteration: int,
        factory: Any = None,
        *,
        shape: tuple[int, ...] | None = None,
        dtype: Any = None,
        writer: str | None = None,
    ) -> Any:
        ws = self.ws
        buf = ws.ensured.get(self.name)
        if buf is not None and shape is not None:
            want_dtype = np.dtype(dtype) if dtype is not None else None
            if tuple(shape) != buf.shape or (
                want_dtype is not None and want_dtype != buf.dtype
            ):
                raise StreamFormatError(
                    f"stream {self.name!r}: ensure_buffer geometry mismatch "
                    f"in iteration {iteration}: node "
                    f"{ws.worker.current_node or '?'} requested "
                    f"{tuple(shape)}/{want_dtype}, slot already allocated "
                    f"as {buf.shape}/{buf.dtype} (see lint codes X501/X503, "
                    "`python -m repro lint`)",
                    stream=self.name,
                    iteration=iteration,
                    node=ws.worker.current_node,
                    declared=(buf.shape, buf.dtype.name),
                    observed=(
                        tuple(shape),
                        want_dtype.name if want_dtype else None,
                    ),
                )
        if buf is None:
            if shape is None:
                # Legacy factory path: use the factory's array purely as
                # a geometry prototype — the actual buffer must be the
                # shared plane every slice copy maps.
                proto = factory()
                if not isinstance(proto, np.ndarray):
                    raise StreamError(
                        f"stream {self.name!r}: the process backend needs "
                        "ndarray buffers (pass shape=/dtype= to job.buffer)"
                    )
                shape, dtype = proto.shape, proto.dtype
            ref: PlaneRef = ws.worker.rpc(
                ("rpc_ensure", ws.worker.current_node, self.name, iteration,
                 tuple(shape), np.dtype(dtype).str)
            )
            buf = ws.worker.pool.open(ref)
            ws.ensured[self.name] = buf
        return buf


class _Worker:
    """Worker-process main object: mirrors components, executes jobs."""

    def __init__(
        self,
        conn: Connection,
        program: Program,
        registry: Mapping[str, type[Component]],
        pg: ProgramGraph,
        group_chains: bool,
        worker_id: int,
        overrides: Mapping[str, ComponentInstance] | None = None,
        fuse: bool = False,
        fuse_backend: str = "numpy",
        program_base: Program | None = None,
        slice_overrides: Mapping[str, int] | None = None,
        fuse_headroom: int | None = None,
    ) -> None:
        self.conn = conn
        self.program = program
        self.registry = registry
        self.group_chains = group_chains
        self.fuse = fuse
        self.fuse_backend = fuse_backend
        #: the un-resliced Program — re-slices always derive from it so
        #: cumulative overrides stay idempotent; ``program`` itself may
        #: already be a resliced derivation at fork time
        self.program_base = program_base if program_base is not None else program
        #: cumulative group -> replication-total overrides applied so far
        self.slice_overrides = dict(slice_overrides or {})
        #: workers-vs-cores headroom for the fusion profitability guard
        #: (None fuses unconditionally); updated by splice messages
        self.fuse_headroom = fuse_headroom
        #: parameter reconfigurations seen so far, replayed to mirrors a
        #: re-slice splice creates fresh (they would otherwise miss every
        #: dynamic request that preceded them)
        self._reconfig_log: list[tuple[str, str]] = []
        self.worker_id = worker_id
        self.pool = _RemotePlanePool(self.rpc)
        # The dispatcher's already-built (grouped/fused) graph is
        # inherited through fork copy-on-write — rebuilding it here would
        # add parse/group latency to every spawn and respawn.  A splice
        # rebuilds locally (the new option states arrive by message).
        self.pg = pg
        #: control-pipe pickler sharing the dispatcher's name table
        #: (derived deterministically from the same graph on both ends)
        self.interner = NameInterner(NameInterner.names_of(pg))
        self._plain = NameInterner()
        #: per-fused-node temps/kernels; discarded on splice
        self._fused_caches: dict[str, dict[str, Any]] = {}
        self.host = ComponentHost(program, registry)
        # Overrides (auto-inserted converters, rebound readers) must be
        # installed before populate: active ids resolve through them.
        self.host.overrides = dict(overrides or {})
        self.host.populate(self.pg.active_components)
        #: (stream name, iteration) -> live value produced or mapped by
        #: this worker; lets a lease reference data already here by name
        #: only.  Evicted below the dispatcher's iteration watermark.
        self.resident: dict[tuple[str, int], Any] = {}
        #: node id of the job currently executing (ensure-RPC context)
        self.current_node: str = ""
        #: wall seconds the current job spent waiting on dispatcher RPCs
        self.rpc_wait = 0.0

    def _make_pg(self, option_states: Mapping[str, bool]) -> ProgramGraph:
        """Rebuild the graph after a splice — the dispatcher's pipeline.

        Must match :meth:`ProcessRuntime._make_pg` step for step (format
        solve, converter insertion, grouping, fusion): both sides derive
        the post-splice graph independently from the option states, and
        node ids, overrides and the interner table must agree.
        """
        pg = self.program.build_graph(option_states)
        from repro.analysis.formats import (
            auto_insert_converters,
            runtime_expectations,
            solve_formats_or_raise,
        )

        solution = solve_formats_or_raise(self.program, pg)
        expectations = runtime_expectations(self.program, pg, solution=solution)
        pg, overrides, expectations = auto_insert_converters(
            self.program, pg, self.registry, expectations, solution
        )
        self.host.overrides = overrides
        if self.group_chains:
            from repro.hinch.grouping import group_linear_chains

            pg = group_linear_chains(pg)
        if self.fuse:
            from repro.hinch.fusion import fuse_chains

            pg, _ = fuse_chains(
                pg, self.program, self.registry, expectations,
                self.fuse_backend, parallel_headroom=self.fuse_headroom,
            )
        self._fused_caches = {}
        return pg

    # -- control pipe --------------------------------------------------------

    def _send(self, msg: tuple[Any, ...], *, interned: bool = True) -> None:
        coder = self.interner if interned else self._plain
        data = coder.dumps(msg)
        self.pool.stats.meta_pickled_bytes += len(data) + 1
        self.conn.send_bytes((b"\x01" if interned else b"\x00") + data)

    def _recv(self) -> Any:
        raw = self.conn.recv_bytes()
        coder = self.interner if raw[:1] == b"\x01" else self._plain
        return coder.loads(raw[1:])

    # -- dispatcher RPC -----------------------------------------------------

    def rpc(self, request: tuple[Any, ...]) -> Any:
        """Round-trip to the dispatcher, absorbing interleaved control.

        The dispatcher may broadcast a ``reconfigure`` while this worker
        is mid-job (manager nodes run dispatcher-side concurrently with
        task jobs, as in the threaded backend); it is applied here and
        the wait continues.  Splice/job messages cannot interleave — the
        dispatcher only splices at quiescence and never sends jobs to a
        busy worker.
        """
        t0 = time.perf_counter()
        try:
            self._send(request)
            while True:
                reply = self._recv()
                if reply[0] == "rpc":
                    return reply[1]
                self._handle_control(reply)
        finally:
            self.rpc_wait += time.perf_counter() - t0

    def _handle_control(self, msg: tuple[Any, ...]) -> None:
        tag = msg[0]
        if tag == "reconfigure":
            _, manager, request = msg
            self._reconfig_log.append((manager, request))
            for member in self.program.managers[manager].members:
                component = self.host.live.get(member)
                if component is not None:
                    component.reconfigure(request)
        elif tag == "splice":
            # Extended form carries the auto-tuner's cumulative slice
            # overrides and the current fusion headroom; the two-element
            # form (no auto-tuning) leaves both unchanged.
            if len(msg) >= 4:
                overrides = dict(msg[2])
                self.fuse_headroom = msg[3]
                if overrides != self.slice_overrides:
                    from repro.core.reslice import reslice

                    self.slice_overrides = overrides
                    self.program = (
                        reslice(self.program_base, overrides)
                        if overrides else self.program_base
                    )
                    self.host.program = self.program
            new_pg = self._make_pg(msg[1])
            added, _ = self.host.splice(new_pg.active_components, {})
            # Mirrors a re-slice created (or rebuilt) fresh start from
            # their instance descriptors and must catch up on every
            # dynamic request their manager broadcast before they
            # existed — exactly the respawn replay, scoped to them.
            if added:
                created = set(added)
                for manager, request in self._reconfig_log:
                    for member in self.program.managers[manager].members:
                        if member in created:
                            self.host.live[member].reconfigure(request)
            self.pg = new_pg
            # Same table the dispatcher derives from its own rebuild;
            # control messages themselves are never interned, so the
            # swap cannot race the splice that carries it.
            self.interner.set_table(NameInterner.names_of(new_pg))
        else:  # pragma: no cover - protocol error
            raise SchedulingError(f"worker got unexpected message {tag!r}")

    # -- job execution ------------------------------------------------------

    @staticmethod
    def _apply_fault(fault: tuple | None) -> None:
        """Enact an injected failure directive before running the job.

        ``kill`` uses ``os._exit`` so the worker dies exactly like a
        segfault/OOM kill: no goodbye message, no cleanup, no state
        flush.  ``hang`` holds the job forever — only the dispatcher's
        watchdog recovers it.  ``slow`` just adds latency.
        """
        if fault is None:
            return
        kind = fault[0]
        if kind == "kill":
            os._exit(_FAULT_EXIT_CODE)
        elif kind == "hang":
            while True:  # until the watchdog kills us
                time.sleep(3600.0)
        elif kind == "slow":
            time.sleep(fault[1] / 1000.0)

    def _run_job(
        self,
        iteration: int,
        node_id: str,
        inputs: dict[str, Packed],
        resident: tuple[str, ...],
        ensured: dict[str, PlaneRef] | None,
        fault: tuple | None,
    ) -> tuple:
        self._apply_fault(fault)
        node = self.pg.graph.node(node_id)
        payload = node.payload
        instances = payload if isinstance(payload, tuple) else (payload,)
        ws = _WorkerStreams(self, iteration, inputs, resident, ensured)
        events: list[tuple[str, Event]] = []
        broker = _RecordingBroker(events)
        stop_requested = False

        def request_stop() -> None:
            nonlocal stop_requested
            stop_requested = True

        self.current_node = node_id
        self.rpc_wait = 0.0
        member_times: list[tuple[str, float, float]] | None = None
        start = time.perf_counter()
        cpu_start = time.process_time()
        if isinstance(payload, FusedChain):
            # Single dispatch for the whole chain: intermediate planes
            # stay process-local temporaries, external reads/writes go
            # through the normal per-job stream facade.
            member_times = run_fused(
                payload,
                iteration,
                ws,  # type: ignore[arg-type] - StreamStore duck type
                broker,  # type: ignore[arg-type] - EventBroker duck type
                self.pg.aliases,
                self.host.live,
                stop_requester=request_stop,
                cache=self._fused_caches.setdefault(node_id, {}),
            )
        else:
            for instance in instances:
                component = self.host.live[instance.instance_id]
                ctx = JobContext(
                    instance,
                    iteration,
                    ws,  # type: ignore[arg-type] - StreamStore duck type
                    broker,  # type: ignore[arg-type] - EventBroker duck type
                    self.pg.aliases,
                    stop_requester=request_stop,
                )
                component.run(ctx)
        # "Busy" time for the dispatcher's CPU-bound classification: CPU
        # burned plus time stalled on dispatcher RPCs — the latter is
        # coordination contention, not a kernel yielding the processor,
        # so it must not make a compute kernel look blocking.
        cpu = time.process_time() - cpu_start + self.rpc_wait
        end = time.perf_counter()
        # Checkpoint the state this job accrued: the delta rides on the
        # completion message (NOT through pool.pack — checkpoints are
        # control metadata, not stream traffic) and is merged into the
        # dispatcher mirror before the job is acknowledged, so a later
        # crash of this worker cannot lose acknowledged output.
        state_updates: dict[str, Any] = {}
        for instance in instances:
            delta = self.host.live[instance.instance_id].checkpoint_state()
            if delta is not None:
                state_updates[instance.instance_id] = delta
        # Keep this job's products resident: a later job of this lease —
        # or of a future lease, until the iteration retires — can then be
        # handed the value by name, with no plane re-shipped and no
        # second unpack.
        for name in ws.outputs:
            self.resident[(name, iteration)] = ws.values[name]
        for name, buf in ws.ensured.items():
            self.resident[(name, iteration)] = buf
        return (iteration, node_id, ws.outputs, events, stop_requested,
                start, end, cpu, state_updates, member_times)

    def _run_lease(
        self,
        entries: list[tuple],
        grants: Sequence[PlaneRef],
        watermark: int | None,
    ) -> None:
        """Execute a batch of jobs, streaming a record back per job.

        The lease runs strictly in order — later entries may read streams
        produced by earlier ones (worker-resident, referenced by name).
        Each completion is announced as soon as it happens (so the
        dispatcher can release dependent work to *other* workers without
        waiting for the whole lease); the last record additionally
        carries the unconsumed plane grants.  Because the pipe is FIFO,
        a record either arrived (acknowledged, applied exactly once) or
        the dispatcher knows its job — and every later one — never ran.
        """
        if watermark is not None:
            for key in [k for k in self.resident if k[1] < watermark]:
                del self.resident[key]
        self.pool.add_grants(grants)
        last = len(entries) - 1
        for index, entry in enumerate(entries):
            iteration, node_id, inputs, resident, ensured, fault = entry
            record = self._run_job(iteration, node_id, inputs, resident,
                                   ensured, fault)
            unused = self.pool.take_unused_grants() if index == last else None
            self._send(("done", record, unused))

    # -- main loop -----------------------------------------------------------

    def main(self) -> None:
        try:
            while True:
                msg = self._recv()
                tag = msg[0]
                if tag == "lease":
                    self._run_lease(msg[1], msg[2], msg[3])
                elif tag == "stop":
                    snapshots = {}
                    for instance_id, component in self.host.live.items():
                        state = component.snapshot_state()
                        if state is not None:
                            snapshots[instance_id] = state
                    stats = self.pool.stats.as_dict()
                    self._send(
                        ("bye", snapshots,
                         {k: stats[k] for k in _WORKER_STAT_KEYS})
                    )
                    return
                else:
                    self._handle_control(msg)
        except BaseException as exc:
            tb = traceback.format_exc()
            try:
                self._send(("error", exc, tb), interned=False)
            except Exception:
                try:
                    self._send(("error", None, tb), interned=False)
                except Exception:
                    pass
        finally:
            self.pool.close_attachments()
            self.conn.close()


def _worker_entry(
    conn: Connection,
    program: Program,
    registry: Mapping[str, type[Component]],
    pg: ProgramGraph,
    group_chains: bool,
    worker_id: int,
    overrides: Mapping[str, ComponentInstance] | None = None,
    fuse: bool = False,
    fuse_backend: str = "numpy",
    program_base: Program | None = None,
    slice_overrides: Mapping[str, int] | None = None,
    fuse_headroom: int | None = None,
) -> None:
    _Worker(conn, program, registry, pg, group_chains, worker_id,
            overrides, fuse, fuse_backend, program_base, slice_overrides,
            fuse_headroom).main()


# ---------------------------------------------------------------------------
# Dispatcher side
# ---------------------------------------------------------------------------


class _Lease:
    """Dispatcher-side record of one batch of jobs shipped to a worker.

    ``speculative[i]`` marks jobs added by
    :meth:`~repro.hinch.scheduler.DataflowScheduler.extract_followons`
    (their dependencies are earlier lease members); ``deferred[i]`` lists
    the stream reads of job *i* whose accounting waits until its record
    arrives (the values did not exist dispatcher-side at assembly);
    ``done`` counts the records already acknowledged — on worker death,
    members from ``done`` onward never ran and are retried or retracted.
    """

    __slots__ = ("jobs", "speculative", "deferred", "done")

    def __init__(
        self,
        jobs: list[Job],
        speculative: list[bool],
        deferred: list[list[str]],
    ) -> None:
        self.jobs = jobs
        self.speculative = speculative
        self.deferred = deferred
        self.done = 0


class ProcessRuntime:
    """Run a Program on worker processes with real parallel execution.

    Drop-in for :class:`~repro.hinch.runtime.ThreadedRuntime` (``workers``
    replaces ``nodes``); produces bit-identical outputs because every
    semantic decision — job readiness, load balancing, event handling,
    reconfiguration — is made by the same single-threaded dispatcher
    state machines the threaded backend uses under its lock.

    Performance knob:

    * ``batch`` — maximum jobs per lease (default 1).  At 1 the
      dispatcher is job-at-a-time and bit-identical to previous
      behavior; larger values amortize pickling, pipe wakeups and
      alloc/ensure RPCs across the lease and enable worker-resident
      stream tokens plus slice affinity.  Outputs stay bit-identical at
      any batch size; only dispatch granularity changes.

    Fault-tolerance knobs:

    * ``watchdog`` — per-job wall-clock budget in seconds; within a
      lease each streamed record resets the window.  A worker holding
      one job longer is presumed wedged, killed, and the lease's
      unacknowledged jobs retried.  ``None`` (default) disables the
      watchdog; worker *death* is still detected immediately via pipe
      EOF / process sentinels.
    * ``max_retries`` — how many times one ``(iteration, node)`` job may
      be re-issued after losing its worker before the run fails with a
      structured :class:`~repro.errors.WorkerFailure`.
    * ``respawn`` — replace dead workers (default) or degrade onto the
      survivors; with no survivor left the run fails.
    * ``faults`` — a scripted failure plan (spec string, list of
      :class:`~repro.hinch.faults.FaultSpec`, or a
      :class:`~repro.hinch.faults.FaultInjector`) for testing.
    """

    def __init__(
        self,
        program: Program,
        registry: Mapping[str, type[Component]],
        *,
        workers: int = 2,
        pipeline_depth: int = 5,
        max_iterations: int,
        trace: bool = False,
        option_states: Mapping[str, bool] | None = None,
        group_chains: bool = False,
        fuse: bool = False,
        fuse_backend: str = "numpy",
        batch: int = 1,
        watchdog: float | None = None,
        max_retries: int = 2,
        respawn: bool = True,
        faults: str | Sequence[FaultSpec] | FaultInjector | None = None,
        autotune: bool = False,
        objective: str = "throughput",
        deadline_ms: float | None = None,
        autotune_window: int = 4,
    ) -> None:
        if workers < 1:
            raise SchedulingError(f"workers must be >= 1, got {workers}")
        if batch < 1:
            raise SchedulingError(f"batch must be >= 1, got {batch}")
        if watchdog is not None and watchdog <= 0:
            raise SchedulingError(f"watchdog must be > 0 seconds, got {watchdog}")
        if max_retries < 0:
            raise SchedulingError(f"max_retries must be >= 0, got {max_retries}")
        if objective not in ("throughput", "deadline"):
            raise SchedulingError(
                f"objective must be 'throughput' or 'deadline', got "
                f"{objective!r}"
            )
        if objective == "deadline" and deadline_ms is None:
            raise SchedulingError("objective 'deadline' needs deadline_ms")
        self.program = program
        self.registry = registry
        self.workers = workers
        self.batch = batch
        self.pipeline_depth = pipeline_depth
        self.max_iterations = max_iterations
        self.group_chains = group_chains
        self.fuse = fuse
        self.fuse_backend = fuse_backend
        self.fusion_report: FusionReport | None = None
        self.watchdog = watchdog
        self.max_retries = max_retries
        self.respawn = respawn
        self.fault_injector = coerce_injector(faults)
        self.broker = EventBroker()
        self.pool = SharedPlanePool(shared=True)
        self.streams = StreamStore(self.pool)
        self.tracer = Tracer(enabled=trace)
        self.host = ComponentHost(program, registry)
        try:
            self._cores = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            self._cores = os.cpu_count() or 1
        #: the un-resliced Program the auto-tuner derives every re-slice
        #: from, so cumulative overrides stay idempotent
        self._program_base = program
        #: cumulative group -> replication-total overrides applied so far
        self._slice_overrides: dict[str, int] = {}
        #: workers-vs-cores ceiling handed to the fusion profitability
        #: guard: fusing a sliced pair forfeits pipeline overlap exactly
        #: when more workers than slice copies could run its members
        self._fuse_headroom: int | None = (
            min(workers, self._cores) if fuse else None
        )

        self.pg: ProgramGraph = self._make_pg(program, option_states)
        #: control-pipe pickler; workers derive the identical table from
        #: the same graph (forked or rebuilt), so name strings travel as
        #: small integer codes
        self.interner = NameInterner(NameInterner.names_of(self.pg))
        self._plain = NameInterner()
        self._target_states: dict[str, bool] = dict(self.pg.option_states)
        self._precreated: dict[str, Component] = {}
        self.host.populate(self.pg.active_components)
        self.managers = {
            qname: ManagerRuntime(info, self.broker, self)
            for qname, info in program.managers.items()
        }
        self.scheduler = DataflowScheduler(
            self.pg,
            pipeline_depth=pipeline_depth,
            max_iterations=max_iterations,
            hooks=self,
        )
        self.queue = JobQueue()
        self.reconfig_log: list[tuple[int, dict[str, bool]]] = []
        self._worker_pool_stats = {k: 0 for k in _WORKER_STAT_KEYS}
        self._ctx: Any = None
        #: slot -> control pipe / process handle (None until spawned;
        #: entries are *replaced* on respawn, the slot id is stable)
        self._conns: list[Connection] = []
        self._procs: list[Any] = []
        self._idle: set[int] = set()
        self._busy: dict[int, _Lease] = {}
        #: slots currently backed by a live worker process
        self._live: set[int] = set()
        #: slot -> monotonically increasing worker incarnation id; retry
        #: exclusion is per-incarnation so a respawned worker is eligible
        #: for the job its predecessor died on
        self._incarnation: list[int] = []
        self._next_incarnation = 0
        #: slot -> planes RPC-allocated during the current job (ownership
        #: moves to the stream slots on "done"; reclaimed on failure)
        self._leases: dict[int, list[PlaneRef]] = {}
        #: slot -> watchdog deadline (perf_counter) for the current job
        self._deadlines: dict[int, float] = {}
        #: (iteration, node_id) -> failed attempts so far
        self._attempts: dict[tuple[int, str], int] = {}
        #: (iteration, node_id) -> worker incarnations that failed it
        self._excluded: dict[tuple[int, str], set[int]] = {}
        #: parameter reconfigurations already broadcast, replayed to
        #: respawned workers so their fresh mirrors catch up
        self._sent_reconfigs: list[tuple[str, str]] = []
        #: dispatched task jobs (1-based), the fault injector's clock
        self._dispatched_tasks = 0
        self._respawns = 0
        self.fault_events: list[dict[str, Any]] = []
        #: node_id -> preferred worker slot (slice affinity: replica k of
        #: a sliced parblock keeps landing on the worker that holds its
        #: planes and resident slots warm, while that worker is idle)
        self._affinity: dict[str, int] = {}
        #: iteration -> stream name -> worker slots holding the value
        #: live (resident-slot tokens replace plane re-shipping)
        self._resident: dict[int, dict[str, set[int]]] = {}
        #: worker slot -> planes granted with the current lease (released
        #: back to the pool if the worker dies before lease_done)
        self._granted: dict[int, list[PlaneRef]] = {}
        #: node_id -> [(stream, shape, dtype)] ensure_buffer profile,
        #: learned from ensure RPCs; lets leases pre-resolve slot planes
        self._ensure_profile: dict[str, list[tuple[str, tuple, str]]] = {}
        #: node_id -> [payload nbytes] of the node's last output planes;
        #: sizes free-list grants attached to its future leases
        self._demand: dict[str, list[int]] = {}
        #: node_id -> True when the node's kernel burns CPU for most of
        #: its wall time (measured worker-side).  CPU-bound nodes gain
        #: nothing from spreading across more workers than physical
        #: cores, so once the cores are saturated their fan-out
        #: successors may be chained speculatively; blocking kernels
        #: (cpu << wall, e.g. I/O or device waits) always spread.
        self._cpu_bound: dict[str, bool] = {}
        #: distinct worker slots that ever forked (satellite of the
        #: lazy-spawn work: occupancy must divide by workers that *ran*)
        self._spawned_slots: set[int] = set()
        #: decisions applied during this run (RunResult.autotune_events)
        self.autotune_events: list[dict[str, Any]] = []
        self.autotune = autotune
        self._controller: AutotuneController | None = None
        #: decisions awaiting the next quiescent splice, oldest first —
        #: a window can close (and decide) while an earlier decision is
        #: still draining toward its splice, so this must queue
        self._pending_autotune: list[Decision] = []
        #: current replication total per re-sliceable group
        self._slice_totals: dict[str, int] = {}
        # Observation-window accumulators (autotune only): per-worker and
        # per-definition busy wall seconds, job count, window start time.
        self._win_index = 0
        self._win_iters = 0
        self._win_jobs = 0
        self._win_fps = 0.0
        self._win_worker_busy: dict[int, float] = {}
        self._win_node_busy: dict[str, float] = {}
        self._win_start = time.perf_counter()
        if autotune:
            self._controller = self._init_autotune(
                objective, deadline_ms, autotune_window, option_states
            )

    def _make_pg(
        self, program: Program, option_states: Mapping[str, bool] | None
    ) -> ProgramGraph:
        pg = program.build_graph(option_states)
        # Reconciled port formats become the streams' authoritative buffer
        # expectations; recomputed per configuration so a splice installs
        # the new solution.  The same pipeline runs worker-side after a
        # splice (:meth:`_Worker._make_pg`) — keep the steps in lockstep.
        from repro.analysis.formats import (
            auto_insert_converters,
            runtime_expectations,
            solve_formats_or_raise,
        )

        solution = solve_formats_or_raise(program, pg)
        expectations = runtime_expectations(program, pg, solution=solution)
        pg, overrides, expectations = auto_insert_converters(
            program, pg, self.registry, expectations, solution
        )
        self.host.overrides = overrides
        self.streams.set_expectations(expectations)
        if self.group_chains:
            from repro.hinch.grouping import group_linear_chains

            pg = group_linear_chains(pg)
        if self.fuse:
            from repro.hinch.fusion import fuse_chains

            pg, self.fusion_report = fuse_chains(
                pg, program, self.registry, expectations, self.fuse_backend,
                parallel_headroom=self._fuse_headroom,
            )
        return pg

    # -- autotune ------------------------------------------------------------

    def _init_autotune(
        self,
        objective: str,
        deadline_ms: float | None,
        window: int,
        option_states: Mapping[str, bool] | None,
    ) -> AutotuneController:
        """Build the controller: slice candidates and the cost-model seed.

        Candidate replication totals are validated *up front* with trial
        re-slices (structure + format solve) so a decision at a splice
        can never discover mid-run that a width does not build.  The
        cost-model seed (:func:`repro.prediction.seed_plan`) is best
        effort: programs without cost annotations tune from measurements
        alone.
        """
        from repro.analysis.diagnostics import DiagnosticBag
        from repro.analysis.formats import check_formats
        from repro.core.reslice import reslice, slice_groups

        candidates: dict[str, tuple[int, ...]] = {}
        for group in slice_groups(self._program_base).values():
            cls = self.registry.get(group.class_name)
            if cls is None or not cls.slice_elastic():
                continue
            totals: list[int] = []
            for total in sorted({1, 2, 4, 8} | {group.total}):
                if total == group.total:
                    totals.append(total)
                    continue
                try:
                    trial = reslice(
                        self._program_base, {group.definition_id: total}
                    )
                    bag = DiagnosticBag()
                    check_formats(
                        bag, trial, trial.build_graph(option_states)
                    )
                    if not bag.has_errors:
                        totals.append(total)
                except Exception:
                    continue
            if len(totals) > 1:
                candidates[group.definition_id] = tuple(totals)
                self._slice_totals[group.definition_id] = group.total
        seed_intervals: dict[int, float] | None = None
        max_workers = max(self.workers, self._cores)
        try:
            from repro.prediction import seed_plan

            plan = seed_plan(
                self._program_base,
                self.registry,
                max_workers=max_workers,
                pipeline_depth=self.pipeline_depth,
                option_states=option_states,
            )
            seed_intervals = dict(plan.intervals)
        except Exception:
            pass
        config = AutotuneConfig(
            objective=objective,
            deadline_ms=deadline_ms,
            window=window,
            max_workers=max_workers,
            cores=self._cores,
            max_batch=max(16, self.batch),
            slice_candidates=candidates,
        )
        return AutotuneController(config, seed_intervals)

    def _close_window(self) -> None:
        """End one observation window: measure, consult, maybe reconfigure."""
        controller = self._controller
        assert controller is not None
        now = time.perf_counter()
        wall = max(now - self._win_start, 1e-9)
        fps = self._win_iters / wall
        # Backfill achieved throughput on decisions still awaiting their
        # first post-splice window — the predicted-vs-achieved delta the
        # bench reports per decision.
        for event in self.autotune_events:
            if event["achieved_fps"] is None:
                event["achieved_fps"] = round(fps, 4)
                base = event["baseline_fps"]
                event["achieved_ratio"] = (
                    round(fps / base, 4) if base else None
                )
        cpu_bound = frozenset(
            _SLICE_SUFFIX.sub("", node)
            for node, bound in self._cpu_bound.items()
            if bound
        )
        obs = Observation(
            window=self._win_index,
            wall=wall,
            iterations=self._win_iters,
            jobs=self._win_jobs,
            worker_busy=dict(self._win_worker_busy),
            node_busy=dict(self._win_node_busy),
            cpu_bound=cpu_bound,
            queue_high_water=self.queue.take_high_water(),
            workers=self.workers,
            live_workers=max(len(self._live), 1),
            batch=self.batch,
            slice_totals=dict(self._slice_totals),
        )
        decision = controller.observe(obs)
        self._win_index += 1
        self._win_iters = 0
        self._win_jobs = 0
        self._win_fps = fps
        self._win_worker_busy = {}
        self._win_node_busy = {}
        self._win_start = now
        if decision is None:
            return
        remaining = self.max_iterations - self.scheduler.completed_iterations
        if remaining < controller.config.window:
            return  # no window left to measure the effect in
        self._pending_autotune.append(decision)
        self.scheduler.request_reconfig(
            ReconfigPlan(
                manager="<autotune>", changes={}, reason=decision.reason
            )
        )

    def _apply_autotune(self, decision: Decision, resume: int) -> None:
        """Enact one controller decision at the quiescent splice point."""
        if decision.batch is not None:
            self.batch = decision.batch
        if decision.workers is not None:
            self._resize_pool(decision.workers)
        if decision.slices:
            from repro.core.reslice import reslice

            self._slice_overrides.update(decision.slices)
            self._slice_totals.update(decision.slices)
            self.program = reslice(self._program_base, self._slice_overrides)
            self.host.program = self.program
            # Member tuples changed with the program: every manager gets
            # its replacement descriptor (queue binding and stats stay).
            for qname, manager in self.managers.items():
                manager.rebind(self.program.managers[qname])
        if self.fuse:
            self._fuse_headroom = min(self.workers, self._cores)
        if self.tracer.enabled:
            now = time.perf_counter()
            self.tracer.record(
                TraceEvent(
                    node_id=decision.kind,
                    iteration=resume,
                    worker=-1,
                    start=now,
                    end=now,
                    kind="autotune",
                )
            )
        self.autotune_events.append(
            {
                "kind": decision.kind,
                "window": decision.window,
                "iteration": resume,
                "reason": decision.reason,
                "workers": decision.workers,
                "batch": decision.batch,
                "slices": dict(decision.slices) if decision.slices else None,
                "predicted_ratio": round(decision.predicted_ratio, 4),
                "baseline_fps": round(self._win_fps, 4),
                "predicted_fps": round(
                    self._win_fps * decision.predicted_ratio, 4
                ),
                "achieved_fps": None,
                "achieved_ratio": None,
            }
        )

    def _resize_pool(self, target: int) -> None:
        """Grow or shrink the worker pool at quiescence.

        Growing only extends the slot tables — new slots stay dormant
        until the first dispatch that finds no idle worker (PR 5's lazy
        spawn).  Shrinking retires the highest slots first: dormant slots
        just vanish; live ones get the graceful stop handshake (state
        snapshots and pool stats merge exactly as at shutdown), which
        cannot abandon work because every worker is idle at quiescence.
        """
        target = max(1, target)
        if target > self.workers:
            grow = target - self.workers
            self._conns.extend([None] * grow)  # type: ignore[list-item]
            self._procs.extend([None] * grow)
            self._incarnation.extend([-1] * grow)
            self._dormant += grow
            self.workers = target
            return
        while self.workers > target:
            slot = self.workers - 1
            self._retire_slot(slot)
            self._conns.pop()
            self._procs.pop()
            self._incarnation.pop()
            self.workers = slot

    def _retire_slot(self, slot: int) -> None:
        if self._incarnation[slot] == -1:
            self._dormant -= 1
            return
        if slot not in self._live:
            return
        self._live.discard(slot)
        self._idle.discard(slot)
        for holders in self._resident.values():
            for workers in holders.values():
                workers.discard(slot)
        try:
            self._send_to(slot, ("stop",), interned=False)
            while True:
                msg = self._recv_from(slot)
                if msg[0] == "bye":
                    _, snapshots, stats = msg
                    for instance_id, state in snapshots.items():
                        component = self.host.live.get(instance_id)
                        if component is not None:
                            component.merge_state(state)
                    for key in _WORKER_STAT_KEYS:
                        self._worker_pool_stats[key] += stats[key]
                    break
                if msg[0] == "error":
                    break  # dying worker: nothing left worth merging
        except (EOFError, OSError):
            pass
        try:
            self._conns[slot].close()
        except Exception:
            pass
        proc = self._procs[slot]
        if proc is not None:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)

    # -- SchedulerHooks ------------------------------------------------------

    def on_iteration_complete(self, iteration: int) -> None:
        self.streams.release_iteration(iteration)
        # The planes behind these slots are back on the free lists, so
        # worker-resident views of them are no longer referenceable.
        self._resident.pop(iteration, None)
        if self._controller is not None:
            self._win_iters += 1
            if self._win_iters >= self._controller.config.window:
                self._close_window()

    def on_reconfigure(
        self, plans: list[ReconfigPlan], resume_iteration: int
    ) -> ProgramGraph:
        # Auto-tune decisions piggyback on the quiescent splice: resize
        # the pool / retune the batch / re-slice *before* the graph
        # rebuild so the new shape and the new fusion headroom are what
        # both sides derive the post-splice graph from.
        pending, self._pending_autotune = self._pending_autotune, []
        for decision in pending:
            self._apply_autotune(decision, resume_iteration)
        states = dict(self.pg.option_states)
        for plan in plans:
            states.update(plan.changes)
        new_pg = self._make_pg(self.program, states)
        added, _ = self.host.splice(
            new_pg.active_components, self._precreated
        )
        for component in self._precreated.values():
            component.teardown()
        self._precreated.clear()
        # Mirrors a re-slice created (or rebuilt) fresh catch up on the
        # dynamic reconfigure history — same replay a respawned worker
        # gets.
        if added and self._sent_reconfigs:
            created = set(added)
            for manager, request in self._sent_reconfigs:
                for member in self.program.managers[manager].members:
                    if member in created:
                        self.host.live[member].reconfigure(request)
        self.pg = new_pg
        self._target_states = dict(states)
        self.reconfig_log.append((resume_iteration, dict(states)))
        # Node identities and stream geometries may change across the
        # splice: drop everything learned about the old graph.  (Resident
        # slots are already gone — reconfiguration happens at quiescence,
        # after every in-flight iteration released its streams.)
        self._affinity.clear()
        self._ensure_profile.clear()
        self._demand.clear()
        self._cpu_bound.clear()
        # The graph is quiescent (no jobs in flight), so every worker is
        # idle and will process the splice before its next job.  self.pg
        # is already the new graph, so a worker respawned by a send
        # failure here forks with the post-splice option states baked in.
        self._broadcast(
            ("splice", dict(states), dict(self._slice_overrides),
             self._fuse_headroom)
        )
        # Intern table follows the graph.  Control messages (including
        # the splice itself) are never interned and no lease or RPC can
        # be in flight at quiescence, so nothing encoded with the old
        # table remains undecoded when either side swaps.
        self.interner.set_table(NameInterner.names_of(new_pg))
        return new_pg

    # -- ReconfigController --------------------------------------------------

    def target_option_state(self, option_qname: str) -> bool:
        return self._target_states[option_qname]

    def apply_option_changes(self, manager: str, changes: dict[str, bool]) -> None:
        effective = {
            opt: state
            for opt, state in changes.items()
            if self._target_states.get(opt) != state
        }
        if not effective:
            return
        self._target_states.update(effective)
        for opt, state in effective.items():
            if state:
                for member in self.program.options[opt].members:
                    if (
                        member not in self.host.live
                        and member not in self._precreated
                    ):
                        self._precreated[member] = self.host.create(member)
        self.scheduler.request_reconfig(
            ReconfigPlan(manager=manager, changes=effective)
        )

    def send_reconfigure_request(self, manager: str, request: str) -> None:
        # Dispatcher mirrors track parameter state (they are what
        # RunResult.components exposes) ...
        for member in self.program.managers[manager].members:
            component = self.host.live.get(member)
            if component is not None:
                component.reconfigure(request)
        # ... and every worker applies the request to its own mirrors,
        # possibly mid-job of an unrelated component (same concurrency
        # the threaded backend exhibits at nodes > 1).  Recorded first:
        # a worker respawned mid-broadcast receives it via replay, and
        # future respawns need the full history to rebuild mirror state.
        self._sent_reconfigs.append((manager, request))
        self._broadcast(("reconfigure", manager, request))

    def _broadcast(self, msg: tuple[Any, ...]) -> None:
        """Send ``msg`` to every live worker, absorbing worker death.

        A failed send means the worker is gone; it is handled like any
        other failure (lease reclamation, retry, respawn).  A worker
        respawned *during* the broadcast is deliberately skipped — it was
        forked from current dispatcher state and replayed the reconfig
        log, so it is already up to date.
        """
        for slot in sorted(self._live):
            try:
                self._send_to(slot, msg, interned=False)
            except OSError:
                self._worker_failed(slot, "send failed (broken pipe)")

    # -- control pipe --------------------------------------------------------

    def _send_to(
        self, slot: int, msg: tuple[Any, ...], *, interned: bool = True
    ) -> None:
        """Encode and send one message; control traffic goes un-interned.

        Byte counts land in :attr:`PoolStats.meta_pickled_bytes` — together
        with the worker-side counts shipped home at shutdown this makes
        the counter the total control-plane pickle volume of the run,
        which is what the interner exists to shrink.
        """
        coder = self.interner if interned else self._plain
        data = coder.dumps(msg)
        self.pool.stats.meta_pickled_bytes += len(data) + 1
        self._conns[slot].send_bytes((b"\x01" if interned else b"\x00") + data)

    def _recv_from(self, slot: int) -> Any:
        raw = self._conns[slot].recv_bytes()
        coder = self.interner if raw[:1] == b"\x01" else self._plain
        return coder.loads(raw[1:])

    # -- event injection -----------------------------------------------------

    def post_event(self, queue: str, name: str, payload: Any = None) -> None:
        """Inject an external (user) event."""
        self.broker.post(queue, Event(name=name, payload=payload))

    # -- dispatch ------------------------------------------------------------

    def _gather_inputs(
        self, node: Any, iteration: int, worker: int
    ) -> tuple[dict[str, Packed], tuple[str, ...], list[str]]:
        """Resolve every input stream value a job needs.

        Returns ``(shipped, resident, deferred)``:

        * ``shipped`` — name -> :class:`Packed` planes that must cross
          the pipe (the worker does not hold them);
        * ``resident`` — names the worker already holds live (it produced
          or mapped them), referenced by token only;
        * ``deferred`` — reads (with per-port multiplicity) whose values
          do not exist dispatcher-side yet because the producer is an
          earlier member of the same speculative lease; their ``get``
          accounting replays when the lease completes, keeping stream
          counters bit-identical to the threaded backend.

        One ``get`` per (instance, input port), mirroring the threaded
        backend's per-copy ``job.read`` counters.  Streams produced by an
        earlier member of a grouped chain stay worker-local and are
        skipped.
        """
        payload = node.payload
        instances = payload if isinstance(payload, tuple) else (payload,)
        produced: set[str] = set()
        aliases = self.pg.aliases
        for instance in instances:
            ports = self.registry[instance.class_name].ports
            for port in ports.outputs:
                raw = instance.streams.get(port)
                if raw is not None:
                    produced.add(aliases.get(raw, raw))
        shipped: dict[str, Packed] = {}
        resident: list[str] = []
        deferred: list[str] = []
        holders = self._resident.get(iteration, {})
        for instance in instances:
            ports = self.registry[instance.class_name].ports
            for port in ports.inputs:
                raw = instance.streams.get(port)
                if raw is None:
                    continue
                name = aliases.get(raw, raw)
                if name in produced:
                    continue
                stream = self.streams.stream(name)
                if not stream.has(iteration):
                    # Producer is an earlier job of this very lease: the
                    # worker will hold the value by the time this job
                    # runs; account for the read at lease completion.
                    deferred.append(name)
                    if name not in resident:
                        resident.append(name)
                    continue
                value = stream.get(iteration)
                if worker in holders.get(name, ()):
                    if name not in resident:
                        resident.append(name)
                    continue
                if not isinstance(value, Packed):  # pragma: no cover
                    raise StreamError(
                        f"stream {name!r}: non-transportable slot value "
                        f"{type(value).__name__}"
                    )
                shipped[name] = value
        return shipped, tuple(resident), deferred

    def _mark_resident(self, iteration: int, name: str, worker: int) -> None:
        self._resident.setdefault(iteration, {}).setdefault(
            name, set()
        ).add(worker)

    def _pre_ensure(
        self, node_id: str, iteration: int, worker: int
    ) -> dict[str, PlaneRef] | None:
        """Resolve a job's ``ensure_buffer`` planes at dispatch time.

        Once a node's ensure profile is known (recorded from its first
        ensure RPC), the dispatcher performs the slot allocation itself —
        the same :meth:`Stream.ensure_buffer` call the RPC handler makes,
        so write accounting and geometry validation are unchanged — and
        ships the :class:`PlaneRef` with the lease, eliminating one RPC
        round-trip per slice copy per iteration.
        """
        profile = self._ensure_profile.get(node_id)
        if not profile:
            return None
        ensured: dict[str, PlaneRef] = {}
        for name, shape, dtype in profile:
            ensured[name] = self._ensure_slot(
                name, iteration, shape, dtype, node=node_id
            )
            self._mark_resident(iteration, name, worker)
        return ensured

    def _ensure_slot(
        self,
        name: str,
        iteration: int,
        shape: tuple,
        dtype: str,
        node: str | None = None,
    ) -> PlaneRef:
        stream = self.streams.stream(name)
        stream.check_expected(iteration, tuple(shape), dtype, node)
        packed = stream.ensure_buffer(
            iteration,
            factory=lambda: self.pool.pack_plane(
                self.pool.acquire(tuple(shape), dtype)[1]
            ),
        )
        # ensure planes are stream-owned, not worker-leased: the slot
        # survives the worker and is released with its iteration.
        ref = packed.refs[0]
        if tuple(ref.shape) != tuple(shape) or np.dtype(ref.dtype) != np.dtype(
            dtype
        ):
            raise StreamFormatError(
                f"stream {name!r}: ensure_buffer geometry mismatch in "
                f"iteration {iteration}: node {node or '?'} requested "
                f"{tuple(shape)}/{np.dtype(dtype)}, slot already "
                f"allocated as {tuple(ref.shape)}/{np.dtype(ref.dtype)} "
                "(see lint codes X501/X503, `python -m repro lint`)",
                stream=name,
                iteration=iteration,
                node=node,
                declared=(tuple(ref.shape), np.dtype(ref.dtype).name),
                observed=(tuple(shape), np.dtype(dtype).name),
            )
        return ref

    def _issue_grants(self, node_id: str, worker: int) -> list[PlaneRef]:
        """Attach free-list planes matching the node's last allocations.

        Purely an RPC saver: a grant the worker consumes replaces one
        ``rpc_alloc`` round-trip; unconsumed grants return with the
        lease.  Only free planes are granted — never fresh ones — so the
        pool's working set stays bounded by the pipeline depth.
        """
        grants: list[PlaneRef] = []
        for nbytes in self._demand.get(node_id, ()):
            ref = self.pool.try_acquire_free(nbytes)
            if ref is not None:
                grants.append(ref)
        if grants:
            self._granted.setdefault(worker, []).extend(grants)
        return grants

    def _run_local(self, job: Job, node: Any) -> None:
        """Execute a control node (manager/barrier) on the dispatcher."""
        start = time.perf_counter()
        if node.kind in ("manager_enter", "manager_exit"):
            manager = self.managers[node.payload]
            manager.invoke(job.iteration, node.kind.removeprefix("manager_"))
        end = time.perf_counter()
        if self.tracer.enabled:
            self.tracer.record(
                TraceEvent(
                    node_id=job.node_id,
                    iteration=job.iteration,
                    worker=-1,
                    start=start,
                    end=end,
                    kind=node.kind,
                )
            )
        self._complete(job)

    def _complete(self, job: Job) -> None:
        ready = self.scheduler.complete(job)
        self.queue.push_all(ready)
        if self.scheduler.done:
            self.queue.drain()

    def _pump(self) -> None:
        """Hand the FIFO head to idle workers; run control nodes inline.

        Jobs are popped only while a worker is idle — with one worker
        and ``batch=1`` this reproduces the threaded backend's
        single-thread FIFO order exactly (control jobs included), which
        is what makes reconfiguration timing deterministic at
        ``workers=1``.  With ``batch > 1`` the popped head seeds a
        *lease* that :meth:`_dispatch_lease` extends with further ready
        jobs and speculative follow-ons.

        Retried jobs prefer a worker incarnation that has not already
        failed them (a deterministic kernel crash should not burn the
        whole retry budget on one wedged worker); in a fault-free run the
        exclusion map is empty and the pick stays ``min(idle)``, so
        dispatch order — and with it bit-identical output — is unchanged.

        With ``batch > 1`` an *oversubscription guard* applies first:
        when as many workers are already running CPU-bound jobs as the
        host has physical cores, a CPU-bound head is held at the queue
        front instead of waking another worker — a free worker slot is
        not a free processor, and the held job joins the finishing
        worker's next lease instead of adding a process to contend with.
        Blocking kernels (measured cpu << wall) are never held.  Worker
        slots beyond 0 fork lazily, so a run the guard keeps consolidated
        never pays their spawn cost.
        """
        while True:
            if not self._idle and not self._dormant:
                return
            job = self.queue.peek()
            if job is None:
                return
            node = self.pg.graph.node(job.node_id)
            if node.kind != "task":
                self.queue.try_pop()
                self._run_local(job, node)
                continue
            if self._defer_oversubscribed(job):
                # Held at the head, still queued: the finishing worker's
                # next lease assembly will chain it instead.
                return
            self.queue.try_pop()
            if not self._idle:
                self._spawn_one(self._unspawned_slot())
            worker = self._pick_worker(job)
            self._idle.discard(worker)
            self._dispatch_lease(worker, job)

    def _defer_oversubscribed(self, job: Job) -> bool:
        """Hold a CPU-bound head while the physical cores are all taken.

        True when ``job``'s node is CPU-bound (or not yet measured —
        optimistic spreading would fork workers that a compute-heavy app
        never profits from) and at least ``_cores`` busy workers are
        currently executing CPU-bound jobs.  Progress is guaranteed:
        deferral requires a busy worker, whose next record re-enters
        :meth:`_pump`.  On hosts with at least as many cores as workers
        the count can never reach ``_cores`` while a worker is idle, so
        the guard is inert and dispatch order is unchanged.  Never
        defers at ``batch=1`` (bit-identical legacy dispatch).
        """
        if self.batch <= 1:
            return False
        if not self._cpu_bound.get(job.node_id, True):
            return False
        cpu_busy = 0
        for lease in self._busy.values():
            index = min(lease.done, len(lease.jobs) - 1)
            current = lease.jobs[index]
            if self._cpu_bound.get(current.node_id, True):
                cpu_busy += 1
                if cpu_busy >= self._cores:
                    return True
        return False

    def _assemble_lease(self, worker: int, head: Job) -> _Lease:
        """Grow ``head`` into a batch of up to ``self.batch`` jobs.

        Two extension sources, in priority order:

        1. *Ready* jobs already queued, taken only from the surplus the
           idle workers cannot absorb (never starving another idle
           worker), preferring this worker's affinity nodes and never
           scanning past a control-node job (manager invocations keep
           their FIFO position exactly as at ``batch=1``).
        2. *Speculative* follow-ons from
           :meth:`~repro.hinch.scheduler.DataflowScheduler.extract_followons`
           — successors whose only missing dependencies are earlier lease
           members, which hold worker-locally because the lease runs in
           order.
        """
        jobs = [head]
        speculative = [False]
        if self.batch > 1:
            incarnation = self._incarnation[worker]
            graph = self.pg.graph

            def is_control(job: Job) -> bool:
                return graph.node(job.node_id).kind != "task"

            def matches(job: Job) -> bool:
                if graph.node(job.node_id).kind != "task":
                    return False
                excluded = self._excluded.get((job.iteration, job.node_id))
                if excluded and incarnation in excluded:
                    return False
                affinity = self._affinity.get(job.node_id)
                return affinity is None or affinity == worker

            # Ready extension takes (a) the surplus no other worker —
            # idle or not yet forked — could absorb, and (b) when the
            # physical cores are saturated and this lease is CPU-bound
            # work, further CPU-bound jobs regardless of surplus: the
            # oversubscription guard would only hold them at the head
            # anyway, so chaining them here amortizes their dispatch
            # instead.
            spare = len(self._idle) + self._dormant
            saturated = len(self._busy) + 1 >= self._cores
            head_cpu = self._cpu_bound.get(head.node_id, True)

            def matches_cpu(job: Job) -> bool:
                return matches(job) and self._cpu_bound.get(
                    job.node_id, True
                )

            while len(jobs) < self.batch:
                if len(self.queue) > spare:
                    extra = self.queue.try_pop_where(matches,
                                                     stop=is_control)
                elif saturated and head_cpu and len(self.queue) > 0:
                    extra = self.queue.try_pop_where(matches_cpu,
                                                     stop=is_control)
                else:
                    extra = None
                if extra is None:
                    break
                jobs.append(extra)
                speculative.append(False)

            # A speculated job is bound to *this* worker, so while idle
            # workers remain, speculate only pipeline extensions — a
            # node's next iteration can never overlap its current one,
            # so chaining it forfeits no parallelism — and leave fan-out
            # successors to announce normally so they can run
            # concurrently elsewhere (blocking-kernel stages in
            # particular must spread, not chain).  With every worker
            # busy, chaining successors too is free — the work is
            # serialized anyway and each round-trip saved is pure
            # profit.  In between — idle workers, but already at least
            # as many busy as physical cores — spreading a CPU-bound
            # successor buys nothing (the cores are the bottleneck, not
            # the workers), so nodes measured CPU-bound chain while
            # blocking kernels keep spreading.
            if len(jobs) < self.batch:

                def is_eligible(node_id: str) -> bool:
                    return graph.node(node_id).kind == "task"

                chainable = None
                if self._idle and saturated:
                    pipeline_only = False

                    def chainable(node_id: str) -> bool:
                        return self._cpu_bound.get(node_id, False)

                else:
                    pipeline_only = bool(self._idle)
                followons = self.scheduler.extract_followons(
                    jobs, self.batch - len(jobs), is_eligible=is_eligible,
                    pipeline_only=pipeline_only, is_chainable=chainable,
                )
                jobs.extend(followons)
                speculative.extend([True] * len(followons))
        return _Lease(jobs, speculative, [[] for _ in jobs])

    def _dispatch_lease(self, worker: int, head: Job) -> None:
        """Assemble and ship one lease to ``worker``."""
        lease = self._assemble_lease(worker, head)
        entries: list[tuple] = []
        for index, job in enumerate(lease.jobs):
            node = self.pg.graph.node(job.node_id)
            shipped, resident, deferred = self._gather_inputs(
                node, job.iteration, worker
            )
            lease.deferred[index] = deferred
            ensured = self._pre_ensure(job.node_id, job.iteration, worker)
            self._dispatched_tasks += 1
            fault = None
            if self.fault_injector is not None:
                fault = self.fault_injector.directive(self._dispatched_tasks)
            entries.append(
                (job.iteration, job.node_id, shipped, resident, ensured,
                 fault)
            )
            if self.batch > 1:
                self._affinity.setdefault(job.node_id, worker)
        grants: list[PlaneRef] = []
        for job in lease.jobs:
            grants.extend(self._issue_grants(job.node_id, worker))
        self._busy[worker] = lease
        if self.watchdog is not None:
            # Per-job budget: each record resets the window, so a lease
            # of n jobs never waits n windows for a wedged first job.
            self._deadlines[worker] = time.perf_counter() + self.watchdog
        try:
            self._send_to(
                worker,
                ("lease", entries, grants,
                 self.scheduler.lowest_live_iteration),
            )
        except OSError:
            # Worker died between going idle and this dispatch; the
            # lease is in _busy so the normal failure path retries it.
            self._worker_failed(worker, "send failed (broken pipe)")

    def _pick_worker(self, job: Job) -> int:
        """Choose an idle worker for the FIFO head.

        With batching, sliced parblock replicas (and every other task
        node) get sticky *affinity*: the worker that last ran a node is
        preferred, so its resident planes and warm caches are reused and
        the dispatcher ships tokens instead of pixel planes.  At
        ``batch=1`` affinity is never recorded and the pick stays
        ``min(idle)`` — bit-identical to the pre-batching dispatcher.
        """
        excluded = self._excluded.get((job.iteration, job.node_id))
        if excluded:
            eligible = [
                w for w in self._idle if self._incarnation[w] not in excluded
            ]
        else:
            eligible = list(self._idle)
        if eligible:
            affinity = self._affinity.get(job.node_id)
            if affinity is not None and affinity in eligible:
                return affinity
            return min(eligible)
        return min(self._idle)

    # -- worker message handling ---------------------------------------------

    def _on_message(self, worker: int, msg: tuple[Any, ...]) -> None:
        tag = msg[0]
        if tag == "done":
            _, record, unused_grants = msg
            self._record_done(worker, record, unused_grants)
        elif tag == "rpc_alloc":
            _, shape, dtype = msg
            _, ref = self.pool.acquire(tuple(shape), dtype)
            self._leases.setdefault(worker, []).append(ref)
            self._rpc_reply(worker, ref)
        elif tag == "rpc_alloc_raw":
            ref = self.pool.acquire_raw(msg[1])
            self._leases.setdefault(worker, []).append(ref)
            self._rpc_reply(worker, ref)
        elif tag == "rpc_ensure":
            _, node_id, name, iteration, shape, dtype = msg
            ref = self._ensure_slot(
                name, iteration, tuple(shape), dtype, node=node_id
            )
            # Learn the node's ensure profile: from the next lease on,
            # the dispatcher resolves this slot at assembly and ships
            # the ref with the lease — no RPC round-trip.
            profile = self._ensure_profile.setdefault(node_id, [])
            if name not in {entry[0] for entry in profile}:
                profile.append((name, tuple(shape), dtype))
            self._mark_resident(iteration, name, worker)
            self._rpc_reply(worker, ref)
        elif tag == "error":
            raise self._worker_error(worker, msg[1], msg[2])
        else:
            raise SchedulingError(
                f"dispatcher got unexpected message {tag!r} from worker "
                f"{worker}"
            )

    def _record_done(
        self,
        worker: int,
        record: tuple,
        unused_grants: Sequence[PlaneRef] | None,
    ) -> None:
        """Absorb one streamed job record from a worker's lease.

        Records arrive — and are applied — in lease order over the FIFO
        pipe, so deferred read accounting for a consumer always replays
        after its producer's ``put``, and event/checkpoint ordering
        matches a job-at-a-time dispatcher exactly.  Completions are
        announced immediately (dependent work can go to *other* workers
        mid-lease); a record is the only acknowledgement of its job, so
        each checkpoint delta applies exactly once — a worker that died
        mid-lease acknowledged precisely the records that arrived, and
        every later member is retried or retracted.  The final record
        carries the unconsumed grants and returns the worker to the idle
        set.
        """
        lease = self._busy[worker]
        if lease.done >= len(lease.jobs):
            raise SchedulingError(
                f"worker {worker} returned more records than its lease of "
                f"{len(lease.jobs)}"
            )
        job = lease.jobs[lease.done]
        deferred = lease.deferred[lease.done]
        (iteration, node_id, outputs, events, stop, start, end, cpu,
         state_updates, member_times) = record
        if job.iteration != iteration or job.node_id != node_id:
            raise SchedulingError(
                f"worker {worker} completed {node_id}@{iteration}, "
                f"expected {job.node_id}@{job.iteration}"
            )
        lease.done += 1
        # Acknowledged: planes the worker RPC-allocated for this job now
        # live in stream slots (released per iteration), so they leave
        # the worker's liability list.  The pipe is FIFO, so everything
        # alloc'd so far belongs to jobs acknowledged up to here.
        self._leases.pop(worker, None)
        self._attempts.pop((iteration, node_id), None)
        self._excluded.pop((iteration, node_id), None)
        # Replay reads whose values did not exist at assembly (their
        # producer was an earlier member of this lease) — the producer's
        # put has landed by now, so stream counters stay bit-identical
        # to the threaded backend.
        for name in deferred:
            self.streams.stream(name).get(iteration)
        demand: list[int] = []
        for name, packed in outputs.items():
            self.streams.stream(name).put(iteration, packed, writer=node_id)
            self._mark_resident(iteration, name, worker)
            demand.extend(ref.nbytes for ref in packed.refs)
        self._demand[node_id] = demand
        # Monotone: involuntary preemption on a loaded host can only
        # deflate an observed cpu/wall ratio, never inflate one, so a
        # node that ever measures CPU-bound stays CPU-bound (until a
        # reconfiguration swaps the graph out from under the label).
        wall = end - start
        self._cpu_bound[node_id] = (
            self._cpu_bound.get(node_id, False)
            or wall < 1e-6
            or cpu >= 0.5 * wall
        )
        if self._controller is not None:
            self._win_jobs += 1
            self._win_worker_busy[worker] = (
                self._win_worker_busy.get(worker, 0.0) + wall
            )
            definition = _SLICE_SUFFIX.sub("", node_id)
            self._win_node_busy[definition] = (
                self._win_node_busy.get(definition, 0.0) + wall
            )
        for qname, event in events:
            self.broker.post(qname, event)
        for instance_id, delta in state_updates.items():
            component = self.host.live.get(instance_id)
            if component is not None:
                component.merge_state(delta)
        if stop:
            self.scheduler.request_stop()
        if self.tracer.enabled:
            self.tracer.record(
                TraceEvent(
                    node_id=node_id,
                    iteration=iteration,
                    worker=worker,
                    start=start,
                    end=end,
                    kind="task",
                )
            )
            if member_times:
                # constituent-node attribution inside the fused job
                # (worker-local perf_counter timestamps: same clock
                # domain as the whole-node event above)
                for member_id, m_start, m_end in member_times:
                    self.tracer.record(
                        TraceEvent(
                            node_id=member_id,
                            iteration=iteration,
                            worker=worker,
                            start=m_start,
                            end=m_end,
                            kind="fused_member",
                        )
                    )
        if unused_grants is not None:
            # Final record of the lease: consumed grants became outputs
            # (stream-owned now), unconsumed ones go back to the pool.
            if lease.done != len(lease.jobs):
                raise SchedulingError(
                    f"worker {worker} finished its lease after "
                    f"{lease.done} of {len(lease.jobs)} record(s)"
                )
            self._busy.pop(worker)
            self._granted.pop(worker, None)
            self._deadlines.pop(worker, None)
            for ref in unused_grants:
                self.pool.release(ref)
            self._idle.add(worker)
        elif self.watchdog is not None:
            # Per-job budget: the next lease member gets a fresh window.
            self._deadlines[worker] = time.perf_counter() + self.watchdog
        self._complete(job)

    def _rpc_reply(self, worker: int, value: Any) -> None:
        try:
            self._send_to(worker, ("rpc", value))
        except OSError:
            self._worker_failed(worker, "send failed (broken pipe)")

    @staticmethod
    def _worker_error(
        worker: int, exc: BaseException | None, tb: str
    ) -> BaseException:
        """Build the exception for a worker ``("error", exc, tb)`` report.

        The remote traceback travels as a string (the real frames died
        with the worker); it is attached as the ``__cause__`` — a
        :class:`~repro.errors.WorkerFailure` carrying the text — and,
        where the interpreter supports it, as an exception note, so the
        cross-process failure is debuggable from the dispatcher side
        while the original exception type still reaches the caller.
        """
        cause = WorkerFailure(
            f"worker {worker} failed", worker=worker, remote_traceback=tb
        )
        if isinstance(exc, BaseException):
            if hasattr(exc, "add_note"):  # Python 3.11+
                exc.add_note(f"remote traceback (worker {worker}):\n{tb}")
            exc.__cause__ = cause
            return exc
        return cause

    # -- worker lifecycle ----------------------------------------------------

    def _spawn_workers(self) -> None:
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            raise SchedulingError(
                "ProcessRuntime needs a fork-capable platform; use "
                "ThreadedRuntime instead"
            ) from None
        self._conns = [None] * self.workers  # type: ignore[list-item]
        self._procs = [None] * self.workers
        self._incarnation = [-1] * self.workers
        self._dormant = self.workers  # slots never forked
        # Worker 0 starts eagerly (every run uses at least one); the
        # remaining slots fork lazily, on the first dispatch that finds
        # no idle worker.  A run whose work the oversubscription guard
        # keeps consolidated (CPU-bound apps on a host with fewer cores
        # than workers) then never pays the spawn cost of workers it
        # would not benefit from.
        self._spawn_one(0)

    def _unspawned_slot(self) -> int | None:
        """Lowest worker slot that has never been forked, if any."""
        if not self._dormant:
            return None
        for slot in range(self.workers):
            if self._incarnation[slot] == -1:
                return slot
        return None

    def _spawn_one(self, slot: int) -> None:
        """(Re)start the worker in ``slot``.

        A respawned worker forks from *current* dispatcher state, so it
        inherits the dispatcher's present (already-grouped) graph
        outright; parameter reconfigurations broadcast earlier are
        replayed from the log because worker mirrors are built fresh
        from instance descriptors.
        Fork children exit via ``os._exit`` (multiprocessing bootstrap),
        so the dispatcher pool copy they inherit never runs finalizers —
        a respawn cannot unlink live shared segments.
        """
        parent, child = self._ctx.Pipe()
        if self._incarnation[slot] == -1:
            self._dormant -= 1
        incarnation = self._next_incarnation
        self._next_incarnation += 1
        proc = self._ctx.Process(
            target=_worker_entry,
            args=(child, self.program, self.registry, self.pg,
                  self.group_chains, slot, dict(self.host.overrides),
                  self.fuse, self.fuse_backend, self._program_base,
                  dict(self._slice_overrides), self._fuse_headroom),
            name=f"hinch-proc-worker-{slot}.{incarnation}",
            daemon=True,
        )
        proc.start()
        child.close()
        self._conns[slot] = parent
        self._procs[slot] = proc
        self._incarnation[slot] = incarnation
        self._live.add(slot)
        self._idle.add(slot)
        self._spawned_slots.add(slot)
        for manager, request in self._sent_reconfigs:
            self._send_to(slot, ("reconfigure", manager, request),
                          interned=False)

    def _record_fault(
        self,
        kind: str,
        slot: int,
        incarnation: int,
        job: Job | None,
        detail: str,
    ) -> None:
        self.fault_events.append(
            {
                "kind": kind,
                "worker": slot,
                "incarnation": incarnation,
                "job": (job.iteration, job.node_id) if job else None,
                "detail": detail,
            }
        )
        if self.tracer.enabled:
            now = time.perf_counter()
            self.tracer.record(
                TraceEvent(
                    node_id=job.node_id if job else "",
                    iteration=job.iteration if job else -1,
                    worker=slot,
                    start=now,
                    end=now,
                    kind=kind,
                )
            )

    def _worker_failed(
        self, slot: int, reason: str, *, watchdog: bool = False
    ) -> None:
        """Handle the loss of one worker: reclaim, retry, respawn/degrade.

        Idempotent per incarnation — EOF, sentinel and watchdog detection
        can all observe the same death.  Raises
        :class:`~repro.errors.WorkerFailure` when the in-flight job's
        retry budget is exhausted or no worker remains.
        """
        if slot not in self._live:
            return
        self._live.discard(slot)
        self._idle.discard(slot)
        incarnation = self._incarnation[slot]
        lease = self._busy.pop(slot, None)
        self._deadlines.pop(slot, None)
        # Planes leased mid-job — RPC-allocated or granted — die with the
        # worker: back to the free lists (their content is garbage, but
        # so is any recycled plane before its next write).
        for ref in self._leases.pop(slot, ()):
            self.pool.release(ref)
        for ref in self._granted.pop(slot, ()):
            self.pool.release(ref)
        # Any resident slot this worker held is gone; future leases must
        # ship those planes again from the dispatcher-held stream slots.
        for holders in self._resident.values():
            for workers in holders.values():
                workers.discard(slot)
        try:
            self._conns[slot].close()
        except Exception:
            pass
        proc = self._procs[slot]
        if proc is not None and proc.is_alive():
            proc.kill()  # SIGKILL: a wedged kernel may ignore SIGTERM
            proc.join(timeout=5)
        pending = (
            list(zip(lease.jobs, lease.speculative))[lease.done:]
            if lease is not None else []
        )
        head = pending[0][0] if pending else None
        self._record_fault(
            "watchdog_kill" if watchdog else "worker_failure",
            slot, incarnation, head, reason,
        )
        if pending:
            # Records acknowledged before the death are final (their
            # outputs, events and checkpoint deltas are applied exactly
            # once); only members from ``lease.done`` onward never ran.
            # Walk them back to front so push_front restores the
            # original FIFO order.  Speculative members never became
            # queue-visible — retracting them re-arms the normal
            # readiness path (the retried predecessors re-emit them on
            # completion) and charges them no retry attempt.
            for job, speculative in reversed(pending):
                if speculative:
                    # The retracted job may already be ready — its lease
                    # predecessors acknowledged before the death — in
                    # which case no future completion re-emits it and it
                    # must be requeued here, in its lease position.
                    for ready in self.scheduler.retract(job):
                        self.queue.push_front(ready)
                    continue
                key = (job.iteration, job.node_id)
                attempts = self._attempts.get(key, 0) + 1
                self._attempts[key] = attempts
                self._excluded.setdefault(key, set()).add(incarnation)
                if attempts > self.max_retries:
                    raise WorkerFailure(
                        f"job {job.node_id}@{job.iteration} lost its worker "
                        f"{attempts} time(s) (last: worker {slot}, "
                        f"{reason}); retry budget "
                        f"max_retries={self.max_retries} exhausted",
                        worker=slot,
                        job=key,
                    )
                self.scheduler.requeue(job)
                self.queue.push_front(job)
                self._record_fault("retry", slot, incarnation, job,
                                   f"attempt {attempts + 1}")
        if self.respawn:
            self._spawn_one(slot)
            self._respawns += 1
            self._record_fault("respawn", slot, self._incarnation[slot],
                               None, f"replacing incarnation {incarnation}")
        elif not self._live:
            fresh = self._unspawned_slot()
            if fresh is not None:
                # Not a respawn: this slot was budgeted but never forked
                # (lazy spawn).  Bringing it up preserves the configured
                # degraded capacity.
                self._spawn_one(fresh)
                self._record_fault("degrade", slot, incarnation, None,
                                   "1 worker(s) remain")
            else:
                raise WorkerFailure(
                    f"worker {slot} failed ({reason}) and no worker "
                    "remains (respawn disabled)",
                    worker=slot,
                    job=(head.iteration, head.node_id) if head else None,
                )
        else:
            self._record_fault("degrade", slot, incarnation, None,
                               f"{len(self._live)} worker(s) remain")

    # -- main loop helpers ---------------------------------------------------

    def _wait_timeout(self) -> float | None:
        """Timeout for the dispatcher's connection wait.

        ``None`` — block indefinitely — whenever no watchdog deadline is
        armed: worker death wakes the wait through the process sentinel,
        so a periodic heartbeat poll would be pure idle spinning.  With a
        deadline armed, wake exactly when the earliest one expires.
        """
        deadline = min(self._deadlines.values(), default=None)
        if deadline is None:
            return None
        return max(0.0, deadline - time.perf_counter())

    def _service_conn(self, slot: int) -> None:
        """Drain every buffered message from one worker's pipe.

        EOF/pipe errors route to the failure path; messages from a slot
        that stopped being live mid-drain are never processed.
        """
        conn = self._conns[slot]
        incarnation = self._incarnation[slot]
        try:
            while (
                slot in self._live
                and self._incarnation[slot] == incarnation
                and conn.poll()
            ):
                self._on_message(slot, self._recv_from(slot))
        except (EOFError, OSError):
            # Only condemn the incarnation this pipe belongs to — the
            # slot may already hold its respawned (innocent) successor.
            if slot in self._live and self._incarnation[slot] == incarnation:
                self._worker_failed(slot, "worker exited unexpectedly (EOF)")

    def _service_ready(self, ready: list[Any]) -> None:
        conn_slots = {id(self._conns[s]): s for s in self._live}
        sentinel_slots = {
            self._procs[s].sentinel: s
            for s in self._live
            if self._procs[s] is not None
        }
        for obj in ready:
            slot = conn_slots.get(id(obj))
            if slot is not None:
                self._service_conn(slot)
                continue
            slot = sentinel_slots.get(obj)
            if slot is not None and slot in self._live:
                # Process exited: drain any last buffered messages (a
                # completed job racing the death must win), then declare
                # the failure if the slot is still live.
                self._service_conn(slot)
                if slot in self._live and not self._procs[slot].is_alive():
                    self._worker_failed(slot, "process died")

    def _check_liveness(self) -> None:
        for slot in sorted(self._live):
            proc = self._procs[slot]
            if proc is not None and not proc.is_alive():
                self._service_conn(slot)
                if slot in self._live:
                    self._worker_failed(slot, "process died")

    def _check_watchdog(self) -> None:
        if self.watchdog is None:
            return
        now = time.perf_counter()
        for slot in [s for s, dl in list(self._deadlines.items())
                     if dl <= now]:
            if slot not in self._live:
                self._deadlines.pop(slot, None)
                continue
            # The job may have completed while we slept — drain first,
            # and only kill if the same deadline is still in force.
            self._service_conn(slot)
            if slot not in self._live or slot not in self._busy:
                continue
            deadline = self._deadlines.get(slot)
            if deadline is None or deadline > now:
                continue
            lease = self._busy[slot]
            current = lease.jobs[lease.done]
            desc = f"{current.node_id}@{current.iteration}"
            remaining = len(lease.jobs) - lease.done - 1
            if remaining:
                desc += f" (+{remaining} batched)"
            self._worker_failed(
                slot,
                f"watchdog: {desc} exceeded {self.watchdog:.3g}s",
                watchdog=True,
            )

    # -- shutdown ------------------------------------------------------------

    def _shutdown(self, *, graceful: bool) -> None:
        deferred: BaseException | None = None
        if graceful:
            for slot in sorted(self._live):
                try:
                    self._send_to(slot, ("stop",), interned=False)
                except Exception:
                    pass
            for slot in sorted(self._live):
                try:
                    while True:
                        msg = self._recv_from(slot)
                        tag = msg[0]
                        if tag == "bye":
                            _, snapshots, stats = msg
                            for instance_id, state in snapshots.items():
                                component = self.host.live.get(instance_id)
                                if component is not None:
                                    component.merge_state(state)
                            for key in _WORKER_STAT_KEYS:
                                self._worker_pool_stats[key] += stats[key]
                            break
                        if tag == "error":
                            # A worker failing *during* stop (e.g. in
                            # snapshot_state) must surface, not vanish
                            # into the drain; finish cleanup, then raise.
                            error = self._worker_error(slot, msg[1], msg[2])
                            if deferred is None:
                                deferred = error
                            break
                        # Anything else is a stale in-flight message (an
                        # rpc whose reply the worker no longer needs);
                        # drained without effect.
                except (EOFError, OSError):
                    pass
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.close()
            except Exception:
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        self._conns = []
        self._procs = []
        self._live.clear()
        self._idle.clear()
        self.pool.close()
        if deferred is not None:
            raise deferred

    # -- run -----------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute to completion; returns statistics and live components."""
        start_time = time.perf_counter()
        self._spawn_workers()
        failed = False
        try:
            initial = self.scheduler.start()
            self.queue.push_all(initial)
            if self.scheduler.done:
                self.queue.drain()
            self._pump()
            while self._busy or not self.scheduler.done:
                objects: list[Any] = [self._conns[s] for s in sorted(self._live)]
                objects.extend(
                    self._procs[s].sentinel
                    for s in sorted(self._live)
                    if self._procs[s] is not None
                )
                if not objects:
                    raise SchedulingError(
                        "no live workers but work remains — degraded to zero"
                    )  # pragma: no cover - _worker_failed raises first
                ready = wait(objects, timeout=self._wait_timeout())
                if ready:
                    self._service_ready(list(ready))
                else:
                    self._check_liveness()
                self._check_watchdog()
                self._pump()
        except BaseException:
            failed = True
            raise
        finally:
            self._shutdown(graceful=not failed)
        elapsed = time.perf_counter() - start_time
        if self._controller is not None and self._win_iters:
            # Decisions applied too close to the end never saw a full
            # window; the partial tail still yields an achieved number.
            tail_fps = self._win_iters / max(
                time.perf_counter() - self._win_start, 1e-9
            )
            for event in self.autotune_events:
                if event["achieved_fps"] is None:
                    event["achieved_fps"] = round(tail_fps, 4)
                    base = event["baseline_fps"]
                    event["achieved_ratio"] = (
                        round(tail_fps / base, 4) if base else None
                    )
        if self.fault_injector is not None:
            # Unfired directives are a run-summary fact, not a silent
            # no-op: a spec aimed past the last dispatched job would
            # otherwise look like a fault that was survived.
            for spec in self.fault_injector.remaining:
                self.fault_events.append(
                    {
                        "kind": "unfired",
                        "worker": None,
                        "detail": (
                            f"injected fault {spec.describe()} never fired "
                            "(run dispatched fewer jobs)"
                        ),
                    }
                )
        stream_stats = {
            name: self.streams.stream(name).stats for name in self.streams.names
        }
        pool_stats = self.pool.stats.as_dict()
        for key in _WORKER_STAT_KEYS:
            pool_stats[key] += self._worker_pool_stats[key]
        return RunResult(
            completed_iterations=self.scheduler.completed_iterations,
            elapsed_seconds=elapsed,
            reconfig_count=self.scheduler.reconfig_count,
            trace=self.tracer,
            components=dict(self.host.live),
            stream_stats=stream_stats,
            events_handled=sum(m.events_handled for m in self.managers.values()),
            events_ignored=sum(m.events_ignored for m in self.managers.values()),
            pool_stats=pool_stats,
            fault_events=list(self.fault_events),
            workers_spawned=len(self._spawned_slots),
            autotune_events=list(self.autotune_events),
        )
