"""Elastic auto-tuning: the online controller (ROADMAP item 3).

The paper's reconfiguration splicing gives the runtime safe points where
the network is quiescent and may change shape.  PRs 3-7 used them for
option toggles and fusion recompilation; this module closes the loop the
cost model opens: a controller that *observes* each window of completed
iterations (per-worker busy time, per-node busy time, CPU/stall
classification, queue pressure) and *decides* — at the next splice —
whether to resize the worker pool, retune the lease depth, or re-slice
a data-parallel group, in the spirit of C-Stream's elastic split/merge
and AstraKahn's demand-driven regulation.

The controller here is deliberately pure: it never reads a clock, never
touches the runtime, and is driven entirely by :class:`Observation`
values handed to :meth:`AutotuneController.observe`.  That makes every
decision unit-testable against canned traces (tests feed synthetic
windows and assert the exact decision sequence), and makes the runtime
integration a thin translation layer in ``process.py``.

Stability comes from hysteresis: a proposal must repeat for
``hysteresis`` consecutive windows before it is emitted, and each
emitted decision is followed by a one-window cooldown so its effect is
measured before the next move.  A noisy trace whose proposals flip-flop
therefore never reaches the emission threshold — the no-oscillation
property the tests pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "AutotuneConfig",
    "Observation",
    "Decision",
    "AutotuneController",
]

#: mean job wall time below which a window counts as dispatch-bound
DISPATCH_BOUND_S = 0.002
#: mean job wall time above which batching buys nothing (jobs dominate)
LONG_JOB_S = 0.05


@dataclass(frozen=True)
class AutotuneConfig:
    """Static policy for one run of the controller."""

    #: ``throughput`` maximises f/s; ``deadline`` treats ``deadline_ms``
    #: as the per-frame budget and prefers the cheapest configuration
    #: that meets it (shrinking when met, growing only when missed).
    objective: str = "throughput"
    deadline_ms: float | None = None
    #: iterations per observation window
    window: int = 4
    #: consecutive agreeing windows before a decision is emitted
    hysteresis: int = 2
    min_workers: int = 1
    max_workers: int = 4
    #: physical cores on the host — the ceiling past which CPU-bound
    #: work cannot speed up (blocking work still can)
    cores: int = 1
    min_batch: int = 1
    max_batch: int = 16
    #: valid replication totals per re-sliceable group (validated by the
    #: runtime against the format solver before the run starts)
    slice_candidates: Mapping[str, tuple[int, ...]] = field(
        default_factory=dict
    )
    #: head-room kept when shrinking the pool: the target is
    #: ``ceil(measured_parallelism * (1 + margin))``
    margin: float = 0.25


@dataclass(frozen=True)
class Observation:
    """Measured facts about one window of completed iterations."""

    window: int
    #: wall seconds spanned by the window
    wall: float
    iterations: int
    #: task jobs completed in the window
    jobs: int
    #: busy seconds per live worker id
    worker_busy: Mapping[int, float]
    #: busy seconds per *definition* id (slice copies aggregated)
    node_busy: Mapping[str, float]
    #: definition ids measured CPU-bound (cpu >= 0.5 * wall)
    cpu_bound: frozenset[str]
    #: deepest the job queue got during the window
    queue_high_water: int
    #: pool capacity (``--workers``) at observation time
    workers: int
    #: workers actually forked (lazy spawn may hold some dormant)
    live_workers: int
    batch: int
    #: current replication total per re-sliceable group
    slice_totals: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Degenerate windows are legal — a window can close with zero
        # completed iterations, zero jobs, or zero forked workers (lazy
        # spawn) — but the measurements themselves must be finite and
        # non-negative, or every downstream ratio the controller and the
        # bench derive from them would silently go NaN.
        if not math.isfinite(self.wall) or self.wall < 0:
            raise ValueError(
                f"observation window {self.window}: wall must be finite "
                f"and >= 0, got {self.wall!r}"
            )
        for name in ("iterations", "jobs", "workers", "live_workers",
                     "batch"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(
                    f"observation window {self.window}: {name} must be "
                    f">= 0, got {value}"
                )
        for worker, busy in self.worker_busy.items():
            if not math.isfinite(busy) or busy < 0:
                raise ValueError(
                    f"observation window {self.window}: busy time of "
                    f"worker {worker} must be finite and >= 0, got {busy!r}"
                )
        for node, busy in self.node_busy.items():
            if not math.isfinite(busy) or busy < 0:
                raise ValueError(
                    f"observation window {self.window}: busy time of "
                    f"node {node!r} must be finite and >= 0, got {busy!r}"
                )


@dataclass(frozen=True)
class Decision:
    """One emitted reconfiguration decision."""

    kind: str  # grow_workers|shrink_workers|set_batch|widen_slices|narrow_slices
    window: int
    reason: str
    workers: int | None = None
    batch: int | None = None
    slices: Mapping[str, int] | None = None
    #: predicted throughput multiplier of applying this decision
    predicted_ratio: float = 1.0


class AutotuneController:
    """Pure decision engine; one instance per run.

    ``seed_intervals`` (optional) maps candidate worker counts to the
    cost model's predicted initiation intervals
    (:func:`repro.prediction.seed_plan`); when present, worker-count
    decisions carry a model-derived ``predicted_ratio`` instead of the
    neutral 1.0.
    """

    def __init__(
        self,
        config: AutotuneConfig,
        seed_intervals: Mapping[int, float] | None = None,
    ) -> None:
        self.config = config
        self.seed_intervals = dict(seed_intervals or {})
        #: (kind, frozen target) of the currently-repeating proposal
        self._pending: tuple[str, object] | None = None
        self._pending_count = 0
        self._pending_decision: Decision | None = None
        #: windows to skip after an emitted decision settles
        self._cooldown = 0

    # -- prediction helpers --------------------------------------------------

    def _worker_ratio(self, old: int, new: int) -> float:
        """Model-predicted throughput of ``new`` workers vs ``old``."""
        before = self.seed_intervals.get(old)
        after = self.seed_intervals.get(new)
        if before and after:
            return before / after
        return 1.0

    # -- proposal generation -------------------------------------------------

    def _proposals(self, obs: Observation) -> list[Decision]:
        """Candidate decisions for one window, priority order."""
        cfg = self.config
        out: list[Decision] = []
        busy = sum(obs.worker_busy.values())
        parallelism = busy / obs.wall if obs.wall > 0 else 0.0
        avg_job = busy / obs.jobs if obs.jobs else 0.0
        frame_ms = (
            obs.wall / obs.iterations * 1000.0 if obs.iterations else 0.0
        )
        meeting_deadline = (
            cfg.objective == "deadline"
            and cfg.deadline_ms is not None
            and frame_ms <= cfg.deadline_ms
        )
        missing_deadline = (
            cfg.objective == "deadline"
            and cfg.deadline_ms is not None
            and frame_ms > cfg.deadline_ms
        )
        bottleneck = max(
            obs.node_busy, key=lambda d: obs.node_busy[d], default=None
        )

        # 1. batch retune: dispatch-bound windows amortize pipe writes by
        #    doubling the lease depth; long-job windows drop to 1 so the
        #    scheduler regains per-job placement freedom.
        if obs.jobs:
            if avg_job < DISPATCH_BOUND_S and obs.batch < cfg.max_batch:
                target = min(cfg.max_batch, obs.batch * 2)
                out.append(Decision(
                    kind="set_batch", window=obs.window, batch=target,
                    reason=(
                        f"dispatch-bound: mean job {avg_job * 1e3:.2f}ms, "
                        f"batch {obs.batch} -> {target}"
                    ),
                    predicted_ratio=1.0 + 0.25 * (1.0 - obs.batch / target),
                ))
            elif avg_job > LONG_JOB_S and obs.batch > cfg.min_batch:
                out.append(Decision(
                    kind="set_batch", window=obs.window,
                    batch=cfg.min_batch,
                    reason=(
                        f"job-bound: mean job {avg_job * 1e3:.1f}ms, "
                        f"batch {obs.batch} -> {cfg.min_batch}"
                    ),
                ))

        # 2. shrink the pool: measured parallelism (plus margin) below
        #    capacity means workers sit idle — decommission them.
        #    Suppressed when a deadline is being *missed* (shrinking
        #    cannot help meet it).
        needed = max(cfg.min_workers, math.ceil(
            parallelism * (1.0 + cfg.margin)
        ))
        if needed < obs.workers and not missing_deadline:
            out.append(Decision(
                kind="shrink_workers", window=obs.window, workers=needed,
                reason=(
                    f"parallelism {parallelism:.2f} needs {needed} "
                    f"worker(s), pool is {obs.workers}"
                ),
                predicted_ratio=self._worker_ratio(obs.workers, needed),
            ))

        # 3. narrow a sliced group: when its jobs are dispatch-sized the
        #    per-job overhead dominates the kernel — merge copies
        #    (C-Stream's merge) down to the next smaller valid total.
        for group, totals in sorted(cfg.slice_candidates.items()):
            current = obs.slice_totals.get(group)
            if current is None or obs.jobs == 0:
                continue
            smaller = [t for t in totals if t < current]
            group_busy = obs.node_busy.get(group, 0.0)
            per_copy = group_busy / current if current else 0.0
            if smaller and 0 < per_copy < DISPATCH_BOUND_S:
                target = max(smaller)
                out.append(Decision(
                    kind="narrow_slices", window=obs.window,
                    slices={group: target},
                    reason=(
                        f"{group}: {per_copy * 1e3:.2f}ms per copy at "
                        f"{current} copies, merging to {target}"
                    ),
                ))
                break  # one group per window keeps splices cheap

        # 4. grow the pool: sustained queue pressure with every live
        #    worker saturated.  Growing past the physical cores only
        #    helps when the bottleneck is *not* CPU-bound (blocking
        #    kernels overlap; spinning ones cannot).  Suppressed once a
        #    deadline objective is already met.
        saturated = (
            obs.live_workers > 0
            and parallelism >= 0.8 * obs.live_workers
        )
        pressured = obs.queue_high_water > 2 * max(1, obs.live_workers) \
            * obs.batch
        if (
            saturated and pressured and obs.workers < cfg.max_workers
            and not meeting_deadline
        ):
            target = min(cfg.max_workers, obs.workers + 1)
            cpu_limited = (
                target > cfg.cores
                and bottleneck is not None
                and bottleneck in obs.cpu_bound
            )
            if not cpu_limited:
                out.append(Decision(
                    kind="grow_workers", window=obs.window, workers=target,
                    reason=(
                        f"saturated at {obs.live_workers} live "
                        f"(parallelism {parallelism:.2f}), queue high-water "
                        f"{obs.queue_high_water}"
                    ),
                    predicted_ratio=self._worker_ratio(obs.workers, target),
                ))

        # 5. widen a sliced group: the dominant stage has fewer copies
        #    than the parallelism available to it (C-Stream's split).
        if bottleneck is not None and obs.wall > 0 and not meeting_deadline:
            share = obs.node_busy[bottleneck] / (obs.wall * max(
                1, obs.live_workers))
            totals = cfg.slice_candidates.get(bottleneck, ())
            current = obs.slice_totals.get(bottleneck)
            if share > 0.5 and totals and current is not None:
                usable = (
                    min(obs.workers, cfg.cores)
                    if bottleneck in obs.cpu_bound else obs.workers
                )
                larger = [t for t in totals if current < t <= usable]
                if larger:
                    target = min(larger)
                    out.append(Decision(
                        kind="widen_slices", window=obs.window,
                        slices={bottleneck: target},
                        reason=(
                            f"{bottleneck} dominates ({share:.0%} of window) "
                            f"at {current} copies, splitting to {target}"
                        ),
                        predicted_ratio=min(
                            target / current, usable / current
                        ),
                    ))

        return out

    # -- the observe/decide step ---------------------------------------------

    def observe(self, obs: Observation) -> Decision | None:
        """Feed one window; returns a decision once hysteresis is met."""
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        proposals = self._proposals(obs)
        if not proposals:
            self._pending = None
            self._pending_count = 0
            self._pending_decision = None
            return None
        decision = proposals[0]
        key: tuple[str, object] = (decision.kind, (
            decision.workers,
            decision.batch,
            tuple(sorted((decision.slices or {}).items())),
        ))
        if key == self._pending:
            self._pending_count += 1
        else:
            self._pending = key
            self._pending_count = 1
        self._pending_decision = decision
        if self._pending_count >= self.config.hysteresis:
            self._pending = None
            self._pending_count = 0
            self._pending_decision = None
            self._cooldown = 1
            return decision
        return None
