"""Hinch — the run time system underneath XSPCL.

Hinch (Nijhuis et al., Euro-Par '06) "provides automatic load balancing
using a central job queue.  It runs the application in a data flow style
by putting a job in this queue for each component that is ready to be
run.  Furthermore, Hinch provides generic functions for streaming and
event communication."

This package reproduces those responsibilities:

* :mod:`repro.hinch.stream` — streaming communication (whole-frame slots
  per iteration, shared by data-parallel copies);
* :mod:`repro.hinch.events` — asynchronous event queues;
* :mod:`repro.hinch.component` — the component base class, its
  reconfiguration interface, and the per-job context API;
* :mod:`repro.hinch.jobqueue` — the central job queue;
* :mod:`repro.hinch.scheduler` — backend-agnostic dataflow state machine:
  per-iteration dependency counting, pipeline parallelism across
  iterations, manager-driven reconfiguration (halt, drain, splice,
  resume);
* :mod:`repro.hinch.runtime` — the threaded runtime that executes
  components for real (correctness backend; the SpaceCAKE simulator in
  :mod:`repro.spacecake` is the performance backend and reuses the same
  scheduler).
"""

from repro.hinch.events import Event, EventBroker, EventQueue, EventStormWarning
from repro.hinch.faults import FaultInjector, FaultSpec, parse_faults
from repro.hinch.stream import Stream, StreamStore
from repro.hinch.component import Component, JobContext
from repro.hinch.jobqueue import Job, JobQueue
from repro.hinch.scheduler import DataflowScheduler, ReconfigPlan, SchedulerHooks
from repro.hinch.runtime import RunResult, ThreadedRuntime
from repro.hinch.process import ProcessRuntime
from repro.hinch.shm import Packed, PlaneRef, SharedPlanePool
from repro.hinch.grouping import group_linear_chains
from repro.hinch.tracing import TraceEvent, Tracer

__all__ = [
    "Event",
    "EventQueue",
    "EventBroker",
    "EventStormWarning",
    "FaultSpec",
    "FaultInjector",
    "parse_faults",
    "Stream",
    "StreamStore",
    "Component",
    "JobContext",
    "Job",
    "JobQueue",
    "DataflowScheduler",
    "SchedulerHooks",
    "ReconfigPlan",
    "ThreadedRuntime",
    "ProcessRuntime",
    "RunResult",
    "SharedPlanePool",
    "Packed",
    "PlaneRef",
    "group_linear_chains",
    "TraceEvent",
    "Tracer",
]
