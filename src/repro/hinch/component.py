"""Component base class and the per-job context API.

Components "implement the basic functionality of the application" and
interact with the world exclusively through:

* their stream ports (``job.read`` / ``job.write`` / ``job.buffer``),
* events (``job.post_event``),
* the reconfiguration interface (:meth:`Component.reconfigure`), which
  also delivers the slice assignment in data-parallel mode.

A component never learns which other components its streams connect to —
the abstraction requirement of paper §2.3.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.ports import PortSpec
from repro.core.program import ComponentInstance
from repro.errors import ComponentError
from repro.hinch.events import Event, EventBroker
from repro.hinch.stream import StreamStore

__all__ = ["Component", "JobContext"]


class Component:
    """Base class for all component implementations.

    Subclasses override :meth:`run` (mandatory) and optionally
    :meth:`setup`, :meth:`reconfigure`, :meth:`teardown`.  The constructor
    signature is fixed: the runtime instantiates components as
    ``cls(instance)``.

    Class attribute ``ports`` declares the component class's i/o ports
    and parameter schema; the registry publishes it to the validator.
    """

    ports: PortSpec = PortSpec()

    #: When True, the SpaceCAKE simulator executes this component even in
    #: cost-only mode (no functional data).  Set it on lightweight control
    #: components (event timers) whose *behaviour* — not data — drives the
    #: experiment; such components must tolerate streams carrying nothing.
    always_execute: bool = False

    @classmethod
    def writes_rows(
        cls, instance: ComponentInstance, port: str, height: int
    ) -> tuple[int, int] | None:
        """Row span ``[lo, hi)`` this copy writes on output ``port``.

        The chain-fusion compiler (:mod:`repro.hinch.fusion`) uses this
        access contract to prove that a sliced consumer only reads rows
        its paired producer copy wrote, so the intermediate plane can
        stay a worker-local temporary.  Unsliced copies write the whole
        plane; sliced copies default to ``None`` (unknown), which makes
        fusion refuse — override for components with a provable span.
        """
        if instance.slice is None:
            return (0, height)
        return None

    @classmethod
    def reads_rows(
        cls, instance: ComponentInstance, port: str, height: int
    ) -> tuple[int, int] | None:
        """Row span ``[lo, hi)`` this copy reads on input ``port``.

        Counterpart of :meth:`writes_rows`; same ``None`` = unknown
        semantics.  ``height`` is the full plane height of the stream
        bound to ``port`` (from the reconciled X5xx format solution).
        """
        if instance.slice is None:
            return (0, height)
        return None

    @classmethod
    def compile_fused(cls, instance: ComponentInstance, backend: str):
        """Optional compiled replacement for :meth:`run` inside a fused chain.

        The fusion compiler calls this per member when building a
        :class:`~repro.hinch.fusion.FusedChain` with a non-default
        backend (``--fuse-backend numba``).  Return a callable
        ``(component, job) -> None`` to substitute for ``run``, or
        ``None`` (the default) to keep the interpreted numpy kernel —
        the automatic-fallback contract: a missing dependency or an
        uncompilable kernel must yield ``None``, never raise.
        """
        return None

    @classmethod
    def compile_fused_pair(
        cls,
        upstream_cls: type["Component"],
        upstream: ComponentInstance,
        instance: ComponentInstance,
        backend: str,
    ):
        """Optional combined kernel replacing ``upstream.run`` + ``run``.

        Called on the *downstream* class when two adjacent members of a
        fused chain are connected only through chain-internal streams —
        the combined kernel may then skip materializing the intermediate
        entirely, including provably-lossless detours (the mini-JPEG
        Huffman round-trip between ``mjpeg_source`` and ``jpeg_decode``).
        Return a callable ``(upstream_component, component,
        upstream_job, job) -> None`` whose observable effects (stream
        writes, events, state) are bit-identical to running both members
        in order, or ``None`` (the default).  Same no-raise fallback
        contract as :meth:`compile_fused`.
        """
        return None

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> Any | None:
        """Intrinsic cost of one job (a ``spacecake.costmodel.JobCost``).

        Return ``None`` (the default) to use the simulator's fallback
        cost.  Implementations derive cycles and per-port byte counts
        from the instance's parameters and slice assignment.
        """
        return None

    @classmethod
    def slice_elastic(cls) -> bool:
        """May the auto-tuner change this component's slice count?

        Re-sharding a data-parallel group redistributes which rows each
        copy owns, so it is only safe when the copies hold no state
        partitioned by the old assignment.  The default says yes exactly
        for stateless classes — those that override none of the state
        hooks — because their output is a pure function of the inputs
        and the (new) slice.  Partitioned-stateful components whose
        state is keyed by content rather than by copy identity may
        override this to opt in.
        """
        return (
            cls.snapshot_state is Component.snapshot_state
            and cls.merge_state is Component.merge_state
            and cls.checkpoint_state is Component.checkpoint_state
        )

    def __init__(self, instance: ComponentInstance) -> None:
        self.instance = instance
        self.params = dict(instance.params)
        #: (index, n) when running in data-parallel mode, else None.  Set
        #: from the instance descriptor — the runtime additionally calls
        #: reconfigure() with a "slice=i/n" request, mirroring the paper's
        #: use of the reconfiguration interface for slice assignment.
        self.slice = instance.slice

    # -- lifecycle ------------------------------------------------------------

    def setup(self) -> None:
        """Called once after construction, before the first run."""

    def run(self, job: "JobContext") -> None:
        """Execute one iteration's worth of work."""
        raise NotImplementedError

    def reconfigure(self, request: str) -> None:
        """Reconfiguration interface (paper §3.1).

        Default: parse ``key=value`` into ``self.params``; ``slice=i/n``
        updates the slice assignment.  Subclasses may override for richer
        behaviour (e.g. the picture-in-picture blender moving the blended
        picture).
        """
        for part in request.split(";"):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ComponentError(
                    f"component {self.instance.instance_id!r}: malformed "
                    f"reconfiguration request {part!r}"
                )
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "slice":
                index_s, _, n_s = value.partition("/")
                self.slice = (int(index_s), int(n_s))
            else:
                self.params[key] = value

    def teardown(self) -> None:
        """Called when the component is destroyed (option disabled)."""

    # -- distributed state ----------------------------------------------------

    def snapshot_state(self) -> Any | None:
        """Observable run state to ship back to the dispatcher.

        On the process backend each worker holds its own mirror of a
        component, so state accumulated by ``run`` (collected frames,
        counters) is sharded across processes.  At shutdown the runtime
        snapshots every worker mirror and folds the pieces into the
        dispatcher's instance via :meth:`merge_state`.  Return ``None``
        (the default) for components with no observable state; the
        snapshot must be picklable.
        """
        return None

    def merge_state(self, state: Any) -> None:
        """Fold one worker mirror's :meth:`snapshot_state` into this copy."""

    def checkpoint_state(self) -> Any | None:
        """Hand off the state accrued since the previous checkpoint.

        The process backend calls this on each worker mirror right after
        every completed job and ships the returned delta with the
        completion message; the dispatcher folds it into its own mirror
        via :meth:`merge_state` immediately.  State is thus acknowledged
        job-by-job instead of only at shutdown — a worker crash can lose
        at most the unacknowledged job, which the dispatcher retries
        anyway, so collected output survives worker failure bit-for-bit.

        Implementations must *move* the state out (snapshot-and-reset),
        or the residual :meth:`snapshot_state` at shutdown would merge it
        twice.  Return ``None`` (the default) when nothing accrued; the
        delta must be picklable.
        """
        return None

    # -- helpers -----------------------------------------------------------------

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)

    def require_param(self, name: str) -> Any:
        try:
            return self.params[name]
        except KeyError:
            raise ComponentError(
                f"component {self.instance.instance_id!r} requires param "
                f"{name!r}"
            ) from None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.instance.instance_id!r})"


class JobContext:
    """Everything one job execution may touch.

    Bound to (component instance, iteration).  Port-to-stream resolution
    goes through the *current configuration's* alias map so bypassed
    streams are transparent to the component.
    """

    def __init__(
        self,
        instance: ComponentInstance,
        iteration: int,
        streams: StreamStore,
        broker: EventBroker,
        aliases: dict[str, str],
        *,
        stop_requester: Callable[[], None] | None = None,
    ) -> None:
        self.instance = instance
        self.iteration = iteration
        self._streams = streams
        self._broker = broker
        self._aliases = aliases
        self._stop_requester = stop_requester
        #: bytes moved, filled by read/write for cost accounting
        self.bytes_read = 0
        self.bytes_written = 0

    # -- stream access ---------------------------------------------------------

    def _resolve(self, port: str) -> str:
        try:
            raw = self.instance.streams[port]
        except KeyError:
            raise ComponentError(
                f"component {self.instance.instance_id!r} has no port "
                f"{port!r} bound (bound: {sorted(self.instance.streams)})"
            ) from None
        return self._aliases.get(raw, raw)

    def read(self, port: str) -> Any:
        """Read this iteration's value from an input port."""
        value = self._streams.stream(self._resolve(port)).get(self.iteration)
        self.bytes_read += _nbytes(value)
        return value

    def write(self, port: str, value: Any) -> None:
        """Write this iteration's value to an output port (whole value)."""
        self._streams.stream(self._resolve(port)).put(
            self.iteration, value, writer=self.instance.instance_id
        )
        self.bytes_written += _nbytes(value)

    def buffer(
        self,
        port: str,
        factory: Callable[[], Any] | None = None,
        *,
        shape: tuple[int, ...] | None = None,
        dtype: Any = None,
    ) -> Any:
        """Get the shared output buffer for a sliced writer.

        The first copy to arrive allocates; every copy then fills its own
        region in place.  Prefer ``shape``/``dtype`` over ``factory`` —
        a declared geometry lets the runtime recycle the buffer from its
        plane pool (and, on the process backend, place it directly in
        shared memory so slice copies on different cores write the same
        plane).
        """
        buf = self._streams.stream(self._resolve(port)).ensure_buffer(
            self.iteration, factory, shape=shape, dtype=dtype,
            writer=self.instance.instance_id,
        )
        return buf

    def note_written(self, nbytes: int) -> None:
        """Record bytes written through a :meth:`buffer` (cost accounting)."""
        self.bytes_written += nbytes

    # -- events -------------------------------------------------------------------

    def post_event(self, queue: str, name: str, payload: Any = None) -> None:
        self._broker.post(
            queue, Event(name=name, payload=payload,
                         source=self.instance.instance_id)
        )

    # -- control --------------------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the runtime to stop admitting iterations (e.g. end of input)."""
        if self._stop_requester is not None:
            self._stop_requester()


def _nbytes(value: Any) -> int:
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    return 0
