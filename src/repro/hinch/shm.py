"""Recycled plane buffers and zero-copy frame transport.

The paper bounds stream memory to one slot per in-flight iteration
(``pipeline_depth`` of them); this module gives that bound a concrete
allocator.  A :class:`SharedPlanePool` owns fixed-size *planes* —
flat byte buffers sized for a frame plane — recycled through free lists
keyed by byte size.  Because stream slots are released every completed
iteration, the pool's working set converges to
``streams x pipeline_depth`` planes and then stops allocating entirely.

Two backing modes:

* ``shared=True`` — each plane is a :class:`multiprocessing.shared_memory`
  segment, mappable by name from any process.  This is the transport of
  :class:`~repro.hinch.process.ProcessRuntime`: workers write pixel rows
  straight into the mapped plane and only a tiny :class:`PlaneRef`
  descriptor ever crosses the control pipe.
* ``shared=False`` — planes are ordinary ``bytearray`` buffers.  The
  threaded runtime uses this mode purely for recycling, killing the
  per-iteration ``np.empty`` allocation of sliced writers.

Cross-process values that are not bare planes (JPEG bitstreams,
coefficient blocks, whole ``Frame`` objects) travel as :class:`Packed`
messages built with pickle protocol 5: every contiguous numpy array is
exported *out of band* into a pool plane, so the pickled metadata stays
a few hundred bytes no matter the frame size — pixel data is never
serialized on the stream hot path.  The pool counts both flows
(:attr:`SharedPlanePool.stats`), which is what the serialization tests
assert on.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.errors import StreamError

__all__ = [
    "PlaneRef",
    "Packed",
    "SharedPlanePool",
    "PoolStats",
    "NameInterner",
]


@dataclass(frozen=True, slots=True)
class PlaneRef:
    """Descriptor of one pool plane: everything a process needs to map it.

    ``segment`` is the shared-memory name (``shared=True``) or the pool's
    local buffer id (``shared=False``); ``nbytes`` is the payload size —
    the backing segment may be larger (size-bucketed recycling).
    """

    segment: str
    nbytes: int
    shape: tuple[int, ...] = ()
    dtype: str = "uint8"


@dataclass(frozen=True, slots=True)
class Packed:
    """A stream value in transportable form.

    ``kind`` is ``"plane"`` (a bare ndarray living in ``refs[0]``) or
    ``"pickle5"`` (``meta`` holds the protocol-5 scaffolding whose
    out-of-band buffers live in ``refs``, in pickling order).
    """

    kind: str
    refs: tuple[PlaneRef, ...]
    meta: bytes = b""
    nbytes: int = 0


@dataclass
class PoolStats:
    """Allocation and serialization accounting (tests assert on these)."""

    planes_created: int = 0
    acquires: int = 0
    recycled: int = 0
    released: int = 0
    #: bytes of pickled metadata: :meth:`SharedPlanePool.pack` scaffolding
    #: plus every control-pipe message this side serialized (leases, done
    #: records, RPCs).  Planes and out-of-band arrays bypass pickle, and
    #: :class:`NameInterner` shrinks the repeated stream/node name strings
    #: — this counter is where that reduction shows up.
    meta_pickled_bytes: int = 0
    #: bytes moved out-of-band into planes by pack() (memcpy, not pickle)
    oob_bytes: int = 0
    #: ndarray values packed without any pickling at all
    plane_packs: int = 0
    pickle_packs: int = 0
    #: free-list planes handed out as dispatch-time grants
    #: (:meth:`SharedPlanePool.try_acquire_free`) — a grant consumed by a
    #: worker replaces one alloc RPC round-trip on the control pipe
    granted: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class _InternPickler(pickle.Pickler):
    """Protocol-5 pickler replacing table strings with small int codes."""

    def __init__(self, file: io.BytesIO, codes: dict[str, int]) -> None:
        super().__init__(file, protocol=5)
        self._codes = codes

    def persistent_id(self, obj: Any) -> int | None:
        # Exact-type check: str subclasses may carry state a code loses.
        if type(obj) is str:
            return self._codes.get(obj)
        return None


class _InternUnpickler(pickle.Unpickler):
    def __init__(self, file: io.BytesIO, table: list[str]) -> None:
        super().__init__(file)
        self._table = table

    def persistent_load(self, pid: Any) -> str:
        return self._table[pid]


class NameInterner:
    """String interning for control-pipe pickles.

    Lease entries and done records repeat the same node ids and resolved
    stream names every iteration — on JPiP that is tens of kilobytes of
    identical strings per run.  Both pipe ends derive the *same* table
    from the current program graph (:meth:`names_of` is deterministic:
    sorted node ids, member instance ids, stream names and aliases), so a
    table string pickles as a 2–3 byte persistent-id code instead of its
    UTF-8 bytes plus framing.

    The table is rebuilt from the new graph on both sides of a
    reconfiguration splice.  Splices happen at quiescence over FIFO pipes
    — no steady-state message is ever in flight across a table swap — and
    the splice/control messages themselves are encoded *without*
    interning (an empty-table interner decodes them on any side).
    """

    def __init__(self, names: Iterable[str] = ()) -> None:
        self.set_table(names)

    def set_table(self, names: Iterable[str]) -> None:
        table = sorted(set(names))
        self._table = table
        self._codes = {name: code for code, name in enumerate(table)}

    @property
    def table(self) -> list[str]:
        return list(self._table)

    @staticmethod
    def names_of(pg: Any) -> list[str]:
        """Deterministic intern table for a program graph (both pipe ends)."""
        names: set[str] = set()
        for node in pg.graph:
            names.add(node.node_id)
            payload = node.payload
            members = payload if isinstance(payload, tuple) else (payload,)
            for member in members:
                instance_id = getattr(member, "instance_id", None)
                if isinstance(instance_id, str):
                    names.add(instance_id)
        names.update(pg.streams)
        names.update(pg.aliases)
        names.update(pg.aliases.values())
        return sorted(names)

    def dumps(self, obj: Any) -> bytes:
        buf = io.BytesIO()
        _InternPickler(buf, self._codes).dump(obj)
        return buf.getvalue()

    def loads(self, data: bytes) -> Any:
        return _InternUnpickler(io.BytesIO(data), self._table).load()


def _round_size(nbytes: int) -> int:
    """Bucket a payload size so near-miss shapes still recycle planes."""
    if nbytes <= 4096:
        return 4096
    # next power-of-two bucket: a 720x576 Y plane and its padded cousin
    # share a bucket instead of fragmenting the free lists
    return 1 << (nbytes - 1).bit_length()


class SharedPlanePool:
    """Recycled byte planes, optionally backed by shared memory.

    The pool has an *owner* process (the one that creates planes and runs
    the free lists) and, in shared mode, any number of *attacher*
    processes that only :meth:`open` planes by descriptor.  Workers never
    allocate directly — they ask the dispatcher over the control pipe,
    which keeps the free lists single-threaded.
    """

    #: pickle protocol for pack(): 5 gives out-of-band buffer export
    PROTOCOL = 5

    def __init__(self, *, shared: bool = False, name_prefix: str = "xspcl") -> None:
        self.shared = shared
        self.name_prefix = name_prefix
        self.stats = PoolStats()
        self._seq = 0
        #: bucket size -> list of free segment names
        self._free: dict[int, list[str]] = {}
        #: segment name -> (buffer object, bucket size); owner process only
        self._segments: dict[str, tuple[Any, int]] = {}
        #: attacher-side map of opened shared segments (kept mapped until
        #: close_attachments(): views handed to components must stay valid)
        self._attached: dict[str, Any] = {}
        self._closed = False

    # -- owner API ---------------------------------------------------------

    def acquire(self, shape: tuple[int, ...], dtype: Any) -> tuple[np.ndarray, PlaneRef]:
        """A writable plane for ``shape``/``dtype``: recycled or fresh."""
        if self._closed:
            raise StreamError("plane pool is closed")
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize if shape else dt.itemsize
        bucket = _round_size(nbytes)
        self.stats.acquires += 1
        free = self._free.get(bucket)
        if free:
            name = free.pop()
            self.stats.recycled += 1
        else:
            name = self._create(bucket)
        ref = PlaneRef(segment=name, nbytes=nbytes, shape=tuple(shape), dtype=dt.str)
        return self._map(name, ref), ref

    def acquire_raw(self, nbytes: int) -> PlaneRef:
        """A plane for ``nbytes`` of raw bytes (pack()'s out-of-band path)."""
        if self._closed:
            raise StreamError("plane pool is closed")
        bucket = _round_size(nbytes)
        self.stats.acquires += 1
        free = self._free.get(bucket)
        if free:
            name = free.pop()
            self.stats.recycled += 1
        else:
            name = self._create(bucket)
        return PlaneRef(segment=name, nbytes=nbytes)

    @staticmethod
    def bucket_of(nbytes: int) -> int:
        """The free-list bucket a payload of ``nbytes`` recycles through."""
        return _round_size(nbytes)

    def try_acquire_free(self, nbytes: int) -> PlaneRef | None:
        """A plane from the free list only — never creates (grant path).

        The dispatcher attaches such planes to job leases so workers can
        satisfy predicted allocations without an RPC.  Creation stays on
        the demand-driven :meth:`acquire` path, so granting cannot grow
        the pool beyond the ``pipeline_depth`` working-set bound.
        """
        if self._closed:
            return None
        bucket = _round_size(nbytes)
        free = self._free.get(bucket)
        if not free:
            return None
        name = free.pop()
        self.stats.acquires += 1
        self.stats.recycled += 1
        self.stats.granted += 1
        return PlaneRef(segment=name, nbytes=bucket)

    def release(self, ref: PlaneRef) -> None:
        """Return a plane to the free list (owner process, idempotent-safe)."""
        entry = self._segments.get(ref.segment)
        if entry is None:
            return  # not ours (already unlinked at shutdown)
        _, bucket = entry
        self.stats.released += 1
        self._free.setdefault(bucket, []).append(ref.segment)

    def release_packed(self, value: Any) -> None:
        """Release every plane referenced by a :class:`Packed` slot value."""
        if isinstance(value, Packed):
            for ref in value.refs:
                self.release(ref)

    @property
    def live_planes(self) -> int:
        """Planes currently checked out (created minus free)."""
        return len(self._segments) - sum(len(v) for v in self._free.values())

    @property
    def total_planes(self) -> int:
        return len(self._segments)

    # -- mapping ------------------------------------------------------------

    def open(self, ref: PlaneRef) -> np.ndarray:
        """Map a plane as an ndarray (any process, zero copy)."""
        return self._map(ref.segment, ref)

    def open_raw(self, ref: PlaneRef) -> memoryview:
        """Map a plane's payload bytes (any process, zero copy)."""
        return memoryview(self._buffer(ref.segment))[: ref.nbytes]

    def _map(self, name: str, ref: PlaneRef) -> np.ndarray:
        buf = self._buffer(name)
        shape = ref.shape if ref.shape else (ref.nbytes,)
        return np.ndarray(shape, dtype=np.dtype(ref.dtype), buffer=buf)

    def _buffer(self, name: str):
        entry = self._segments.get(name)
        if entry is not None:
            seg, _ = entry
            return seg.buf if self.shared else seg
        if not self.shared:
            raise StreamError(f"unknown local plane {name!r}")
        seg = self._attached.get(name)
        if seg is None:
            seg = self._attach(name)
            self._attached[name] = seg
        return seg.buf

    def _create(self, bucket: int) -> str:
        self._seq += 1
        self.stats.planes_created += 1
        if self.shared:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=bucket)
            name = seg.name
        else:
            seg = bytearray(bucket)
            name = f"{self.name_prefix}-{self._seq}"
        self._segments[name] = (seg, bucket)
        return name

    @staticmethod
    def _attach(name: str):
        from multiprocessing import shared_memory

        # Only the owner may unlink.  Attaching registers the segment with
        # the resource tracker, which under fork is *shared* with the owner
        # — a later attacher-side unregister would erase the owner's claim
        # and crash the tracker at unlink time.  Suppress registration for
        # the attach instead (what track=False does on newer interpreters).
        try:
            return shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # pragma: no cover - track= needs Python 3.13
            pass
        from multiprocessing import resource_tracker

        orig = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig

    # -- transport ------------------------------------------------------------

    def pack(self, value: Any) -> Packed:
        """Make ``value`` transportable without serializing bulk data.

        A contiguous ndarray becomes a bare plane (one memcpy, zero
        pickling).  Anything else is pickled at protocol 5 with every
        contiguous array exported out-of-band into planes; only the
        object scaffolding lands in ``meta``.
        """
        if isinstance(value, np.ndarray) and value.flags.c_contiguous:
            plane, ref = self.acquire(value.shape, value.dtype)
            plane[...] = value
            self.stats.plane_packs += 1
            self.stats.oob_bytes += value.nbytes
            return Packed(kind="plane", refs=(ref,), nbytes=value.nbytes)

        buffers: list[pickle.PickleBuffer] = []
        meta = pickle.dumps(value, protocol=self.PROTOCOL,
                            buffer_callback=buffers.append)
        refs = []
        total = 0
        for pb in buffers:
            raw = pb.raw()
            ref = self.acquire_raw(raw.nbytes)
            self.open_raw(ref)[:] = raw
            refs.append(ref)
            total += raw.nbytes
        self.stats.pickle_packs += 1
        self.stats.meta_pickled_bytes += len(meta)
        self.stats.oob_bytes += total
        return Packed(kind="pickle5", refs=tuple(refs), meta=meta,
                      nbytes=total + len(meta))

    def pack_plane(self, ref: PlaneRef) -> Packed:
        """Wrap an already-written pool plane (the sliced-writer path)."""
        self.stats.plane_packs += 1
        return Packed(kind="plane", refs=(ref,), nbytes=ref.nbytes)

    def unpack(self, packed: Packed) -> Any:
        """Rebuild the value; ndarray results are views into the plane."""
        if packed.kind == "plane":
            return self.open(packed.refs[0])
        buffers = [self.open_raw(ref) for ref in packed.refs]
        return pickle.loads(packed.meta, buffers=buffers)

    # -- lifecycle -----------------------------------------------------------

    def close_attachments(self) -> None:
        """Unmap attacher-side segments (worker shutdown)."""
        for seg in self._attached.values():
            try:
                seg.close()
            except Exception:
                pass
        self._attached.clear()

    def close(self) -> None:
        """Free every plane (owner).  Shared segments are unlinked."""
        if self._closed:
            return
        self._closed = True
        self.close_attachments()
        for seg, _ in self._segments.values():
            if self.shared:
                try:
                    seg.close()
                    seg.unlink()
                except Exception:
                    pass
        self._segments.clear()
        self._free.clear()

    def __enter__(self) -> "SharedPlanePool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort: tests create many pools
        try:
            self.close()
        except Exception:
            pass
