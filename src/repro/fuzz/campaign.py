"""Campaign driver: generate -> check -> shrink -> persist failures."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.fuzz.generator import FuzzCase, case_from_dict, generate_case
from repro.fuzz.runner import CaseFailure, check_case
from repro.fuzz.shrink import shrink_case

__all__ = ["CampaignReport", "run_campaign", "replay_file", "save_failure"]


@dataclass
class CampaignReport:
    cases: int = 0
    passed: int = 0
    #: (case, failure, artifact path or None) per failing case
    failures: list[tuple[FuzzCase, CaseFailure, str | None]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return not self.failures


def save_failure(
    case: FuzzCase, failure: CaseFailure, out_dir: Path
) -> Path:
    """Persist a shrunk failing case with its exact replay line."""
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"case-{case.seed}.json"
    payload = json.loads(case.to_json())
    payload["_failure"] = {"kind": failure.kind, "detail": failure.detail}
    payload["_replay"] = (
        f"PYTHONPATH=src python -m repro fuzz --replay {path}"
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def replay_file(path: str | Path) -> tuple[FuzzCase, CaseFailure | None]:
    """Re-check a persisted case (``--replay``)."""
    data = json.loads(Path(path).read_text())
    data.pop("_failure", None)
    data.pop("_replay", None)
    case = case_from_dict(data)
    return case, check_case(case)


def run_campaign(
    *,
    seed: int = 0,
    cases: int = 25,
    max_nodes: int = 8,
    out_dir: str | Path = "fuzz-failures",
    shrink: bool = True,
    progress=None,
) -> CampaignReport:
    """Run ``cases`` generated cases starting at ``seed``.

    Every failing case is (optionally) shrunk and written to ``out_dir``
    with its replay line; the campaign always runs to completion so one
    failure does not mask later distinct ones.
    """
    report = CampaignReport()
    out = Path(out_dir)
    for index in range(cases):
        case = generate_case(seed + index, max_nodes=max_nodes)
        report.cases += 1
        failure = check_case(case)
        if failure is None:
            report.passed += 1
            if progress:
                progress(case, None)
            continue
        if shrink:
            case, failure = shrink_case(case, failure, check_case)
        path = save_failure(case, failure, out)
        report.failures.append((case, failure, str(path)))
        if progress:
            progress(case, failure)
    return report
