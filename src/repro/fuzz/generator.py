"""Random series-parallel XSPCL case generation (seedable, deterministic).

A :class:`FuzzCase` is a plain-data description of one scenario: a
component palette with declared port formats, a chain of randomly chosen
stages (plain, sliced, crossdep), an optional reconfigurable region with
a toggle schedule, optional fault injections, a knob configuration for
the wide run, and an optional *mutation* that deliberately breaks the
spec (the lint-vs-build oracle's fodder).  Cases serialize to JSON so a
failure can be replayed and shrunk byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from random import Random
from typing import Any

__all__ = ["FuzzCase", "generate_case", "case_from_dict"]

#: palette geometries kept tiny: the fuzzer's value is breadth, not load
VIDEO_DIMS = ((16, 12), (24, 24), (32, 24), (48, 36))
AUDIO_DIMS = ((4, 16), (6, 24), (8, 32))  # (channels, block)

#: deliberate spec corruptions; each must be lint-visible
MUTATIONS = ("shape", "dangling", "unknown_class")


@dataclass
class FuzzCase:
    """One generated scenario, JSON round-trippable."""

    seed: int
    palette: str  # "video" | "audio"
    width: int  # channels for the audio palette
    height: int  # block for the audio palette
    iterations: int
    #: chain stages, source -> ... -> sink; each
    #: {"kind": "convert"|"blur"|"filter", "slices": int, ...}
    stages: list[dict] = field(default_factory=list)
    #: None, or {"stage": idx, "toggles": n} — wrap stage idx in a
    #: manager option and post n toggle events before the run
    reconfig: dict | None = None
    #: CLI fault syntax entries ("kill:3", "slow:2:20"), process runs only
    faults: list[str] = field(default_factory=list)
    #: the wide run's knob configuration
    knobs: dict = field(default_factory=dict)
    mutation: str | None = None

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    def describe(self) -> str:
        bits = [
            f"{self.palette} {self.width}x{self.height}",
            f"{len(self.stages)} stage(s)",
            f"{self.iterations} iter(s)",
        ]
        if self.reconfig:
            bits.append(f"reconfig@{self.reconfig['stage']}"
                        f"x{self.reconfig['toggles']}")
        if self.faults:
            bits.append("faults=" + ",".join(self.faults))
        if self.mutation:
            bits.append(f"mutant:{self.mutation}")
        knobs = ",".join(f"{k}={v}" for k, v in sorted(self.knobs.items()))
        bits.append(knobs)
        return " | ".join(bits)


def case_from_dict(data: dict[str, Any]) -> FuzzCase:
    return FuzzCase(**data)


def _gen_stage(rng: Random, palette: str, max_slices: int) -> dict:
    if palette == "audio":
        slices = rng.choice([1, 1, 2, min(3, max_slices)])
        return {
            "kind": "filter",
            "slices": min(slices, max_slices),
            "taps": rng.choice(["smooth", "diff"]),
        }
    roll = rng.random()
    if roll < 0.55:
        return {"kind": "convert", "slices": rng.choice([1, 2, 3])}
    return {"kind": "blur", "slices": rng.choice([2, 3])}


def generate_case(seed: int, *, max_nodes: int = 8) -> FuzzCase:
    """Deterministically generate case ``seed``.

    ``max_nodes`` caps the expanded component count roughly: each sliced
    stage costs its slice count, a crossdep stage twice that.
    """
    rng = Random(seed)
    palette = rng.choice(["video", "video", "audio"])
    if palette == "audio":
        width, height = rng.choice(AUDIO_DIMS)
    else:
        width, height = rng.choice(VIDEO_DIMS)

    budget = max(2, max_nodes - 2)  # source + sink are free
    stages: list[dict] = []
    while budget > 0 and len(stages) < 4 and rng.random() < 0.75:
        stage = _gen_stage(rng, palette, max_slices=min(budget, width)
                           if palette == "audio" else budget)
        cost = stage["slices"] * (2 if stage["kind"] == "blur" else 1)
        if cost > budget:
            break
        budget -= cost
        stages.append(stage)

    iterations = rng.randint(2, 6)

    reconfig = None
    if stages and rng.random() < 0.35:
        reconfig = {
            "stage": rng.randrange(len(stages)),
            "toggles": rng.randint(1, 3),
        }

    faults: list[str] = []
    if rng.random() < 0.4:
        # Bounded by the minimum job count: every iteration dispatches at
        # least source + sink, so indices <= 2*iterations always fire.
        used: set[int] = set()
        for _ in range(rng.randint(1, 2)):
            at_job = rng.randint(1, 2 * iterations)
            if at_job in used:
                continue
            used.add(at_job)
            if rng.random() < 0.5:
                faults.append(f"kill:{at_job}")
            else:
                faults.append(f"slow:{at_job}:{rng.choice([5, 10, 20])}")

    knobs = {
        "workers": rng.choice([1, 2, 2, 3]),
        "batch": rng.choice([1, 1, 2, 3]),
        "depth": rng.choice([1, 2, 2, 4]),
        "fuse": rng.random() < 0.4,
        # autotune only acts at quiescent points of *static* programs in
        # this harness; keep the knob off when reconfig drives the run
        "autotune": reconfig is None and rng.random() < 0.25,
    }

    mutation = None
    if rng.random() < 0.2:
        mutation = rng.choice(MUTATIONS)

    return FuzzCase(
        seed=seed,
        palette=palette,
        width=width,
        height=height,
        iterations=iterations,
        stages=stages,
        reconfig=reconfig,
        faults=faults,
        knobs=knobs,
        mutation=mutation,
    )
