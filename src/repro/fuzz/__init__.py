"""Adversarial scenario fuzzing: random SP graphs, differentially checked.

Hand-written scenarios only cover the failures someone imagined.  This
package generates random-but-valid XSPCL programs (and deliberately
*invalid* mutants), random runs over them — reconfiguration schedules,
fault injections, knob grids — and checks every case differentially:

* both backends, knobs-on vs knobs-off, must produce **bit-identical**
  sink output;
* lint and build must **agree**: a lint-rejected spec fails at build,
  never at runtime — and a lint-clean spec runs;
* every run shuts down cleanly, leaks nothing into ``/dev/shm``, and
  accounts for every injected fault (fired or reported unfired).

Failures are shrunk to a minimal reproducing case and written to disk
with an exact replay line.  Entry points: ``python -m repro fuzz`` and
:func:`run_campaign`.
"""

from repro.fuzz.generator import FuzzCase, generate_case
from repro.fuzz.runner import CaseFailure, build_spec, check_case
from repro.fuzz.shrink import shrink_case
from repro.fuzz.campaign import run_campaign

__all__ = [
    "FuzzCase",
    "CaseFailure",
    "generate_case",
    "build_spec",
    "check_case",
    "shrink_case",
    "run_campaign",
]
