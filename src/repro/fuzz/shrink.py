"""Greedy case minimization: smallest case that still fails the same way.

Each pass proposes one structural simplification (drop a stage, drop the
reconfiguration, drop the faults, switch knobs off, shrink iterations,
geometry, slice widths); a proposal is kept iff the simplified case
still fails with the *same failure kind* — shrinking must never trade
one bug for a different one.  Passes repeat to a fixpoint under a hard
evaluation budget, so shrinking a pathological case terminates.
"""

from __future__ import annotations

from copy import deepcopy
from typing import Callable, Iterator

from repro.fuzz.generator import FuzzCase, case_from_dict
from repro.fuzz.runner import CaseFailure

__all__ = ["shrink_case"]

#: hard cap on oracle evaluations during one shrink
MAX_EVALS = 60


def _clone(case: FuzzCase) -> FuzzCase:
    from dataclasses import asdict

    return case_from_dict(deepcopy(asdict(case)))


def _proposals(case: FuzzCase) -> Iterator[FuzzCase]:
    """Candidate simplifications, most aggressive first."""
    # drop each stage
    for i in range(len(case.stages)):
        c = _clone(case)
        del c.stages[i]
        if c.reconfig is not None:
            if c.reconfig["stage"] == i:
                c.reconfig = None
            elif c.reconfig["stage"] > i:
                c.reconfig["stage"] -= 1
        yield c
    # drop whole features
    if case.reconfig is not None:
        c = _clone(case)
        c.reconfig = None
        yield c
    if case.faults:
        c = _clone(case)
        c.faults = []
        yield c
        if len(case.faults) > 1:
            for i in range(len(case.faults)):
                c = _clone(case)
                del c.faults[i]
                yield c
    # neutralize knobs one at a time
    neutral = {"workers": 1, "batch": 1, "depth": 1,
               "fuse": False, "autotune": False}
    for key, value in neutral.items():
        if case.knobs.get(key, value) != value:
            c = _clone(case)
            c.knobs[key] = value
            yield c
    # fewer iterations
    if case.iterations > 2:
        c = _clone(case)
        c.iterations = 2
        yield c
    # fewer toggles
    if case.reconfig is not None and case.reconfig["toggles"] > 1:
        c = _clone(case)
        c.reconfig["toggles"] = 1
        yield c
    # narrower slices
    for i, stage in enumerate(case.stages):
        if stage["slices"] > 2:
            c = _clone(case)
            c.stages[i]["slices"] = 2
            yield c
    # smaller geometry
    small = (4, 16) if case.palette == "audio" else (16, 12)
    if (case.width, case.height) != small:
        c = _clone(case)
        c.width, c.height = small
        yield c


def shrink_case(
    case: FuzzCase,
    failure: CaseFailure,
    check: Callable[[FuzzCase], CaseFailure | None],
) -> tuple[FuzzCase, CaseFailure]:
    """Greedily minimize ``case`` while ``check`` keeps failing alike."""
    evals = 0
    current, current_failure = case, failure
    improved = True
    while improved and evals < MAX_EVALS:
        improved = False
        for candidate in _proposals(current):
            if evals >= MAX_EVALS:
                break
            evals += 1
            result = check(candidate)
            if result is not None and result.kind == current_failure.kind:
                current, current_failure = candidate, result
                improved = True
                break  # restart proposals from the simplified case
    return current, current_failure
