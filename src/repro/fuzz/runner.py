"""Differential execution of one fuzz case.

Builds the case's spec, then holds it to three oracles:

* **lint/build agreement** — mutated (deliberately broken) specs must be
  flagged by lint AND refused at build (expand or runtime construction);
  clean specs must lint clean and run on every backend;
* **bit-identical output** — every run configuration (threaded/process,
  sequential/wide, knobs on/off, faults injected) must produce the same
  sink records in the same order;
* **clean accounting** — runs complete all iterations, report every
  unfired fault, and leak nothing into ``/dev/shm``.

Determinism rules (established by the backend test suites, and refined
by this fuzzer's own first campaign): timer-driven reconfiguration is
only cross-backend deterministic sequentially (``workers=1,
pipeline_depth=1``); events posted *before* ``run()`` are deterministic
at any *width* but not across *depths* — the splice lands at the
pipeline's drain point, so ``pipeline_depth`` shifts the resume
iteration (depth 1 resumes at iteration 1, depth 2 at iteration 2,
identically on both backends); static programs match at any knob
setting.  The run matrix below respects exactly those rules, so any
mismatch it finds is a real bug, not harness noise.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.fuzz.generator import FuzzCase

__all__ = ["CaseFailure", "build_spec", "check_case"]

#: queue/event names used by generated reconfigurable regions
QUEUE = "fz"
EVENT = "tog"


@dataclass
class CaseFailure:
    """One oracle violation; ``kind`` is stable across shrinking."""

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


def _shm_entries() -> set[str]:
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


# -- spec construction -------------------------------------------------------


def _video_stage(main, idx: int, stage: dict, case: FuzzCase,
                 in_stream: str, out_stream: str) -> None:
    geometry = {"width": case.width, "height": case.height}
    if stage["kind"] == "convert":
        params = {"dtype": "uint8", **geometry}
        if stage["slices"] > 1:
            with main.parallel("slice", n=stage["slices"]):
                main.component(f"c{idx}", "convert_plane",
                               streams={"input": in_stream,
                                        "output": out_stream},
                               params=params)
        else:
            main.component(f"c{idx}", "convert_plane",
                           streams={"input": in_stream,
                                    "output": out_stream},
                           params=params)
        return
    if stage["kind"] == "blur":
        params = {**geometry, "size": 3, "sigma": 1.0}
        with main.parallel("crossdep", n=stage["slices"]):
            with main.parblock():
                main.component(f"bh{idx}", "blur_h_field",
                               streams={"input": in_stream,
                                        "output": f"m{idx}"},
                               params=params)
            with main.parblock():
                main.component(f"bv{idx}", "blur_v_field",
                               streams={"input": f"m{idx}",
                                        "output": out_stream},
                               params=params)
        return
    raise ValueError(f"unknown video stage kind {stage['kind']!r}")


def _audio_stage(main, idx: int, stage: dict, case: FuzzCase,
                 in_stream: str, out_stream: str) -> None:
    params = {"channels": case.width, "block": case.height,
              "taps": stage.get("taps", "smooth")}
    if stage["slices"] > 1:
        with main.parallel("slice", n=stage["slices"]):
            main.component(f"f{idx}", "band_filter",
                           streams={"input": in_stream,
                                    "output": out_stream},
                           params=params)
    else:
        main.component(f"f{idx}", "band_filter",
                       streams={"input": in_stream,
                                "output": out_stream},
                       params=params)


def build_spec(case: FuzzCase):
    """Materialize the case as an XSPCL spec (mutation included)."""
    from repro.core.builder import AppBuilder

    b = AppBuilder()
    main = b.procedure("main")
    n = len(case.stages)
    streams = [f"s{i}" for i in range(n + 1)]

    if case.palette == "audio":
        main.component("src", "audio_source",
                       streams={"samples": streams[0]},
                       params={"channels": case.width, "block": case.height,
                               "seed": case.seed % 97})
    else:
        main.component("src", "luma_source", streams={"output": streams[0]},
                       params={"width": case.width, "height": case.height,
                               "seed": case.seed % 97})

    emit = _audio_stage if case.palette == "audio" else _video_stage
    wrapped = case.reconfig["stage"] if case.reconfig else None
    period = _timer_period(case)
    if period is not None:
        # multi-toggle schedules are timer-driven (and the run matrix
        # then stays sequential, the only width where timers are
        # cross-backend deterministic)
        main.component("clock", "timer",
                       params={"queue": QUEUE, "period": period,
                               "event": EVENT})
    for idx, stage in enumerate(case.stages):
        if idx == wrapped:
            # While the option is off, the previous stage's writers are
            # rerouted straight to the option's output stream.
            with main.manager(f"mgr{idx}", queue=QUEUE) as mgr:
                mgr.on(EVENT, "toggle", option=f"opt{idx}")
                with main.option(f"opt{idx}", enabled=True,
                                 bypass=[(streams[idx], streams[idx + 1])]):
                    emit(main, idx, stage, case, streams[idx],
                         streams[idx + 1])
        else:
            emit(main, idx, stage, case, streams[idx], streams[idx + 1])

    sink_stream = streams[n]
    if case.mutation == "dangling":
        sink_stream = "nowhere"  # read a stream nothing writes
    if case.palette == "audio":
        sink_params: dict = {"channels": case.width, "block": case.height,
                             "collect": True}
        if case.mutation == "shape":
            sink_params["block"] = case.height + 1
        main.component("sink", "feature_sink",
                       streams={"input": sink_stream}, params=sink_params)
    else:
        sink_params = {"width": case.width, "height": case.height,
                       "collect": True}
        if case.mutation == "shape":
            sink_params["height"] = case.height + 1
        main.component("sink", "plane_sink", streams={"input": sink_stream},
                       params=sink_params)
    if case.mutation == "unknown_class":
        main.component("ghost", "no_such_class",
                       streams={"input": streams[0]})
    return b.build()


# -- execution ---------------------------------------------------------------


def _timer_period(case: FuzzCase) -> int | None:
    """Period for multi-toggle reconfig cases (timer-driven, sequential)."""
    if case.reconfig is None or case.reconfig["toggles"] <= 1:
        return None
    return max(1, case.iterations // (case.reconfig["toggles"] + 1))


def _plan_runs(case: FuzzCase) -> list[dict]:
    """The differential run matrix, within the determinism rules."""
    knobs = case.knobs
    timered = _timer_period(case) is not None
    if timered:
        # timer-driven reconfiguration: sequential runs only
        runs = [
            {"backend": "threaded", "nodes": 1, "depth": 1},
            {"backend": "threaded", "nodes": 1, "depth": 1, "fuse": True},
            {"backend": "process", "workers": 1, "depth": 1},
        ]
        if case.faults:
            runs.append({"backend": "process", "workers": 1, "depth": 1,
                         "faults": case.faults})
        return runs
    if case.reconfig is not None:
        # single pre-posted toggle: the splice iteration is a function of
        # pipeline depth, so the whole matrix shares one depth while
        # backend, width, batching and fusion still vary
        depth = 2
        runs = [
            {"backend": "threaded", "nodes": 2, "depth": depth},
            {"backend": "threaded", "nodes": 1, "depth": depth},
            {"backend": "threaded", "nodes": 2, "depth": depth,
             "fuse": True},
            {"backend": "process", "workers": 1, "depth": depth},
            {
                "backend": "process",
                "workers": knobs.get("workers", 2),
                "depth": depth,
                "batch": knobs.get("batch", 1),
                "fuse": knobs.get("fuse", False),
                "autotune": knobs.get("autotune", False),
            },
        ]
        if case.faults:
            runs.append({"backend": "process", "workers": 2, "depth": depth,
                         "faults": case.faults})
        return runs
    runs = [
        {"backend": "threaded", "nodes": 2, "depth": 2},
        {"backend": "threaded", "nodes": 1, "depth": 1},
        {"backend": "threaded", "nodes": 2, "depth": 2, "fuse": True},
        {"backend": "process", "workers": 1, "depth": 2},
        {
            "backend": "process",
            "workers": knobs.get("workers", 2),
            "depth": knobs.get("depth", 2),
            "batch": knobs.get("batch", 1),
            "fuse": knobs.get("fuse", False),
            "autotune": knobs.get("autotune", False),
        },
    ]
    if case.faults:
        runs.append({"backend": "process", "workers": 2, "depth": 2,
                     "faults": case.faults})
    return runs


def _execute(case: FuzzCase, program, registry, run: dict):
    """One run; returns (ordered outputs, RunResult)."""
    from repro.hinch import ProcessRuntime, ThreadedRuntime

    period = _timer_period(case)
    if run["backend"] == "threaded":
        rt = ThreadedRuntime(
            program, registry,
            nodes=run.get("nodes", 1),
            pipeline_depth=run.get("depth", 1),
            max_iterations=case.iterations,
            fuse=run.get("fuse", False),
        )
    else:
        rt = ProcessRuntime(
            program, registry,
            workers=run.get("workers", 1),
            pipeline_depth=run.get("depth", 1),
            max_iterations=case.iterations,
            batch=run.get("batch", 1),
            fuse=run.get("fuse", False),
            autotune=run.get("autotune", False),
            faults=",".join(run.get("faults", [])) or None,
        )
    if case.reconfig is not None and period is None:
        rt.post_event(QUEUE, EVENT)  # single toggle: any-width determinism
    result = rt.run()
    sink = result.components["sink"]
    return list(sink.ordered_planes()), result


def _describe_run(run: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(run.items()))


def check_case(case: FuzzCase, *, registry=None) -> CaseFailure | None:
    """Run every oracle over one case.  ``None`` means the case passed."""
    from repro.analysis.diagnostics import Severity
    from repro.analysis.engine import lint_spec
    from repro.components.registry import default_ports, default_registry
    from repro.core.expander import expand
    from repro.errors import ReproError
    from repro.hinch import ThreadedRuntime

    registry = registry or default_registry()
    ports = default_ports(registry)

    try:
        spec = build_spec(case)
    except ReproError as exc:  # the generator must only emit buildable ASTs
        return CaseFailure("generator-invalid", f"build_spec raised: {exc}")

    diags = lint_spec(spec, ports=ports, name=f"fuzz-{case.seed}")
    errors = [d for d in diags if d.severity is Severity.ERROR]

    if case.mutation is not None:
        if not errors:
            return CaseFailure(
                "mutation-not-linted",
                f"mutation {case.mutation!r} produced no lint error",
            )
        # lint rejected it; the build must too — never reach job execution
        try:
            program = expand(spec, ports, name=f"fuzz-{case.seed}")
            ThreadedRuntime(program, registry, nodes=1, pipeline_depth=1,
                            max_iterations=case.iterations)
        except ReproError:
            return None  # agreement: rejected at build
        return CaseFailure(
            "lint-build-disagreement",
            f"lint rejected ({errors[0].code}) but build accepted "
            f"mutation {case.mutation!r}",
        )

    if errors:
        return CaseFailure(
            "clean-case-linted",
            f"unmutated case flagged: {errors[0].code} {errors[0].message}",
        )

    try:
        program = expand(spec, ports, name=f"fuzz-{case.seed}")
    except ReproError as exc:
        return CaseFailure(
            "lint-build-disagreement",
            f"lint clean but expand raised: {exc}",
        )

    baseline: list | None = None
    baseline_desc = ""
    for run in _plan_runs(case):
        desc = _describe_run(run)
        before = _shm_entries()
        try:
            outputs, result = _execute(case, program, registry, run)
        except ReproError as exc:
            return CaseFailure(
                "run-raised", f"{desc}: {type(exc).__name__}: {exc}"
            )
        leaked = _shm_entries() - before
        if leaked:
            return CaseFailure(
                "shm-leak", f"{desc}: leaked {sorted(leaked)}"
            )
        if result.completed_iterations != case.iterations:
            return CaseFailure(
                "short-run",
                f"{desc}: completed {result.completed_iterations} of "
                f"{case.iterations} iterations",
            )
        unfired = [e for e in getattr(result, "fault_events", [])
                   if e.get("kind") == "unfired"]
        if unfired and run.get("faults"):
            return CaseFailure(
                "fault-unfired",
                f"{desc}: {unfired[0]['detail']} (indices are bounded by "
                "the minimum dispatch count, so every spec must fire)",
            )
        if len(outputs) != case.iterations:
            return CaseFailure(
                "missing-output",
                f"{desc}: sink collected {len(outputs)} of "
                f"{case.iterations} records",
            )
        if baseline is None:
            baseline, baseline_desc = outputs, desc
            continue
        for i, (a, b) in enumerate(zip(baseline, outputs)):
            if a.shape != b.shape or a.dtype != b.dtype or not np.array_equal(a, b):
                return CaseFailure(
                    "output-mismatch",
                    f"iteration {i}: {desc} diverges from "
                    f"{baseline_desc} (shape {a.shape}->{b.shape}, "
                    f"first diff at "
                    f"{np.argwhere(a != b)[:1].tolist() if a.shape == b.shape else 'n/a'})",
                )
    return None
