"""A minimal discrete-event simulation engine.

Events are ``(time, seq, callback, record)`` tuples in a binary heap;
``seq`` is a monotone tiebreaker so simultaneous events fire in schedule
order, which keeps every simulation fully deterministic (a property the
benchmark suite relies on: identical inputs -> identical cycle counts).

``record`` is an optional argument passed to the callback when it fires.
It lets a hot scheduling site (the simulator dispatches one completion
per job) enqueue a single bound method plus a small completion record
instead of allocating a fresh closure per event — the run loop is the
only place that distinguishes the two forms.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["EventEngine"]


class EventEngine:
    """Time-ordered callback dispatcher."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[..., None], Any]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(
        self, delay: float, callback: Callable[..., None], record: Any = None
    ) -> None:
        """Schedule ``callback`` at ``now + delay`` (delay >= 0).

        When ``record`` is not None the callback fires as
        ``callback(record)``; otherwise as ``callback()``.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self.schedule_at(self._now + delay, callback, record)

    def schedule_at(
        self, time: float, callback: Callable[..., None], record: Any = None
    ) -> None:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        heapq.heappush(self._heap, (time, self._seq, callback, record))
        self._seq += 1

    def run(self, *, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the heap empties (or a bound hits).

        Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        heappop = heapq.heappop
        heap = self._heap
        try:
            processed = 0
            while heap:
                entry = heap[0]
                time = entry[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heappop(heap)
                self._now = time
                record = entry[3]
                if record is None:
                    entry[2]()
                else:
                    entry[2](record)
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
            return self._now
        finally:
            self.events_processed += processed
            self._running = False

    @property
    def pending(self) -> int:
        return len(self._heap)
