"""SpaceCAKE — a discrete-event model of the Philips MPSoC tile.

The paper evaluates XSPCL "using a cycle-accurate simulator for the
Philips SpaceCake architecture, which simulates a tile with at most 9
TriMedia cores.  At a tile, each TriMedia has its own level 1 cache.  The
level 2 cache is shared between all TriMedias."  That simulator is
proprietary; this package substitutes a calibrated discrete-event model
(DESIGN.md §3):

* :mod:`repro.spacecake.devent` — generic event-driven engine;
* :mod:`repro.spacecake.cache` — footprint-based L1 (per core) / shared
  L2 / DRAM hierarchy with per-access latency accounting;
* :mod:`repro.spacecake.machine` — a tile of N cores pulling jobs from
  the central Hinch queue (greedy list scheduling = Hinch's policy);
* :mod:`repro.spacecake.costmodel` — per-component-class cycle and byte
  costs, with the calibration constants used by the benchmarks;
* :mod:`repro.spacecake.simulator` — :class:`SimRuntime`, a virtual-time
  backend for the Hinch :class:`~repro.hinch.scheduler.DataflowScheduler`
  (the same scheduling code the threaded runtime uses), optionally also
  executing components functionally to validate data correctness under
  simulation.

Why a simulator at all: CPython's GIL makes real-thread speedup
unmeasurable, and the paper's own speedup/overhead figures are functions
of relative cycle counts, cache reuse, and scheduling — exactly what an
event-driven model captures.
"""

from repro.spacecake.devent import EventEngine
from repro.spacecake.cache import CacheConfig, CacheModel, AccessLevel
from repro.spacecake.machine import Machine, MachineConfig
from repro.spacecake.costmodel import CostModel, CostParams, JobCost, PortTraffic
from repro.spacecake.simulator import SimResult, SimRuntime

__all__ = [
    "EventEngine",
    "CacheConfig",
    "CacheModel",
    "AccessLevel",
    "Machine",
    "MachineConfig",
    "CostModel",
    "CostParams",
    "JobCost",
    "PortTraffic",
    "SimRuntime",
    "SimResult",
]
