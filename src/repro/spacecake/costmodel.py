"""Per-job cycle and traffic costs for the SpaceCAKE model.

A job's virtual-time cost is::

    job_overhead                      (central-queue bookkeeping)
  + sync_overhead  (only if nodes>1)  (locks/fences; the paper disables
                                       all synchronization at 1 node)
  + compute_cycles                    (from the component's cost profile)
  + cache cycles for each port's traffic (via the CacheModel)

Component classes publish their own profile through
``Component.cost_profile(instance)`` — cycle counts per pixel/block plus
bytes read and written per port.  Classes without a profile get
``default_job_cycles``.  All constants live in :class:`CostParams`; the
calibration tests (``tests/test_calibration.py``) pin the *shape* of the
paper's results to them, and the ablation benchmarks sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.core.program import ComponentInstance
from repro.errors import SimulationError

__all__ = ["PortTraffic", "JobCost", "CostParams", "CostModel"]


@dataclass(frozen=True)
class PortTraffic:
    """Bytes moved through one port during one job."""

    port: str
    nbytes: int
    write: bool

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise SimulationError(f"negative traffic on port {self.port!r}")


@dataclass(frozen=True)
class JobCost:
    """One job's intrinsic cost, before cache/overhead accounting."""

    compute_cycles: float
    traffic: tuple[PortTraffic, ...] = ()

    def __post_init__(self) -> None:
        if self.compute_cycles < 0:
            raise SimulationError("negative compute_cycles")

    @property
    def bytes_read(self) -> int:
        return sum(t.nbytes for t in self.traffic if not t.write)

    @property
    def bytes_written(self) -> int:
        return sum(t.nbytes for t in self.traffic if t.write)


@dataclass(frozen=True)
class CostParams:
    """Calibration constants of the machine model (see DESIGN.md §6)."""

    #: dispatch + queue bookkeeping per job, always charged
    job_overhead_cycles: float = 400.0
    #: lock/fence cost per job; charged only when nodes > 1 (paper §4.2)
    sync_overhead_cycles: float = 300.0
    #: manager poll at subgraph entry/exit
    manager_invoke_cycles: float = 300.0
    #: pure synchronization barrier node
    barrier_cycles: float = 50.0
    #: splice work per component added to / removed from the graph while
    #: quiescent (component *creation* happens concurrently beforehand)
    reconfig_splice_cycles: float = 5000.0
    #: fallback for component classes without a cost profile
    default_job_cycles: float = 10000.0

    def scaled(self, factor: float) -> "CostParams":
        """All overheads multiplied by ``factor`` (ablation support)."""
        return replace(
            self,
            job_overhead_cycles=self.job_overhead_cycles * factor,
            sync_overhead_cycles=self.sync_overhead_cycles * factor,
            manager_invoke_cycles=self.manager_invoke_cycles * factor,
            barrier_cycles=self.barrier_cycles * factor,
            reconfig_splice_cycles=self.reconfig_splice_cycles * factor,
        )


class CostModel:
    """Resolves a component instance to its :class:`JobCost`."""

    def __init__(
        self,
        registry: Mapping[str, type] | None = None,
        params: CostParams | None = None,
    ) -> None:
        self.registry = registry or {}
        self.params = params or CostParams()
        self._cache: dict[str, JobCost] = {}

    def job_cost(self, instance: ComponentInstance) -> JobCost:
        """Cost of one execution of ``instance`` (cached per instance)."""
        cached = self._cache.get(instance.instance_id)
        if cached is not None:
            return cached
        cost: JobCost | None = None
        cls = self.registry.get(instance.class_name)
        if cls is not None:
            profile = getattr(cls, "cost_profile", None)
            if profile is not None:
                cost = profile(instance)
        if cost is None:
            cost = JobCost(compute_cycles=self.params.default_job_cycles)
        self._cache[instance.instance_id] = cost
        return cost

    def overhead_cycles(self, *, nodes: int) -> float:
        """Fixed per-job overhead for a machine with ``nodes`` cores."""
        cycles = self.params.job_overhead_cycles
        if nodes > 1:
            cycles += self.params.sync_overhead_cycles
        return cycles
