"""Footprint-based cache hierarchy model: per-core L1, shared L2, DRAM.

A full line-accurate cache simulation is overkill for reproducing the
paper's *relative* effects (stream buffering between split components
raises miss traffic; producer/consumer scheduled apart lose reuse).  The
model here is the classic *stack-distance approximation at object
granularity*:

* every distinct data object (a stream slot region) has a record of the
  core that last touched it and the per-core / per-tile "bytes touched
  since" counters at that moment;
* on a new access, the object is in the toucher's **L1** if the same core
  touched it and fewer than ``l1_bytes`` have flowed through that core's
  L1 since; it is in the shared **L2** if fewer than ``l2_bytes`` flowed
  through the tile since; otherwise it comes from **DRAM**;
* the access is charged ``nbytes * cycles_per_byte[level]`` and the
  counters advance by ``nbytes``.

This reproduces the two behaviours the paper reports: the XSPCL JPiP's
extra stream buffers blow past the reuse windows ("the number of cache
misses is significantly higher than when the sequential version is run"),
and fusing producer/consumer restores reuse ("consumer components ...
run immediately after the producers, when the data is still in the
cache").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable

from repro.errors import SimulationError

__all__ = ["AccessLevel", "CacheConfig", "CacheModel", "CacheStats"]


class AccessLevel(enum.Enum):
    L1 = "l1"
    L2 = "l2"
    MEM = "mem"


@dataclass(frozen=True)
class CacheConfig:
    """Capacities and per-byte latencies.

    Defaults approximate a TriMedia-class tile: 16 KiB data L1 per core, a
    shared 1 MiB L2 (the CAKE tile used large embedded memory), and DRAM
    several times slower than L2.  The absolute values are calibration
    constants (DESIGN.md §6), not claims about the real silicon; the
    calibration tests pin the resulting behaviour, not these numbers.
    """

    l1_bytes: int = 16 * 1024
    l2_bytes: int = 512 * 1024
    l1_cycles_per_byte: float = 0.05
    l2_cycles_per_byte: float = 0.25
    mem_cycles_per_byte: float = 1.0
    #: graded L2->DRAM transition, in units of ``l2_bytes`` of reuse
    #: distance: below ``graded_lo`` the access pays the pure L2 rate,
    #: above ``graded_hi`` the pure DRAM rate, linear in between.  Real
    #: reuse-distance profiles are smooth; a binary threshold makes the
    #: model knife-edged for working sets near the capacity.
    graded_lo: float = 1.0
    graded_hi: float = 3.0

    def cycles(self, level: AccessLevel, nbytes: int) -> float:
        if level is AccessLevel.L1:
            return self.l1_cycles_per_byte * nbytes
        if level is AccessLevel.L2:
            return self.l2_cycles_per_byte * nbytes
        return self.mem_cycles_per_byte * nbytes

    def graded_rate(self, tile_distance: float) -> float:
        """Per-byte cost of a non-L1 access at this reuse distance."""
        d = tile_distance / self.l2_bytes
        if d <= self.graded_lo:
            return self.l2_cycles_per_byte
        if d >= self.graded_hi:
            return self.mem_cycles_per_byte
        frac = (d - self.graded_lo) / (self.graded_hi - self.graded_lo)
        return (
            self.l2_cycles_per_byte
            + frac * (self.mem_cycles_per_byte - self.l2_cycles_per_byte)
        )


@dataclass
class CacheStats:
    accesses: dict[AccessLevel, int] = field(
        default_factory=lambda: {lvl: 0 for lvl in AccessLevel}
    )
    bytes_by_level: dict[AccessLevel, int] = field(
        default_factory=lambda: {lvl: 0 for lvl in AccessLevel}
    )

    def hit_rate(self, level: AccessLevel) -> float:
        total = sum(self.accesses.values())
        return self.accesses[level] / total if total else 0.0

    @property
    def total_accesses(self) -> int:
        return sum(self.accesses.values())


#: An object's residency record: ``(core, core_clock, tile_clock)`` — the
#: core that last touched it and the per-core / per-tile byte clocks at
#: that moment.  A plain tuple: millions are allocated per sweep and the
#: fast path (:meth:`CacheModel.access_range`) rebuilds one per access.
_Record = tuple[int, int, int]


class CacheModel:
    """Object-granular reuse-distance cache model for one tile."""

    def __init__(self, cores: int, config: CacheConfig | None = None) -> None:
        if cores < 1:
            raise SimulationError(f"cores must be >= 1, got {cores}")
        self.cores = cores
        self.config = config or CacheConfig()
        self._core_clock = [0] * cores
        self._tile_clock = 0
        self._objects: dict[Hashable, _Record] = {}
        self.stats = CacheStats()
        # CacheConfig is frozen: hoist its constants into one tuple so the
        # hot access_range() pays a single attribute load for all of them.
        cfg = self.config
        self._constants = (
            cfg.l1_bytes,
            cfg.l2_bytes,
            cfg.l1_cycles_per_byte,
            cfg.l2_cycles_per_byte,
            cfg.mem_cycles_per_byte,
            cfg.graded_lo,
            cfg.graded_hi,
        )

    def classify(self, core: int, key: Hashable) -> AccessLevel:
        """Where would ``key`` be found by ``core`` right now?"""
        record = self._objects.get(key)
        if record is None:
            return AccessLevel.MEM
        if (
            record[0] == core
            and self._core_clock[core] - record[1] < self.config.l1_bytes
        ):
            return AccessLevel.L1
        if self._tile_clock - record[2] < self.config.l2_bytes:
            return AccessLevel.L2
        return AccessLevel.MEM

    def access(self, core: int, key: Hashable, nbytes: int, *, write: bool = False) -> float:
        """Touch ``nbytes`` of object ``key`` from ``core``; returns cycles.

        Writes allocate: the object becomes resident for the writing core
        (write-allocate, as on the real tile).  Reads refresh residency.
        """
        if not 0 <= core < self.cores:
            raise SimulationError(f"core {core} out of range 0..{self.cores - 1}")
        if nbytes < 0:
            raise SimulationError(f"negative access size {nbytes}")
        level = self.classify(core, key)
        if level is AccessLevel.L1:
            cycles = self.config.cycles(level, nbytes)
        else:
            # Graded cost: a record at intermediate reuse distance pays a
            # rate between L2 and DRAM (partial residency); a brand-new
            # object pays full DRAM.
            record = self._objects.get(key)
            if record is None:
                cycles = self.config.cycles(AccessLevel.MEM, nbytes)
            else:
                distance = self._tile_clock - record[2]
                cycles = self.config.graded_rate(distance) * nbytes
        self.stats.accesses[level] += 1
        self.stats.bytes_by_level[level] += nbytes
        # Advance clocks and refresh the record.
        self._core_clock[core] += nbytes
        self._tile_clock += nbytes
        self._objects[key] = (core, self._core_clock[core], self._tile_clock)
        return cycles

    def access_range(
        self,
        core: int,
        stream: str,
        iteration: int,
        start: int,
        stop: int,
        nbytes: int,
        write: bool,
        base: float,
        keyset: set,
    ) -> float:
        """Touch buckets ``start..stop`` of ``(stream, iteration)`` in order.

        Semantically identical to::

            for bucket in range(start, stop):
                key = (stream, iteration, bucket)
                base += self.access(core, key, nbytes, write=write)
                keyset.add(key)
            return base

        including float-accumulation order (``base`` is advanced one
        access at a time, so totals are bit-identical to the unbatched
        loop), statistics, and clock advancement — but with the per-call
        overhead hoisted out of the bucket loop.
        """
        return self.access_traffic(
            core, iteration, ((stream, start, stop, nbytes, write),), base, keyset
        )

    def access_traffic(
        self,
        core: int,
        iteration: int,
        traffic,
        base: float,
        keyset: set,
    ) -> float:
        """Run one job's whole traffic plan through the cache, in order.

        ``traffic`` is a sequence of ``(stream, bucket_start, bucket_stop,
        bytes_per_bucket, write)`` port entries (a :class:`JobPlan`'s
        precompiled traffic).  Equivalent to one :meth:`access` per bucket
        per entry — same float-accumulation order (so cycle totals are
        bit-identical to the unbatched loop), same statistics, same clock
        advancement — but the per-call overhead (attribute lookups, enum
        hashing, stats-dict updates, record construction) is paid once
        per *job* instead of once per bucket.  This is the simulator's
        hot inner loop: an unsliced component touches all 64 slot buckets
        per port per job, a sliced one a couple of buckets on each of
        several ports.
        """
        if not 0 <= core < self.cores:
            raise SimulationError(f"core {core} out of range 0..{self.cores - 1}")
        (l1_bytes, l2_bytes, l1_rate, l2_rate, mem_rate,
         graded_lo, graded_hi) = self._constants
        objects = self._objects
        core_clock = self._core_clock[core]
        tile_clock = self._tile_clock
        n_l1 = n_l2 = n_mem = 0
        b_l1 = b_l2 = b_mem = 0
        keyset_add = keyset.add
        for stream, start, stop, nbytes, _write in traffic:
            if nbytes < 0:
                raise SimulationError(f"negative access size {nbytes}")
            for bucket in range(start, stop):
                key = (stream, iteration, bucket)
                record = objects.get(key)
                if record is None:
                    n_mem += 1
                    b_mem += nbytes
                    base += mem_rate * nbytes
                elif record[0] == core and core_clock - record[1] < l1_bytes:
                    n_l1 += 1
                    b_l1 += nbytes
                    base += l1_rate * nbytes
                else:
                    distance = tile_clock - record[2]
                    if distance < l2_bytes:
                        n_l2 += 1
                        b_l2 += nbytes
                    else:
                        n_mem += 1
                        b_mem += nbytes
                    # Inlined CacheConfig.graded_rate, operation for
                    # operation, so accumulated cycles stay bit-identical
                    # to access().
                    d = distance / l2_bytes
                    if d <= graded_lo:
                        base += l2_rate * nbytes
                    elif d >= graded_hi:
                        base += mem_rate * nbytes
                    else:
                        frac = (d - graded_lo) / (graded_hi - graded_lo)
                        base += (l2_rate + frac * (mem_rate - l2_rate)) * nbytes
                core_clock += nbytes
                tile_clock += nbytes
                objects[key] = (core, core_clock, tile_clock)
                keyset_add(key)
        self._core_clock[core] = core_clock
        self._tile_clock = tile_clock
        stats = self.stats
        if n_l1:
            stats.accesses[AccessLevel.L1] += n_l1
            stats.bytes_by_level[AccessLevel.L1] += b_l1
        if n_l2:
            stats.accesses[AccessLevel.L2] += n_l2
            stats.bytes_by_level[AccessLevel.L2] += b_l2
        if n_mem:
            stats.accesses[AccessLevel.MEM] += n_mem
            stats.bytes_by_level[AccessLevel.MEM] += b_mem
        return base

    def evict(self, key: Hashable) -> None:
        """Forget an object (stream slot released)."""
        self._objects.pop(key, None)

    def evict_many(self, keys) -> None:
        """Forget a batch of objects (one iteration's stream slots)."""
        pop = self._objects.pop
        for key in keys:
            pop(key, None)

    def evict_prefix(self, prefix: tuple) -> None:
        """Forget all objects whose tuple key starts with ``prefix``."""
        doomed = [
            k
            for k in self._objects
            if isinstance(k, tuple) and k[: len(prefix)] == prefix
        ]
        for k in doomed:
            del self._objects[k]

    @property
    def resident_objects(self) -> int:
        return len(self._objects)
