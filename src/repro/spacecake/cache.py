"""Footprint-based cache hierarchy model: per-core L1, shared L2, DRAM.

A full line-accurate cache simulation is overkill for reproducing the
paper's *relative* effects (stream buffering between split components
raises miss traffic; producer/consumer scheduled apart lose reuse).  The
model here is the classic *stack-distance approximation at object
granularity*:

* every distinct data object (a stream slot region) has a record of the
  core that last touched it and the per-core / per-tile "bytes touched
  since" counters at that moment;
* on a new access, the object is in the toucher's **L1** if the same core
  touched it and fewer than ``l1_bytes`` have flowed through that core's
  L1 since; it is in the shared **L2** if fewer than ``l2_bytes`` flowed
  through the tile since; otherwise it comes from **DRAM**;
* the access is charged ``nbytes * cycles_per_byte[level]`` and the
  counters advance by ``nbytes``.

This reproduces the two behaviours the paper reports: the XSPCL JPiP's
extra stream buffers blow past the reuse windows ("the number of cache
misses is significantly higher than when the sequential version is run"),
and fusing producer/consumer restores reuse ("consumer components ...
run immediately after the producers, when the data is still in the
cache").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable

from repro.errors import SimulationError

__all__ = ["AccessLevel", "CacheConfig", "CacheModel", "CacheStats"]


class AccessLevel(enum.Enum):
    L1 = "l1"
    L2 = "l2"
    MEM = "mem"


@dataclass(frozen=True)
class CacheConfig:
    """Capacities and per-byte latencies.

    Defaults approximate a TriMedia-class tile: 16 KiB data L1 per core, a
    shared 1 MiB L2 (the CAKE tile used large embedded memory), and DRAM
    several times slower than L2.  The absolute values are calibration
    constants (DESIGN.md §6), not claims about the real silicon; the
    calibration tests pin the resulting behaviour, not these numbers.
    """

    l1_bytes: int = 16 * 1024
    l2_bytes: int = 512 * 1024
    l1_cycles_per_byte: float = 0.05
    l2_cycles_per_byte: float = 0.25
    mem_cycles_per_byte: float = 1.0
    #: graded L2->DRAM transition, in units of ``l2_bytes`` of reuse
    #: distance: below ``graded_lo`` the access pays the pure L2 rate,
    #: above ``graded_hi`` the pure DRAM rate, linear in between.  Real
    #: reuse-distance profiles are smooth; a binary threshold makes the
    #: model knife-edged for working sets near the capacity.
    graded_lo: float = 1.0
    graded_hi: float = 3.0

    def cycles(self, level: AccessLevel, nbytes: int) -> float:
        if level is AccessLevel.L1:
            return self.l1_cycles_per_byte * nbytes
        if level is AccessLevel.L2:
            return self.l2_cycles_per_byte * nbytes
        return self.mem_cycles_per_byte * nbytes

    def graded_rate(self, tile_distance: float) -> float:
        """Per-byte cost of a non-L1 access at this reuse distance."""
        d = tile_distance / self.l2_bytes
        if d <= self.graded_lo:
            return self.l2_cycles_per_byte
        if d >= self.graded_hi:
            return self.mem_cycles_per_byte
        frac = (d - self.graded_lo) / (self.graded_hi - self.graded_lo)
        return (
            self.l2_cycles_per_byte
            + frac * (self.mem_cycles_per_byte - self.l2_cycles_per_byte)
        )


@dataclass
class CacheStats:
    accesses: dict[AccessLevel, int] = field(
        default_factory=lambda: {lvl: 0 for lvl in AccessLevel}
    )
    bytes_by_level: dict[AccessLevel, int] = field(
        default_factory=lambda: {lvl: 0 for lvl in AccessLevel}
    )

    def hit_rate(self, level: AccessLevel) -> float:
        total = sum(self.accesses.values())
        return self.accesses[level] / total if total else 0.0

    @property
    def total_accesses(self) -> int:
        return sum(self.accesses.values())


@dataclass
class _ObjectRecord:
    core: int
    core_clock: int  # bytes through that core's L1 at touch time
    tile_clock: int  # bytes through the tile at touch time


class CacheModel:
    """Object-granular reuse-distance cache model for one tile."""

    def __init__(self, cores: int, config: CacheConfig | None = None) -> None:
        if cores < 1:
            raise SimulationError(f"cores must be >= 1, got {cores}")
        self.cores = cores
        self.config = config or CacheConfig()
        self._core_clock = [0] * cores
        self._tile_clock = 0
        self._objects: dict[Hashable, _ObjectRecord] = {}
        self.stats = CacheStats()

    def classify(self, core: int, key: Hashable) -> AccessLevel:
        """Where would ``key`` be found by ``core`` right now?"""
        record = self._objects.get(key)
        if record is None:
            return AccessLevel.MEM
        if (
            record.core == core
            and self._core_clock[core] - record.core_clock < self.config.l1_bytes
        ):
            return AccessLevel.L1
        if self._tile_clock - record.tile_clock < self.config.l2_bytes:
            return AccessLevel.L2
        return AccessLevel.MEM

    def access(self, core: int, key: Hashable, nbytes: int, *, write: bool = False) -> float:
        """Touch ``nbytes`` of object ``key`` from ``core``; returns cycles.

        Writes allocate: the object becomes resident for the writing core
        (write-allocate, as on the real tile).  Reads refresh residency.
        """
        if not 0 <= core < self.cores:
            raise SimulationError(f"core {core} out of range 0..{self.cores - 1}")
        if nbytes < 0:
            raise SimulationError(f"negative access size {nbytes}")
        level = self.classify(core, key)
        if level is AccessLevel.L1:
            cycles = self.config.cycles(level, nbytes)
        else:
            # Graded cost: a record at intermediate reuse distance pays a
            # rate between L2 and DRAM (partial residency); a brand-new
            # object pays full DRAM.
            record = self._objects.get(key)
            if record is None:
                cycles = self.config.cycles(AccessLevel.MEM, nbytes)
            else:
                distance = self._tile_clock - record.tile_clock
                cycles = self.config.graded_rate(distance) * nbytes
        self.stats.accesses[level] += 1
        self.stats.bytes_by_level[level] += nbytes
        # Advance clocks and refresh the record.
        self._core_clock[core] += nbytes
        self._tile_clock += nbytes
        self._objects[key] = _ObjectRecord(
            core=core,
            core_clock=self._core_clock[core],
            tile_clock=self._tile_clock,
        )
        return cycles

    def evict(self, key: Hashable) -> None:
        """Forget an object (stream slot released)."""
        self._objects.pop(key, None)

    def evict_prefix(self, prefix: tuple) -> None:
        """Forget all objects whose tuple key starts with ``prefix``."""
        doomed = [
            k
            for k in self._objects
            if isinstance(k, tuple) and k[: len(prefix)] == prefix
        ]
        for k in doomed:
            del self._objects[k]

    @property
    def resident_objects(self) -> int:
        return len(self._objects)
