"""SimRuntime: Hinch on virtual time, on the SpaceCAKE machine model.

The simulator reuses, unchanged, the pieces that define Hinch's
semantics — :class:`~repro.hinch.scheduler.DataflowScheduler` (readiness,
pipeline depth, reconfiguration drain), :class:`~repro.hinch.manager.
ManagerRuntime` (event handling), :class:`~repro.hinch.runtime.
ComponentHost` (component lifecycle and splicing) — and replaces only the
notion of time: a job dispatched to a core occupies it for the job's cost
in cycles, computed by the :class:`~repro.spacecake.costmodel.CostModel`
plus cache accounting.

Two execution modes:

* ``execute=False`` (default, used by the benchmarks): components do not
  run; only costs flow.  Components whose class sets ``always_execute``
  (event timers driving reconfiguration experiments) still run.
* ``execute=True``: components run functionally with real data, so tests
  can assert that simulated scheduling produces exactly the same frames
  as the threaded runtime.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.program import Program, ProgramGraph
from repro.errors import SimulationError
from repro.hinch.component import Component, JobContext
from repro.hinch.events import Event, EventBroker
from repro.hinch.jobqueue import Job
from repro.hinch.manager import ManagerRuntime
from repro.hinch.runtime import ComponentHost
from repro.hinch.scheduler import DataflowScheduler, ReconfigPlan
from repro.hinch.stream import StreamStore
from repro.hinch.tracing import TraceEvent, Tracer
from repro.spacecake.cache import CacheStats
from repro.spacecake.costmodel import CostModel, CostParams
from repro.spacecake.devent import EventEngine
from repro.spacecake.machine import Machine, MachineConfig

__all__ = ["SimRuntime", "SimResult"]

#: Region granularity of the cache model: every stream slot is split into
#: this many equal buckets; a job touches the buckets its slice covers.
#: Disjoint slice regions therefore never share cache residency, while a
#: whole-object producer feeding sliced consumers (and vice versa) is
#: classified per region — the behaviours the paper's cache-miss analysis
#: depends on.
SLOT_BUCKETS = 64


def _slot_buckets(slice_info: tuple[int, int] | None) -> range:
    """Bucket indices a component's slice covers (all, when unsliced)."""
    if slice_info is None:
        return range(SLOT_BUCKETS)
    index, total = slice_info
    lo = index * SLOT_BUCKETS // total
    hi = max(lo + 1, (index + 1) * SLOT_BUCKETS // total)
    return range(lo, min(hi, SLOT_BUCKETS))


@dataclass
class SimResult:
    """Outcome of one simulated run (times in cycles)."""

    cycles: float
    completed_iterations: int
    reconfig_count: int
    trace: Tracer
    cache_stats: CacheStats
    core_busy_cycles: list[float]
    utilization: float
    components: dict[str, Component]
    jobs_executed: int
    events_handled: int = 0
    components_created: int = 0
    #: (resume_iteration, option states) per applied reconfiguration
    reconfig_log: list[tuple[int, dict[str, bool]]] = field(default_factory=list)

    def option_exposure(self, option: str, *, initial: bool,
                        total_iterations: int) -> int:
        """Iterations spent with ``option`` enabled over the whole run."""
        enabled_iters = 0
        prev = 0
        state = initial
        for resume, states in self.reconfig_log:
            if state:
                enabled_iters += resume - prev
            prev = resume
            state = states.get(option, state)
        if state:
            enabled_iters += total_iterations - prev
        return enabled_iters

    @property
    def nodes(self) -> int:
        return len(self.core_busy_cycles)


class SimRuntime:
    """Simulate a Program on an N-core SpaceCAKE tile."""

    def __init__(
        self,
        program: Program,
        registry: Mapping[str, type[Component]],
        *,
        nodes: int = 1,
        pipeline_depth: int = 5,
        max_iterations: int,
        execute: bool = False,
        cost_params: CostParams | None = None,
        machine: MachineConfig | None = None,
        trace: bool = False,
        option_states: Mapping[str, bool] | None = None,
        group_chains: bool = False,
    ) -> None:
        self.program = program
        self.registry = registry
        self.execute = execute
        self.group_chains = group_chains
        self.engine = EventEngine()
        self.machine = Machine(
            machine if machine is not None else MachineConfig(nodes=nodes)
        )
        if machine is not None and machine.nodes != nodes:
            raise SimulationError("nodes and machine.nodes disagree")
        self.cost_model = CostModel(registry, cost_params)
        self.broker = EventBroker()
        self.streams = StreamStore()
        self.tracer = Tracer(enabled=trace)
        self.host = ComponentHost(program, registry)

        self.pg: ProgramGraph = self._make_pg(option_states)
        self._target_states: dict[str, bool] = dict(self.pg.option_states)
        self._precreated: dict[str, Component] = {}
        self.host.populate(self.pg.active_components)
        self.managers = {
            qname: ManagerRuntime(info, self.broker, self)
            for qname, info in program.managers.items()
        }
        self.scheduler = DataflowScheduler(
            self.pg,
            pipeline_depth=pipeline_depth,
            max_iterations=max_iterations,
            hooks=self,
        )
        self._pending: deque[Job] = deque()  # the central job queue
        self._stall_until = 0.0  # reconfiguration splice window
        self._keys_by_iter: dict[int, set[Any]] = {}
        self.jobs_executed = 0
        self._ran = False
        #: (resume_iteration, option states) per applied reconfiguration
        self.reconfig_log: list[tuple[int, dict[str, bool]]] = []

    def _make_pg(self, option_states: Mapping[str, bool] | None) -> ProgramGraph:
        pg = self.program.build_graph(option_states)
        if self.group_chains:
            from repro.hinch.grouping import group_linear_chains

            pg = group_linear_chains(pg)
        return pg

    # -- SchedulerHooks ----------------------------------------------------------

    def on_iteration_complete(self, iteration: int) -> None:
        self.streams.release_iteration(iteration)
        for key in self._keys_by_iter.pop(iteration, ()):
            self.machine.cache.evict(key)

    def on_reconfigure(
        self, plans: list[ReconfigPlan], resume_iteration: int
    ) -> ProgramGraph:
        states = dict(self.pg.option_states)
        for plan in plans:
            states.update(plan.changes)
        new_pg = self._make_pg(states)
        added, removed = self.host.splice(new_pg.active_components, self._precreated)
        for component in self._precreated.values():
            component.teardown()
        self._precreated.clear()
        self.pg = new_pg
        self._target_states = dict(states)
        self.reconfig_log.append((resume_iteration, dict(states)))
        # Splicing happens while the graph is quiescent and stalls the
        # whole tile (the paper: two "simple actions" — add components,
        # synchronize them — but they serialize the machine).
        splice = self.cost_model.params.reconfig_splice_cycles * max(
            1, len(added) + len(removed)
        )
        self._stall_until = max(self._stall_until, self.engine.now + splice)
        return new_pg

    # -- ReconfigController ---------------------------------------------------------

    def target_option_state(self, option_qname: str) -> bool:
        return self._target_states[option_qname]

    def apply_option_changes(self, manager: str, changes: dict[str, bool]) -> None:
        effective = {
            opt: state
            for opt, state in changes.items()
            if self._target_states.get(opt) != state
        }
        if not effective:
            return
        self._target_states.update(effective)
        for opt, state in effective.items():
            if state:
                # Pre-create while the subgraph is still active: costs no
                # tile time (a host CPU concern in the paper's model).
                for member in self.program.options[opt].members:
                    if (
                        member not in self.host.live
                        and member not in self._precreated
                    ):
                        self._precreated[member] = self.host.create(member)
        self.scheduler.request_reconfig(ReconfigPlan(manager=manager, changes=effective))

    def send_reconfigure_request(self, manager: str, request: str) -> None:
        for member in self.program.managers[manager].members:
            component = self.host.live.get(member)
            if component is not None:
                component.reconfigure(request)

    # -- event injection ---------------------------------------------------------------

    def post_event(self, queue: str, name: str, payload: Any = None) -> None:
        self.broker.post(queue, Event(name=name, payload=payload))

    # -- cost accounting ------------------------------------------------------------------

    def _job_cycles(self, job: Job, core: int) -> float:
        node = self.pg.graph.node(job.node_id)
        params = self.cost_model.params
        speed = self.machine.speed(core)
        if node.kind == "barrier":
            return params.barrier_cycles / speed
        if node.kind in ("manager_enter", "manager_exit"):
            return params.manager_invoke_cycles / speed
        payload = node.payload
        # Grouped nodes (paper §4.1) carry several instances executed
        # back-to-back on one core: one job overhead, and their internal
        # stream traffic naturally hits L1 (write then immediate same-core
        # read of the same keys).
        instances = payload if isinstance(payload, tuple) else (payload,)
        cycles = self.cost_model.overhead_cycles(nodes=self.machine.nodes) / speed
        aliases = self.pg.aliases
        keyset = self._keys_by_iter.setdefault(job.iteration, set())
        for instance in instances:
            cost = self.cost_model.job_cost(instance)
            cycles += cost.compute_cycles / speed
            for traffic in cost.traffic:
                stream = instance.streams.get(traffic.port)
                if stream is None:
                    continue
                stream = aliases.get(stream, stream)
                buckets = _slot_buckets(instance.slice)
                part = traffic.nbytes / len(buckets)
                for bucket in buckets:
                    key = (stream, job.iteration, bucket)
                    cycles += self.machine.cache.access(
                        core, key, int(part), write=traffic.write
                    )
                    keyset.add(key)
        return cycles

    # -- execution ------------------------------------------------------------------------

    def _run_job_effects(self, job: Job) -> None:
        """Functional side of the job, applied at its completion time."""
        node = self.pg.graph.node(job.node_id)
        if node.kind in ("manager_enter", "manager_exit"):
            self.managers[node.payload].invoke(
                job.iteration, node.kind.removeprefix("manager_")
            )
            return
        if node.kind != "task":
            return
        payload = node.payload
        instances = payload if isinstance(payload, tuple) else (payload,)
        for instance in instances:
            component = self.host.live[instance.instance_id]
            if self.execute or type(component).always_execute:
                ctx = JobContext(
                    instance,
                    job.iteration,
                    self.streams,
                    self.broker,
                    self.pg.aliases,
                    stop_requester=self.scheduler.request_stop,
                )
                component.run(ctx)

    def _dispatch(self) -> None:
        now = self.engine.now
        if now < self._stall_until:
            # The tile is splicing; try again when it finishes.
            self.engine.schedule_at(self._stall_until, self._dispatch)
            return
        while self._pending:
            core = self.machine.acquire_core()
            if core is None:
                return
            job = self._pending.popleft()
            cycles = self._job_cycles(job, core)
            start = now

            def finish(job=job, core=core, cycles=cycles, start=start) -> None:
                self.machine.release_core(core, cycles)
                self._run_job_effects(job)
                self.jobs_executed += 1
                self.tracer.record(
                    TraceEvent(
                        node_id=job.node_id,
                        iteration=job.iteration,
                        worker=core,
                        start=start,
                        end=self.engine.now,
                        kind=self.pg.graph.node(job.node_id).kind
                        if job.node_id in self.pg.graph
                        else "task",
                    )
                )
                self._pending.extend(self.scheduler.complete(job))
                self._dispatch()

            self.engine.schedule(cycles, finish)

    def run(self) -> SimResult:
        """Simulate to completion; returns cycle counts and statistics."""
        if self._ran:
            raise SimulationError("SimRuntime instances are single-use")
        self._ran = True
        self._pending.extend(self.scheduler.start())
        self._dispatch()
        cycles = self.engine.run()
        if not self.scheduler.done:
            raise SimulationError(
                "simulation deadlocked: event heap empty but scheduler "
                f"has {self.scheduler.in_flight} iterations in flight"
            )
        return SimResult(
            cycles=cycles,
            completed_iterations=self.scheduler.completed_iterations,
            reconfig_count=self.scheduler.reconfig_count,
            trace=self.tracer,
            cache_stats=self.machine.cache.stats,
            core_busy_cycles=list(self.machine.busy_cycles),
            utilization=self.machine.utilization(cycles) if cycles else 0.0,
            components=dict(self.host.live),
            jobs_executed=self.jobs_executed,
            events_handled=sum(m.events_handled for m in self.managers.values()),
            components_created=self.host.created_total,
            reconfig_log=list(self.reconfig_log),
        )
